//! Wire-robustness fuzz: arbitrary bytes thrown at a live `ktudc-serve`
//! daemon must never panic it, wedge it, or elicit anything but typed
//! `Response` lines.
//!
//! Every property shares one leaked server and drives a raw TCP socket
//! (no client-side validation in the way). After the hostile payload,
//! the same connection sends a sentinel `Stats` request; the server must
//! answer every non-empty line it read with a parseable [`Response`]
//! (garbage gets `BadRequest` with id 0) and still serve the sentinel —
//! proving the connection survived and the daemon stayed responsive,
//! inside a hard per-case time bound.

use ktudc_serve::{serve, Request, RequestKind, Response, ServeConfig};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Response id of the sentinel `Stats` request; garbage lines are
/// answered with id 0, so the sentinel is unambiguous.
const SENTINEL_ID: u64 = 0xF00D;

/// Hard per-case bound: payload written, every reply read, sentinel
/// answered. Generous next to the observed microseconds, but a stalled
/// or wedged server blows through it.
const CASE_BUDGET: Duration = Duration::from_secs(10);

/// One server for the whole fuzz run, leaked for the process lifetime.
fn server_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let handle = serve(&ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 16,
            cache_capacity: 64,
            watchdog_tick_ms: 10,
            stuck_after_ticks: 400,
            ..ServeConfig::default()
        })
        .expect("bind ephemeral port");
        let addr = handle.addr();
        std::mem::forget(handle); // keep serving until the process exits
        addr
    })
}

/// Writes `payload` followed by a newline and a sentinel `Stats` line,
/// then reads replies until the sentinel answers. Returns an error
/// string describing any contract violation.
fn exchange(payload: &[u8]) -> Result<(), String> {
    let started = Instant::now();
    let mut conn = TcpStream::connect(server_addr()).map_err(|e| format!("connect failed: {e}"))?;
    conn.set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| format!("set_read_timeout failed: {e}"))?;
    let sentinel = serde_json::to_string(&Request::new(SENTINEL_ID, RequestKind::Stats))
        .map_err(|e| format!("encode sentinel: {e}"))?;
    let mut frame = payload.to_vec();
    frame.push(b'\n');
    frame.extend_from_slice(sentinel.as_bytes());
    frame.push(b'\n');
    conn.write_all(&frame)
        .map_err(|e| format!("write failed: {e}"))?;
    let mut reader = BufReader::new(conn);
    let mut line = String::new();
    loop {
        if started.elapsed() > CASE_BUDGET {
            return Err(format!(
                "case exceeded {CASE_BUDGET:?} without a sentinel reply"
            ));
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Err("server closed before answering the sentinel".to_string()),
            Ok(_) => {}
            Err(e) => return Err(format!("read stalled or failed: {e}")),
        }
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() {
            continue;
        }
        let resp: Response = serde_json::from_str(trimmed)
            .map_err(|e| format!("unparseable reply {trimmed:?}: {e:?}"))?;
        if resp.id == SENTINEL_ID {
            return Ok(());
        }
    }
}

/// A payload is only interesting if it is *not* a well-formed request:
/// a fuzzed line that happens to parse must be skipped, both to keep
/// the property about malformed input and to avoid handing the shared
/// server a surprise `Shutdown` or an expensive random computation.
fn is_valid_request(payload: &[u8]) -> bool {
    payload.split(|&b| b == b'\n').any(|seg| {
        std::str::from_utf8(seg)
            .ok()
            .is_some_and(|s| serde_json::from_str::<Request>(s.trim()).is_ok())
    })
}

proptest! {
    /// Arbitrary byte lines (any bytes, embedded newlines and all) are
    /// each answered with a typed `BadRequest`; the connection survives
    /// and the sentinel is served within the time budget.
    #[test]
    fn arbitrary_bytes_never_panic_or_wedge_the_server(
        payload in proptest::collection::vec(0u8..=255, 0..4096)
    ) {
        if !is_valid_request(&payload) {
            if let Err(what) = exchange(&payload) {
                prop_assert!(false, "payload {payload:?}: {what}");
            }
        }
    }

    /// Torn frames: a strict prefix of a valid request line is never
    /// valid JSON, and must be refused — not half-parsed, not hung on.
    #[test]
    fn truncated_request_lines_get_a_typed_refusal(
        id in 1u64..1_000_000,
        cut in 1usize..60,
    ) {
        let line = serde_json::to_string(&Request::new(id, RequestKind::Health))
            .expect("encode");
        let cut = cut.min(line.len() - 1);
        let torn = &line.as_bytes()[..cut];
        if !is_valid_request(torn) {
            if let Err(what) = exchange(torn) {
                prop_assert!(false, "torn prefix {torn:?}: {what}");
            }
        }
    }

    /// Single-byte corruption of a valid request line: whatever byte
    /// lands wherever, the reply is a typed response or a typed
    /// refusal, never a panic or a stall.
    #[test]
    fn corrupted_request_lines_never_panic_or_wedge_the_server(
        id in 1u64..1_000_000,
        pos in 0usize..200,
        byte in 0u8..=255,
    ) {
        let line = serde_json::to_string(&Request::new(id, RequestKind::ClusterHealth))
            .expect("encode");
        let mut mutated = line.into_bytes();
        let pos = pos % mutated.len();
        mutated[pos] = byte;
        if !is_valid_request(&mutated) {
            if let Err(what) = exchange(&mutated) {
                prop_assert!(false, "mutated line {mutated:?}: {what}");
            }
        }
    }
}
