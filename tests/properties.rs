//! Property-based tests (proptest) on the core data structures and
//! cross-crate invariants.

use ktudc::core::protocols::strong_fd::StrongFdUdc;
use ktudc::core::spec::check_udc;
use ktudc::fd::convert::{accumulate_reports, perfect_to_n_useful};
use ktudc::fd::{check_fd_property, FdProperty, PerfectOracle, StrongOracle};
use ktudc::model::{ActionId, Event, ProcSet, ProcessId, RunBuilder, SuspectReport};
use ktudc::sim::{run_protocol, ChannelKind, CrashPlan, SimConfig, Workload};
use proptest::prelude::*;

fn procset_strategy() -> impl Strategy<Value = ProcSet> {
    proptest::collection::vec(0usize..16, 0..8)
        .prop_map(|v| v.into_iter().map(ProcessId::new).collect())
}

proptest! {
    /// ProcSet algebra laws.
    #[test]
    fn procset_union_intersection_laws(a in procset_strategy(), b in procset_strategy()) {
        let u = a.union(b);
        let i = a.intersection(b);
        prop_assert!(a.is_subset_of(u));
        prop_assert!(b.is_subset_of(u));
        prop_assert!(i.is_subset_of(a));
        prop_assert!(i.is_subset_of(b));
        prop_assert_eq!(u.len() + i.len(), a.len() + b.len());
        prop_assert_eq!(a.difference(b).union(i), a);
        // Complement within a 16-process universe.
        prop_assert_eq!(a.complement(16).complement(16), a);
        prop_assert!(a.is_disjoint_from(a.complement(16)));
    }

    /// Subset enumeration yields exactly 2^|S| distinct subsets of S.
    #[test]
    fn procset_subsets_are_exhaustive(a in proptest::collection::vec(0usize..10, 0..5)) {
        let s: ProcSet = a.into_iter().map(ProcessId::new).collect();
        let subs: Vec<ProcSet> = s.subsets().collect();
        prop_assert_eq!(subs.len(), 1usize << s.len());
        let dedup: std::collections::BTreeSet<ProcSet> = subs.iter().copied().collect();
        prop_assert_eq!(dedup.len(), subs.len());
        prop_assert!(subs.iter().all(|x| x.is_subset_of(s)));
    }

    /// RunBuilder enforces R2 (strict tick monotonicity per process):
    /// whatever the append sequence, accepted events have strictly
    /// increasing ticks and runs validate.
    #[test]
    fn run_builder_accepts_only_wellformed(
        ops in proptest::collection::vec((0usize..3, 1u64..20, 0usize..4), 0..40)
    ) {
        let mut b = RunBuilder::<u8>::new(3);
        for (pi, t, kind) in ops {
            let p = ProcessId::new(pi);
            let event = match kind {
                0 => Event::Send { to: ProcessId::new((pi + 1) % 3), msg: 1u8 },
                1 => Event::Crash,
                2 => Event::Suspect(SuspectReport::Standard(ProcSet::new())),
                _ => Event::Init { action: ActionId::new(p, t as u32) },
            };
            let _ = b.append(p, t, event); // errors are fine; commits must be legal
        }
        let run = b.finish(25);
        run.check_conditions(0).unwrap();
        for p in ProcessId::all(3) {
            let ticks: Vec<u64> = run.timed_history(p).map(|(t, _)| t).collect();
            prop_assert!(ticks.windows(2).all(|w| w[0] < w[1]), "R2 broken: {ticks:?}");
        }
    }

    /// Indistinguishability is an equivalence relation on sampled runs:
    /// reflexive by construction, and symmetric across two prefixes of the
    /// same run at different cut times.
    #[test]
    fn indistinguishability_is_symmetric(seed in 0u64..50, m1 in 0u64..120, m2 in 0u64..120) {
        let w = Workload::single(0, 2);
        let config = SimConfig::new(3)
            .channel(ChannelKind::fair_lossy(0.3))
            .horizon(120)
            .seed(seed);
        let run = run_protocol(&config, |_| StrongFdUdc::new(), &mut StrongOracle::new(), &w).run;
        for p in ProcessId::all(3) {
            let ab = run.indistinguishable(m1, &run, m2, p);
            let ba = run.indistinguishable(m2, &run, m1, p);
            prop_assert_eq!(ab, ba);
            prop_assert!(run.indistinguishable(m1, &run, m1, p));
        }
    }

    /// Report accumulation (Prop 2.2) is idempotent and monotone: applying
    /// it twice equals applying it once, and the final Suspects set only
    /// grows along each history.
    #[test]
    fn accumulation_is_idempotent_and_monotone(seed in 0u64..40) {
        let w = Workload::single(0, 2);
        let config = SimConfig::new(3)
            .channel(ChannelKind::fair_lossy(0.2))
            .crashes(CrashPlan::at(&[(2, 9)]))
            .horizon(150)
            .seed(seed);
        let run = run_protocol(&config, |_| StrongFdUdc::new(), &mut StrongOracle::new(), &w).run;
        let once = accumulate_reports(&run);
        let twice = accumulate_reports(&once);
        prop_assert_eq!(&once, &twice);
        for p in ProcessId::all(3) {
            let mut last = ProcSet::new();
            for (_, e) in once.timed_history(p) {
                if let Event::Suspect(SuspectReport::Standard(s)) = e {
                    prop_assert!(last.is_subset_of(*s), "retraction after accumulation");
                    last = *s;
                }
            }
        }
    }

    /// Perfect → n-useful conversion always yields generalized reports that
    /// pass generalized strong accuracy, for any perfect-oracle run.
    #[test]
    fn perfect_to_n_useful_is_accurate(seed in 0u64..40) {
        let w = Workload::single(0, 2);
        let config = SimConfig::new(4)
            .channel(ChannelKind::fair_lossy(0.25))
            .crashes(CrashPlan::Random { max_failures: 3, latest: 60 })
            .horizon(200)
            .seed(seed);
        let run = run_protocol(&config, |_| StrongFdUdc::new(), &mut PerfectOracle::new(), &w).run;
        check_fd_property(&run, FdProperty::StrongAccuracy).unwrap();
        let converted = perfect_to_n_useful(&run);
        check_fd_property(&converted, FdProperty::GeneralizedStrongAccuracy).unwrap();
    }

    /// Under any random ≤(n−1)-crash schedule and moderate loss, the
    /// Proposition 3.1 protocol with a perfect oracle attains UDC by a
    /// generous horizon — the paper's headline, fuzzed.
    #[test]
    fn prop_3_1_fuzzed(seed in 0u64..30) {
        let w = Workload::single(0, 2);
        let config = SimConfig::new(4)
            .channel(ChannelKind::fair_lossy(0.3))
            .crashes(CrashPlan::Random { max_failures: 3, latest: 80 })
            .horizon(900)
            .seed(seed);
        let out = run_protocol(&config, |_| StrongFdUdc::new(), &mut PerfectOracle::new(), &w);
        prop_assert!(check_udc(&out.run, &w.actions()).is_satisfied(), "seed {seed}");
        out.run.check_conditions(0).unwrap();
    }
}
