//! Cross-crate integration tests: full pipelines from context
//! configuration through protocol execution to specification checking.

use ktudc::core::protocols::{
    generalized::GeneralizedUdc, nudc::NUdcFlood, reliable::ReliableUdc, strong_fd::StrongFdUdc,
};
use ktudc::core::spec::{check_nudc, check_udc, Verdict};
use ktudc::fd::{
    check_fd_property, CyclingSubsetOracle, FdProperty, PerfectOracle, StrongOracle, TUsefulOracle,
};
use ktudc::model::{ProcSet, ProcessId, Run};
use ktudc::sim::{run_protocol, ChannelKind, CrashPlan, NullOracle, SimConfig, Workload};

/// Every protocol, in its designated context, attains its designated spec
/// while the run itself satisfies R1–R5 (fairness threshold 25: a message
/// sent 25+ times to a live process must have arrived).
#[test]
fn every_protocol_in_its_home_context() {
    let w = Workload::single(0, 2);

    // Prop 2.3: nUDC / lossy / no FD.
    let config = SimConfig::new(5)
        .channel(ChannelKind::fair_lossy(0.4))
        .crashes(CrashPlan::at(&[(2, 15)]))
        .horizon(500)
        .seed(1);
    let out = run_protocol(&config, |_| NUdcFlood::new(), &mut NullOracle::new(), &w);
    assert_eq!(check_nudc(&out.run, &w.actions()), Verdict::Satisfied);
    out.run.check_conditions(25).unwrap();

    // Prop 2.4: UDC / reliable / no FD.
    let config = SimConfig::new(5)
        .channel(ChannelKind::reliable())
        .crashes(CrashPlan::at(&[(0, 9), (4, 16)]))
        .horizon(400)
        .seed(2);
    let out = run_protocol(&config, |_| ReliableUdc::new(), &mut NullOracle::new(), &w);
    assert_eq!(check_udc(&out.run, &w.actions()), Verdict::Satisfied);
    out.run.check_conditions(25).unwrap();

    // Prop 3.1: UDC / lossy / strong FD.
    let config = SimConfig::new(5)
        .channel(ChannelKind::fair_lossy(0.3))
        .crashes(CrashPlan::at(&[(1, 7), (2, 40)]))
        .horizon(800)
        .seed(3);
    let out = run_protocol(
        &config,
        |_| StrongFdUdc::new(),
        &mut StrongOracle::new(),
        &w,
    );
    assert_eq!(check_udc(&out.run, &w.actions()), Verdict::Satisfied);
    out.run.check_conditions(25).unwrap();

    // Prop 4.1: UDC / lossy / t-useful FD.
    let t = 3;
    let config = SimConfig::new(5)
        .channel(ChannelKind::fair_lossy(0.3))
        .crashes(CrashPlan::at(&[(1, 7), (2, 40), (4, 90)]))
        .horizon(900)
        .seed(4);
    let out = run_protocol(
        &config,
        |_| GeneralizedUdc::new(t),
        &mut TUsefulOracle::new(t),
        &w,
    );
    assert_eq!(check_udc(&out.run, &w.actions()), Verdict::Satisfied);
    out.run.check_conditions(25).unwrap();
}

/// Whole-pipeline determinism: identical configs produce byte-identical
/// runs, across protocols and oracles.
#[test]
fn pipelines_are_deterministic() {
    let w = Workload::periodic(4, 9, 60);
    let run_once = || {
        let config = SimConfig::new(4)
            .channel(ChannelKind::fair_lossy(0.35))
            .crashes(CrashPlan::Random {
                max_failures: 2,
                latest: 50,
            })
            .horizon(400)
            .seed(77);
        run_protocol(
            &config,
            |_| StrongFdUdc::new(),
            &mut StrongOracle::new(),
            &w,
        )
        .run
    };
    assert_eq!(run_once(), run_once());
}

/// Serde round-trip of a full protocol run (golden-format smoke test).
#[test]
fn runs_serialize_and_deserialize() {
    let w = Workload::single(0, 2);
    let config = SimConfig::new(3)
        .channel(ChannelKind::fair_lossy(0.2))
        .crashes(CrashPlan::at(&[(1, 12)]))
        .horizon(200)
        .seed(5);
    let out = run_protocol(
        &config,
        |_| StrongFdUdc::new(),
        &mut PerfectOracle::new(),
        &w,
    );
    let json = serde_json::to_string(&out.run).expect("serialize");
    let back: Run<ktudc::core::CoordMsg> = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, out.run);
    // Reserialized form is stable.
    assert_eq!(serde_json::to_string(&back).unwrap(), json);
}

/// Corollary 4.2 at scale: the oracle-free cycling detector serves a
/// larger deployment with multiple actions and crashes, as long as
/// `t < n/2`.
#[test]
fn corollary_4_2_scales_to_seven_processes() {
    let n = 7;
    let t = 3;
    let w = Workload::periodic(n, 16, 80);
    let config = SimConfig::new(n)
        .channel(ChannelKind::fair_lossy(0.25))
        .crashes(CrashPlan::at(&[(1, 20), (3, 44), (5, 70)]))
        .horizon(1500)
        .seed(11);
    let out = run_protocol(
        &config,
        |_| GeneralizedUdc::new(t),
        &mut CyclingSubsetOracle::new(n, t),
        &w,
    );
    assert_eq!(check_udc(&out.run, &w.actions()), Verdict::Satisfied);
}

/// The perfect oracle stays perfect when wired through a real protocol
/// run (the fd crate's property checkers see the scheduler's event
/// placement, not the oracle's intent).
#[test]
fn wired_perfect_oracle_satisfies_perfect_properties() {
    let w = Workload::single(0, 2);
    let config = SimConfig::new(4)
        .channel(ChannelKind::fair_lossy(0.3))
        .crashes(CrashPlan::at(&[(2, 9), (3, 33)]))
        .horizon(500)
        .seed(6);
    let out = run_protocol(
        &config,
        |_| StrongFdUdc::new(),
        &mut PerfectOracle::new(),
        &w,
    );
    check_fd_property(&out.run, FdProperty::StrongAccuracy).unwrap();
    check_fd_property(&out.run, FdProperty::StrongCompleteness).unwrap();
    check_fd_property(&out.run, FdProperty::WeakAccuracy).unwrap();
}

/// Uniformity separation in one picture: the same crash schedule under
/// the same loss, with the nUDC protocol (no uniformity) vs the strong-FD
/// protocol (uniform). Finds a seed where the initiator performed and
/// crashed while flooding failed — nUDC fine, UDC violated — and checks
/// the strong-FD protocol fixes exactly that run's outcome.
#[test]
fn uniformity_separation_and_cure() {
    let w = Workload::single(0, 1);
    for seed in 0..300 {
        let config = SimConfig::new(4)
            .channel(ChannelKind::fair_lossy(0.9))
            .crashes(CrashPlan::at(&[(0, 4)]))
            .horizon(900)
            .seed(seed);
        let flood = run_protocol(&config, |_| NUdcFlood::new(), &mut NullOracle::new(), &w);
        assert_eq!(check_nudc(&flood.run, &w.actions()), Verdict::Satisfied);
        if check_udc(&flood.run, &w.actions()).is_satisfied() {
            continue;
        }
        // Found the separating schedule. The Prop 3.1 protocol, in the
        // same context (plus a strong FD), achieves full UDC.
        let cured = run_protocol(
            &config,
            |_| StrongFdUdc::new(),
            &mut StrongOracle::new(),
            &w,
        );
        assert_eq!(check_udc(&cured.run, &w.actions()), Verdict::Satisfied);
        return;
    }
    panic!("no separating schedule found in 300 seeds at 90% loss");
}

/// Faulty-set bookkeeping is consistent across the sim/model boundary.
#[test]
fn fault_truth_matches_run_faulty_set() {
    let w = Workload::single(0, 2);
    let config = SimConfig::new(5)
        .crashes(CrashPlan::Random {
            max_failures: 4,
            latest: 100,
        })
        .horizon(300)
        .seed(123);
    let out = run_protocol(&config, |_| ReliableUdc::new(), &mut NullOracle::new(), &w);
    assert_eq!(out.truth.faulty(), out.run.faulty());
    for p in ProcessId::all(5) {
        assert_eq!(out.truth.crash_time(p), out.run.crash_time(p));
    }
    let correct: ProcSet = out.run.correct();
    assert_eq!(correct, out.truth.correct());
}
