//! Fast shape checks on the Table 1 harness: the qualitative structure of
//! the paper's table must hold even at small trial counts, so regressions
//! in any protocol/oracle pairing surface in `cargo test` without running
//! the full bench binary.

use ktudc::core::harness::{run_cell, CellSpec, FdChoice, ProtocolChoice};

#[test]
fn reliable_udc_row_needs_no_fd() {
    for t in [2usize, 3, 4] {
        let out = run_cell(
            &CellSpec::new(5, t, None, FdChoice::None, ProtocolChoice::Reliable)
                .trials(3)
                .horizon(700),
        );
        assert!(out.achieved(), "t = {t}: {out}");
    }
}

#[test]
fn unreliable_udc_row_positive_cells() {
    let cells = [
        (2usize, FdChoice::Cycling, ProtocolChoice::Generalized),
        (3, FdChoice::TUseful, ProtocolChoice::Generalized),
        (4, FdChoice::Strong, ProtocolChoice::StrongFd),
        (4, FdChoice::Perfect, ProtocolChoice::StrongFd),
        (3, FdChoice::ImpermanentStrong, ProtocolChoice::StrongFd),
    ];
    for (t, fd, proto) in cells {
        let out = run_cell(
            &CellSpec::new(5, t, Some(0.3), fd, proto)
                .trials(3)
                .horizon(1200),
        );
        assert!(out.achieved(), "t = {t}, fd = {fd}: {out}");
    }
}

#[test]
fn unreliable_udc_negative_cell_certifies() {
    let out = run_cell(
        &CellSpec::new(4, 3, Some(0.6), FdChoice::None, ProtocolChoice::Reliable)
            .trials(15)
            .horizon(600),
    );
    assert!(!out.achieved(), "{out}");
    assert!(
        out.violated_permanent > 0,
        "negative cell must produce at least one certified violation: {out}"
    );
}

#[test]
fn message_cost_is_reported() {
    let out = run_cell(
        &CellSpec::new(4, 2, Some(0.2), FdChoice::Strong, ProtocolChoice::StrongFd)
            .trials(2)
            .horizon(800),
    );
    assert!(out.achieved());
    assert!(out.mean_messages > 0.0);
}
