//! Chaos soak of the `ktudc-serve` daemon: the server injects response
//! faults (delays, severed connections, short writes) and sheds load
//! from a deliberately tiny queue, while [`HardenedClient`]s hammer it
//! with overlapping workloads. The assertions are the exactly-once
//! contract: every request gets exactly one response whose payload
//! equals the direct library call, and every distinct request body is
//! computed exactly once on the server, no matter how many times the
//! clients had to resend it.

use ktudc::core::harness::{run_cell, CellSpec, FdChoice, ProtocolChoice};
use ktudc::epistemic::Formula;
use ktudc::model::ProcessId;
use ktudc::sim::{run_explore_spec, ExploreSpec};
use ktudc_serve::{
    serve, CheckSpec, ClientError, HardenedClient, RequestKind, Response, ResponseKind,
    RetryPolicy, ServeConfig, ServerFaults,
};
use std::collections::HashSet;
use std::net::SocketAddr;
use std::time::Duration;

fn faulty_server(
    workers: usize,
    queue: usize,
    faults: ServerFaults,
) -> (ktudc_serve::ServerHandle, SocketAddr) {
    let handle = serve(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_capacity: queue,
        cache_capacity: 256,
        faults,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.addr();
    (handle, addr)
}

/// A cheap, always-valid cell, distinct per `i`.
fn cell(i: usize) -> CellSpec {
    CellSpec::new(3, 1, None, FdChoice::None, ProtocolChoice::Reliable)
        .trials(2)
        .horizon(100 + (i as u64) * 10)
}

/// A tiny exploration scenario, distinct per `i`.
fn scenario(i: usize) -> ExploreSpec {
    let mut spec = ExploreSpec::new(2, 2);
    spec.max_failures = i % 2;
    spec
}

fn check(i: usize) -> CheckSpec {
    let p0 = ProcessId::new(0);
    CheckSpec {
        scenario: scenario(i),
        formula: Formula::or(vec![
            Formula::crashed(p0),
            Formula::not(Formula::crashed(p0)),
        ]),
    }
}

/// The workload one soak thread submits per round. Threads overlap on
/// purpose: identical bodies racing from different connections is what
/// exercises the server's single-flight dedup.
fn soak_batch(thread: usize) -> Vec<RequestKind> {
    vec![
        RequestKind::Cell(cell(thread % 3)),
        RequestKind::Explore(scenario(thread % 2)),
        RequestKind::Check(check(thread % 2)),
        RequestKind::Cell(cell((thread + 1) % 3)),
    ]
}

/// Asserts a served payload equals what the library computes directly.
fn assert_matches_direct(kind: &RequestKind, response: &Response) {
    match (kind, &response.result) {
        (RequestKind::Cell(spec), ResponseKind::Cell(outcome)) => {
            assert_eq!(*outcome, run_cell(spec), "cell mismatch for {spec:?}");
        }
        (RequestKind::Explore(spec), ResponseKind::Explore(outcome)) => {
            assert_eq!(
                *outcome,
                run_explore_spec(spec).expect("valid scenario"),
                "explore mismatch for {spec:?}"
            );
        }
        (RequestKind::Check(spec), ResponseKind::Check(outcome)) => {
            // The soak checks tautologies only, so the verdict is fixed.
            assert!(outcome.valid, "check mismatch for {spec:?}");
            assert_eq!(outcome.counterexample, None);
            assert!(outcome.complete);
        }
        (kind, other) => panic!("response kind mismatch: {kind:?} answered by {other:?}"),
    }
}

#[test]
fn soak_under_server_faults_is_exactly_once() {
    // Every kind of fault armed at once, on a server small enough to
    // shed load: responses are delayed (7th), severed (5th), and torn
    // (11th), globally across all connections.
    let (handle, addr) = faulty_server(
        2,
        2,
        ServerFaults {
            delay_every: Some((7, Duration::from_millis(20))),
            sever_every: Some(5),
            short_write_every: Some(11),
        },
    );

    const THREADS: usize = 6;
    const ROUNDS: usize = 3;
    let soakers: Vec<_> = (0..THREADS)
        .map(|thread| {
            std::thread::spawn(move || {
                let mut client = HardenedClient::new(
                    addr.to_string(),
                    RetryPolicy {
                        request_timeout: Duration::from_secs(5),
                        max_retries: 12,
                        base_backoff: Duration::from_millis(5),
                        max_backoff: Duration::from_millis(200),
                        jitter_seed: 1000 + thread as u64,
                        ..RetryPolicy::default()
                    },
                );
                let mut rounds = Vec::new();
                for _ in 0..ROUNDS {
                    let kinds = soak_batch(thread);
                    let responses = client.batch(kinds.clone()).expect("soak batch");
                    rounds.push((kinds, responses));
                }
                rounds
            })
        })
        .collect();

    // Exactly one response per request, each with the right payload.
    let mut unique: HashSet<String> = HashSet::new();
    for soaker in soakers {
        for (kinds, responses) in soaker.join().expect("soak thread") {
            assert_eq!(responses.len(), kinds.len(), "a request was lost");
            for (kind, response) in kinds.iter().zip(&responses) {
                assert_matches_direct(kind, response);
                unique.insert(serde_json::to_string(kind).expect("encodable"));
            }
        }
    }

    // Warm phase: the same bodies again must be answered from the cache
    // even though the faults are still firing.
    let mut client = HardenedClient::new(addr.to_string(), RetryPolicy::default());
    for thread in 0..THREADS {
        let kinds = soak_batch(thread);
        let responses = client.batch(kinds.clone()).expect("warm batch");
        for (kind, response) in kinds.iter().zip(&responses) {
            assert!(response.cached, "warm response not cached for {kind:?}");
            assert_matches_direct(kind, response);
        }
    }

    // Exactly-once compute: on the compute endpoints, every record is a
    // computation (cached=false), a cache hit, or a typed error (the
    // overload sheds). The computations must number exactly the distinct
    // bodies submitted — resends and races never re-computed anything.
    let stats = client.stats().expect("stats");
    let computed: u64 = stats
        .endpoints
        .iter()
        .filter(|e| ["cell", "check", "explore"].contains(&e.endpoint.as_str()))
        .map(|e| e.requests - e.cache_hits - e.errors)
        .sum();
    assert_eq!(
        computed,
        unique.len() as u64,
        "single-flight violated: {stats:?}"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn request_deadline_expires_and_retry_budget_is_bounded() {
    // Every response delayed far past the client deadline: each attempt
    // times out, and the client gives up with a typed exhaustion error
    // after exactly its budget (1 initial + 2 retries).
    let (handle, addr) = faulty_server(
        1,
        4,
        ServerFaults {
            delay_every: Some((1, Duration::from_millis(300))),
            sever_every: None,
            short_write_every: None,
        },
    );
    let mut client = HardenedClient::new(
        addr.to_string(),
        RetryPolicy {
            request_timeout: Duration::from_millis(50),
            max_retries: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            jitter_seed: 7,
            ..RetryPolicy::default()
        },
    );
    match client.request(RequestKind::Cell(cell(0))) {
        Err(ClientError::RetriesExhausted { attempts, last }) => {
            assert_eq!(attempts, 3, "budget is initial try + max_retries");
            assert!(!last.is_empty());
        }
        other => panic!("expected retries to exhaust, got {other:?}"),
    }
    handle.shutdown();
    handle.join();
}

#[test]
fn hardened_client_reconnects_across_severed_connections() {
    // Sever every second response: no single connection survives long,
    // but the hardened client must still land every request.
    let (handle, addr) = faulty_server(
        2,
        8,
        ServerFaults {
            delay_every: None,
            sever_every: Some(2),
            short_write_every: None,
        },
    );
    let mut client = HardenedClient::new(
        addr.to_string(),
        RetryPolicy {
            max_retries: 20,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
            ..RetryPolicy::default()
        },
    );
    for round in 0..4 {
        let kinds = soak_batch(round);
        let responses = client.batch(kinds.clone()).expect("batch despite severs");
        assert_eq!(responses.len(), kinds.len());
        for (kind, response) in kinds.iter().zip(&responses) {
            assert_matches_direct(kind, response);
        }
    }
    handle.shutdown();
    handle.join();
}
