//! End-to-end exercise of the `ktudc-serve` daemon: an in-process server
//! on an ephemeral port, hit by concurrent clients with a mixed workload,
//! with every response checked against the direct library call it is
//! supposed to equal. Backpressure and graceful shutdown are driven to
//! their specified behavior, not just smoke-tested.

use ktudc::core::harness::{run_cell, CellSpec, FdChoice, ProtocolChoice};
use ktudc::epistemic::{Formula, ModelChecker};
use ktudc::model::ProcessId;
use ktudc::sim::{explore_spec, run_explore_spec, ExploreSpec, WireProtocol};
use ktudc_serve::{
    serve, CheckSpec, Client, ErrorCode, RequestKind, Response, ResponseKind, ServeConfig,
};
use std::net::SocketAddr;
use std::time::Duration;

fn server(workers: usize, queue: usize, cache: usize) -> (ktudc_serve::ServerHandle, SocketAddr) {
    let handle = serve(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_capacity: queue,
        cache_capacity: cache,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.addr();
    (handle, addr)
}

/// A cheap, always-valid cell, distinct per `i`.
fn cell(i: usize) -> CellSpec {
    CellSpec::new(3, 1, None, FdChoice::None, ProtocolChoice::Reliable)
        .trials(2)
        .horizon(100 + (i as u64) * 10)
}

/// A tiny exploration scenario, distinct per `i`.
fn scenario(i: usize) -> ExploreSpec {
    let mut spec = ExploreSpec::new(2, 2);
    spec.max_failures = i % 2;
    spec.protocol = if i.is_multiple_of(2) {
        WireProtocol::Idle
    } else {
        WireProtocol::OneShot {
            from: 0,
            to: 1,
            msg: (i % 250) as u8,
        }
    };
    spec
}

fn check(i: usize) -> CheckSpec {
    let p0 = ProcessId::new(0);
    CheckSpec {
        scenario: scenario(i),
        // Alternate a tautology with a falsifiable formula so both check
        // verdict shapes travel the wire.
        formula: if i.is_multiple_of(2) {
            Formula::or(vec![
                Formula::crashed(p0),
                Formula::not(Formula::crashed(p0)),
            ])
        } else {
            Formula::crashed(p0)
        },
    }
}

/// The mixed workload one client thread submits, distinct per thread.
fn mixed_batch(thread: usize) -> Vec<RequestKind> {
    vec![
        RequestKind::Cell(cell(thread)),
        RequestKind::Check(check(thread)),
        RequestKind::Explore(scenario(thread)),
        RequestKind::Cell(cell(thread + 100)),
    ]
}

/// Asserts a served response equals what the library computes directly.
fn assert_matches_direct(kind: &RequestKind, response: &Response) {
    match (kind, &response.result) {
        (RequestKind::Cell(spec), ResponseKind::Cell(outcome)) => {
            assert_eq!(*outcome, run_cell(spec), "cell mismatch for {spec:?}");
        }
        (RequestKind::Explore(spec), ResponseKind::Explore(outcome)) => {
            assert_eq!(
                *outcome,
                run_explore_spec(spec).expect("valid scenario"),
                "explore mismatch for {spec:?}"
            );
        }
        (RequestKind::Check(spec), ResponseKind::Check(outcome)) => {
            let explored = explore_spec(&spec.scenario).expect("valid scenario");
            let mut checker = ModelChecker::new(&explored.system);
            match checker.valid(&spec.formula) {
                Ok(()) => {
                    assert!(outcome.valid, "check mismatch for {spec:?}");
                    assert_eq!(outcome.counterexample, None);
                }
                Err(point) => {
                    assert!(!outcome.valid, "check mismatch for {spec:?}");
                    assert_eq!(outcome.counterexample, Some(point));
                }
            }
            assert_eq!(outcome.runs, explored.system.len());
            assert!(outcome.complete);
        }
        (kind, other) => panic!("response kind mismatch: {kind:?} answered by {other:?}"),
    }
}

#[test]
fn mixed_concurrent_workload_matches_direct_calls_and_caches() {
    let (handle, addr) = server(4, 64, 256);

    // Eight client threads, each with its own connection and a pipelined
    // mixed batch of cell + check + explore requests.
    let clients: Vec<_> = (0..8)
        .map(|thread| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let kinds = mixed_batch(thread);
                let responses = client.batch(kinds.clone()).expect("batch");
                (kinds, responses)
            })
        })
        .collect();
    for join in clients {
        let (kinds, responses) = join.join().expect("client thread");
        assert_eq!(responses.len(), kinds.len());
        for (kind, response) in kinds.iter().zip(&responses) {
            assert_matches_direct(kind, response);
        }
    }

    // The identical sweep again, from a fresh connection: every response
    // must now come from the scenario cache, byte-identical.
    let mut client = Client::connect(addr).expect("connect");
    for thread in 0..8 {
        let kinds = mixed_batch(thread);
        let responses = client.batch(kinds.clone()).expect("warm batch");
        for (kind, response) in kinds.iter().zip(&responses) {
            assert!(response.cached, "warm response not cached for {kind:?}");
            assert_matches_direct(kind, response);
        }
    }

    let stats = client.stats().expect("stats");
    let hits: u64 = stats.endpoints.iter().map(|e| e.cache_hits).sum();
    assert!(hits > 0, "second sweep reported no cache hits: {stats:?}");
    assert!(stats.cache_hit_rate > 0.0);
    assert!(stats.cache_entries > 0);
    assert_eq!(stats.overloaded, 0);

    client.shutdown_server().expect("shutdown ack");
    handle.join();
}

#[test]
fn oversized_burst_is_shed_with_typed_overloaded_errors() {
    // One worker, one queue slot: a pipelined burst must mostly shed.
    let (handle, addr) = server(1, 1, 256);
    let mut client = Client::connect(addr).expect("connect");
    let kinds: Vec<RequestKind> = (0..16)
        .map(|i| {
            RequestKind::Cell(
                CellSpec::new(4, 1, Some(0.2), FdChoice::None, ProtocolChoice::Reliable)
                    .trials(6)
                    .horizon(600 + i as u64),
            )
        })
        .collect();
    let responses = client.batch(kinds).expect("burst batch");

    let served = responses
        .iter()
        .filter(|r| matches!(r.result, ResponseKind::Cell(_)))
        .count();
    let shed = responses
        .iter()
        .filter(|r| matches!(&r.result, ResponseKind::Error(e) if e.code == ErrorCode::Overloaded))
        .count();
    assert_eq!(
        served + shed,
        responses.len(),
        "unexpected payloads: {responses:?}"
    );
    assert!(served >= 1, "nothing was served");
    assert!(shed >= 1, "nothing was shed: {responses:?}");

    // The server survived the burst: stats still answers and accounts
    // for every shed request.
    let stats = client.stats().expect("stats after burst");
    assert_eq!(stats.overloaded as usize, shed);

    client.shutdown_server().expect("shutdown ack");
    handle.join();
}

#[test]
fn shutdown_drains_accepted_work_before_exiting() {
    let (handle, addr) = server(2, 16, 16);
    // A batch slow enough to still be in flight when shutdown arrives.
    let worker = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        let kinds: Vec<RequestKind> = (0..4)
            .map(|i| {
                RequestKind::Cell(
                    CellSpec::new(4, 2, Some(0.25), FdChoice::Strong, ProtocolChoice::StrongFd)
                        .trials(8)
                        .horizon(700 + i as u64),
                )
            })
            .collect();
        client.batch(kinds).expect("draining batch")
    });
    // Let the batch reach the pool, then ask for shutdown from a second
    // connection while the work is queued/in flight.
    std::thread::sleep(Duration::from_millis(150));
    let mut controller = Client::connect(addr).expect("connect controller");
    controller.shutdown_server().expect("shutdown ack");
    handle.join(); // returns only after the drain

    // Every accepted request was answered with a real result, not an
    // error — the drain finished the work.
    let responses = worker.join().expect("batch thread");
    assert_eq!(responses.len(), 4);
    for response in &responses {
        assert!(
            matches!(response.result, ResponseKind::Cell(_)),
            "drained request answered with {:?}",
            response.result
        );
    }
}

#[test]
fn malformed_and_mismatched_requests_get_typed_errors() {
    use std::io::{BufRead, BufReader, Write};

    let (handle, addr) = server(1, 4, 4);
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // Not JSON at all: BadRequest with id 0.
    stream.write_all(b"this is not json\n").expect("write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    let response: Response = serde_json::from_str(line.trim_end()).expect("parse");
    assert_eq!(response.id, 0);
    assert!(
        matches!(&response.result, ResponseKind::Error(e) if e.code == ErrorCode::BadRequest),
        "{response:?}"
    );

    // Wrong schema version: UnsupportedVersion, id echoed.
    stream
        .write_all(b"{\"schema_version\":999,\"id\":42,\"kind\":\"Stats\"}\n")
        .expect("write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    let response: Response = serde_json::from_str(line.trim_end()).expect("parse");
    assert_eq!(response.id, 42);
    assert!(
        matches!(&response.result, ResponseKind::Error(e) if e.code == ErrorCode::UnsupportedVersion),
        "{response:?}"
    );

    // An invalid scenario: BadRequest from the worker, not a hang.
    let mut client = Client::connect(addr).expect("connect");
    let response = client
        .request(RequestKind::Explore(ExploreSpec::new(0, 2)))
        .expect("request");
    assert!(
        matches!(&response.result, ResponseKind::Error(e) if e.code == ErrorCode::BadRequest),
        "{response:?}"
    );

    client.shutdown_server().expect("shutdown ack");
    handle.join();
}
