//! Live failure-detector soak: the φ-accrual detector plane under
//! wire-level chaos, audited end to end.
//!
//! A three-shard cluster runs with one shard behind a one-way
//! [`chaos_proxy`] partition (requests vanish upstream, so the worker
//! never even hears them — the classic asymmetric black hole). The
//! detector plane's heartbeats starve, φ climbs past the suspicion
//! threshold, and from then on routing skips the dead shard *before*
//! any request has to burn its timeout discovering the partition.
//! Throughout, the [`Auditor`] holds the serve plane to the uniform
//! contract:
//!
//! * **zero wrong answers** — every payload byte-identical to the
//!   direct computation, partition or not;
//! * **exactly-once compute** — the victim never computes (it never
//!   receives), each scenario is computed on exactly one replica, and
//!   any hedges fired along the way added no duplicate work
//!   (`hedges_never_double_compute`);
//! * **suspicion-triggered failover** — [`SuspicionStats`] shows the
//!   suspect raised before the audited campaign starts and proactive
//!   failovers serving the victim's keys during it;
//! * **readmission** — once the shard heals, heartbeats resume, it
//!   passes probation, returns to rotation, and serves byte-identical
//!   answers itself.

use ktudc::core::harness::{run_cell, CellSpec, FdChoice, ProtocolChoice};
use ktudc_serve::{
    chaos_proxy, serve, Auditor, Client, ClusterClient, DetectorConfig, HashRing, Membership,
    RequestKind, ResponseKind, RetryPolicy, RouterConfig, ServeConfig, ServerHandle, Toxic,
    ToxicPlan,
};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 0x0b5e_55ed;
const SCENARIOS: usize = 8;

fn worker() -> (ServerHandle, SocketAddr) {
    let handle = serve(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 32,
        cache_capacity: 256,
        watchdog_tick_ms: 5,
        idle_timeout_ms: 60_000,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.addr();
    (handle, addr)
}

/// A cheap, always-valid cell, distinct per `i`.
fn scenario(i: usize) -> CellSpec {
    CellSpec::new(3, 1, None, FdChoice::None, ProtocolChoice::Reliable)
        .trials(2)
        .horizon(300 + (i as u64) * 10)
}

/// Tight per-leg budget so a leg that does touch the partitioned shard
/// is bounded by one short exchange deadline, not a retry ladder.
fn tight_policy() -> RetryPolicy {
    RetryPolicy {
        request_timeout: Duration::from_millis(150),
        max_retries: 0,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(2),
        ..RetryPolicy::default()
    }
}

/// The soak's plane tuning: the fast test cadence, with the hedge band
/// raised to φ ≥ 2 (a ~115ms silence on a learned 25ms cadence). A
/// scheduler hiccup on a *healthy* shard must not fire a hedge into a
/// cold replica — that would compute the scenario a second time and
/// fail the exactly-once audit — while the victim's φ still crosses the
/// band on its way to suspicion, so hedging is exercised where it is
/// provably duplicate-free (the partitioned primary never computes).
fn soak_detector() -> DetectorConfig {
    DetectorConfig {
        hedge_threshold: 2.0,
        ..DetectorConfig::fast()
    }
}

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let until = Instant::now() + deadline;
    while Instant::now() < until {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

#[test]
fn suspicion_drives_failover_hedging_and_readmission_under_partition() {
    let servers: Vec<(ServerHandle, SocketAddr)> = (0..3).map(|_| worker()).collect();
    // The victim is whichever shard owns scenario 0, so the partition is
    // guaranteed to sit on a routed path.
    let ring = HashRing::new(3);
    let victim = ring.shard_for(ClusterClient::shard_key(&RequestKind::Cell(scenario(0))));
    // One-way partition from the first frame: the victim's worker never
    // receives a byte (requests and heartbeats alike); its responses
    // direction is irrelevant since nothing ever reaches it.
    let mut proxy = chaos_proxy(
        servers[victim].1.to_string(),
        ToxicPlan::none().upstream(Toxic::Partition {
            start: 0,
            until: None,
        }),
        SEED,
    )
    .expect("proxy binds");
    let addrs: Vec<String> = (0..3)
        .map(|s| {
            if s == victim {
                proxy.addr().to_string()
            } else {
                servers[s].1.to_string()
            }
        })
        .collect();
    let membership = Arc::new(Membership::new(addrs));
    let cluster =
        ClusterClient::new(Arc::clone(&membership), tight_policy()).with_detector(soak_detector());
    let plane = Arc::clone(cluster.detector().expect("plane attached"));

    let audit = Auditor::new().with_latency_bound_ms(10_000);
    let kinds: Vec<RequestKind> = (0..SCENARIOS)
        .map(|i| RequestKind::Cell(scenario(i)))
        .collect();
    for kind in &kinds {
        let RequestKind::Cell(spec) = kind else {
            unreachable!()
        };
        audit.expect(kind, &ResponseKind::Cell(run_cell(spec)));
    }
    let victim_owned: Vec<&RequestKind> = kinds
        .iter()
        .filter(|k| cluster.route(k) == victim)
        .collect();
    assert!(
        !victim_owned.is_empty(),
        "the victim must own at least scenario 0"
    );

    // Phase 1 — the φ climb. Requests flow while the plane is still
    // learning the victim is gone: the early ones pay the reactive
    // timeout, the soft-band ones get hedged to the next replica, and
    // every answer must already be byte-perfect. The loop runs until the
    // suspicion threshold trips.
    let suspected = |plane: &ktudc_serve::DetectorPlane| plane.suspicion(victim).suspected;
    let climb_deadline = Instant::now() + Duration::from_secs(20);
    while !suspected(&plane) {
        assert!(
            Instant::now() < climb_deadline,
            "victim was never suspected: {:?}",
            plane.stats()
        );
        for kind in &kinds {
            let started = Instant::now();
            match cluster.request_with_options((*kind).clone(), Default::default()) {
                Ok(resp) => audit.record_response(kind, &resp, started.elapsed()),
                Err(e) => audit.record_client_error(kind, &e, started.elapsed()),
            }
            if suspected(&plane) {
                break;
            }
        }
    }
    let at_suspicion = plane.stats();
    assert!(
        at_suspicion.suspects_raised >= 1,
        "suspicion must be raised by the plane, not inferred: {at_suspicion:?}"
    );
    assert!(at_suspicion.probes_sent > 0 && at_suspicion.probe_failures > 0);

    // Phase 2 — the audited campaign under active suspicion. Proactive
    // failover routes the victim's keys straight to replicas: every
    // request succeeds, well inside the client deadline, with the
    // failovers showing up in SuspicionStats as suspicion-triggered
    // (proactive), not timeout-triggered.
    let proactive_before = plane.stats().proactive_failovers;
    for kind in &kinds {
        let started = Instant::now();
        let resp = cluster
            .request_with_options((*kind).clone(), Default::default())
            .expect("an audited request under suspicion must not fail");
        assert_ne!(
            resp.shard,
            Some(victim),
            "a suspected shard must not answer"
        );
        audit.record_response(kind, &resp, started.elapsed());
    }
    let after_campaign = plane.stats();
    assert!(
        after_campaign.proactive_failovers >= proactive_before + victim_owned.len() as u64,
        "every victim-owned key must fail over proactively: {after_campaign:?}"
    );

    // Exactly-once, summed across the fleet: the victim computed nothing
    // (it never received a request), each scenario landed exactly once
    // on some replica, and the hedges fired during the soft band bought
    // races, not duplicate work.
    let mut computed = 0u64;
    let mut stuck = 0u64;
    for (_, addr) in &servers {
        let mut probe = Client::connect(*addr).expect("direct probe");
        let health = probe.health().expect("health");
        computed += health.cache_entries as u64;
        stuck += health.stuck_workers;
    }
    audit.note_computed(computed);
    audit.note_stuck_connections(stuck);
    audit.note_hedges(after_campaign.hedges_fired);
    let report = audit.report();
    assert!(report.passed, "uniform invariants violated: {report:?}");
    assert_eq!(report.exactly_once, Some(true), "{report:?}");
    assert_eq!(report.hedges_never_double_compute, Some(true), "{report:?}");
    assert_eq!(report.wrong_answers, 0);

    // Phase 3 — readmission. The partition "heals" the way a fleet heals
    // it: the shard re-announces a reachable address. Heartbeats resume,
    // suspicion clears into probation, the probation window passes
    // quietly, and the shard is back in rotation serving byte-identical
    // answers itself.
    membership.set_addr(victim, servers[victim].1.to_string());
    assert!(
        wait_until(Duration::from_secs(20), || {
            let s = plane.suspicion(victim);
            !s.suspected && !s.probation
        }),
        "healed shard was never readmitted: {:?}",
        plane.suspicion(victim)
    );
    assert!(plane.stats().suspects_cleared >= 1);
    // Every answer stays byte-identical through the handover, and the
    // victim *eventually* answers its own keys again. ("Eventually"
    // because a residual soft-band hedge can legitimately let a warm
    // replica cache win one more race — correct either way, the ledger
    // checks the bytes regardless of who served them.)
    for kind in &victim_owned {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let started = Instant::now();
            let resp = cluster
                .request_with_options((*kind).clone(), Default::default())
                .expect("readmitted cluster must serve");
            audit.record_response(kind, &resp, started.elapsed());
            if resp.shard == Some(victim) {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "victim never resumed ownership of its keys: {:?}",
                plane.suspicion(victim)
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    // The readmitted shard's answers went through the same ledger:
    // still zero wrong answers, byte for byte.
    let report = audit.report();
    assert_eq!(report.wrong_answers, 0, "{report:?}");
    assert!(report.zero_wrong_answers);

    proxy.shutdown();
    for (handle, _) in servers {
        handle.shutdown();
        handle.join();
    }
}

#[test]
fn router_detector_demotes_a_partitioned_shard_and_reports_suspicion() {
    use ktudc_serve::serve_router;

    let servers: Vec<(ServerHandle, SocketAddr)> = (0..2).map(|_| worker()).collect();
    let ring = HashRing::new(2);
    let victim = ring.shard_for(ClusterClient::shard_key(&RequestKind::Cell(scenario(0))));
    let mut proxy = chaos_proxy(
        servers[victim].1.to_string(),
        ToxicPlan::none().upstream(Toxic::Partition {
            start: 0,
            until: None,
        }),
        SEED,
    )
    .expect("proxy binds");
    let addrs: Vec<String> = (0..2)
        .map(|s| {
            if s == victim {
                proxy.addr().to_string()
            } else {
                servers[s].1.to_string()
            }
        })
        .collect();
    let router = serve_router(
        &RouterConfig {
            policy: tight_policy(),
            workers: 4,
            detector: Some(soak_detector()),
            ..RouterConfig::default()
        },
        Arc::new(Membership::new(addrs)),
    )
    .expect("router");

    assert!(
        wait_until(Duration::from_secs(20), || {
            router
                .suspicion_stats()
                .is_some_and(|s| s.suspects_raised >= 1)
        }),
        "the router's plane must suspect the partitioned shard: {:?}",
        router.suspicion_stats()
    );

    // Under suspicion, the victim's keys are answered by the replica
    // without failing, and the forward was proactive.
    let mut client = Client::connect(router.addr()).expect("connect");
    let before = router
        .suspicion_stats()
        .expect("plane on")
        .proactive_failovers;
    for i in 0..SCENARIOS {
        let spec = scenario(i);
        let truth = run_cell(&spec);
        let resp = client
            .request(RequestKind::Cell(spec))
            .expect("routed around the partition");
        assert_ne!(resp.shard, Some(victim), "suspected shard must be demoted");
        assert_eq!(resp.result, ResponseKind::Cell(truth), "scenario {i}");
    }
    let stats = router.suspicion_stats().expect("plane on");
    assert!(
        stats.proactive_failovers > before,
        "victim-owned keys must demote proactively: {stats:?}"
    );
    assert!(router.failovers() > 0);

    // The suspicion plane is visible over the wire: Stats carries the
    // counters, ClusterHealth carries per-shard φ and the suspect flag.
    let wire_stats = client.stats().expect("stats");
    let suspicion = wire_stats.suspicion.expect("router stats carry suspicion");
    assert!(suspicion.suspects_raised >= 1);
    assert!(suspicion.probes_sent > 0);
    let health = client.cluster_health().expect("cluster health");
    assert_eq!(health.suspected_shards, 1, "{health:?}");
    assert!(health.shards[victim].suspected);
    assert!(health.shards[victim].phi.is_some());
    let other = 1 - victim;
    assert!(!health.shards[other].suspected);

    drop(client);
    router.shutdown();
    router.join();
    proxy.shutdown();
    for (handle, _) in servers {
        handle.shutdown();
        handle.join();
    }
}
