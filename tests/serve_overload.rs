//! Overload soak of the `ktudc-serve` daemon: a deliberately tiny server
//! (one worker, short queue, adaptive admission armed) is saturated from
//! several connections at once, with a mix of plain, deadline-carrying,
//! and partial-accepting requests.
//!
//! The degradation contract under test:
//!
//! * **No hangs, no silent drops** — every submitted request resolves to
//!   a successful payload, a typed [`ErrorCode::Overloaded`] or
//!   [`ErrorCode::DeadlineExceeded`] shed, or a typed
//!   [`ResponseKind::Aborted`] partial. Nothing else, ever.
//! * **Typed sheds are accounted** — the server's shed counters equal
//!   the sheds clients observed (no retry layer in this test, so the
//!   counts must match exactly).
//! * **Admitted work stays fast** — the p99 of admitted requests stays
//!   within a small factor of the uncontended p99 (with an absolute
//!   floor so scheduler noise on tiny boxes cannot flake the build).
//! * **Nothing wedges** — after the storm the watchdog reports zero
//!   stuck workers and the queue drains to empty.

use ktudc::core::harness::{CellSpec, FdChoice, ProtocolChoice};
use ktudc::model::AbortReason;
use ktudc::sim::{run_explore_spec, ExploreSpec, WireProtocol};
use ktudc_serve::{
    serve, Client, ErrorCode, RequestKind, RequestOptions, Response, ResponseKind, ServeConfig,
};
use std::net::SocketAddr;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// One worker and a short queue: saturation is reached with a handful of
/// clients, and the AIMD controller plus deadline estimator do the
/// shedding instead of an unbounded backlog.
fn overload_server() -> (ktudc_serve::ServerHandle, SocketAddr) {
    let handle = serve(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_capacity: 4,
        cache_capacity: 256,
        target_p99_ms: 50,
        watchdog_tick_ms: 5,
        stuck_after_ticks: 400,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.addr();
    (handle, addr)
}

/// A cheap cell, distinct per `i` so the cache cannot absorb the load.
fn cell(i: usize) -> CellSpec {
    CellSpec::new(3, 1, None, FdChoice::None, ProtocolChoice::Reliable)
        .trials(2)
        .horizon(100 + (i as u64))
}

/// An exploration demonstrably too large for the millisecond-scale
/// deadlines below: the horizon is grown (once, then memoized) until the
/// *uninterrupted* walk takes ≥ 50 ms on this machine, so a 2 ms budget
/// is guaranteed to trip whatever the host's speed.
fn big_exploration() -> ExploreSpec {
    static SPEC: OnceLock<ExploreSpec> = OnceLock::new();
    SPEC.get_or_init(|| {
        for horizon in 6..=30 {
            let mut spec = ExploreSpec::new(3, horizon);
            spec.protocol = WireProtocol::OneShot {
                from: 0,
                to: 1,
                msg: 7,
            };
            let started = Instant::now();
            run_explore_spec(&spec).expect("valid spec");
            if started.elapsed() >= Duration::from_millis(50) {
                return spec;
            }
        }
        panic!("no horizon produced a 50ms exploration");
    })
    .clone()
}

/// Polls `health` until queued and in-flight work drain (workers finish
/// strictly after their response line is written, so a client that has
/// every response can still observe the last job as in flight).
fn await_drained(client: &mut Client) -> ktudc_serve::HealthReport {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let health = client.health().expect("health");
        if (health.in_flight == 0 && health.queue_depth == 0) || Instant::now() >= deadline {
            return health;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Classifies a response under the degradation contract; panics on
/// anything outside it. Returns the shed code observed, if any.
fn classify(response: &Response) -> Option<ErrorCode> {
    match &response.result {
        ResponseKind::Cell(_) | ResponseKind::Explore(_) | ResponseKind::Check(_) => None,
        ResponseKind::Aborted(aborted) => {
            assert_eq!(
                aborted.reason,
                AbortReason::Deadline,
                "the only budgets armed in this test are deadlines"
            );
            None
        }
        ResponseKind::Error(e) => match e.code {
            ErrorCode::Overloaded | ErrorCode::DeadlineExceeded => {
                assert!(
                    e.retry_after_ms > 0,
                    "a shed must carry a retry hint: {e:?}"
                );
                Some(e.code)
            }
            other => panic!("untyped degradation: {other:?}: {}", e.message),
        },
        other => panic!("unexpected payload under overload: {other:?}"),
    }
}

fn p99(mut micros: Vec<u64>) -> u64 {
    assert!(!micros.is_empty());
    micros.sort_unstable();
    micros[(micros.len() - 1) * 99 / 100]
}

#[test]
fn saturation_sheds_typed_and_admitted_requests_stay_fast() {
    let (handle, addr) = overload_server();

    // Uncontended baseline: distinct cells, one at a time.
    let mut probe = Client::connect(addr).expect("connect");
    let uncontended: Vec<u64> = (0..8)
        .map(|i| {
            probe
                .request(RequestKind::Cell(cell(1000 + i)))
                .expect("uncontended request")
                .micros
        })
        .collect();
    let uncontended_p99 = p99(uncontended);

    // The storm: parallel connections, each pipelining a batch that
    // mixes plain requests, tight deadlines, and partial acceptance.
    const THREADS: usize = 4;
    const PER_THREAD: usize = 12;
    let stormers: Vec<_> = (0..THREADS)
        .map(|thread| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let kinds: Vec<(RequestKind, RequestOptions)> = (0..PER_THREAD)
                    .map(|i| {
                        let id = thread * PER_THREAD + i;
                        match i % 3 {
                            // Plain v2-style request: may be admitted or
                            // shed Overloaded by the AIMD gate.
                            0 => (RequestKind::Cell(cell(id)), RequestOptions::default()),
                            // Deadline-carrying: may be shed up front,
                            // aborted at the deadline, or completed.
                            1 => (
                                RequestKind::Cell(cell(id)),
                                RequestOptions {
                                    deadline_ms: Some(100),
                                    ..RequestOptions::default()
                                },
                            ),
                            // Hopeless deadline + accept_partial: resolves
                            // as a typed Aborted (or an up-front shed).
                            _ => (
                                RequestKind::Explore(big_exploration()),
                                RequestOptions {
                                    deadline_ms: Some(2),
                                    accept_partial: true,
                                    ..RequestOptions::default()
                                },
                            ),
                        }
                    })
                    .collect();
                let n = kinds.len();
                let responses = client.batch_with_options(kinds).expect("storm batch");
                assert_eq!(responses.len(), n, "a request was lost under overload");
                responses
            })
        })
        .collect();

    let mut admitted_micros = Vec::new();
    let mut observed_overloaded = 0u64;
    let mut observed_deadline = 0u64;
    for stormer in stormers {
        for response in stormer.join().expect("storm thread") {
            match classify(&response) {
                Some(ErrorCode::Overloaded) => observed_overloaded += 1,
                Some(ErrorCode::DeadlineExceeded) => observed_deadline += 1,
                Some(_) => unreachable!("classify only returns shed codes"),
                None => admitted_micros.push(response.micros),
            }
        }
    }

    // Sheds the clients saw are exactly the sheds the server counted.
    let stats = probe.stats().expect("stats");
    assert_eq!(stats.overloaded, observed_overloaded, "{stats:?}");
    assert_eq!(stats.deadline_exceeded, observed_deadline, "{stats:?}");

    // Admission kept the latency of admitted work bounded: within 2× of
    // uncontended p99, with an absolute floor absorbing timer noise and
    // the one-worker queue on slow CI boxes.
    assert!(!admitted_micros.is_empty(), "the storm admitted nothing");
    let admitted_p99 = p99(admitted_micros);
    let bound = (2 * uncontended_p99).max(200_000);
    assert!(
        admitted_p99 <= bound,
        "admitted p99 {admitted_p99}µs exceeds bound {bound}µs (uncontended {uncontended_p99}µs)"
    );

    // The storm is over: nothing is wedged and nothing leaked.
    let health = await_drained(&mut probe);
    assert_eq!(health.stuck_workers, 0, "{health:?}");
    assert_eq!(health.in_flight, 0, "{health:?}");
    assert_eq!(health.queue_depth, 0, "{health:?}");

    handle.shutdown();
    handle.join();
}

#[test]
fn hopeless_deadline_with_accept_partial_is_a_typed_abort() {
    let (handle, addr) = overload_server();
    let mut client = Client::connect(addr).expect("connect");

    // Unloaded server, so the wait estimate admits the request; the
    // in-compute budget then trips at the deadline.
    let response = client
        .batch_with_options(vec![(
            RequestKind::Explore(big_exploration()),
            RequestOptions {
                deadline_ms: Some(2),
                accept_partial: true,
                ..RequestOptions::default()
            },
        )])
        .expect("request")
        .remove(0);
    let ResponseKind::Aborted(aborted) = &response.result else {
        panic!("expected a typed abort, got {:?}", response.result);
    };
    assert_eq!(aborted.reason, AbortReason::Deadline);
    assert!(
        response.compute_ms > 0.0,
        "an aborted compute still reports its timings: {response:?}"
    );
    assert!(!response.cached, "deadline results must never be cached");

    // The same hopeless request without accept_partial is a typed
    // DeadlineExceeded error carrying a retry hint.
    let response = client
        .batch_with_options(vec![(
            RequestKind::Explore(big_exploration()),
            RequestOptions {
                deadline_ms: Some(2),
                ..RequestOptions::default()
            },
        )])
        .expect("request")
        .remove(0);
    let ResponseKind::Error(e) = &response.result else {
        panic!("expected DeadlineExceeded, got {:?}", response.result);
    };
    assert_eq!(e.code, ErrorCode::DeadlineExceeded);
    assert!(e.retry_after_ms > 0);

    // And the abort never poisoned the cache: a fresh unbounded request
    // for the same exploration computes the full answer.
    let full = client
        .request(RequestKind::Explore({
            let mut spec = big_exploration();
            spec.max_runs = 50; // keep the unbounded pass cheap
            spec
        }))
        .expect("full request");
    assert!(matches!(full.result, ResponseKind::Explore(_)));

    handle.shutdown();
    handle.join();
}
