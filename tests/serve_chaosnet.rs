//! Wire-level chaos campaign: the `ktudc-serve` daemon behind a
//! [`chaos_proxy`], hammered through every toxic regime while an
//! [`Auditor`] checks the uniform invariants end to end.
//!
//! Where `tests/serve_chaos.rs` injects faults at the server's
//! response-writing boundary (`ServerFaults`), this soak injects them
//! on the TCP wire itself — corrupted bytes, torn frames, resets,
//! half-open stalls, one-way partitions — which is the plane a real
//! deployment degrades on. The contract under test, per regime:
//!
//! * **Zero wrong answers** — every payload is byte-identical to the
//!   direct library computation, however many resends it took.
//! * **Typed-error-only degradation** — anything that does fail fails
//!   as a typed wire or client error; no hangs, no panics, no silently
//!   truncated result is ever accepted.
//! * **Exactly-once compute** — after the storm the scenario cache
//!   holds exactly one outcome per distinct scenario, and a clean
//!   second pass is served entirely from cache.
//! * **Nothing wedges** — zero stuck workers, queue drained, and every
//!   outcome resolved inside a hard latency bound.
//!
//! The satellite hardening is exercised directly: half-open peers are
//! reaped by the idle deadline, oversized lines are refused with a
//! typed `BadRequest`, and the `HardenedClient`'s salvage machinery
//! (reconnect-and-resend, retry budget, circuit breaker) is asserted
//! through the proxy rather than through `ServerFaults`.

use ktudc::core::harness::{run_cell, CellSpec, FdChoice, ProtocolChoice};
use ktudc::sim::{run_explore_spec, ExploreSpec, WireProtocol};
use ktudc_serve::{
    chaos_proxy, serve, AuditReport, Auditor, ChaosStatsSnapshot, Client, ClientError, ErrorCode,
    HardenedClient, Request, RequestKind, Response, ResponseKind, RetryPolicy, ServeConfig,
    ServerHandle, Toxic, ToxicPlan, MAX_REQUEST_LINE_BYTES,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// One fixed seed for every proxy in the file: the chaos schedule is a
/// pure function of (seed, per-direction frame index), so reruns see
/// the same faults at the same frames.
const SEED: u64 = 0x5eed_cab1;

/// Scenarios per campaign regime.
const SCENARIOS: usize = 8;

fn chaos_server(idle_timeout_ms: u64) -> (ServerHandle, SocketAddr) {
    let handle = serve(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 32,
        cache_capacity: 256,
        watchdog_tick_ms: 5,
        idle_timeout_ms,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.addr();
    (handle, addr)
}

/// A cheap, always-valid cell, distinct per `i`.
fn scenario(i: usize) -> CellSpec {
    CellSpec::new(3, 1, None, FdChoice::None, ProtocolChoice::Reliable)
        .trials(2)
        .horizon(200 + (i as u64) * 10)
}

/// Retry policy tuned for a chaotic wire: short per-exchange deadline
/// (so a stalled or partitioned read fails over in under a second), a
/// real retry budget, tiny backoffs.
fn chaos_policy() -> RetryPolicy {
    RetryPolicy {
        request_timeout: Duration::from_millis(800),
        max_retries: 5,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(20),
        ..RetryPolicy::default()
    }
}

/// Runs one toxic regime: fresh server, fresh proxy with `plan`, one
/// `HardenedClient` pushing all scenarios through the proxy, the
/// auditor fed ground truth from direct library calls and post-campaign
/// server state from an unproxied probe. Returns the audit verdicts and
/// the proxy's injection counters.
fn run_regime(plan: ToxicPlan) -> (AuditReport, ChaosStatsSnapshot) {
    let (handle, server_addr) = chaos_server(60_000);
    let mut proxy = chaos_proxy(server_addr.to_string(), plan, SEED).expect("proxy binds");
    let audit = Auditor::new().with_latency_bound_ms(20_000);
    for i in 0..SCENARIOS {
        let spec = scenario(i);
        let truth = run_cell(&spec);
        audit.expect(&RequestKind::Cell(spec), &ResponseKind::Cell(truth));
    }

    let mut client = HardenedClient::new(proxy.addr().to_string(), chaos_policy());
    for i in 0..SCENARIOS {
        let kind = RequestKind::Cell(scenario(i));
        let started = Instant::now();
        match client.request(kind.clone()) {
            Ok(response) => audit.record_response(&kind, &response, started.elapsed()),
            Err(e) => audit.record_client_error(&kind, &e, started.elapsed()),
        }
    }

    // Resend storm epilogue, bypassing the proxy: every scenario again,
    // answered from cache — the storm's resends never caused a second
    // computation.
    let mut probe = Client::connect(server_addr).expect("direct connect");
    for i in 0..SCENARIOS {
        let kind = RequestKind::Cell(scenario(i));
        let started = Instant::now();
        let response = probe.request(kind.clone()).expect("direct request");
        assert!(
            response.cached,
            "scenario {i} was not in cache after the storm: {response:?}"
        );
        audit.record_response(&kind, &response, started.elapsed());
    }
    let health = probe.health().expect("health");
    audit.note_stuck_connections(health.stuck_workers);
    audit.note_computed(health.cache_entries as u64);

    let report = audit.report();
    let stats = proxy.stats();
    proxy.shutdown();
    handle.shutdown();
    handle.join();
    (report, stats)
}

#[test]
fn campaign_survives_every_toxic_regime() {
    // (name, plan, whether the proxy must actually have injected).
    let regimes: Vec<(&str, ToxicPlan, bool)> = vec![
        ("baseline", ToxicPlan::none(), false),
        (
            "delay_spikes",
            ToxicPlan::none().downstream(Toxic::DelaySpike {
                period: 4,
                width: 1,
                extra: Duration::from_millis(30),
            }),
            true,
        ),
        (
            "throttle",
            ToxicPlan::none().downstream(Toxic::Throttle {
                chunk: 7,
                pause: Duration::from_millis(1),
            }),
            true,
        ),
        (
            "truncate",
            ToxicPlan::none().downstream(Toxic::TruncateEvery(5)),
            true,
        ),
        (
            "corrupt",
            ToxicPlan::none().downstream(Toxic::CorruptEvery(5)),
            true,
        ),
        (
            "reset",
            ToxicPlan::none().downstream(Toxic::ResetEvery(6)),
            true,
        ),
        (
            "stall_half_open",
            ToxicPlan::none().downstream(Toxic::StallEvery(6)),
            true,
        ),
        (
            "partition_one_way",
            // Requests 3..6 vanish upstream while responses still flow:
            // an asymmetric partition that heals.
            ToxicPlan::none().upstream(Toxic::Partition {
                start: 3,
                until: Some(6),
            }),
            true,
        ),
    ];
    assert!(regimes.len() >= 7, "the soak must cover >= 6 toxic regimes");

    for (name, plan, expect_injections) in regimes {
        let (report, stats) = run_regime(plan);
        assert!(
            report.passed,
            "regime {name} violated the uniform invariants: {report:?} (proxy {stats:?})"
        );
        assert_eq!(report.wrong_answers, 0, "regime {name}");
        assert_eq!(report.untyped_failures, 0, "regime {name}");
        assert_eq!(report.stuck_connections, 0, "regime {name}");
        assert_eq!(report.exactly_once, Some(true), "regime {name}");
        // Every scenario was answered correctly in the end: the storm
        // pass may have burned typed failures, but the payload count
        // covers both passes and the second pass is all payloads.
        assert!(
            report.payloads >= 2 * SCENARIOS as u64,
            "regime {name} lost answers: {report:?}"
        );
        if expect_injections {
            assert!(
                stats.injections() > 0,
                "regime {name} never actually injected: {stats:?}"
            );
        } else {
            assert_eq!(
                stats.injections(),
                0,
                "the empty plan must not perturb anything: {stats:?}"
            );
            assert_eq!(stats.first_injection, None);
        }
    }
}

/// Writes `line` and reads one newline-terminated reply off a raw
/// socket.
fn raw_exchange(reader: &mut BufReader<TcpStream>, line: &str) -> String {
    let mut out = String::new();
    reader
        .get_mut()
        .write_all(format!("{line}\n").as_bytes())
        .expect("raw write");
    reader.read_line(&mut out).expect("raw read");
    out
}

/// The injection *schedule* is deterministic under a fixed seed: two
/// fresh server+proxy runs over the same single-connection request
/// sequence corrupt exactly the same downstream frames. (Byte-level
/// determinism is pinned by the unit tests in `serve::chaosnet`; here
/// the payloads carry live timings, so the assertion is on which frames
/// the schedule hit.)
#[test]
fn corruption_schedule_is_deterministic_across_runs() {
    let run = || -> Vec<usize> {
        let (handle, server_addr) = chaos_server(60_000);
        let mut proxy = chaos_proxy(
            server_addr.to_string(),
            ToxicPlan::none().downstream(Toxic::CorruptEvery(3)),
            SEED,
        )
        .expect("proxy binds");
        let stream = TcpStream::connect(proxy.addr()).expect("connect via proxy");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let mut reader = BufReader::new(stream);
        let mut corrupted_at = Vec::new();
        for i in 0..9 {
            let request = Request::new(i as u64, RequestKind::Cell(scenario(i)));
            let line = serde_json::to_string(&request).expect("encode");
            let reply = raw_exchange(&mut reader, &line);
            if serde_json::from_str::<Response>(reply.trim_end()).is_err() {
                corrupted_at.push(i);
            }
        }
        proxy.shutdown();
        handle.shutdown();
        handle.join();
        corrupted_at
    };
    let first = run();
    let second = run();
    // CorruptEvery(3) fires on downstream frames 2, 5, 8 — the same
    // request indices here, since this connection is strictly
    // request/response.
    assert_eq!(first, vec![2, 5, 8]);
    assert_eq!(first, second, "same seed, same sequence, same schedule");
}

#[test]
fn half_open_connections_are_reaped_by_the_idle_deadline() {
    let (handle, server_addr) = chaos_server(50);
    let mut stream = TcpStream::connect(server_addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    // Half a frame, then silence: the peer goes half-open.
    stream
        .write_all(br#"{"schema_version":5,"id":1,"#)
        .expect("partial write");
    let mut buf = [0u8; 64];
    let n = stream
        .read(&mut buf)
        .expect("the server must close, not hang");
    assert_eq!(n, 0, "expected EOF from the idle reap, got {n} bytes");

    // The reap freed the thread and the server still serves.
    let mut probe = Client::connect(server_addr).expect("fresh connect");
    let stats = probe.stats().expect("stats");
    assert!(
        stats.idle_reaped >= 1,
        "the reap must be counted: {stats:?}"
    );
    handle.shutdown();
    handle.join();
}

#[test]
fn oversized_lines_get_a_typed_bad_request_and_a_close() {
    let (handle, server_addr) = chaos_server(60_000);
    let stream = TcpStream::connect(server_addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut reader = BufReader::new(stream);
    // A newline-less firehose one byte past the cap (exactly one byte,
    // so the server consumes the whole blob before replying and the
    // close is a clean FIN, not an unread-data RST).
    let blob = vec![b'a'; MAX_REQUEST_LINE_BYTES + 1];
    reader.get_mut().write_all(&blob).expect("oversized write");
    let mut reply = String::new();
    reader
        .read_line(&mut reply)
        .expect("typed reply, not a hang");
    let response: Response = serde_json::from_str(reply.trim_end()).expect("parses as a response");
    let ResponseKind::Error(e) = &response.result else {
        panic!("expected a typed error, got {response:?}");
    };
    assert_eq!(e.code, ErrorCode::BadRequest);
    // And then a clean close.
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).expect("eof"), 0);

    let mut probe = Client::connect(server_addr).expect("fresh connect");
    let stats = probe.stats().expect("stats");
    assert!(stats.oversized_rejected >= 1, "{stats:?}");
    handle.shutdown();
    handle.join();
}

#[test]
fn malformed_lines_get_a_typed_bad_request_and_the_connection_survives() {
    let (handle, server_addr) = chaos_server(60_000);
    let stream = TcpStream::connect(server_addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut reader = BufReader::new(stream);
    for garbage in ["not json", "{\"half\":", "\u{1F980} raw unicode"] {
        let reply = raw_exchange(&mut reader, garbage);
        let response: Response =
            serde_json::from_str(reply.trim_end()).expect("typed reply to garbage");
        assert_eq!(response.id, 0, "no recoverable id on a malformed line");
        let ResponseKind::Error(e) = &response.result else {
            panic!("expected BadRequest, got {response:?}");
        };
        assert_eq!(e.code, ErrorCode::BadRequest);
    }
    // The connection is still usable for a well-formed request.
    let request = Request::new(7, RequestKind::Cell(scenario(0)));
    let reply = raw_exchange(
        &mut reader,
        &serde_json::to_string(&request).expect("encode"),
    );
    let response: Response = serde_json::from_str(reply.trim_end()).expect("real reply");
    assert_eq!(response.id, 7);
    assert!(matches!(response.result, ResponseKind::Cell(_)));

    let mut probe = Client::connect(server_addr).expect("fresh connect");
    let stats = probe.stats().expect("stats");
    assert!(stats.malformed_lines >= 3, "{stats:?}");
    handle.shutdown();
    handle.join();
}

#[test]
fn mid_response_resets_are_salvaged_by_reconnect_and_resend() {
    let (handle, server_addr) = chaos_server(60_000);
    let mut proxy = chaos_proxy(
        server_addr.to_string(),
        ToxicPlan::none().downstream(Toxic::ResetEvery(3)),
        SEED,
    )
    .expect("proxy binds");
    let mut client = HardenedClient::new(proxy.addr().to_string(), chaos_policy());
    for i in 0..SCENARIOS {
        let spec = scenario(i);
        let truth = run_cell(&spec);
        let response = client
            .request(RequestKind::Cell(spec))
            .expect("salvaged through resets");
        assert_eq!(response.result, ResponseKind::Cell(truth), "scenario {i}");
    }
    let metrics = client.metrics();
    assert!(
        metrics.reconnects >= 1,
        "resets must have forced reconnects: {metrics:?}"
    );
    let stats = proxy.stats();
    assert!(stats.resets >= 1, "{stats:?}");
    proxy.shutdown();
    handle.shutdown();
    handle.join();
}

#[test]
fn short_write_truncation_is_salvaged_by_reconnect_and_resend() {
    let (handle, server_addr) = chaos_server(60_000);
    let mut proxy = chaos_proxy(
        server_addr.to_string(),
        ToxicPlan::none().downstream(Toxic::TruncateEvery(3)),
        SEED,
    )
    .expect("proxy binds");
    let mut client = HardenedClient::new(proxy.addr().to_string(), chaos_policy());
    for i in 0..SCENARIOS {
        let spec = scenario(i);
        let truth = run_cell(&spec);
        let response = client
            .request(RequestKind::Cell(spec))
            .expect("salvaged through torn frames");
        assert_eq!(response.result, ResponseKind::Cell(truth), "scenario {i}");
    }
    let metrics = client.metrics();
    assert!(
        metrics.reconnects >= 1,
        "torn frames must have forced reconnects: {metrics:?}"
    );
    let stats = proxy.stats();
    assert!(stats.truncated >= 1, "{stats:?}");
    proxy.shutdown();
    handle.shutdown();
    handle.join();
}

#[test]
fn a_permanent_partition_exhausts_the_retry_budget_with_a_typed_error() {
    let (handle, server_addr) = chaos_server(60_000);
    // Every response vanishes; requests still arrive and compute.
    let mut proxy = chaos_proxy(
        server_addr.to_string(),
        ToxicPlan::none().downstream(Toxic::Partition {
            start: 0,
            until: None,
        }),
        SEED,
    )
    .expect("proxy binds");
    let mut client = HardenedClient::new(
        proxy.addr().to_string(),
        RetryPolicy {
            request_timeout: Duration::from_millis(100),
            max_retries: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            ..RetryPolicy::default()
        },
    );
    let started = Instant::now();
    let err = client
        .request(RequestKind::Cell(scenario(0)))
        .expect_err("a black-holed response cannot succeed");
    let ClientError::RetriesExhausted { attempts, .. } = err else {
        panic!("expected RetriesExhausted, got {err:?}");
    };
    assert_eq!(attempts, 3, "initial attempt + 2 retries");
    // Bounded detection: 3 attempts x 100 ms deadline + tiny backoffs.
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "the retry budget must bound the failure, took {:?}",
        started.elapsed()
    );
    let stats = proxy.stats();
    assert!(stats.partition_dropped >= 3, "{stats:?}");
    proxy.shutdown();
    handle.shutdown();
    handle.join();
}

/// An exploration demonstrably slow (grown once until the walk takes
/// at least 200 ms), used to wedge a one-worker server so every
/// concurrent request is shed `Overloaded`.
fn slow_exploration() -> ExploreSpec {
    static SPEC: OnceLock<ExploreSpec> = OnceLock::new();
    SPEC.get_or_init(|| {
        for horizon in 6..=30 {
            let mut spec = ExploreSpec::new(3, horizon);
            spec.protocol = WireProtocol::OneShot {
                from: 0,
                to: 1,
                msg: 7,
            };
            let started = Instant::now();
            run_explore_spec(&spec).expect("valid spec");
            if started.elapsed() >= Duration::from_millis(200) {
                return spec;
            }
        }
        panic!("no horizon produced a 200ms exploration");
    })
    .clone()
}

#[test]
fn the_circuit_breaker_opens_at_threshold_through_the_proxy() {
    // One worker, one queue slot: two slow explorations saturate it and
    // every further request is shed with a typed `Overloaded`.
    let handle = serve(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_capacity: 1,
        cache_capacity: 256,
        watchdog_tick_ms: 5,
        stuck_after_ticks: 400,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let server_addr = handle.addr();
    // Wedge the server: two distinct slow jobs written raw, never read.
    // The submissions are staggered — the pool double-counts a job for
    // an instant between submit and worker pickup (queued *and* in
    // flight), so firing both back to back can shed the second at the
    // admission gate and leave the server half-wedged. Health is
    // answered inline, so probing never costs a pool slot.
    let mut probe = Client::connect(server_addr).expect("probe connect");
    let saturated = |probe: &mut Client, want: usize| {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let health = probe.health().expect("health probe");
            if health.in_flight >= want.min(1) && health.in_flight + health.queue_depth >= want {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "server never reached {want} jobs"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    };
    let mut wedges = Vec::new();
    for (id, max_runs) in [(1u64, 0usize), (2, 1_000_000)] {
        let mut spec = slow_exploration();
        if max_runs > 0 {
            spec.max_runs = max_runs; // distinct body, same cost
        }
        let mut conn = TcpStream::connect(server_addr).expect("wedge connect");
        let line =
            serde_json::to_string(&Request::new(id, RequestKind::Explore(spec))).expect("encode");
        conn.write_all(format!("{line}\n").as_bytes())
            .expect("wedge write");
        wedges.push(conn); // keep the sockets open while the jobs run
        saturated(&mut probe, wedges.len());
    }

    let mut proxy = chaos_proxy(server_addr.to_string(), ToxicPlan::none(), SEED).expect("proxy");
    let mut client = HardenedClient::new(
        proxy.addr().to_string(),
        RetryPolicy {
            request_timeout: Duration::from_millis(500),
            max_retries: 1,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            circuit_threshold: 3,
            circuit_cooldown: Duration::from_secs(30),
            ..RetryPolicy::default()
        },
    );
    // Call 1: shed, retried once, shed again -> RetriesExhausted, and
    // the breaker has counted 2 consecutive sheds.
    let err = client
        .request(RequestKind::Cell(scenario(100)))
        .expect_err("a saturated server sheds");
    assert!(
        matches!(err, ClientError::RetriesExhausted { attempts: 2, .. }),
        "got {err:?}"
    );
    // Call 2: the 3rd consecutive shed trips the breaker mid-call.
    let err = client
        .request(RequestKind::Cell(scenario(101)))
        .expect_err("the breaker opens at threshold");
    assert!(
        matches!(err, ClientError::CircuitOpen { .. }),
        "got {err:?}"
    );
    // Call 3: fails fast while open, without touching the wire.
    let frames_before = proxy.stats().frames_forwarded;
    let err = client
        .request(RequestKind::Cell(scenario(102)))
        .expect_err("an open breaker fails fast");
    assert!(
        matches!(err, ClientError::CircuitOpen { .. }),
        "got {err:?}"
    );
    assert_eq!(
        proxy.stats().frames_forwarded,
        frames_before,
        "an open breaker must not send bytes"
    );
    assert_eq!(client.metrics().circuit_opens, 1);

    drop(wedges);
    proxy.shutdown();
    handle.shutdown();
    handle.join();
}

#[test]
fn the_cluster_client_fails_over_around_a_partitioned_shard() {
    use ktudc_serve::{ClusterClient, Membership};
    use std::sync::Arc;

    let (handle_a, addr_a) = chaos_server(60_000);
    let (handle_b, addr_b) = chaos_server(60_000);
    // Shard 0 sits behind a black hole (requests vanish upstream);
    // shard 1 is behind a clean relay.
    let mut proxy_a = chaos_proxy(
        addr_a.to_string(),
        ToxicPlan::none().upstream(Toxic::Partition {
            start: 0,
            until: None,
        }),
        SEED,
    )
    .expect("proxy a");
    let mut proxy_b = chaos_proxy(addr_b.to_string(), ToxicPlan::none(), SEED).expect("proxy b");
    let membership = Arc::new(Membership::new(vec![
        proxy_a.addr().to_string(),
        proxy_b.addr().to_string(),
    ]));
    let client = ClusterClient::new(
        membership,
        RetryPolicy {
            request_timeout: Duration::from_millis(150),
            max_retries: 0,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            ..RetryPolicy::default()
        },
    );
    let mut owned_by_dead_shard = 0usize;
    for i in 0..SCENARIOS {
        let spec = scenario(i);
        let truth = run_cell(&spec);
        let kind = RequestKind::Cell(spec);
        if client.route(&kind) == 0 {
            owned_by_dead_shard += 1;
        }
        let response = client.request(kind).expect("failover must answer");
        assert_eq!(response.result, ResponseKind::Cell(truth), "scenario {i}");
    }
    assert!(
        owned_by_dead_shard >= 1,
        "the ring never routed to the dead shard; grow SCENARIOS"
    );
    let metrics = client.metrics();
    assert!(
        metrics.failovers >= owned_by_dead_shard as u64,
        "every dead-shard request must fail over: {metrics:?}"
    );
    proxy_a.shutdown();
    proxy_b.shutdown();
    handle_a.shutdown();
    handle_a.join();
    handle_b.shutdown();
    handle_b.join();
}
