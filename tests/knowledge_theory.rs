//! Knowledge-theoretic integration tests: the §3 analysis machinery run
//! end-to-end over exhaustively enumerated and sampled systems.

use ktudc::core::protocols::{reliable::ReliableUdc, strong_fd::StrongFdUdc};
use ktudc::core::simulate::{simulate_perfect_fd, simulate_t_useful_fd};
use ktudc::core::spec::{check_udc, dc3_formula};
use ktudc::epistemic::conditions::{check_a1, check_a2, check_a3, check_a4, check_a5};
use ktudc::epistemic::{Formula, ModelChecker};
use ktudc::fd::{check_fd_property, FdProperty, PerfectOracle};
use ktudc::model::{ActionId, Event, ProcSet, ProcessId, SuspectReport, System, Time};
use ktudc::sim::{
    explore, run_protocol, ChannelKind, CrashPlan, ExploreConfig, ProtoAction, Protocol, SimConfig,
    Workload,
};

#[derive(Clone, Debug)]
struct Idle;

impl<M> Protocol<M> for Idle {
    fn start(&mut self, _me: ProcessId, _n: usize) {}
    fn observe(&mut self, _t: Time, _e: &Event<M>) {}
    fn next_action(&mut self, _t: Time) -> Option<ProtoAction<M>> {
        None
    }
    fn quiescent(&self) -> bool {
        true
    }
}

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// The canonical context of the paper's theorems satisfies all five
/// A-conditions on an exhaustively enumerated system.
#[test]
fn a_conditions_hold_in_the_canonical_context() {
    let alpha = ActionId::new(p(0), 0);
    let cfg = ExploreConfig::new(2, 3)
        .max_failures(1)
        .initiate(1, alpha)
        .optional_initiations();
    let sys = explore::<u8, _, _>(&cfg, |_| Idle).system;
    check_a1(&sys).unwrap();
    check_a2(&sys).unwrap();
    check_a5(&sys, 1).unwrap();
    let mut mc = ModelChecker::new(&sys);
    check_a3(&mut mc, alpha).unwrap();
    check_a4(&mut mc, &Formula::initiated(alpha), p(0)).unwrap();
}

/// Proposition 3.4, constructively: in a system satisfying A1 and A5_{n−1}
/// whose detector has weak accuracy, the detector also has strong
/// accuracy. We realize it with the explorer's crashed-set FD rule (which
/// never lies) and verify both accuracies; then we build a weakly- but
/// not strongly-accurate system by hand and confirm it must violate A1.
#[test]
fn proposition_3_4_weak_accuracy_equals_strong_under_a1_a5() {
    fn truthful(p: ProcessId, t: Time, crashed: ProcSet) -> Option<SuspectReport> {
        (!crashed.contains(p) && t == 3).then_some(SuspectReport::Standard(crashed))
    }
    let cfg = ExploreConfig::new(2, 3)
        .max_failures(1)
        .fd(truthful)
        .optional_fd();
    let sys = explore::<u8, _, _>(&cfg, |_| Idle).system;
    check_a1(&sys).unwrap();
    check_a5(&sys, 1).unwrap();
    for run in sys.runs() {
        check_fd_property(run, FdProperty::WeakAccuracy).unwrap();
        check_fd_property(run, FdProperty::StrongAccuracy).unwrap();
    }

    // Contrapositive: a system whose detector is weakly but not strongly
    // accurate. Run A: p0 suspects p1 at tick 1, and p1 indeed crashes at
    // 2 — run A alone is weakly accurate (p0 never suspected) but run B
    // (same suspicion, p1 never crashes) breaks strong accuracy. For weak
    // accuracy to survive in B, p1 must never be... it is suspected, so
    // B's unsuspected correct process is p0 — fine. Now A1 demands that
    // from B's tick-1 point (nobody crashed, suspicion emitted) some run
    // with F = {p1} extends it; there is none whose prefix matches B's
    // (in A the suspicion precedes no-crash states identically, but A
    // crashed p1 at 2 — so give A a *different* p0 history to break the
    // extension). A1 must fail.
    let mut b = ktudc::model::RunBuilder::<u8>::new(2);
    b.append_suspect(p(0), 1, SuspectReport::Standard(ProcSet::singleton(p(1))))
        .unwrap();
    b.append(p(0), 2, Event::Send { to: p(1), msg: 9 }).unwrap();
    b.append(p(1), 3, Event::Crash).unwrap();
    let run_a = b.finish(4);
    let mut b = ktudc::model::RunBuilder::<u8>::new(2);
    b.append_suspect(p(0), 1, SuspectReport::Standard(ProcSet::singleton(p(1))))
        .unwrap();
    let run_b = b.finish(4);
    let sys = System::new(vec![run_a, run_b]);
    for run in sys.runs() {
        check_fd_property(run, FdProperty::WeakAccuracy).unwrap();
    }
    assert!(
        check_fd_property(sys.run(1), FdProperty::StrongAccuracy).is_err(),
        "run B suspects a never-crashing process"
    );
    assert!(check_a1(&sys).is_err(), "Prop 3.4 forces an A1 violation");
}

/// DC3 (nothing performed that was not initiated) is a *safety* property
/// and holds as a validity over the entire explored system of the
/// Proposition 2.4 protocol — every schedule, every failure pattern.
#[test]
fn dc3_is_valid_over_the_explored_reliable_protocol() {
    let alpha = ActionId::new(p(0), 0);
    let cfg = ExploreConfig::new(2, 4)
        .max_failures(1)
        .initiate(1, alpha)
        .optional_initiations()
        .max_runs(100_000);
    let result = explore(&cfg, |_| ReliableUdc::new());
    assert!(result.complete, "exploration truncated; enlarge max_runs");
    let sys = result.system;
    let mut mc = ModelChecker::new(&sys);
    mc.valid(&dc3_formula::<ktudc::core::CoordMsg>(2, alpha))
        .unwrap_or_else(|pt| panic!("DC3 violated at {pt}"));
    // And knowledge-level sanity: only the initiator can know init(α) at
    // tick 1 (no message can have arrived yet).
    let k1 = Formula::knows(p(1), Formula::initiated(alpha));
    for (ri, run) in sys.runs().iter().enumerate() {
        let _ = run;
        assert!(
            !mc.eval(&k1, ktudc::model::Point::new(ri, 1)),
            "p1 cannot know init(α) at tick 1 in run {ri}"
        );
    }
}

/// Proposition 3.5's conclusion, specialized and machine-checked: when a
/// process performed α in a UDC system (with A-style contexts), if any
/// process is correct forever then some correct process knows init(α).
/// We check the run-level consequence on the sampled Theorem 3.6 system:
/// whenever `do_q(α)` occurs and the run has a correct process, some
/// correct process's history contains evidence of α (it received an
/// α-message or initiated α itself).
#[test]
fn proposition_3_5_consequence_on_udc_runs() {
    let w = Workload::periodic(3, 15, 50);
    for seed in 0..5 {
        let config = SimConfig::new(3)
            .channel(ChannelKind::fair_lossy(0.25))
            .crashes(CrashPlan::at(&[(1, 8)]))
            .horizon(260)
            .seed(seed);
        let out = run_protocol(
            &config,
            |_| StrongFdUdc::new(),
            &mut PerfectOracle::new(),
            &w,
        );
        assert!(check_udc(&out.run, &w.actions()).is_satisfied());
        for action in w.actions() {
            let performed =
                ProcessId::all(3).any(|q| out.run.view_at(q, out.run.horizon()).did(action));
            if !performed || out.run.correct().is_empty() {
                continue;
            }
            let witness = out.run.correct().iter().any(|q| {
                let view = out.run.view_at(q, out.run.horizon());
                view.initiated(action)
                    || view
                        .events()
                        .iter()
                        .any(|e| matches!(e, Event::Recv { msg, .. } if msg.action() == action))
            });
            assert!(
                witness,
                "seed {seed}: no correct process knows about {action}"
            );
        }
    }
}

/// The f and f′ constructions compose with the fd-crate conversions: the
/// t-useful detector extracted by f′ at t = n − 1 converts to a perfect
/// detector (§4's equivalence), matching what f extracts directly.
#[test]
fn f_prime_at_n_minus_1_converts_to_perfect() {
    let w = Workload::periodic(3, 15, 50);
    let mut runs = Vec::new();
    for seed in 0..3 {
        let config = SimConfig::new(3)
            .channel(ChannelKind::fair_lossy(0.25))
            .crashes(CrashPlan::at(&[(1, 8), (2, 30)]))
            .horizon(260)
            .seed(seed);
        let out = run_protocol(
            &config,
            |_| StrongFdUdc::new(),
            &mut PerfectOracle::new(),
            &w,
        );
        runs.push(out.run);
    }
    // Include a crash-free sibling so knowledge stays honest.
    let config = SimConfig::new(3)
        .channel(ChannelKind::fair_lossy(0.25))
        .horizon(260)
        .seed(9);
    runs.push(
        run_protocol(
            &config,
            |_| StrongFdUdc::new(),
            &mut PerfectOracle::new(),
            &w,
        )
        .run,
    );
    let sys = System::new(runs);

    let t = 2; // n − 1
    let via_f_prime = simulate_t_useful_fd(&sys, t);
    for run in via_f_prime.runs() {
        check_fd_property(run, FdProperty::GeneralizedStrongAccuracy).unwrap();
        // §4: convert the generalized reports to standard ones; the result
        // must be strongly accurate (it certifies only truly-crashed sets).
        let converted = ktudc::fd::convert::n_useful_to_perfect(run);
        check_fd_property(&converted, FdProperty::StrongAccuracy).unwrap();
    }
    // And f directly yields a perfect detector on the same system.
    let via_f = simulate_perfect_fd(&sys);
    for run in via_f.runs() {
        check_fd_property(run, FdProperty::StrongAccuracy).unwrap();
        check_fd_property(run, FdProperty::StrongCompleteness).unwrap();
    }
}

/// Proposition 3.5 as a formula, checked for validity over an explored
/// system with optional initiation and optional message delivery. The
/// premise (`p` *knows* everyone will learn-or-crash) is demanding at
/// finite horizons, so much of the check is vacuous — but validity means
/// the model checker found **no counterexample point across any schedule**,
/// which is exactly what the proposition asserts for this context.
#[test]
fn proposition_3_5_formula_is_valid_over_explored_system() {
    use ktudc::core::spec::prop_3_5_formula;

    #[derive(Clone, Debug)]
    struct Informer {
        me: ProcessId,
        sent: bool,
        saw_init: bool,
    }
    impl Protocol<u8> for Informer {
        fn start(&mut self, me: ProcessId, _n: usize) {
            self.me = me;
        }
        fn observe(&mut self, _t: Time, e: &Event<u8>) {
            match e {
                Event::Init { .. } => self.saw_init = true,
                Event::Send { .. } => self.sent = true,
                _ => {}
            }
        }
        fn next_action(&mut self, _t: Time) -> Option<ProtoAction<u8>> {
            (self.saw_init && !self.sent).then_some(ProtoAction::Send {
                to: ProcessId::new(1 - self.me.index()),
                msg: 1,
            })
        }
        fn quiescent(&self) -> bool {
            !self.saw_init || self.sent
        }
    }

    let alpha = ActionId::new(p(0), 0);
    let cfg = ExploreConfig::new(2, 4)
        .max_failures(1)
        .initiate(1, alpha)
        .optional_initiations();
    let result = explore(&cfg, |_| Informer {
        me: p(0),
        sent: false,
        saw_init: false,
    });
    assert!(result.complete);
    let sys = result.system;
    let mut mc = ModelChecker::new(&sys);
    for observer in [p(0), p(1)] {
        mc.valid(&prop_3_5_formula::<u8>(2, observer, alpha))
            .unwrap_or_else(|pt| panic!("Prop 3.5 counterexample for {observer} at {pt}"));
    }
}
