//! The knowledge-theoretic heart of the paper, end to end: exhaustively
//! enumerate a small system, model-check epistemic formulas over it, audit
//! the context conditions A1–A5t, and run the Theorem 3.6 construction
//! that turns a UDC-attaining system's *knowledge* into a perfect failure
//! detector.
//!
//! ```text
//! cargo run --example knowledge_audit --release
//! ```

use ktudc::core::protocols::strong_fd::StrongFdUdc;
use ktudc::core::simulate::simulate_perfect_fd;
use ktudc::core::spec::check_udc;
use ktudc::epistemic::conditions::{check_a1, check_a2, check_a3, check_a5};
use ktudc::epistemic::{Formula, ModelChecker};
use ktudc::fd::{check_fd_property, FdProperty, PerfectOracle};
use ktudc::model::{ActionId, Point, ProcessId, System};
use ktudc::sim::{
    explore, run_protocol, ChannelKind, CrashPlan, ExploreConfig, SimConfig, Workload,
};

fn main() {
    // ------------------------------------------------------------------
    // Part 1: exact epistemic checking over an exhaustively enumerated
    // system (2 processes, 3 ticks, ≤1 crash, one optional initiation).
    // ------------------------------------------------------------------
    let p0 = ProcessId::new(0);
    let p1 = ProcessId::new(1);
    let alpha = ActionId::new(p0, 0);
    let cfg = ExploreConfig::new(2, 3)
        .max_failures(1)
        .initiate(1, alpha)
        .optional_initiations();
    let result = explore::<u8, _, _>(&cfg, |_| Idle);
    let system = result.system;
    println!(
        "explored system: {} runs, {} points (complete: {})",
        system.len(),
        system.point_count(),
        result.complete
    );

    let mut mc = ModelChecker::new(&system);
    // Some epistemic facts, checked *exactly*:
    let k_init = Formula::knows(p0, Formula::initiated(alpha));
    println!(
        "  points where K_p0 init(α) holds: {}",
        mc.satisfying_points(&k_init).len()
    );
    let k1_init = Formula::knows(p1, Formula::initiated(alpha));
    println!(
        "  points where K_p1 init(α) holds: {} (p1 never hears about it)",
        mc.satisfying_points(&k1_init).len()
    );
    // Knowledge is veridical: K_p0 init ⇒ init, everywhere.
    mc.valid(&Formula::implies(k_init.clone(), Formula::initiated(alpha)))
        .expect("veridicality");
    println!("  K_p0 init(α) ⇒ init(α) is valid (knowledge is veridical)");

    // Audit the context conditions of §3.
    println!("\ncontext conditions on the explored system:");
    println!(
        "  A1 (failure independence) : {:?}",
        check_a1(&system).is_ok()
    );
    println!(
        "  A2 (mass-crash/unreliable): {:?}",
        check_a2(&system).is_ok()
    );
    println!(
        "  A3 (crash teaches nothing): {:?}",
        check_a3(&mut mc, alpha).is_ok()
    );
    println!(
        "  A5 (t = 1 patterns occur) : {:?}",
        check_a5(&system, 1).is_ok()
    );

    // ------------------------------------------------------------------
    // Part 2: Theorem 3.6 — extract a *perfect* failure detector from the
    // knowledge of a UDC-attaining system.
    // ------------------------------------------------------------------
    let w = Workload::periodic(3, 15, 60);
    let mut runs = Vec::new();
    for plan in [
        CrashPlan::None,
        CrashPlan::at(&[(1, 8)]),
        CrashPlan::at(&[(1, 8), (2, 30)]),
    ] {
        for seed in 0..3 {
            let config = SimConfig::new(3)
                .channel(ChannelKind::fair_lossy(0.25))
                .crashes(plan.clone())
                .horizon(200)
                .seed(seed);
            let out = run_protocol(
                &config,
                |_| StrongFdUdc::new(),
                &mut PerfectOracle::new(),
                &w,
            );
            assert!(check_udc(&out.run, &w.actions()).is_satisfied());
            runs.push(out.run);
        }
    }
    let udc_system = System::new(runs);
    println!(
        "\nUDC-attaining sampled system: {} runs, {} points",
        udc_system.len(),
        udc_system.point_count()
    );

    // What does p0 *know* about crashes mid-run, before and after evidence?
    let mut mc = ModelChecker::new(&udc_system);
    for m in [5u64, 50, 150] {
        println!(
            "  K_p0-known crashed set at (run 3, tick {m}): {}",
            mc.knowledge_of_crashes(p0, Point::new(3, m))
        );
    }

    // The f(r) construction of Theorem 3.6.
    let simulated = simulate_perfect_fd(&udc_system);
    for run in simulated.runs() {
        check_fd_property(run, FdProperty::StrongAccuracy).expect("accuracy");
        check_fd_property(run, FdProperty::StrongCompleteness).expect("completeness");
    }
    println!(
        "\nf(R) built: {} runs on the doubled timeline; the knowledge-derived",
        simulated.len()
    );
    println!("suspect′ reports satisfy strong accuracy AND strong completeness —");
    println!("the system simulated a PERFECT failure detector, as Theorem 3.6 predicts.");
}

/// A protocol that does nothing (the explorer supplies the environment).
#[derive(Clone, Debug)]
struct Idle;

impl<M> ktudc::sim::Protocol<M> for Idle {
    fn start(&mut self, _me: ProcessId, _n: usize) {}
    fn observe(&mut self, _t: u64, _e: &ktudc::model::Event<M>) {}
    fn next_action(&mut self, _t: u64) -> Option<ktudc::sim::ProtoAction<M>> {
        None
    }
    fn quiescent(&self) -> bool {
        true
    }
}
