//! The paper's motivating scenario (§1): a replicated, fault-tolerant
//! service whose members execute client operations. With **UDC**, the
//! service can never repudiate an operation: if any member executed it —
//! even a member later deemed faulty — every correct member must execute
//! it too, so the operation is part of the service's communal history and
//! failures stay masked from clients.
//!
//! The example runs a stream of client operations through the
//! Proposition 4.1 protocol in a `t < n/2` deployment (so, per
//! Corollary 4.2, *no real failure detection is needed* — the oracle-free
//! cycling detector suffices), crashes two replicas mid-stream, and then
//! audits the communal history for non-repudiation.
//!
//! ```text
//! cargo run --example replicated_service
//! ```

use ktudc::core::protocols::generalized::GeneralizedUdc;
use ktudc::core::spec::{check_udc, Verdict};
use ktudc::fd::CyclingSubsetOracle;
use ktudc::model::{ActionId, ProcessId};
use ktudc::sim::{run_protocol, ChannelKind, CrashPlan, SimConfig, Workload};

fn main() {
    let n = 5; // five replicas
    let t = 2; // deployment promise: at most 2 replicas fail (t < n/2)

    // Client requests arrive at different replicas over time: replica r
    // initiates the operation on behalf of its client.
    let mut workload = Workload::none();
    let ops = [
        (1u64, 0usize, "create account #17"),
        (10, 1, "deposit 250 to #17"),
        (20, 2, "allocate scarce resource R3"),
        (30, 3, "withdraw 40 from #17"),
        (40, 4, "close account #9"),
        (55, 0, "audit snapshot"),
    ];
    for (i, &(tick, replica, _)) in ops.iter().enumerate() {
        workload.push(tick, ActionId::new(ProcessId::new(replica), i as u32));
    }

    let config = SimConfig::new(n)
        .channel(ChannelKind::fair_lossy(0.25)) // a WAN, effectively
        .crashes(CrashPlan::at(&[(2, 22), (4, 47)])) // two replicas die
        .horizon(1200)
        .seed(7);

    let out = run_protocol(
        &config,
        |_| GeneralizedUdc::new(t),
        // Corollary 4.2: cycling (S, 0) reports need no ground truth at all.
        &mut CyclingSubsetOracle::new(n, t),
        &workload,
    );

    println!("replicated service over {n} replicas (t = {t} < n/2, no failure detector)");
    println!("crashed replicas: {}\n", out.run.faulty());

    // Audit: the communal history. Every operation any replica executed
    // must be executed by every correct replica — non-repudiation.
    println!("{:<28}executed by", "operation");
    for (i, &(_, replica, label)) in ops.iter().enumerate() {
        let action = ActionId::new(ProcessId::new(replica), i as u32);
        let executors: Vec<String> = ProcessId::all(n)
            .filter(|&p| out.run.view_at(p, out.run.horizon()).did(action))
            .map(|p| p.to_string())
            .collect();
        println!("{label:<28}{}", executors.join(", "));
    }

    let verdict = check_udc(&out.run, &workload.actions());
    assert_eq!(
        verdict,
        Verdict::Satisfied,
        "service repudiated an operation!"
    );
    println!("\nUDC holds: no operation was repudiated, even ones initiated by");
    println!("replicas that later crashed. Clients never see the failures.");
}
