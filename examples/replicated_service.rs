//! The paper's motivating scenario (§1) as a *service*: a replicated,
//! fault-tolerant system whose members execute client operations, where
//! **UDC** guarantees non-repudiation — if any member executed an
//! operation, every correct member did too, so failures stay masked from
//! clients.
//!
//! Earlier revisions of this example ran the Proposition 4.1 protocol
//! in-process; now that the workspace ships `ktudc-serve`, the example
//! *drives the daemon* the way an operations team would. It boots a
//! server on an ephemeral port, has several deployment reviewers ask it
//! concurrently whether a `t < n/2` deployment achieves UDC with the
//! oracle-free cycling detector (Corollary 4.2: no real failure
//! detection needed), and then repeats the question to show the scenario
//! cache answering byte-identically, orders of magnitude faster.
//!
//! ```text
//! cargo run --example replicated_service
//! ```

use ktudc::core::harness::{CellSpec, FdChoice, ProtocolChoice};
use ktudc_serve::{serve, Client, RequestKind, ResponseKind, ServeConfig};

fn main() {
    let n = 5; // five replicas
    let t = 2; // deployment promise: at most 2 replicas fail (t < n/2)

    // The deployment under review: lossy WAN-like channels, the
    // Proposition 4.1 protocol, and the oracle-free cycling (S, 0)
    // detector. Every trial randomizes crash schedules of up to t
    // replicas; UDC must hold in all of them for sign-off.
    let deployment = CellSpec::new(
        n,
        t,
        Some(0.25),
        FdChoice::Cycling,
        ProtocolChoice::Generalized,
    )
    .trials(6)
    .horizon(900);

    let handle = serve(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    })
    .expect("bind an ephemeral port");
    let addr = handle.addr();
    println!("replicated-service review daemon on {addr}");

    // Three reviewers ask concurrently (separate connections). Identical
    // requests already in flight each compute — the cache memoizes
    // completions, it does not coalesce — so the cache pays off on every
    // request *after* the first completion.
    let reviewers: Vec<_> = (0..3)
        .map(|reviewer| {
            let spec = deployment.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let response = client.request(RequestKind::Cell(spec)).expect("request");
                (reviewer, response)
            })
        })
        .collect();
    let mut cold_micros = 0u64;
    for join in reviewers {
        let (reviewer, response) = join.join().expect("reviewer thread");
        let ResponseKind::Cell(outcome) = &response.result else {
            panic!("unexpected payload: {:?}", response.result);
        };
        println!(
            "reviewer {reviewer}: {}/{} trials achieved UDC ({}, {} µs)",
            outcome.satisfied,
            outcome.trials(),
            if response.cached { "cache" } else { "computed" },
            response.micros
        );
        assert!(
            outcome.achieved(),
            "service repudiated an operation: {outcome}"
        );
        if !response.cached {
            cold_micros = cold_micros.max(response.micros);
        }
    }
    assert!(cold_micros > 0, "someone must have computed the cell");

    // The follow-up audit asks the identical question; it must be a
    // cache hit, byte-identical, and faster than the cold computation.
    let mut auditor = Client::connect(addr).expect("connect");
    let warm = auditor
        .request(RequestKind::Cell(deployment))
        .expect("warm request");
    assert!(warm.cached, "follow-up audit was not served from cache");
    assert!(
        warm.micros < cold_micros,
        "cached answer ({} µs) not faster than computed one ({cold_micros} µs)",
        warm.micros
    );
    println!(
        "follow-up audit: answered from cache in {} µs (computed: {cold_micros} µs)",
        warm.micros
    );

    let stats = auditor.stats().expect("stats");
    println!(
        "server: {} cell requests, hit rate {:.2}, p50 {} µs",
        stats.endpoints[0].requests, stats.cache_hit_rate, stats.endpoints[0].p50_micros
    );

    auditor.shutdown_server().expect("shutdown");
    handle.join();
    println!("\nUDC held on every randomized crash schedule: no operation was");
    println!("repudiated, and clients never see the failures. (Daemon drained.)");
}
