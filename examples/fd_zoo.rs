//! A tour of the failure-detector hierarchy (§2.2 and §4): run every
//! oracle class over the same faulty execution, check exactly which
//! accuracy/completeness properties each satisfies, and demonstrate the
//! Proposition 2.1 / 2.2 conversions upgrading a weak, flaky detector into
//! a strong one.
//!
//! ```text
//! cargo run --example fd_zoo
//! ```

use ktudc::core::protocols::nudc::NUdcFlood;
use ktudc::fd::convert::{accumulate_reports, weak_to_strong};
use ktudc::fd::{
    check_fd_property, EventuallyStrongOracle, FdProperty, ImpermanentStrongOracle,
    ImpermanentWeakOracle, PerfectOracle, StrongOracle, TUsefulOracle, WeakOracle,
};
use ktudc::model::Run;
use ktudc::sim::{run_protocol, ChannelKind, CrashPlan, FdOracle, SimConfig, Workload};

fn sample_run(oracle: &mut dyn FdOracle) -> Run<ktudc::core::CoordMsg> {
    let config = SimConfig::new(4)
        .channel(ChannelKind::fair_lossy(0.2))
        .crashes(CrashPlan::at(&[(1, 10), (3, 30)]))
        .horizon(260)
        .seed(99);
    let w = Workload::single(0, 2);
    run_protocol(&config, |_| NUdcFlood::new(), oracle, &w).run
}

fn tick(ok: bool) -> &'static str {
    if ok {
        "✓"
    } else {
        "·"
    }
}

fn main() {
    let props = [
        ("strong accuracy", FdProperty::StrongAccuracy),
        ("weak accuracy", FdProperty::WeakAccuracy),
        ("strong compl.", FdProperty::StrongCompleteness),
        ("weak compl.", FdProperty::WeakCompleteness),
        (
            "imp. strong compl.",
            FdProperty::ImpermanentStrongCompleteness,
        ),
        ("imp. weak compl.", FdProperty::ImpermanentWeakCompleteness),
    ];
    let mut oracles: Vec<(&str, Box<dyn FdOracle>)> = vec![
        ("perfect", Box::new(PerfectOracle::new())),
        ("strong", Box::new(StrongOracle::new())),
        ("weak", Box::new(WeakOracle::new())),
        ("imp-strong", Box::new(ImpermanentStrongOracle::new())),
        ("imp-weak", Box::new(ImpermanentWeakOracle::new())),
        (
            "eventually-strong",
            Box::new(EventuallyStrongOracle::new(120)),
        ),
    ];

    println!(
        "{:<20}{}",
        "oracle",
        props
            .iter()
            .map(|(n, _)| format!("{n:<20}"))
            .collect::<String>()
    );
    println!("{:-<140}", "");
    for (name, oracle) in &mut oracles {
        let run = sample_run(oracle.as_mut());
        let row: String = props
            .iter()
            .map(|&(_, prop)| format!("{:<20}", tick(check_fd_property(&run, prop).is_ok())))
            .collect();
        println!("{name:<20}{row}");
    }

    // The generalized detector of §4 satisfies the generalized properties.
    let t = 2;
    let run = sample_run(&mut TUsefulOracle::new(t));
    println!(
        "\nt-useful (t = {t}): generalized strong accuracy {}, t-useful completeness {}",
        tick(check_fd_property(&run, FdProperty::GeneralizedStrongAccuracy).is_ok()),
        tick(
            check_fd_property(
                &run,
                FdProperty::GeneralizedImpermanentStrongCompleteness(t)
            )
            .is_ok()
        ),
    );

    // Conversions: impermanent-weak → (accumulate, Prop 2.2) → weak
    // → (gossip, Prop 2.1) → strong completeness, accuracy preserved.
    let flaky = sample_run(&mut ImpermanentWeakOracle::new());
    let accumulated = accumulate_reports(&flaky);
    let gossiped = weak_to_strong(&accumulated, 4);
    println!("\nconversion pipeline on the imp-weak run:");
    println!(
        "  raw:         weak compl. {}  strong compl. {}",
        tick(check_fd_property(&flaky, FdProperty::WeakCompleteness).is_ok()),
        tick(check_fd_property(&flaky, FdProperty::StrongCompleteness).is_ok()),
    );
    println!(
        "  +Prop 2.2:   weak compl. {}  strong compl. {}",
        tick(check_fd_property(&accumulated, FdProperty::WeakCompleteness).is_ok()),
        tick(check_fd_property(&accumulated, FdProperty::StrongCompleteness).is_ok()),
    );
    println!(
        "  +Prop 2.1:   weak compl. {}  strong compl. {}  weak accuracy {}  ({} events, was {})",
        tick(check_fd_property(&gossiped, FdProperty::WeakCompleteness).is_ok()),
        tick(check_fd_property(&gossiped, FdProperty::StrongCompleteness).is_ok()),
        tick(check_fd_property(&gossiped, FdProperty::WeakAccuracy).is_ok()),
        gossiped.event_count(),
        flaky.event_count(),
    );
}
