//! Renders a space–time trace of a UDC run: watch the α-messages, acks,
//! failure-detector reports, crashes, and `do` events land tick by tick.
//!
//! ```text
//! cargo run --example trace_viewer
//! ```

use ktudc::core::protocols::strong_fd::StrongFdUdc;
use ktudc::core::spec::{check_udc, Verdict};
use ktudc::fd::PerfectOracle;
use ktudc::model::trace::{summary, trace_window};
use ktudc::sim::{run_protocol, ChannelKind, CrashPlan, SimConfig, Workload};

fn main() {
    let config = SimConfig::new(3)
        .channel(ChannelKind::fair_lossy(0.25))
        .crashes(CrashPlan::at(&[(2, 9)]))
        .horizon(200)
        .seed(4);
    let workload = Workload::single(0, 2);
    let out = run_protocol(
        &config,
        |_| StrongFdUdc::new(),
        &mut PerfectOracle::new(),
        &workload,
    );

    println!("{}", summary(&out.run));
    println!("\nfirst 40 ticks of the execution:\n");
    println!("{}", trace_window(&out.run, 0, 40));
    assert_eq!(check_udc(&out.run, &workload.actions()), Verdict::Satisfied);
    println!("(UDC verdict: satisfied — scroll the trace to see p2 crash at tick 9,");
    println!(" the detector reports catch up, and the survivors perform α anyway.)");
}
