//! Quickstart: attain Uniform Distributed Coordination over unreliable
//! channels with a strong failure detector (Proposition 3.1), and
//! machine-check the specification on the generated run.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ktudc::core::protocols::strong_fd::StrongFdUdc;
use ktudc::core::spec::{check_udc, Verdict};
use ktudc::fd::StrongOracle;
use ktudc::model::ProcessId;
use ktudc::sim::{run_protocol, ChannelKind, CrashPlan, SimConfig, Workload};

fn main() {
    // A context: five processes, 30% message loss (but fair channels),
    // two crashes mid-run, and a strong failure detector.
    let config = SimConfig::new(5)
        .channel(ChannelKind::fair_lossy(0.3))
        .crashes(CrashPlan::at(&[(1, 6), (3, 25)]))
        .horizon(600)
        .seed(2024);

    // The workload: process p0 initiates one coordination action at tick 2.
    let workload = Workload::single(0, 2);
    let alpha = workload.actions()[0];

    // Run the Proposition 3.1 protocol.
    let out = run_protocol(
        &config,
        |_| StrongFdUdc::new(),
        &mut StrongOracle::new(),
        &workload,
    );

    // The produced run is a first-class object: inspect it.
    println!("run horizon           : {}", out.run.horizon());
    println!("faulty processes F(r) : {}", out.run.faulty());
    println!(
        "messages sent / lost  : {} / {}",
        out.messages_sent, out.messages_dropped
    );
    for p in ProcessId::all(5) {
        let view = out.run.view_at(p, out.run.horizon());
        println!(
            "  {p}: {:>3} events, performed α: {}, crashed: {}",
            view.len(),
            view.did(alpha),
            view.crashed()
        );
    }

    // Machine-check UDC (DC1–DC3 of §2.4) and the run conditions R1–R5.
    // R5 uses the finite-horizon reading: on a 30%-lossy channel a message
    // sent only once (e.g. by a process that crashes right after) may
    // legitimately never arrive, so fairness is only demanded of messages
    // resent at least 25 times — the same slack the chaos campaign uses.
    let verdict = check_udc(&out.run, &workload.actions());
    out.run
        .check_conditions(25)
        .expect("R1-R5 hold on simulator output");
    println!("UDC verdict           : {verdict:?}");
    assert_eq!(verdict, Verdict::Satisfied);
    println!("\nEvery correct process performed α even though two processes crashed");
    println!("and 30% of messages were lost — that is Uniform Distributed Coordination.");
}
