//! `ktudc` — facade crate for the reproduction of Halpern & Ricciardi,
//! *A Knowledge-Theoretic Analysis of Uniform Distributed Coordination and
//! Failure Detectors* (PODC 1999).
//!
//! This crate re-exports the workspace's component crates under one roof and
//! hosts the runnable examples (`examples/`) and cross-crate integration
//! tests (`tests/`). See the individual crates for the substance:
//!
//! * [`model`] — the formal run model of §2.1 (events, histories, runs,
//!   cuts, R1–R5, indistinguishability).
//! * [`sim`] — a deterministic discrete-event simulator of asynchronous
//!   crash-prone systems with fair-lossy channels, plus an exhaustive
//!   explorer for small systems.
//! * [`fd`] — the failure-detector zoo (§2.2, §4), property checkers, and
//!   class conversions (Propositions 2.1 and 2.2).
//! * [`epistemic`] — the epistemic-temporal model checker (§2.3) and the
//!   conditions A1–A5t of §3.
//! * [`core`] — UDC/nUDC specifications (§2.4), the four coordination
//!   protocols (Propositions 2.3, 2.4, 3.1, 4.1), the `f`/`f′` simulation
//!   constructions (Theorems 3.6 and 4.3), and the Table 1 harness.
//! * [`consensus`] — Chandra–Toueg consensus baselines for the comparison
//!   rows of Table 1.
//!
//! # Quickstart
//!
//! ```
//! use ktudc::core::protocols::strong_fd::StrongFdUdc;
//! use ktudc::core::spec::{check_udc, Verdict};
//! use ktudc::fd::StrongOracle;
//! use ktudc::sim::{run_protocol, ChannelKind, CrashPlan, SimConfig, Workload};
//!
//! // Five processes, lossy-but-fair channels, two crashes, a strong failure
//! // detector: run the Proposition 3.1 protocol and machine-check DC1–DC3.
//! let config = SimConfig::new(5)
//!     .channel(ChannelKind::fair_lossy(0.3))
//!     .crashes(CrashPlan::at(&[(1, 4), (3, 9)]))
//!     .horizon(600)
//!     .seed(7);
//! let workload = Workload::single(0, 2);
//! let out = run_protocol(
//!     &config,
//!     |_| StrongFdUdc::new(),
//!     &mut StrongOracle::new(),
//!     &workload,
//! );
//! assert_eq!(check_udc(&out.run, &workload.actions()), Verdict::Satisfied);
//! ```

#![forbid(unsafe_code)]

pub use ktudc_consensus as consensus;
pub use ktudc_core as core;
pub use ktudc_epistemic as epistemic;
pub use ktudc_fd as fd;
pub use ktudc_model as model;
pub use ktudc_sim as sim;
