//! Offline stand-in for `serde_json`.
//!
//! Prints and parses JSON text over the `serde` stand-in's [`Value`] tree.
//! Supports the full JSON grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null), which is a superset of what ktudc emits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization or parse failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Returns [`Error`] for non-finite floats (JSON cannot represent them).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Serializes a value to pretty-printed JSON text (two-space indent).
///
/// # Errors
///
/// Returns [`Error`] for non-finite floats.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0)?;
    Ok(out)
}

/// Parses JSON text into a typed value.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch for `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------- printing

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(*f, out)?,
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) -> Result<(), Error> {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_value_pretty(item, out, indent + 1)?;
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
            Ok(())
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_string(k, out);
                out.push_str(": ");
                write_value_pretty(val, out, indent + 1)?;
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
            Ok(())
        }
        other => write_value(other, out),
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_float(f: f64, out: &mut String) -> Result<(), Error> {
    if !f.is_finite() {
        return Err(Error(format!("cannot represent {f} in JSON")));
    }
    let s = f.to_string();
    out.push_str(&s);
    // Keep floats distinguishable from integers on re-parse.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid utf-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0C}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pair handling.
                            if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_literal("\\u") {
                                    return Err(Error("lone high surrogate".into()));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                s.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| Error("invalid surrogate pair".into()))?,
                                );
                            } else {
                                s.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error("invalid codepoint".into()))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error(format!("bad escape `\\{}`", other as char)));
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        let hex = std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".into()))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error("bad \\u escape".into()))?;
        self.pos = end;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if is_float {
            let f: f64 = text
                .parse()
                .map_err(|_| Error(format!("bad number `{text}`")))?;
            Ok(Value::Float(f))
        } else if negative {
            let i: i128 = text
                .parse()
                .map_err(|_| Error(format!("bad number `{text}`")))?;
            Ok(Value::Int(i))
        } else {
            let u: u128 = text
                .parse()
                .map_err(|_| Error(format!("bad number `{text}`")))?;
            Ok(Value::UInt(u))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(7)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::Str("x\"y\\z\n".into())),
            ("d".into(), Value::Int(-3)),
            ("e".into(), Value::Float(1.5)),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_print_reparses() {
        let v = Value::Object(vec![(
            "runs".into(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)]),
        )]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn typed_roundtrip() {
        let xs: Vec<u64> = vec![1, 2, 3];
        let text = to_string(&xs).unwrap();
        assert_eq!(text, "[1,2,3]");
        let back: Vec<u64> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn unicode_escapes() {
        let s: String = from_str(r#""A😀""#).unwrap();
        assert_eq!(s, "A\u{1F600}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{unquoted: 1}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
