//! Offline stand-in for `serde`.
//!
//! The build environment cannot fetch crates.io, so this crate supplies the
//! interface ktudc relies on: `#[derive(Serialize, Deserialize)]` plus the
//! [`Serialize`]/[`Deserialize`] traits, implemented over an owned JSON-like
//! [`Value`] tree (the `serde_json` stand-in prints and parses that tree).
//!
//! The data model follows serde's JSON conventions so derived encodings look
//! like upstream serde_json output: structs are objects, newtype structs are
//! transparent, unit enum variants are strings, and data-carrying variants
//! are single-key objects (externally tagged).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like value tree: the intermediate representation between
/// typed data and text.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    UInt(u128),
    /// A negative integer.
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved (serde_json's default map
    /// behavior for structs).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization failure: the value tree did not have the expected shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Mismatch helper used by generated code.
pub fn de_err<T>(expected: &str, got: &Value) -> Result<T, DeError> {
    Err(DeError(format!("expected {expected}, got {got:?}")))
}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] if the tree does not encode a `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(u128::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError(format!("{u} out of range for {}", stringify!($t)))),
                    other => de_err(stringify!($t), other),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, u128);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u128)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::UInt(u) => {
                usize::try_from(*u).map_err(|_| DeError(format!("{u} out of range for usize")))
            }
            other => de_err("usize", other),
        }
    }
}

macro_rules! impl_sint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(clippy::cast_lossless)]
                let n = *self as i128;
                if n >= 0 { Value::UInt(n as u128) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i128 = match v {
                    Value::UInt(u) => i128::try_from(*u)
                        .map_err(|_| DeError(format!("{u} out of range")))?,
                    Value::Int(i) => *i,
                    other => return de_err(stringify!($t), other),
                };
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_sint!(i8, i16, i32, i64, i128, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => de_err("bool", other),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::UInt(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            other => de_err("f64", other),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => de_err("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

/// `&'static str` deserialization leaks the parsed string. Only tests
/// round-trip `Run<&str>`; library code should prefer owned payloads.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => de_err("string", other),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => de_err("array", other),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => de_err("2-tuple", other),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => de_err("3-tuple", other),
        }
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        // Non-string keys get the serde_json "array of pairs" treatment.
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v: Vec<u8> = vec![1, 2, 3];
        assert_eq!(Vec::<u8>::from_value(&v.to_value()).unwrap(), v);
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            <(u8, String)>::from_value(&(7u8, "x".to_string()).to_value()).unwrap(),
            (7, "x".to_string())
        );
    }

    #[test]
    fn shape_mismatch_errors() {
        assert!(u8::from_value(&Value::Str("no".into())).is_err());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(Vec::<u8>::from_value(&Value::Bool(true)).is_err());
    }
}
