//! Derive macros for the offline `serde` stand-in.
//!
//! Implemented without `syn`/`quote` (unavailable offline): a small token
//! walker extracts the struct/enum shape, and the impls are emitted as
//! source strings. Supports exactly the shapes the repo derives on: named
//! structs, tuple structs, and enums with unit / tuple / named-field
//! variants, with plain (bound-free) type parameters.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Item {
    name: String,
    generics: Vec<String>,
    kind: Kind,
}

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: VFields,
}

#[derive(Debug)]
enum VFields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Derives `serde::Serialize` (offline stand-in).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (offline stand-in).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    let generics = parse_generics(&tokens, &mut i);
    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Kind::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("enum body expected, got {other:?}"),
        },
        other => panic!("derive target must be struct or enum, got `{other}`"),
    };
    Item {
        name,
        generics,
        kind,
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` plus the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("identifier expected, got {other:?}"),
    }
}

/// Parses `<A, B, ...>` if present; returns the type-parameter names.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return params,
    }
    *i += 1;
    let mut depth = 1usize;
    let mut expect_param = true;
    while depth > 0 {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                expect_param = true;
            }
            Some(TokenTree::Ident(id)) if depth == 1 && expect_param => {
                params.push(id.to_string());
                expect_param = false;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                // Lifetime: skip its ident, and don't record a type param.
                *i += 1;
                expect_param = false;
            }
            Some(_) => {}
            None => panic!("unterminated generics"),
        }
        *i += 1;
    }
    params
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        fields.push(expect_ident(&tokens, &mut i));
        // Skip `:` then the type, up to a top-level (angle-depth 0) comma.
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("`:` expected after field name, got {other:?}"),
        }
        let mut depth = 0usize;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0usize;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => {}
        }
    }
    // Tolerate a trailing comma.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VFields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VFields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VFields::Unit,
        };
        // Skip an explicit discriminant and/or the separating comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn impl_header(item: &Item, trait_name: &str) -> (String, String) {
    let bounds: Vec<String> = item
        .generics
        .iter()
        .map(|g| format!("{g}: ::serde::{trait_name}"))
        .collect();
    let params = if item.generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", bounds.join(", "))
    };
    let args = if item.generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", item.generics.join(", "))
    };
    (params, args)
}

fn gen_serialize(item: &Item) -> String {
    let (params, args) = impl_header(item, "Serialize");
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(k) => {
            let elems: Vec<String> = (0..*k)
                .map(|j| format!("::serde::Serialize::to_value(&self.{j})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Kind::NamedStruct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VFields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string())"
                        ),
                        VFields::Tuple(1) => format!(
                            "{name}::{vn}(x0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(x0))])"
                        ),
                        VFields::Tuple(k) => {
                            let binds: Vec<String> = (0..*k).map(|j| format!("x{j}")).collect();
                            let elems: Vec<String> = (0..*k)
                                .map(|j| format!("::serde::Serialize::to_value(x{j})"))
                                .collect();
                            format!(
                                "{name}::{vn}({b}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{e}]))])",
                                b = binds.join(", "),
                                e = elems.join(", ")
                            )
                        }
                        VFields::Named(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                ))
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{p}]))])",
                                p = pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl{params} ::serde::Serialize for {name}{args} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (params, args) = impl_header(item, "Deserialize");
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => format!(
            "match v {{ ::serde::Value::Null => Ok({name}), other => ::serde::de_err(\"unit struct {name}\", other) }}"
        ),
        Kind::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::TupleStruct(k) => {
            let elems: Vec<String> = (0..*k)
                .map(|j| format!("::serde::Deserialize::from_value(&items[{j}])?"))
                .collect();
            format!(
                "match v {{ ::serde::Value::Array(items) if items.len() == {k} => Ok({name}({e})), other => ::serde::de_err(\"tuple struct {name}\", other) }}",
                e = elems.join(", ")
            )
        }
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| field_init(name, f)).collect();
            format!(
                "match v {{ ::serde::Value::Object(_) => Ok({name} {{ {i} }}), other => ::serde::de_err(\"struct {name}\", other) }}",
                i = inits.join(", ")
            )
        }
        Kind::Enum(variants) => gen_enum_deserialize(name, variants),
    };
    format!(
        "impl{params} ::serde::Deserialize for {name}{args} {{\n\
             fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}

fn field_init(owner: &str, field: &str) -> String {
    format!(
        "{field}: ::serde::Deserialize::from_value(v.get(\"{field}\").ok_or_else(|| ::serde::DeError(format!(\"missing field {owner}.{field}\")))?)?"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, VFields::Unit))
        .map(|v| format!("\"{vn}\" => Ok({name}::{vn})", vn = v.name))
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vn = &v.name;
            match &v.fields {
                VFields::Unit => None,
                VFields::Tuple(1) => Some(format!(
                    "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?))"
                )),
                VFields::Tuple(k) => {
                    let elems: Vec<String> = (0..*k)
                        .map(|j| format!("::serde::Deserialize::from_value(&items[{j}])?"))
                        .collect();
                    Some(format!(
                        "\"{vn}\" => match inner {{ ::serde::Value::Array(items) if items.len() == {k} => Ok({name}::{vn}({e})), other => ::serde::de_err(\"variant {name}::{vn}\", other) }}",
                        e = elems.join(", ")
                    ))
                }
                VFields::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(inner.get(\"{f}\").ok_or_else(|| ::serde::DeError(format!(\"missing field {name}::{vn}.{f}\")))?)?"
                            )
                        })
                        .collect();
                    Some(format!(
                        "\"{vn}\" => match inner {{ ::serde::Value::Object(_) => Ok({name}::{vn} {{ {i} }}), other => ::serde::de_err(\"variant {name}::{vn}\", other) }}",
                        i = inits.join(", ")
                    ))
                }
            }
        })
        .collect();
    let str_arm = if unit_arms.is_empty() {
        String::new()
    } else {
        format!(
            "::serde::Value::Str(s) => match s.as_str() {{ {arms}, other => Err(::serde::DeError(format!(\"unknown variant {name}::{{other}}\"))) }},",
            arms = unit_arms.join(", ")
        )
    };
    let obj_arm = if data_arms.is_empty() {
        String::new()
    } else {
        format!(
            "::serde::Value::Object(fields) if fields.len() == 1 => {{ let (tag, inner) = &fields[0]; match tag.as_str() {{ {arms}, other => Err(::serde::DeError(format!(\"unknown variant {name}::{{other}}\"))) }} }},",
            arms = data_arms.join(", ")
        )
    };
    format!("match v {{ {str_arm} {obj_arm} other => ::serde::de_err(\"enum {name}\", other) }}")
}
