//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the repo's benches use — `benchmark_group`,
//! `sample_size`, `bench_with_input`/`bench_function`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!` — as a plain wall-clock harness:
//! one warm-up iteration, then `sample_size` timed iterations, reporting
//! mean/min per benchmark to stdout. No statistics, plots, or HTML.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, passed to each `criterion_group!` function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.default_sample_size,
            result: None,
        };
        f(&mut b);
        report(id, &b);
        self
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            result: None,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.0), &b);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            result: None,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.into().0), &b);
        self
    }

    /// Ends the group (reporting happens per benchmark; this is a no-op
    /// kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifies a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// Passed to the benchmark closure; `iter` does the timing.
pub struct Bencher {
    samples: usize,
    result: Option<(Duration, Duration)>, // (mean, min)
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.result = Some((total / self.samples as u32, min));
    }
}

fn report(id: &str, b: &Bencher) {
    match b.result {
        Some((mean, min)) => {
            println!("  {id}: mean {mean:?}, min {min:?} ({} samples)", b.samples);
        }
        None => println!("  {id}: no measurement recorded"),
    }
}

/// Bundles benchmark functions into a group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 1), &2u32, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            });
        });
        group.finish();
        assert_eq!(calls, 4); // 1 warm-up + 3 samples
    }
}
