//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the (small) API surface ktudc actually uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_bool`], and [`Rng::gen_range`]
//! over integer ranges — backed by the xoshiro256++ generator seeded through
//! SplitMix64 (the same seeding scheme `rand`'s `SmallRng` family uses).
//!
//! Determinism contract: identical seeds yield identical streams, on every
//! platform, forever. The generated *values* differ from upstream `rand`'s
//! `StdRng` (ChaCha12), which only matters if a seed-pinned artifact from an
//! upstream build is compared against one from this build; all in-repo
//! consumers only rely on per-seed determinism, not a particular stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seeding interface: the subset of `rand::SeedableRng` the repo uses.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly. Implemented for `Range` and
/// `RangeInclusive` over the unsigned integer types the repo draws from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as u64 {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Uniform draw from `0..span` (`span >= 1`) via Lemire-style rejection,
/// guaranteeing exact uniformity and determinism.
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span >= 1);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Rejection sampling on the top zone to remove modulo bias.
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// The subset of `rand::Rng` the repo uses, as a concrete extension trait.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic generator (xoshiro256++, SplitMix64-seeded). Stands in
    /// for `rand::rngs::StdRng`.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn stream_is_pinned() {
        // Cross-platform stability pin: if this changes, every seeded
        // simulation in the repo changes.
        let mut r = StdRng::seed_from_u64(0);
        assert_eq!(r.next_u64(), 5987356902031041503);
        assert_eq!(r.next_u64(), 7051070477665621255);
    }

    #[test]
    fn ranges_cover_and_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        let mut seen = [false; 6];
        for _ in 0..300 {
            let v = r.gen_range(0usize..6);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&b| b), "all values hit: {seen:?}");
        for _ in 0..300 {
            let v = r.gen_range(3u64..=5);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "got {hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
