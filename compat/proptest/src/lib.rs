//! Offline stand-in for `proptest`.
//!
//! Provides the surface ktudc's property tests use: the [`Strategy`] trait
//! (integer ranges, tuples, `collection::vec`, `prop_map`, `Just`), the
//! `proptest! {}` test-wrapper macro, and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted:
//! - **No shrinking.** A failing case reports its generated inputs (via
//!   `Debug`) but is not minimized.
//! - **Deterministic cases.** Each test runs `PROPTEST_CASES` (default 64)
//!   cases from seeds derived from the test name, so failures reproduce
//!   exactly across runs and machines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng;
pub use rand::{Rng, SeedableRng};

/// A failed `prop_assert*` inside a proptest case.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Number of cases per property: `PROPTEST_CASES` env override, else 64.
#[must_use]
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// Deterministic per-(test, case) seed: FNV-1a over the test name, mixed
/// with the case index.
#[must_use]
pub fn seed_for(test_name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Rng, StdRng, Strategy};
    use std::ops::Range;

    /// A strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy, TestCaseError,
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]`-able function running [`case_count`] deterministic
/// cases; `prop_assert*` failures report the case's generated inputs.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = $crate::case_count();
            for case in 0..cases {
                let mut rng = <$crate::StdRng as $crate::SeedableRng>::seed_from_u64(
                    $crate::seed_for(stringify!($name), case),
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    // The body may have consumed the inputs; regenerate them
                    // from the same seed for the failure report.
                    let mut rng = <$crate::StdRng as $crate::SeedableRng>::seed_from_u64(
                        $crate::seed_for(stringify!($name), case),
                    );
                    let mut msg =
                        ::std::format!("proptest case {case}/{cases} failed: {e}\n  inputs:");
                    $(msg.push_str(&::std::format!(
                        "\n    {} = {:?}",
                        stringify!($arg),
                        $crate::Strategy::generate(&($strat), &mut rng)
                    ));)+
                    panic!("{msg}");
                }
            }
        }
    )*};
}

/// `assert!` that reports through proptest's case machinery.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(::std::format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through proptest's case machinery.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), ::std::format!($($fmt)*), l, r
        );
    }};
}

/// `assert_ne!` that reports through proptest's case machinery.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn seeds_are_stable() {
        assert_eq!(seed_for("x", 0), seed_for("x", 0));
        assert_ne!(seed_for("x", 0), seed_for("x", 1));
        assert_ne!(seed_for("x", 0), seed_for("y", 0));
    }

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = (0usize..4, 1u64..30).generate(&mut rng);
            assert!(v.0 < 4 && (1..30).contains(&v.1));
        }
        let s = collection::vec(0u8..6, 0..80).prop_map(|v| v.len());
        for _ in 0..50 {
            assert!(s.generate(&mut rng) < 80);
        }
    }

    proptest! {
        #[test]
        fn macro_wires_strategies(x in 0u32..10, ys in collection::vec(0u8..3, 0..5)) {
            prop_assert!(x < 10);
            prop_assert!(ys.len() < 5);
            prop_assert_eq!(x + 1, x + 1);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    fn failing_case_reports_inputs() {
        proptest! {
            fn inner(x in 5u32..6) {
                prop_assert_eq!(x, 0, "forced failure");
            }
        }
        let err = std::panic::catch_unwind(inner).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("forced failure"), "{msg}");
        assert!(msg.contains("x = 5"), "{msg}");
    }
}
