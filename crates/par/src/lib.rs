//! Scoped-thread data parallelism for ktudc.
//!
//! rayon cannot be vendored in the offline build, so the hot loops in the
//! checker and explorer parallelize through this crate instead: ordered
//! `par_map` over owned items or slices, and `par_segments_mut` for
//! mutating disjoint sub-slices (e.g. per-run word ranges of a bit table).
//!
//! All functions preserve sequential semantics exactly — results are
//! returned in input order and each worker owns a contiguous range — so
//! flipping the `threads` feature (or setting `KTUDC_THREADS=1`) changes
//! wall-clock time only, never output. With the `threads` feature off,
//! every helper runs inline on the calling thread.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;

pub use pool::{Pool, SubmitError};

/// Worker count: `KTUDC_THREADS` env override if set, else the machine's
/// available parallelism. Always at least 1.
#[must_use]
pub fn thread_count() -> usize {
    if !cfg!(feature = "threads") {
        return 1;
    }
    if let Ok(s) = std::env::var("KTUDC_THREADS") {
        if let Ok(n) = s.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over owned `items` in input order, splitting the work across
/// threads when that is enabled and worthwhile.
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = thread_count().min(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Contiguous chunks, one per worker; concatenating in chunk order
    // restores input order.
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut rest = items;
    while rest.len() > chunk_len {
        let tail = rest.split_off(chunk_len);
        chunks.push(rest);
        rest = tail;
    }
    chunks.push(rest);
    let f = &f;
    let parts: Vec<Vec<U>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ktudc-par worker panicked"))
            .collect()
    });
    parts.into_iter().flatten().collect()
}

/// Maps `f` over `items` by reference, in input order. `f` also receives
/// the item's index.
pub fn par_map_slice<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = thread_count().min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let f = &f;
    let parts: Vec<Vec<U>> = std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .enumerate()
            .map(|(ci, chunk)| {
                s.spawn(move || {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(j, t)| f(ci * chunk_len + j, t))
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ktudc-par worker panicked"))
            .collect()
    });
    parts.into_iter().flatten().collect()
}

/// Splits `data` at the given ascending cut points and runs `f` on each
/// segment (with its index) — segments are disjoint, so workers mutate
/// without synchronization. `cuts` must be ascending and `<= data.len()`;
/// segment `i` spans `[cuts[i-1], cuts[i])` with implicit first/last cuts
/// at `0` and `data.len()`.
///
/// # Panics
///
/// Panics if `cuts` is not ascending or exceeds `data.len()`.
pub fn par_segments_mut<T, F>(data: &mut [T], cuts: &[usize], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let mut segments: Vec<(usize, &mut [T])> = Vec::with_capacity(cuts.len() + 1);
    let mut rest = data;
    let mut consumed = 0;
    for (i, &cut) in cuts.iter().enumerate() {
        assert!(cut >= consumed, "cuts must be ascending");
        let (seg, tail) = rest.split_at_mut(cut - consumed);
        segments.push((i, seg));
        rest = tail;
        consumed = cut;
    }
    segments.push((cuts.len(), rest));

    let threads = thread_count().min(segments.len());
    if threads <= 1 {
        for (i, seg) in segments {
            f(i, seg);
        }
        return;
    }
    let group_len = segments.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        let mut iter = segments.into_iter();
        loop {
            let group: Vec<(usize, &mut [T])> = iter.by_ref().take(group_len).collect();
            if group.is_empty() {
                break;
            }
            handles.push(s.spawn(move || {
                for (i, seg) in group {
                    f(i, seg);
                }
            }));
        }
        for h in handles {
            h.join().expect("ktudc-par worker panicked");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(items.clone(), |x| x * 3);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        assert_eq!(par_map(Vec::<u64>::new(), |x| x), Vec::<u64>::new());
        assert_eq!(par_map(vec![7u64], |x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_slice_passes_correct_indices() {
        let items: Vec<u32> = (0..257).collect();
        let out = par_map_slice(&items, |i, &x| (i as u32, x));
        for (i, (idx, x)) in out.iter().enumerate() {
            assert_eq!(*idx as usize, i);
            assert_eq!(*x as usize, i);
        }
    }

    #[test]
    fn par_segments_mut_covers_disjointly() {
        let mut data = vec![0u8; 100];
        par_segments_mut(&mut data, &[10, 10, 55], |i, seg| {
            for b in seg {
                *b += 1 + i as u8;
            }
        });
        // Segment 1 is empty (cuts 10,10); every element written exactly once.
        assert!(data[..10].iter().all(|&b| b == 1));
        assert!(data[10..55].iter().all(|&b| b == 3));
        assert!(data[55..].iter().all(|&b| b == 4));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn par_segments_mut_rejects_descending_cuts() {
        let mut data = vec![0u8; 10];
        par_segments_mut(&mut data, &[5, 3], |_, _| {});
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }
}
