//! Scoped-thread data parallelism for ktudc.
//!
//! rayon cannot be vendored in the offline build, so the hot loops in the
//! checker and explorer parallelize through this crate instead: ordered
//! `par_map` over owned items or slices, and `par_segments_mut` for
//! mutating disjoint sub-slices (e.g. per-run word ranges of a bit table).
//!
//! All functions preserve sequential semantics exactly — results are
//! returned in input order and each worker owns a contiguous range — so
//! flipping the `threads` feature (or setting `KTUDC_THREADS=1`) changes
//! wall-clock time only, never output. With the `threads` feature off,
//! every helper runs inline on the calling thread.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;

pub use pool::{Pool, PoolStats, SubmitError};

/// Worker count: `KTUDC_THREADS` env override if set, else the machine's
/// available parallelism. Always at least 1.
#[must_use]
pub fn thread_count() -> usize {
    if !cfg!(feature = "threads") {
        return 1;
    }
    if let Ok(s) = std::env::var("KTUDC_THREADS") {
        if let Ok(n) = s.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over owned `items` in input order, splitting the work across
/// threads when that is enabled and worthwhile.
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = thread_count().min(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Contiguous chunks, one per worker; concatenating in chunk order
    // restores input order.
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut rest = items;
    while rest.len() > chunk_len {
        let tail = rest.split_off(chunk_len);
        chunks.push(rest);
        rest = tail;
    }
    chunks.push(rest);
    let f = &f;
    let parts: Vec<Vec<U>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ktudc-par worker panicked"))
            .collect()
    });
    parts.into_iter().flatten().collect()
}

/// What a [`par_map_steal`] call did: how many workers ran and how many
/// items were taken from a sibling's share rather than the taker's own.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Worker threads that participated.
    pub workers: usize,
    /// Items a worker claimed from another worker's share. Zero when the
    /// work divided evenly; rising counts mean uneven item costs were
    /// actually rebalanced instead of serializing on the slowest chunk.
    pub steals: u64,
}

/// Like [`par_map`], but with work stealing: items are striped across
/// per-worker deques and an idle worker steals from busy siblings instead
/// of going home early. Results still come back in **input order** and
/// the output is identical to `par_map`'s for any thread count — only the
/// schedule differs.
///
/// Use this instead of [`par_map`] when item costs are wildly uneven
/// (e.g. explorer subtrees, where one subtree can hold most of the run
/// tree): contiguous chunking makes wall-clock time the *sum* of the
/// unluckiest worker's items, stealing makes it track the single largest
/// item. The deques sit behind one mutex — the items this repo feeds here
/// are orders of magnitude coarser than a lock round-trip.
pub fn par_map_steal<T, U, F>(items: Vec<T>, f: F) -> (Vec<U>, StealStats)
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    let workers = thread_count().min(items.len());
    if workers <= 1 {
        let out: Vec<U> = items.into_iter().map(&f).collect();
        return (
            out,
            StealStats {
                workers: 1,
                steals: 0,
            },
        );
    }
    // Stripe indexed items across per-worker deques: worker w starts with
    // items w, w+workers, w+2·workers, … so early (often larger) items
    // spread across workers instead of all landing on worker 0.
    let mut queues: Vec<VecDeque<(usize, T)>> = (0..workers).map(|_| VecDeque::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        queues[i % workers].push_back((i, item));
    }
    let queues = Mutex::new(queues);
    let steals = AtomicU64::new(0);
    let f = &f;
    let queues = &queues;
    let steals = &steals;
    let mut parts: Vec<Vec<(usize, U)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|me| {
                s.spawn(move || {
                    let mut out: Vec<(usize, U)> = Vec::new();
                    loop {
                        // Claim under the lock, compute outside it.
                        let claimed = {
                            let mut qs = queues.lock().expect("steal-map lock poisoned");
                            if let Some(item) = qs[me].pop_front() {
                                Some(item)
                            } else {
                                let victim = (1..workers)
                                    .map(|off| (me + off) % workers)
                                    .find(|&v| !qs[v].is_empty());
                                victim.map(|v| {
                                    // Steal the victim's *last* item: its
                                    // owner works front-to-back, so the
                                    // back is what it would reach latest.
                                    let item = qs[v].pop_back().expect("victim checked nonempty");
                                    steals.fetch_add(1, Ordering::Relaxed);
                                    item
                                })
                            }
                        };
                        match claimed {
                            Some((i, item)) => out.push((i, f(item))),
                            None => return out,
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ktudc-par worker panicked"))
            .collect()
    });
    let mut indexed: Vec<(usize, U)> = parts.drain(..).flatten().collect();
    indexed.sort_by_key(|&(i, _)| i);
    (
        indexed.into_iter().map(|(_, u)| u).collect(),
        StealStats {
            workers,
            steals: steals.load(Ordering::Relaxed),
        },
    )
}

/// Maps `f` over `items` by reference, in input order. `f` also receives
/// the item's index.
pub fn par_map_slice<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = thread_count().min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let f = &f;
    let parts: Vec<Vec<U>> = std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .enumerate()
            .map(|(ci, chunk)| {
                s.spawn(move || {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(j, t)| f(ci * chunk_len + j, t))
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ktudc-par worker panicked"))
            .collect()
    });
    parts.into_iter().flatten().collect()
}

/// Splits `data` at the given ascending cut points and runs `f` on each
/// segment (with its index) — segments are disjoint, so workers mutate
/// without synchronization. `cuts` must be ascending and `<= data.len()`;
/// segment `i` spans `[cuts[i-1], cuts[i])` with implicit first/last cuts
/// at `0` and `data.len()`.
///
/// # Panics
///
/// Panics if `cuts` is not ascending or exceeds `data.len()`.
pub fn par_segments_mut<T, F>(data: &mut [T], cuts: &[usize], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let mut segments: Vec<(usize, &mut [T])> = Vec::with_capacity(cuts.len() + 1);
    let mut rest = data;
    let mut consumed = 0;
    for (i, &cut) in cuts.iter().enumerate() {
        assert!(cut >= consumed, "cuts must be ascending");
        let (seg, tail) = rest.split_at_mut(cut - consumed);
        segments.push((i, seg));
        rest = tail;
        consumed = cut;
    }
    segments.push((cuts.len(), rest));

    let threads = thread_count().min(segments.len());
    if threads <= 1 {
        for (i, seg) in segments {
            f(i, seg);
        }
        return;
    }
    let group_len = segments.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        let mut iter = segments.into_iter();
        loop {
            let group: Vec<(usize, &mut [T])> = iter.by_ref().take(group_len).collect();
            if group.is_empty() {
                break;
            }
            handles.push(s.spawn(move || {
                for (i, seg) in group {
                    f(i, seg);
                }
            }));
        }
        for h in handles {
            h.join().expect("ktudc-par worker panicked");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(items.clone(), |x| x * 3);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        assert_eq!(par_map(Vec::<u64>::new(), |x| x), Vec::<u64>::new());
        assert_eq!(par_map(vec![7u64], |x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_steal_matches_par_map_output() {
        let items: Vec<u64> = (0..1017).collect();
        let (out, stats) = par_map_steal(items.clone(), |x| x * 7 + 1);
        assert_eq!(out, items.iter().map(|x| x * 7 + 1).collect::<Vec<_>>());
        assert!(stats.workers >= 1);
        let (empty, _) = par_map_steal(Vec::<u64>::new(), |x| x);
        assert_eq!(empty, Vec::<u64>::new());
        let (one, stats) = par_map_steal(vec![9u64], |x| x + 1);
        assert_eq!(one, vec![10]);
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.steals, 0);
    }

    #[cfg(feature = "threads")]
    #[test]
    fn par_map_steal_rebalances_uneven_items() {
        if thread_count() < 2 {
            return; // single-core host: nothing to steal
        }
        // One item dwarfs the rest; with striping its owner is pinned on
        // it, so every other item on that owner's deque must be stolen.
        let items: Vec<u64> = (0..256).collect();
        let (out, stats) = par_map_steal(items, |x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            x
        });
        assert_eq!(out.len(), 256);
        assert!(
            stats.steals > 0,
            "siblings must steal the pinned worker's backlog"
        );
    }

    #[test]
    fn par_map_slice_passes_correct_indices() {
        let items: Vec<u32> = (0..257).collect();
        let out = par_map_slice(&items, |i, &x| (i as u32, x));
        for (i, (idx, x)) in out.iter().enumerate() {
            assert_eq!(*idx as usize, i);
            assert_eq!(*x as usize, i);
        }
    }

    #[test]
    fn par_segments_mut_covers_disjointly() {
        let mut data = vec![0u8; 100];
        par_segments_mut(&mut data, &[10, 10, 55], |i, seg| {
            for b in seg {
                *b += 1 + i as u8;
            }
        });
        // Segment 1 is empty (cuts 10,10); every element written exactly once.
        assert!(data[..10].iter().all(|&b| b == 1));
        assert!(data[10..55].iter().all(|&b| b == 3));
        assert!(data[55..].iter().all(|&b| b == 4));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn par_segments_mut_rejects_descending_cuts() {
        let mut data = vec![0u8; 10];
        par_segments_mut(&mut data, &[5, 3], |_, _| {});
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }
}
