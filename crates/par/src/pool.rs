//! A bounded worker pool with per-worker deques and work stealing.
//!
//! The `par_map` family in this crate is built for one-shot fork/join over
//! a known work list; a daemon needs the opposite shape — a fixed set of
//! worker threads draining an *open-ended* stream of jobs. [`Pool`]
//! provides that with two properties the service layer relies on:
//!
//! * **Explicit backpressure** — the queue has a hard capacity and
//!   [`Pool::try_execute`] fails fast with [`SubmitError::Full`] instead of
//!   buffering without bound. The caller turns that into a typed
//!   `overloaded` response; the pool never blocks a submitter.
//! * **Draining shutdown** — [`Pool::shutdown`] closes the queue to new
//!   jobs, lets the workers finish everything already accepted (queued and
//!   in flight), and joins them before returning.
//!
//! # Work stealing
//!
//! Jobs land round-robin on **per-worker deques** instead of one shared
//! FIFO. A worker services its own deque LIFO (newest first — the job
//! whose inputs are still cache-warm) and, when its deque runs dry, steals
//! from a sibling's deque FIFO (oldest first — the job that has waited
//! longest and is least likely to be touched by its owner soon). This is
//! the classic deque discipline (Blumofe–Leiserson); it keeps deep, uneven
//! job streams from serializing behind a single queue while preserving the
//! pool's external semantics exactly: every accepted job runs once, and
//! capacity bounds the *total* queued jobs across all deques. Steals are
//! counted and surfaced via [`Pool::stats`] for observability.
//!
//! All deques sit behind one mutex — pool jobs are coarse (an explorer
//! subtree, a serve request), so contention on the lock is dwarfed by job
//! runtime; what stealing buys is *placement*, not lock-freedom.
//!
//! Unlike the `par_map` helpers, the pool always spawns real threads — it
//! exists to serve concurrent callers, so it is independent of the
//! `threads` feature (which only governs the fork/join helpers).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A job: any one-shot closure.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a submission was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; retry later or shed the request.
    Full,
    /// The pool is shutting down and accepts no new work.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full => f.write_str("worker pool queue is full"),
            SubmitError::Closed => f.write_str("worker pool is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A point-in-time snapshot of the pool's load, for stats/health
/// reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Jobs queued across all per-worker deques, not yet started.
    pub queued: usize,
    /// Jobs popped by workers but not yet finished.
    pub in_flight: usize,
    /// Total queued-job capacity.
    pub capacity: usize,
    /// Jobs a worker took from a sibling's deque since the pool started.
    /// A rising count under load means the stealing path is actually
    /// balancing uneven work, not just sitting there.
    pub steals: u64,
    /// The deepest single per-worker deque right now — a skew indicator
    /// (`deepest_queue` far above `queued / workers` means one worker is
    /// a hotspot and siblings will be stealing from it).
    pub deepest_queue: usize,
}

struct PoolState {
    /// One deque per worker. The owner pops its back (LIFO); thieves pop a
    /// victim's front (FIFO). Submissions round-robin across deques.
    queues: Vec<VecDeque<Job>>,
    /// Total jobs across all deques (kept so capacity checks and
    /// `queue_depth` do not scan).
    queued: usize,
    /// Jobs popped but not yet finished, tracked so shutdown can certify a
    /// complete drain.
    in_flight: usize,
    /// Lifetime count of cross-deque steals.
    steals: u64,
    /// Round-robin cursor for submissions.
    next: usize,
    closed: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signaled when a job arrives, a job finishes, or the pool closes.
    signal: Condvar,
}

/// A fixed-size worker pool over bounded per-worker deques with stealing.
pub struct Pool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    capacity: usize,
}

impl Pool {
    /// Spawns `workers` threads (at least 1), each with its own deque; the
    /// deques together hold at most `capacity` pending jobs (at least 1).
    #[must_use]
    pub fn new(workers: usize, capacity: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queues: (0..workers).map(|_| VecDeque::new()).collect(),
                queued: 0,
                in_flight: 0,
                steals: 0,
                next: 0,
                closed: false,
            }),
            signal: Condvar::new(),
        });
        let workers = (0..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, me))
            })
            .collect();
        Pool {
            shared,
            workers,
            capacity: capacity.max(1),
        }
    }

    /// Enqueues a job, failing fast when the queues are at total capacity
    /// or the pool is closed.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] at capacity, [`SubmitError::Closed`] after
    /// [`Pool::shutdown`] began.
    pub fn try_execute<F>(&self, job: F) -> Result<(), SubmitError>
    where
        F: FnOnce() + Send + 'static,
    {
        let mut state = self.shared.state.lock().expect("pool lock poisoned");
        if state.closed {
            return Err(SubmitError::Closed);
        }
        if state.queued >= self.capacity {
            return Err(SubmitError::Full);
        }
        let slot = state.next % state.queues.len();
        state.next = state.next.wrapping_add(1);
        state.queues[slot].push_back(Box::new(job));
        state.queued += 1;
        drop(state);
        self.shared.signal.notify_one();
        Ok(())
    }

    /// Number of jobs queued (across all deques) but not yet started.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().expect("pool lock poisoned").queued
    }

    /// Number of jobs popped by workers but not yet finished.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("pool lock poisoned")
            .in_flight
    }

    /// The total queue capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime count of cross-deque steals.
    #[must_use]
    pub fn steals(&self) -> u64 {
        self.shared.state.lock().expect("pool lock poisoned").steals
    }

    /// A consistent snapshot of the pool's load (one lock acquisition, so
    /// the fields are mutually coherent, unlike separate accessor calls).
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        let state = self.shared.state.lock().expect("pool lock poisoned");
        PoolStats {
            workers: state.queues.len(),
            queued: state.queued,
            in_flight: state.in_flight,
            capacity: self.capacity,
            steals: state.steals,
            deepest_queue: state.queues.iter().map(VecDeque::len).max().unwrap_or(0),
        }
    }

    /// Closes the queue, drains every accepted job (queued and in flight),
    /// and joins the workers. New submissions fail with
    /// [`SubmitError::Closed`] as soon as this is called.
    pub fn shutdown(mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock poisoned");
            state.closed = true;
        }
        self.shared.signal.notify_all();
        for w in self.workers.drain(..) {
            w.join().expect("pool worker panicked");
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // A dropped (not shut down) pool still drains: close and join.
        {
            let mut state = self.shared.state.lock().expect("pool lock poisoned");
            state.closed = true;
        }
        self.shared.signal.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, me: usize) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool lock poisoned");
            loop {
                // Own deque first, newest job first (LIFO).
                if let Some(job) = state.queues[me].pop_back() {
                    state.queued -= 1;
                    state.in_flight += 1;
                    break job;
                }
                // Dry: scan siblings from the next index around, stealing
                // their oldest job (FIFO) so owner and thief stay at
                // opposite ends of the deque.
                let n = state.queues.len();
                let victim = (1..n)
                    .map(|off| (me + off) % n)
                    .find(|&v| !state.queues[v].is_empty());
                if let Some(v) = victim {
                    let job = state.queues[v]
                        .pop_front()
                        .expect("victim checked nonempty");
                    state.queued -= 1;
                    state.in_flight += 1;
                    state.steals += 1;
                    break job;
                }
                if state.closed {
                    return;
                }
                state = shared.signal.wait(state).expect("pool lock poisoned");
            }
        };
        job();
        let mut state = shared.state.lock().expect("pool lock poisoned");
        state.in_flight -= 1;
        drop(state);
        // Wake shutdown waiters (and idle peers) so drain progress is seen.
        shared.signal.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_every_accepted_job() {
        let pool = Pool::new(4, 64);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            pool.try_execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn rejects_when_full_then_recovers() {
        let pool = Pool::new(1, 1);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        // Occupy the single worker until released.
        pool.try_execute(move || {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv().unwrap();
        assert_eq!(pool.in_flight(), 1);
        // Fill the queue slot, then overflow it.
        pool.try_execute(|| {}).unwrap();
        let overflow = pool.try_execute(|| {});
        assert_eq!(overflow, Err(SubmitError::Full));
        assert_eq!(pool.queue_depth(), 1);
        // After releasing the worker, capacity frees up again.
        release_tx.send(()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if pool.try_execute(|| {}).is_ok() {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "queue never drained");
            std::thread::sleep(Duration::from_millis(1));
        }
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_and_in_flight_work() {
        let pool = Pool::new(2, 32);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let c = Arc::clone(&counter);
            pool.try_execute(move || {
                std::thread::sleep(Duration::from_millis(2));
                c.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        // Every job accepted before shutdown completed.
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn closed_pool_rejects_submissions() {
        let pool = Pool::new(1, 4);
        let shared = Arc::clone(&pool.shared);
        pool.shutdown();
        // The pool value is consumed; verify through the shared state that
        // a late submission would be refused.
        assert!(shared.state.lock().unwrap().closed);
    }

    #[test]
    fn idle_workers_steal_a_busy_siblings_backlog() {
        // 4 workers, but every deque except one is starved: submissions
        // round-robin, so park 3 workers on blocking jobs first, then pile
        // quick jobs up. The only way the backlog drains in time is by
        // stealing across deques.
        let pool = Pool::new(4, 64);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Arc::new(Mutex::new(release_rx));
        let parked = Arc::new(AtomicUsize::new(0));
        for _ in 0..3 {
            let rx = Arc::clone(&release_rx);
            let parked = Arc::clone(&parked);
            pool.try_execute(move || {
                parked.fetch_add(1, Ordering::SeqCst);
                rx.lock().unwrap().recv().unwrap();
            })
            .unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while parked.load(Ordering::SeqCst) < 3 {
            assert!(std::time::Instant::now() < deadline, "workers never parked");
            std::thread::sleep(Duration::from_millis(1));
        }
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..40 {
            let d = Arc::clone(&done);
            pool.try_execute(move || {
                d.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        // One free worker, 40 jobs spread over 4 deques: it must steal
        // roughly 3/4 of them from siblings.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while done.load(Ordering::SeqCst) < 40 {
            assert!(
                std::time::Instant::now() < deadline,
                "backlog never drained"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        let stats = pool.stats();
        assert!(stats.steals > 0, "draining siblings' deques must steal");
        assert_eq!(stats.workers, 4);
        for _ in 0..3 {
            release_tx.send(()).unwrap();
        }
        pool.shutdown();
    }

    #[test]
    fn stats_snapshot_is_coherent() {
        let pool = Pool::new(2, 8);
        let stats = pool.stats();
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.capacity, 8);
        assert_eq!(stats.queued, 0);
        assert_eq!(stats.in_flight, 0);
        assert_eq!(stats.deepest_queue, 0);
        pool.shutdown();
    }

    #[test]
    fn error_display() {
        assert!(SubmitError::Full.to_string().contains("full"));
        assert!(SubmitError::Closed.to_string().contains("shut down"));
    }
}
