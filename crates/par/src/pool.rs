//! A bounded-queue worker pool for long-lived services.
//!
//! The `par_map` family in this crate is built for one-shot fork/join over
//! a known work list; a daemon needs the opposite shape — a fixed set of
//! worker threads draining an *open-ended* stream of jobs. [`Pool`]
//! provides that with two properties the service layer relies on:
//!
//! * **Explicit backpressure** — the queue has a hard capacity and
//!   [`Pool::try_execute`] fails fast with [`SubmitError::Full`] instead of
//!   buffering without bound. The caller turns that into a typed
//!   `overloaded` response; the pool never blocks a submitter.
//! * **Draining shutdown** — [`Pool::shutdown`] closes the queue to new
//!   jobs, lets the workers finish everything already accepted (queued and
//!   in flight), and joins them before returning.
//!
//! Unlike the `par_map` helpers, the pool always spawns real threads — it
//! exists to serve concurrent callers, so it is independent of the
//! `threads` feature (which only governs the fork/join helpers).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A job: any one-shot closure.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a submission was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; retry later or shed the request.
    Full,
    /// The pool is shutting down and accepts no new work.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full => f.write_str("worker pool queue is full"),
            SubmitError::Closed => f.write_str("worker pool is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct PoolState {
    jobs: VecDeque<Job>,
    /// Jobs popped but not yet finished, tracked so shutdown can certify a
    /// complete drain.
    in_flight: usize,
    closed: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signaled when a job arrives, a job finishes, or the pool closes.
    signal: Condvar,
}

/// A fixed-size worker pool over a bounded FIFO job queue.
pub struct Pool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    capacity: usize,
}

impl Pool {
    /// Spawns `workers` threads (at least 1) sharing a queue that holds at
    /// most `capacity` pending jobs (at least 1).
    #[must_use]
    pub fn new(workers: usize, capacity: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                jobs: VecDeque::new(),
                in_flight: 0,
                closed: false,
            }),
            signal: Condvar::new(),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Pool {
            shared,
            workers,
            capacity: capacity.max(1),
        }
    }

    /// Enqueues a job, failing fast when the queue is at capacity or the
    /// pool is closed.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] at capacity, [`SubmitError::Closed`] after
    /// [`Pool::shutdown`] began.
    pub fn try_execute<F>(&self, job: F) -> Result<(), SubmitError>
    where
        F: FnOnce() + Send + 'static,
    {
        let mut state = self.shared.state.lock().expect("pool lock poisoned");
        if state.closed {
            return Err(SubmitError::Closed);
        }
        if state.jobs.len() >= self.capacity {
            return Err(SubmitError::Full);
        }
        state.jobs.push_back(Box::new(job));
        drop(state);
        self.shared.signal.notify_one();
        Ok(())
    }

    /// Number of jobs queued but not yet started.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("pool lock poisoned")
            .jobs
            .len()
    }

    /// Number of jobs popped by workers but not yet finished.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("pool lock poisoned")
            .in_flight
    }

    /// The queue capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Closes the queue, drains every accepted job (queued and in flight),
    /// and joins the workers. New submissions fail with
    /// [`SubmitError::Closed`] as soon as this is called.
    pub fn shutdown(mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock poisoned");
            state.closed = true;
        }
        self.shared.signal.notify_all();
        for w in self.workers.drain(..) {
            w.join().expect("pool worker panicked");
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // A dropped (not shut down) pool still drains: close and join.
        {
            let mut state = self.shared.state.lock().expect("pool lock poisoned");
            state.closed = true;
        }
        self.shared.signal.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool lock poisoned");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    state.in_flight += 1;
                    break job;
                }
                if state.closed {
                    return;
                }
                state = shared.signal.wait(state).expect("pool lock poisoned");
            }
        };
        job();
        let mut state = shared.state.lock().expect("pool lock poisoned");
        state.in_flight -= 1;
        drop(state);
        // Wake shutdown waiters (and idle peers) so drain progress is seen.
        shared.signal.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_every_accepted_job() {
        let pool = Pool::new(4, 64);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            pool.try_execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn rejects_when_full_then_recovers() {
        let pool = Pool::new(1, 1);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        // Occupy the single worker until released.
        pool.try_execute(move || {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv().unwrap();
        assert_eq!(pool.in_flight(), 1);
        // Fill the queue slot, then overflow it.
        pool.try_execute(|| {}).unwrap();
        let overflow = pool.try_execute(|| {});
        assert_eq!(overflow, Err(SubmitError::Full));
        assert_eq!(pool.queue_depth(), 1);
        // After releasing the worker, capacity frees up again.
        release_tx.send(()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if pool.try_execute(|| {}).is_ok() {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "queue never drained");
            std::thread::sleep(Duration::from_millis(1));
        }
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_and_in_flight_work() {
        let pool = Pool::new(2, 32);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let c = Arc::clone(&counter);
            pool.try_execute(move || {
                std::thread::sleep(Duration::from_millis(2));
                c.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        // Every job accepted before shutdown completed.
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn closed_pool_rejects_submissions() {
        let pool = Pool::new(1, 4);
        let shared = Arc::clone(&pool.shared);
        pool.shutdown();
        // The pool value is consumed; verify through the shared state that
        // a late submission would be refused.
        assert!(shared.state.lock().unwrap().closed);
    }

    #[test]
    fn error_display() {
        assert!(SubmitError::Full.to_string().contains("full"));
        assert!(SubmitError::Closed.to_string().contains("shut down"));
    }
}
