//! The formula language of §2.3.
//!
//! Formulas are built from primitives about events ([`Prim`]), boolean
//! connectives, the temporal operators `✷` / `✸`, and knowledge operators
//! `K_p`. Constructors are provided as combinators so specifications read
//! close to the paper's notation:
//!
//! ```
//! use ktudc_epistemic::Formula;
//! use ktudc_model::{ActionId, ProcessId};
//!
//! let p = ProcessId::new(0);
//! let q = ProcessId::new(1);
//! let alpha = ActionId::new(p, 0);
//!
//! // K_q init_p(α) ∨ crash(q), eventually:
//! let phi: Formula<u8> = Formula::eventually(Formula::or(vec![
//!     Formula::knows(q, Formula::initiated(alpha)),
//!     Formula::crashed(q),
//! ]));
//! assert!(phi.to_string().contains("K_p1"));
//! ```

use ktudc_model::{ActionId, ProcessId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Primitive propositions, interpreted over a cut "in the obvious way":
/// a primitive holds at `(r, m)` iff the matching event appears in the
/// relevant history prefix. All primitives are *stable* (once true, forever
/// true) because histories only grow.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Prim<M> {
    /// `send_from(to, msg)` appears in `from`'s history.
    Sent {
        /// Sender.
        from: ProcessId,
        /// Destination.
        to: ProcessId,
        /// Payload.
        msg: M,
    },
    /// `recv_by(from, msg)` appears in `by`'s history.
    Received {
        /// Receiver.
        by: ProcessId,
        /// Claimed sender.
        from: ProcessId,
        /// Payload.
        msg: M,
    },
    /// `crash(p)`: the process has crashed.
    Crashed(ProcessId),
    /// `do_p(α)` appears in `p`'s history.
    Did {
        /// The executing process.
        p: ProcessId,
        /// The action.
        action: ActionId,
    },
    /// `init_p(α)` appears in the initiator's history (the initiator is
    /// `action.initiator()`; no other process may initiate).
    Initiated(ActionId),
    /// `q ∈ Suspects_p(r, m)` — the §2.2 derived suspicion state. Unlike
    /// the event-existence primitives this one is **not** stable (a newer
    /// report may drop `q`).
    Suspects {
        /// The suspecting process.
        p: ProcessId,
        /// The suspected process.
        q: ProcessId,
    },
}

impl<M: fmt::Debug> fmt::Debug for Prim<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Prim::Sent { from, to, msg } => write!(f, "sent_{from}({to}, {msg:?})"),
            Prim::Received { by, from, msg } => write!(f, "recv_{by}({from}, {msg:?})"),
            Prim::Crashed(p) => write!(f, "crash({p})"),
            Prim::Did { p, action } => write!(f, "do_{p}({action})"),
            Prim::Initiated(a) => write!(f, "init_{}({a})", a.initiator()),
            Prim::Suspects { p, q } => write!(f, "{q}∈Suspects_{p}"),
        }
    }
}

/// A formula of the epistemic-temporal language.
///
/// Formulas serialize (via the workspace serde layer) in externally-tagged
/// form — e.g. `{"Knows":[0,{"Prim":{"Crashed":2}}]}` — so they can travel
/// over the `ktudc-serve` wire; a round-trip test below pins the encoding.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Formula<M> {
    /// Truth.
    True,
    /// A primitive proposition.
    Prim(Prim<M>),
    /// Negation.
    Not(Box<Formula<M>>),
    /// Finite conjunction (`True` when empty).
    And(Vec<Formula<M>>),
    /// Finite disjunction (`¬True` when empty).
    Or(Vec<Formula<M>>),
    /// `✷φ`: φ holds from now through the horizon.
    Always(Box<Formula<M>>),
    /// `✸φ`: φ holds at some time from now through the horizon.
    Eventually(Box<Formula<M>>),
    /// `K_p φ`: φ holds at every point of the system `p` cannot
    /// distinguish from here.
    Knows(ProcessId, Box<Formula<M>>),
}

impl<M> Formula<M> {
    /// `¬φ`.
    #[must_use]
    // An associated constructor, not a `self` method — `Formula::not(f)`
    // reads as the connective and cannot collide with `std::ops::Not`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(phi: Formula<M>) -> Self {
        Formula::Not(Box::new(phi))
    }

    /// `⋀ conjuncts`.
    #[must_use]
    pub fn and(conjuncts: Vec<Formula<M>>) -> Self {
        Formula::And(conjuncts)
    }

    /// `⋁ disjuncts`.
    #[must_use]
    pub fn or(disjuncts: Vec<Formula<M>>) -> Self {
        Formula::Or(disjuncts)
    }

    /// `φ ⇒ ψ` (sugar for `¬φ ∨ ψ`).
    #[must_use]
    pub fn implies(phi: Formula<M>, psi: Formula<M>) -> Self {
        Formula::Or(vec![Formula::not(phi), psi])
    }

    /// `φ ⇔ ψ`.
    #[must_use]
    pub fn iff(phi: Formula<M>, psi: Formula<M>) -> Self
    where
        M: Clone,
    {
        Formula::And(vec![
            Formula::implies(phi.clone(), psi.clone()),
            Formula::implies(psi, phi),
        ])
    }

    /// `✷φ`.
    #[must_use]
    pub fn always(phi: Formula<M>) -> Self {
        Formula::Always(Box::new(phi))
    }

    /// `✸φ`.
    #[must_use]
    pub fn eventually(phi: Formula<M>) -> Self {
        Formula::Eventually(Box::new(phi))
    }

    /// `K_p φ`.
    #[must_use]
    pub fn knows(p: ProcessId, phi: Formula<M>) -> Self {
        Formula::Knows(p, Box::new(phi))
    }

    /// `crash(p)`.
    #[must_use]
    pub fn crashed(p: ProcessId) -> Self {
        Formula::Prim(Prim::Crashed(p))
    }

    /// `init(α)` (performed by `α`'s owner).
    #[must_use]
    pub fn initiated(action: ActionId) -> Self {
        Formula::Prim(Prim::Initiated(action))
    }

    /// `do_p(α)`.
    #[must_use]
    pub fn did(p: ProcessId, action: ActionId) -> Self {
        Formula::Prim(Prim::Did { p, action })
    }

    /// `send_from(to, msg)`.
    #[must_use]
    pub fn sent(from: ProcessId, to: ProcessId, msg: M) -> Self {
        Formula::Prim(Prim::Sent { from, to, msg })
    }

    /// `recv_by(from, msg)`.
    #[must_use]
    pub fn received(by: ProcessId, from: ProcessId, msg: M) -> Self {
        Formula::Prim(Prim::Received { by, from, msg })
    }

    /// `q ∈ Suspects_p`.
    #[must_use]
    pub fn suspects(p: ProcessId, q: ProcessId) -> Self {
        Formula::Prim(Prim::Suspects { p, q })
    }

    /// Number of nodes in the formula tree (used for cache sizing and
    /// testing).
    #[must_use]
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::Prim(_) => 1,
            Formula::Not(f)
            | Formula::Always(f)
            | Formula::Eventually(f)
            | Formula::Knows(_, f) => 1 + f.size(),
            Formula::And(fs) | Formula::Or(fs) => 1 + fs.iter().map(Formula::size).sum::<usize>(),
        }
    }
}

impl<M: fmt::Debug> fmt::Debug for Formula<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "⊤"),
            Formula::Prim(p) => write!(f, "{p:?}"),
            Formula::Not(inner) => write!(f, "¬{inner:?}"),
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, x) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{x:?}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, x) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{x:?}")?;
                }
                write!(f, ")")
            }
            Formula::Always(inner) => write!(f, "✷{inner:?}"),
            Formula::Eventually(inner) => write!(f, "✸{inner:?}"),
            Formula::Knows(p, inner) => write!(f, "K_{p}{inner:?}"),
        }
    }
}

impl<M: fmt::Debug> fmt::Display for Formula<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn combinators_build_expected_shapes() {
        let alpha = ActionId::new(p(0), 0);
        let f: Formula<u8> = Formula::implies(
            Formula::initiated(alpha),
            Formula::eventually(Formula::or(vec![
                Formula::did(p(0), alpha),
                Formula::crashed(p(0)),
            ])),
        );
        assert_eq!(f.size(), 7);
        match &f {
            Formula::Or(parts) => assert_eq!(parts.len(), 2),
            other => panic!("implies should desugar to Or, got {other:?}"),
        }
    }

    #[test]
    fn display_notation() {
        let alpha = ActionId::new(p(1), 2);
        let f: Formula<&str> = Formula::knows(
            p(0),
            Formula::always(Formula::not(Formula::initiated(alpha))),
        );
        assert_eq!(f.to_string(), "K_p0✷¬init_p1(a1.2)");
        let g: Formula<&str> = Formula::suspects(p(0), p(1));
        assert_eq!(g.to_string(), "p1∈Suspects_p0");
        let h: Formula<&str> = Formula::and(vec![Formula::True, Formula::crashed(p(2))]);
        assert_eq!(h.to_string(), "(⊤ ∧ crash(p2))");
    }

    #[test]
    fn formulas_are_hashable_and_comparable() {
        use std::collections::HashSet;
        let a: Formula<u8> = Formula::crashed(p(0));
        let b: Formula<u8> = Formula::crashed(p(0));
        let c: Formula<u8> = Formula::crashed(p(1));
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut set = HashSet::new();
        set.insert(a);
        set.insert(b);
        set.insert(c);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn wire_serialization_round_trips_and_is_pinned() {
        let alpha = ActionId::new(p(1), 2);
        let formulas: Vec<Formula<u8>> = vec![
            Formula::True,
            Formula::knows(
                p(0),
                Formula::eventually(Formula::or(vec![
                    Formula::sent(p(0), p(1), 7),
                    Formula::not(Formula::initiated(alpha)),
                ])),
            ),
            Formula::always(Formula::and(vec![
                Formula::suspects(p(0), p(1)),
                Formula::did(p(2), alpha),
            ])),
        ];
        for f in &formulas {
            let json = serde_json::to_string(f).unwrap();
            let back: Formula<u8> = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, f, "round-trip through {json}");
        }
        // Shape pin: the serve wire depends on this exact encoding.
        let f: Formula<u8> = Formula::knows(p(0), Formula::crashed(p(2)));
        assert_eq!(
            serde_json::to_string(&f).unwrap(),
            r#"{"Knows":[0,{"Prim":{"Crashed":2}}]}"#
        );
    }

    #[test]
    fn iff_is_two_implications() {
        let a: Formula<u8> = Formula::crashed(p(0));
        let b: Formula<u8> = Formula::crashed(p(1));
        let f = Formula::iff(a, b);
        assert_eq!(f.size(), 1 + 2 * 4);
    }
}
