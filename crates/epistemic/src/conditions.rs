//! The conditions A1–A5t of §3, as checkable properties of finite systems.
//!
//! Theorems 3.6 and 4.3 assume the system under analysis satisfies:
//!
//! * **A1** — failure independence: any failure pattern that occurs at all
//!   can strike as a continuation of any compatible point;
//! * **A2** — schedulable mass-crash with continued indistinguishability
//!   (this is the condition that *precludes reliable communication*);
//! * **A3** — `K_q init_p(α)` is insensitive to failure by `q`;
//! * **A4** — the full-information-flavoured "if nobody in `S` knows φ,
//!   some simultaneously-possible point refutes φ";
//! * **A5t** — every failure set of size ≤ t occurs in some run.
//!
//! On finite systems these checks are exact *for the system given*: over an
//! exhaustively enumerated system they decide whether the modelled context
//! satisfies the condition (up to the horizon); over a sampled system a
//! *failure* is witness-backed and sound, while a *pass* may be an artifact
//! of under-sampling. All checkers are `O(polynomial)` in the number of
//! points but with high degree (A2 is quartic in the number of runs) —
//! intended for the explorer's small systems.

use crate::checker::ModelChecker;
use crate::formula::Formula;
use ktudc_model::{ActionId, ProcSet, ProcessId, System, Time};
use std::hash::Hash;

/// Why a condition check failed; carries a human-readable witness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConditionViolation {
    /// Which condition failed ("A1", "A2", …).
    pub condition: &'static str,
    /// Description of the witnessing configuration.
    pub witness: String,
}

impl std::fmt::Display for ConditionViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} violated: {}", self.condition, self.witness)
    }
}

impl std::error::Error for ConditionViolation {}

fn fail(condition: &'static str, witness: String) -> Result<(), ConditionViolation> {
    Err(ConditionViolation { condition, witness })
}

/// **A1** (failure independence): if some run crashes exactly the set `S`,
/// then from every point at which no process outside `S` has crashed, some
/// run of the system extends the point with final faulty set exactly `S`.
///
/// Horizon points (`m = horizon`) are excluded: a failure pattern that has
/// not struck by the final tick has no room left to strike, which is a
/// finite-prefix artifact rather than a property of the modelled context.
///
/// # Errors
///
/// Returns the first `(S, point)` pair with no witnessing extension.
pub fn check_a1<M: Eq>(system: &System<M>) -> Result<(), ConditionViolation> {
    let fault_sets: Vec<ProcSet> = {
        let mut v: Vec<ProcSet> = system.runs().iter().map(|r| r.faulty()).collect();
        v.sort();
        v.dedup();
        v
    };
    for &s in &fault_sets {
        for (ri, run) in system.runs().iter().enumerate() {
            for m in 0..run.horizon() {
                if !run.crashed_by(m).is_subset_of(s) {
                    continue;
                }
                let extended = system
                    .runs()
                    .iter()
                    .any(|r2| r2.faulty() == s && run.is_extended_by(m, r2));
                if !extended {
                    return fail(
                        "A1",
                        format!("no run with F = {s} extends point (r{ri}, {m})"),
                    );
                }
            }
        }
    }
    Ok(())
}

/// **A2** (mass-crash schedulability / unreliable communication): for any
/// two runs with the same faulty set `F` that are indistinguishable to all
/// correct processes at time `m`, there exist extensions in which all of `F`
/// has crashed by `m + 1` and which stay indistinguishable to the correct
/// processes forever after (through the horizon).
///
/// # Errors
///
/// Returns the first `(r1, r2, m)` with no witnessing pair of extensions.
pub fn check_a2<M: Eq>(system: &System<M>) -> Result<(), ConditionViolation> {
    let runs = system.runs();
    let n = system.n();
    for (i1, r1) in runs.iter().enumerate() {
        for (i2, r2) in runs.iter().enumerate() {
            let f = r1.faulty();
            if r2.faulty() != f {
                continue;
            }
            let correct = f.complement(n);
            let max_m = r1.horizon().min(r2.horizon());
            for m in 0..max_m {
                let indist = correct.iter().all(|q| r1.indistinguishable(m, r2, m, q));
                if !indist {
                    continue;
                }
                let witnessed = runs.iter().any(|e1| {
                    if !(r1.is_extended_by(m, e1)
                        && f.is_subset_of(e1.crashed_by(m + 1))
                        && e1.faulty() == f)
                    {
                        return false;
                    }
                    runs.iter().any(|e2| {
                        r2.is_extended_by(m, e2)
                            && f.is_subset_of(e2.crashed_by(m + 1))
                            && e2.faulty() == f
                            && (m..=e1.horizon().min(e2.horizon())).all(|m2| {
                                correct.iter().all(|q| e1.indistinguishable(m2, e2, m2, q))
                            })
                    })
                });
                if !witnessed {
                    return fail(
                        "A2",
                        format!(
                            "no mass-crash extensions for runs r{i1}/r{i2} at time {m} (F = {f})"
                        ),
                    );
                }
            }
        }
    }
    Ok(())
}

/// **A3**: `K_q init_p(α)` is insensitive to failure by `q`, for every `q`
/// — crashing teaches a process nothing about initiations.
///
/// # Errors
///
/// Returns the offending `q`.
pub fn check_a3<M: Clone + Eq + Hash>(
    mc: &mut ModelChecker<'_, M>,
    action: ActionId,
) -> Result<(), ConditionViolation> {
    for q in ProcessId::all(mc.system().n()) {
        let f = Formula::knows(q, Formula::initiated(action));
        if !mc.is_insensitive_to_failure(&f, q) {
            return fail(
                "A3",
                format!("K_{q} init({action}) changes truth value across {q}'s crash"),
            );
        }
    }
    Ok(())
}

/// **A4** (full-information condition): for the given stable,
/// failure-insensitive formula `phi` local to `owner`, whenever every
/// process of some nonempty `S` fails to know `phi` at `(r, m)`, there must
/// be a point `(r′, m)` agreeing with `(r, m)` on all of `S`'s local
/// states, where every process outside `S` has a (possibly crash-capped)
/// prefix of its `(r, m)` state, and where `phi` is false.
///
/// The premises (stability, locality, insensitivity) are verified first;
/// a formula failing them vacuously satisfies A4's guard and the checker
/// reports that as an error, since calling A4 on such a formula is a bug.
///
/// # Errors
///
/// Returns the first `(point, S)` pair with no witnessing point, or a
/// premise failure.
pub fn check_a4<M: Clone + Eq + Hash>(
    mc: &mut ModelChecker<'_, M>,
    phi: &Formula<M>,
    owner: ProcessId,
) -> Result<(), ConditionViolation> {
    if !mc.is_stable(phi) {
        return fail("A4", "premise failure: formula is not stable".to_string());
    }
    if !mc.is_local(phi, owner) {
        return fail(
            "A4",
            format!("premise failure: formula is not local to {owner}"),
        );
    }
    if !mc.is_insensitive_to_failure(phi, owner) {
        return fail(
            "A4",
            format!("premise failure: formula is sensitive to failure by {owner}"),
        );
    }
    let n = mc.system().n();
    let full = ProcSet::full(n);
    let subsets: Vec<ProcSet> = full.subsets().filter(|s| !s.is_empty()).collect();
    let not_phi = Formula::not(phi.clone());
    for ri in 0..mc.system().len() {
        let horizon = mc.system().run(ri).horizon();
        for m in 0..=horizon {
            let pt = ktudc_model::Point::new(ri, m);
            for &s in &subsets {
                let nobody_knows = s
                    .iter()
                    .all(|q| !mc.eval(&Formula::knows(q, phi.clone()), pt));
                if !nobody_knows {
                    continue;
                }
                if !a4_witness_exists(mc, &not_phi, ri, m, s) {
                    return fail(
                        "A4",
                        format!("no witness point for (r{ri}, {m}) with S = {s}"),
                    );
                }
            }
        }
    }
    Ok(())
}

fn a4_witness_exists<M: Clone + Eq + Hash>(
    mc: &mut ModelChecker<'_, M>,
    not_phi: &Formula<M>,
    ri: usize,
    m: Time,
    s: ProcSet,
) -> bool {
    let n = mc.system().n();
    let candidates: Vec<usize> = (0..mc.system().len())
        .filter(|&rj| mc.system().run(rj).horizon() >= m)
        .collect();
    for rj in candidates {
        let pt = ktudc_model::Point::new(rj, m);
        // (c) ¬φ there.
        if !mc.eval(not_phi, pt) {
            continue;
        }
        let r = mc.system().run(ri);
        let r2 = mc.system().run(rj);
        // (a) agreement on S.
        if !s.iter().all(|q| r.indistinguishable(m, r2, m, q)) {
            continue;
        }
        // (b) prefix-or-prefix-plus-crash outside S.
        let ok_outside = ProcessId::all(n).filter(|q| !s.contains(*q)).all(|q| {
            let h = r.history_at(q, m);
            let h2 = r2.history_at(q, m);
            if h2.len() <= h.len() && h2 == &h[..h2.len()] {
                return true;
            }
            if !h2.is_empty() && h2.len() - 1 <= h.len() {
                let (init, last) = h2.split_at(h2.len() - 1);
                return last[0].is_crash() && init == &h[..init.len()];
            }
            false
        });
        if ok_outside {
            return true;
        }
    }
    false
}

/// **A5t**: for every `S ⊆ Proc` with `|S| ≤ t`, some run has `F(r) = S`.
///
/// # Errors
///
/// Returns the first missing failure set.
pub fn check_a5<M: Eq>(system: &System<M>, t: usize) -> Result<(), ConditionViolation> {
    let n = system.n();
    for s in ProcSet::full(n).subsets() {
        if s.len() > t {
            continue;
        }
        if !system.runs().iter().any(|r| r.faulty() == s) {
            return fail("A5", format!("no run with F(r) = {s} (t = {t})"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktudc_model::{Event, Run, RunBuilder};
    use ktudc_sim::{explore, ExploreConfig, ProtoAction, Protocol};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// A protocol that does nothing; the explorer supplies crash/stutter
    /// nondeterminism.
    #[derive(Clone, Debug)]
    struct Idle;

    impl<M> Protocol<M> for Idle {
        fn start(&mut self, _me: ProcessId, _n: usize) {}
        fn observe(&mut self, _t: Time, _e: &Event<M>) {}
        fn next_action(&mut self, _t: Time) -> Option<ProtoAction<M>> {
            None
        }
        fn quiescent(&self) -> bool {
            true
        }
    }

    fn explored_idle(n: usize, horizon: Time, t: usize) -> System<u8> {
        explore::<u8, _, _>(&ExploreConfig::new(n, horizon).max_failures(t), |_| Idle).system
    }

    #[test]
    fn a1_holds_for_exhaustive_idle_system() {
        let sys = explored_idle(2, 3, 2);
        check_a1(&sys).unwrap();
    }

    #[test]
    fn a1_fails_when_extensions_are_pruned() {
        // Hand-build: one run where p1 crashes at 1, one where nobody ever
        // crashes — but NO run where p1 crashes later than 1. From the
        // crash-free run's point (r, 2) the pattern {p1} can no longer
        // strike, violating A1.
        let mut b = RunBuilder::<u8>::new(2);
        b.append(p(1), 1, Event::Crash).unwrap();
        let crash_early = b.finish(4);
        let calm = RunBuilder::<u8>::new(2).finish(4);
        let sys = System::new(vec![crash_early, calm]);
        let err = check_a1(&sys).unwrap_err();
        assert_eq!(err.condition, "A1");
    }

    #[test]
    fn a5_counts_failure_patterns() {
        let sys = explored_idle(2, 2, 1);
        check_a5(&sys, 1).unwrap();
        // t = 2 requires the doubleton {p0, p1}, which budget 1 forbids.
        assert!(check_a5(&sys, 2).is_err());
    }

    #[test]
    fn a2_holds_for_exhaustive_idle_system() {
        let sys = explored_idle(2, 3, 1);
        check_a2(&sys).unwrap();
    }

    #[test]
    fn a2_fails_without_prompt_crash_extensions() {
        // Runs: p1 crashes at tick 3 (only), plus the calm run. At m = 0
        // the two runs with F = {p1}... actually pair (crash_at_3,
        // crash_at_3) at m = 0 needs an extension with the crash by m+1 = 1,
        // which does not exist.
        let mut b = RunBuilder::<u8>::new(2);
        b.append(p(1), 3, Event::Crash).unwrap();
        let late = b.finish(4);
        let sys = System::new(vec![late]);
        let err = check_a2(&sys).unwrap_err();
        assert_eq!(err.condition, "A2");
    }

    #[test]
    fn a3_holds_in_explored_system_with_optional_initiation() {
        let alpha = ActionId::new(p(0), 0);
        let cfg = ExploreConfig::new(2, 3)
            .max_failures(1)
            .initiate(1, alpha)
            .optional_initiations();
        let sys = explore::<u8, _, _>(&cfg, |_| Idle).system;
        let mut mc = ModelChecker::new(&sys);
        check_a3(&mut mc, alpha).unwrap();
    }

    #[test]
    fn a3_fails_with_forced_initiation() {
        // A forced initiation makes init(α) derivable from elapsed time, so
        // crashing (which proves time has passed) *teaches* p1 that α was
        // initiated — exactly the out-of-band knowledge A3 forbids. This
        // documents why the A-conditions need asynchronous workloads.
        let alpha = ActionId::new(p(0), 0);
        let cfg = ExploreConfig::new(2, 3).max_failures(1).initiate(1, alpha);
        let sys = explore::<u8, _, _>(&cfg, |_| Idle).system;
        let mut mc = ModelChecker::new(&sys);
        let err = check_a3(&mut mc, alpha).unwrap_err();
        assert_eq!(err.condition, "A3");
    }

    #[test]
    fn a4_premise_failures_are_reported() {
        // A run whose suspicion is later retracted makes Suspects unstable.
        use ktudc_model::SuspectReport;
        let mut b = RunBuilder::<u8>::new(2);
        b.append_suspect(p(0), 1, SuspectReport::Standard(ProcSet::singleton(p(1))))
            .unwrap();
        b.append_suspect(p(0), 2, SuspectReport::Standard(ProcSet::new()))
            .unwrap();
        let sys = System::new(vec![b.finish(3)]);
        let mut mc = ModelChecker::new(&sys);
        let phi: Formula<u8> = Formula::suspects(p(0), p(1));
        let err = check_a4(&mut mc, &phi, p(0)).unwrap_err();
        assert!(err.witness.contains("stable"));

        // crash(p0) is local to p0 and stable but failure-*sensitive*.
        let sys = explored_idle(2, 2, 1);
        let mut mc = ModelChecker::new(&sys);
        let phi: Formula<u8> = Formula::crashed(p(0));
        let err = check_a4(&mut mc, &phi, p(0)).unwrap_err();
        assert!(err.witness.contains("sensitive"));
    }

    #[test]
    fn a4_holds_for_optional_initiation_in_explored_system() {
        let alpha = ActionId::new(p(0), 0);
        let cfg = ExploreConfig::new(2, 3)
            .max_failures(1)
            .initiate(2, alpha)
            .optional_initiations();
        let sys = explore::<u8, _, _>(&cfg, |_| Idle).system;
        let mut mc = ModelChecker::new(&sys);
        // init(α) is stable, local to p0, and insensitive to p0's failure;
        // with optional initiation, a point where nobody knows init(α)
        // always has a simultaneous sibling where it never happened.
        let phi: Formula<u8> = Formula::initiated(alpha);
        check_a4(&mut mc, &phi, p(0)).unwrap();
    }

    #[test]
    fn a4_detects_out_of_band_knowledge() {
        // A system where p1's state encodes φ = init(α) without any prefix
        // point refuting it: both runs have p0 initiating at tick 1, and p1
        // "knows" nothing... construct a failing case: a single run where
        // init happens at tick 1 and S = {p1} never learns it. The witness
        // needs a point (r′, m) with ¬init — but with only one run, at
        // m ≥ 1 no such point exists, and (b) forbids borrowing earlier
        // times. So A4 fails for this degenerate one-run system.
        let alpha = ActionId::new(p(0), 0);
        let mut b = RunBuilder::<u8>::new(2);
        b.append(p(0), 1, Event::Init { action: alpha }).unwrap();
        let sys = System::new(vec![b.finish(3)]);
        let mut mc = ModelChecker::new(&sys);
        let phi: Formula<u8> = Formula::initiated(alpha);
        let err = check_a4(&mut mc, &phi, p(0)).unwrap_err();
        assert_eq!(err.condition, "A4");
        assert!(err.witness.contains("no witness"));
    }

    #[test]
    fn violation_display() {
        let v = ConditionViolation {
            condition: "A1",
            witness: "details".into(),
        };
        assert_eq!(v.to_string(), "A1 violated: details");
    }

    #[test]
    fn exhaustive_system_runs_are_all_wellformed() {
        let sys = explored_idle(2, 3, 2);
        for run in sys.runs() {
            run.check_conditions(0).unwrap();
        }
        // All runs share the declared horizon.
        assert!(sys.runs().iter().all(|r: &Run<u8>| r.horizon() == 3));
    }
}
