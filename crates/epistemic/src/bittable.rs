//! Packed truth tables: one bit per point of the system.
//!
//! The checker's previous representation was `Vec<bool>` — one byte per
//! point, every connective a per-point loop. [`BitTable`] packs points into
//! `u64` words so that boolean connectives are word-wide (64 points per
//! instruction) and the `K_p`/temporal clauses become range scans over
//! masked words.
//!
//! # Layout
//!
//! Bits are **word-aligned per run**: run `ri`'s points start at word
//! `word_off[ri]`, bit `m` of the run at word `word_off[ri] + m / 64`,
//! bit position `m % 64` (LSB first). Aligning each run to a word boundary
//! costs at most 63 padding bits per run and buys two things:
//!
//! * temporal operators (`✷`, `✸`) and per-run fills never cross run
//!   boundaries inside a word, and
//! * disjoint runs occupy disjoint *words*, so per-run passes can hand out
//!   `&mut` word segments to worker threads with no synchronization
//!   (see `ktudc_par::par_segments_mut`).
//!
//! Padding bits are **don't-care**: operations never read them (all range
//! scans mask the final partial word) and `not_inplace` may flip them.
//! Equality, counting, and extraction mask them off.

use ktudc_model::{IndistinguishableBlock, System, Time};
use std::sync::Arc;

/// The bit layout of a system's points: per-run point counts and word
/// offsets. Shared (via `Arc`) by every table of one checker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Layout {
    /// Points per run (`horizon + 1`).
    run_points: Vec<usize>,
    /// First word of each run, plus a final entry = total words.
    word_off: Vec<usize>,
    /// Total points (without padding).
    points: usize,
}

impl Layout {
    /// Builds a layout from per-run point counts.
    #[must_use]
    pub fn from_counts(run_points: Vec<usize>) -> Self {
        let mut word_off = Vec::with_capacity(run_points.len() + 1);
        let mut words = 0usize;
        let mut points = 0usize;
        for &c in &run_points {
            word_off.push(words);
            words += c.div_ceil(64);
            points += c;
        }
        word_off.push(words);
        Layout {
            run_points,
            word_off,
            points,
        }
    }

    /// The layout of `system`'s points.
    #[must_use]
    pub fn for_system<M>(system: &System<M>) -> Self {
        Self::from_counts(
            system
                .runs()
                .iter()
                .map(|r| r.horizon() as usize + 1)
                .collect(),
        )
    }

    /// Number of runs.
    #[must_use]
    pub fn run_count(&self) -> usize {
        self.run_points.len()
    }

    /// Points in run `ri`.
    #[must_use]
    pub fn run_points(&self, ri: usize) -> usize {
        self.run_points[ri]
    }

    /// Total points across runs (padding excluded).
    #[must_use]
    pub fn point_count(&self) -> usize {
        self.points
    }

    /// Total words of a table with this layout.
    #[must_use]
    pub fn word_count(&self) -> usize {
        *self.word_off.last().expect("word_off is never empty")
    }

    /// Word range of run `ri`.
    #[must_use]
    pub fn word_range(&self, ri: usize) -> std::ops::Range<usize> {
        self.word_off[ri]..self.word_off[ri + 1]
    }

    /// Interior word boundaries between consecutive runs — the cut list for
    /// [`ktudc_par::par_segments_mut`] over a table's words.
    #[must_use]
    pub fn interior_word_cuts(&self) -> Vec<usize> {
        self.word_off[1..self.word_off.len() - 1].to_vec()
    }

    /// Mask of valid bits in the last word of a run of `points` bits
    /// (`u64::MAX` when the run fills its last word exactly).
    fn tail_mask(points: usize) -> u64 {
        match points % 64 {
            0 => u64::MAX,
            rem => (1u64 << rem) - 1,
        }
    }
}

/// A truth table over all points of a system, packed one bit per point.
#[derive(Clone, Debug)]
pub struct BitTable {
    layout: Arc<Layout>,
    words: Vec<u64>,
}

impl BitTable {
    /// All-false table.
    #[must_use]
    pub fn zeros(layout: Arc<Layout>) -> Self {
        let words = vec![0u64; layout.word_count()];
        BitTable { layout, words }
    }

    /// All-true (or all-false) table.
    #[must_use]
    pub fn filled(layout: Arc<Layout>, value: bool) -> Self {
        let fill = if value { u64::MAX } else { 0 };
        let words = vec![fill; layout.word_count()];
        BitTable { layout, words }
    }

    /// The table's layout.
    #[must_use]
    pub fn layout(&self) -> &Arc<Layout> {
        &self.layout
    }

    /// Bytes of backing storage (for memory accounting).
    #[must_use]
    pub fn byte_size(&self) -> usize {
        self.words.len() * 8
    }

    /// The bit at point `(run, m)`.
    #[must_use]
    pub fn get(&self, run: usize, m: Time) -> bool {
        let m = m as usize;
        debug_assert!(m < self.layout.run_points(run));
        let w = self.layout.word_off[run] + m / 64;
        (self.words[w] >> (m % 64)) & 1 == 1
    }

    /// Sets ticks `from ..= to` of `run` to `value`, word-wise.
    ///
    /// # Panics
    ///
    /// Panics (in debug) if the range exceeds the run.
    pub fn fill_range(&mut self, run: usize, from: Time, to: Time, value: bool) {
        let base = self.layout.word_off[run];
        debug_assert!((to as usize) < self.layout.run_points(run) && from <= to);
        fill_bit_range(&mut self.words[base..], from as usize, to as usize, value);
    }

    /// Whether every bit of ticks `from ..= to` of `run` is set.
    #[must_use]
    pub fn all_ones_range(&self, run: usize, from: Time, to: Time) -> bool {
        let base = self.layout.word_off[run];
        debug_assert!((to as usize) < self.layout.run_points(run) && from <= to);
        all_ones_bit_range(&self.words[base..], from as usize, to as usize)
    }

    /// Whether every bit of every block is set — the `K_p` conjunction over
    /// one equivalence class.
    #[must_use]
    pub fn all_ones_blocks(&self, blocks: &[IndistinguishableBlock]) -> bool {
        blocks
            .iter()
            .all(|b| self.all_ones_range(b.run, b.from, b.to))
    }

    /// Word-wise negation (padding bits flip too — they are don't-care).
    pub fn not_inplace(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
    }

    /// Word-wise conjunction with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the layouts differ.
    pub fn and_inplace(&mut self, other: &BitTable) {
        assert!(self.layout == other.layout, "layout mismatch");
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Word-wise disjunction with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the layouts differ.
    pub fn or_inplace(&mut self, other: &BitTable) {
        assert!(self.layout == other.layout, "layout mismatch");
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `✷` (always): `out[m] = self[m] ∧ self[m+1] ∧ … ∧ self[horizon]`,
    /// per run. A run's result is one range fill: everything strictly after
    /// its last zero bit. Runs are processed in parallel.
    #[must_use]
    pub fn always(&self) -> BitTable {
        let mut out = BitTable::zeros(Arc::clone(&self.layout));
        let cuts = self.layout.interior_word_cuts();
        let layout = &self.layout;
        let words = &self.words;
        ktudc_par::par_segments_mut(&mut out.words, &cuts, |ri, seg| {
            let bits = layout.run_points(ri);
            let src = &words[layout.word_range(ri)];
            match last_zero_bit(src, bits) {
                None => fill_bit_range(seg, 0, bits - 1, true),
                Some(z) if z + 1 < bits => fill_bit_range(seg, z + 1, bits - 1, true),
                Some(_) => {}
            }
        });
        out
    }

    /// `✸` (eventually): `out[m] = self[m] ∨ … ∨ self[horizon]`, per run —
    /// everything up to the run's last one bit. Runs are processed in
    /// parallel.
    #[must_use]
    pub fn eventually(&self) -> BitTable {
        let mut out = BitTable::zeros(Arc::clone(&self.layout));
        let cuts = self.layout.interior_word_cuts();
        let layout = &self.layout;
        let words = &self.words;
        ktudc_par::par_segments_mut(&mut out.words, &cuts, |ri, seg| {
            let bits = layout.run_points(ri);
            let src = &words[layout.word_range(ri)];
            if let Some(o) = last_one_bit(src, bits) {
                fill_bit_range(seg, 0, o, true);
            }
        });
        out
    }

    /// The earliest point (run-major, then tick) whose bit is clear, or
    /// `None` if every point is set. Scans word-wise, so an all-ones table
    /// costs one pass over the words, not one branch per point.
    #[must_use]
    pub fn first_zero(&self) -> Option<(usize, Time)> {
        for ri in 0..self.layout.run_count() {
            let bits = self.layout.run_points(ri);
            let src = &self.words[self.layout.word_range(ri)];
            for (wi, &w) in src.iter().enumerate() {
                let masked = if wi + 1 == src.len() {
                    w | !Layout::tail_mask(bits)
                } else {
                    w
                };
                if masked != u64::MAX {
                    let bit = (!masked).trailing_zeros() as usize;
                    return Some((ri, (wi * 64 + bit) as Time));
                }
            }
        }
        None
    }

    /// Number of set bits (padding excluded).
    #[must_use]
    pub fn count_ones(&self) -> usize {
        let mut total = 0usize;
        for ri in 0..self.layout.run_count() {
            let bits = self.layout.run_points(ri);
            let src = &self.words[self.layout.word_range(ri)];
            for (wi, &w) in src.iter().enumerate() {
                let masked = if wi + 1 == src.len() {
                    w & Layout::tail_mask(bits)
                } else {
                    w
                };
                total += masked.count_ones() as usize;
            }
        }
        total
    }

    /// Unpacks to one `bool` per point, in `(run, m)` order — the reference
    /// checker's representation, for differential comparison.
    #[must_use]
    pub fn to_bools(&self) -> Vec<bool> {
        let mut out = Vec::with_capacity(self.layout.point_count());
        for ri in 0..self.layout.run_count() {
            for m in 0..self.layout.run_points(ri) {
                out.push(self.get(ri, m as Time));
            }
        }
        out
    }

    /// Packs one `bool` per point, in `(run, m)` order.
    ///
    /// # Panics
    ///
    /// Panics if `bools` has the wrong length for the layout.
    #[must_use]
    pub fn from_bools(layout: Arc<Layout>, bools: &[bool]) -> Self {
        assert_eq!(bools.len(), layout.point_count(), "length mismatch");
        let mut t = BitTable::zeros(layout);
        let mut i = 0;
        for ri in 0..t.layout.run_count() {
            for m in 0..t.layout.run_points(ri) {
                if bools[i] {
                    let w = t.layout.word_off[ri] + m / 64;
                    t.words[w] |= 1 << (m % 64);
                }
                i += 1;
            }
        }
        t
    }
}

impl PartialEq for BitTable {
    /// Equality over valid bits only (padding ignored).
    fn eq(&self, other: &Self) -> bool {
        if self.layout != other.layout {
            return false;
        }
        for ri in 0..self.layout.run_count() {
            let bits = self.layout.run_points(ri);
            let a = &self.words[self.layout.word_range(ri)];
            let b = &other.words[other.layout.word_range(ri)];
            for wi in 0..a.len() {
                let mask = if wi + 1 == a.len() {
                    Layout::tail_mask(bits)
                } else {
                    u64::MAX
                };
                if (a[wi] ^ b[wi]) & mask != 0 {
                    return false;
                }
            }
        }
        true
    }
}

impl Eq for BitTable {}

/// Sets or clears bits `from ..= to` of a word segment (`from`/`to` are bit
/// indices local to the segment).
fn fill_bit_range(words: &mut [u64], from: usize, to: usize, value: bool) {
    let (fw, fb) = (from / 64, from % 64);
    let (tw, tb) = (to / 64, to % 64);
    let head = u64::MAX << fb;
    let tail = u64::MAX >> (63 - tb);
    if fw == tw {
        let mask = head & tail;
        if value {
            words[fw] |= mask;
        } else {
            words[fw] &= !mask;
        }
        return;
    }
    if value {
        words[fw] |= head;
        for w in &mut words[fw + 1..tw] {
            *w = u64::MAX;
        }
        words[tw] |= tail;
    } else {
        words[fw] &= !head;
        for w in &mut words[fw + 1..tw] {
            *w = 0;
        }
        words[tw] &= !tail;
    }
}

/// Whether bits `from ..= to` of a word segment are all ones.
fn all_ones_bit_range(words: &[u64], from: usize, to: usize) -> bool {
    let (fw, fb) = (from / 64, from % 64);
    let (tw, tb) = (to / 64, to % 64);
    let head = u64::MAX << fb;
    let tail = u64::MAX >> (63 - tb);
    if fw == tw {
        let mask = head & tail;
        return words[fw] & mask == mask;
    }
    if words[fw] & head != head || words[tw] & tail != tail {
        return false;
    }
    words[fw + 1..tw].iter().all(|&w| w == u64::MAX)
}

/// Index of the highest zero bit among the first `bits` bits, if any.
fn last_zero_bit(words: &[u64], bits: usize) -> Option<usize> {
    for (wi, &w) in words.iter().enumerate().rev() {
        let valid = if wi + 1 == words.len() {
            Layout::tail_mask(bits)
        } else {
            u64::MAX
        };
        let zeros = !w & valid;
        if zeros != 0 {
            return Some(wi * 64 + 63 - zeros.leading_zeros() as usize);
        }
    }
    None
}

/// Index of the highest one bit among the first `bits` bits, if any.
fn last_one_bit(words: &[u64], bits: usize) -> Option<usize> {
    for (wi, &w) in words.iter().enumerate().rev() {
        let valid = if wi + 1 == words.len() {
            Layout::tail_mask(bits)
        } else {
            u64::MAX
        };
        let ones = w & valid;
        if ones != 0 {
            return Some(wi * 64 + 63 - ones.leading_zeros() as usize);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(counts: &[usize]) -> Arc<Layout> {
        Arc::new(Layout::from_counts(counts.to_vec()))
    }

    #[test]
    fn layout_word_alignment() {
        let l = layout(&[5, 64, 65, 1]);
        assert_eq!(l.word_range(0), 0..1);
        assert_eq!(l.word_range(1), 1..2);
        assert_eq!(l.word_range(2), 2..4);
        assert_eq!(l.word_range(3), 4..5);
        assert_eq!(l.word_count(), 5);
        assert_eq!(l.point_count(), 5 + 64 + 65 + 1);
        assert_eq!(l.interior_word_cuts(), vec![1, 2, 4]);
    }

    #[test]
    fn get_set_roundtrip_across_word_boundaries() {
        let l = layout(&[130, 7]);
        let mut t = BitTable::zeros(Arc::clone(&l));
        t.fill_range(0, 62, 66, true);
        t.fill_range(1, 0, 6, true);
        t.fill_range(1, 2, 3, false);
        for m in 0..130u64 {
            assert_eq!(t.get(0, m), (62..=66).contains(&m), "bit {m}");
        }
        for m in 0..7u64 {
            assert_eq!(t.get(1, m), !(2..=3).contains(&m));
        }
        assert_eq!(t.count_ones(), 5 + 5);
    }

    #[test]
    fn boolean_ops_match_scalar() {
        let l = layout(&[100, 3]);
        let bools_a: Vec<bool> = (0..103).map(|i| i % 3 == 0).collect();
        let bools_b: Vec<bool> = (0..103).map(|i| i % 2 == 0).collect();
        let a = BitTable::from_bools(Arc::clone(&l), &bools_a);
        let b = BitTable::from_bools(Arc::clone(&l), &bools_b);

        let mut and = a.clone();
        and.and_inplace(&b);
        let mut or = a.clone();
        or.or_inplace(&b);
        let mut not = a.clone();
        not.not_inplace();

        for i in 0..103 {
            let (ri, m) = if i < 100 { (0, i) } else { (1, i - 100) };
            assert_eq!(and.get(ri, m as Time), bools_a[i] && bools_b[i]);
            assert_eq!(or.get(ri, m as Time), bools_a[i] || bools_b[i]);
            assert_eq!(not.get(ri, m as Time), !bools_a[i]);
        }
        // Double negation restores equality (padding is ignored by ==).
        not.not_inplace();
        assert_eq!(not, a);
    }

    #[test]
    fn temporal_ops_match_scalar() {
        let l = layout(&[70, 70, 5]);
        // Run 0: holes; run 1: all true; run 2: all false.
        let mut bools = vec![true; 145];
        bools[10] = false;
        bools[69] = false; // last tick of run 0 false → always(run 0) all false
        for b in bools.iter_mut().skip(140) {
            *b = false;
        }
        let t = BitTable::from_bools(Arc::clone(&l), &bools);
        let always = t.always();
        let eventually = t.eventually();

        let mut offset = 0;
        for (ri, &points) in [70usize, 70, 5].iter().enumerate() {
            for m in 0..points {
                let scalar_always = (m..points).all(|k| bools[offset + k]);
                let scalar_event = (m..points).any(|k| bools[offset + k]);
                assert_eq!(
                    always.get(ri, m as Time),
                    scalar_always,
                    "always r{ri} m{m}"
                );
                assert_eq!(
                    eventually.get(ri, m as Time),
                    scalar_event,
                    "eventually r{ri} m{m}"
                );
            }
            offset += points;
        }
    }

    #[test]
    fn all_ones_ranges_and_blocks() {
        let l = layout(&[200]);
        let mut t = BitTable::zeros(Arc::clone(&l));
        t.fill_range(0, 50, 180, true);
        assert!(t.all_ones_range(0, 50, 180));
        assert!(t.all_ones_range(0, 64, 128));
        assert!(!t.all_ones_range(0, 49, 60));
        assert!(!t.all_ones_range(0, 170, 181));
        assert!(t.all_ones_range(0, 70, 70));
        let blocks = [
            IndistinguishableBlock {
                run: 0,
                from: 55,
                to: 60,
                len: 1,
            },
            IndistinguishableBlock {
                run: 0,
                from: 100,
                to: 170,
                len: 1,
            },
        ];
        assert!(t.all_ones_blocks(&blocks));
        let bad = [IndistinguishableBlock {
            run: 0,
            from: 0,
            to: 51,
            len: 0,
        }];
        assert!(!t.all_ones_blocks(&bad));
    }

    #[test]
    fn bools_roundtrip() {
        let l = layout(&[66, 1, 64]);
        let bools: Vec<bool> = (0..131).map(|i| (i * 7) % 5 < 2).collect();
        let t = BitTable::from_bools(Arc::clone(&l), &bools);
        assert_eq!(t.to_bools(), bools);
        assert_eq!(t.count_ones(), bools.iter().filter(|&&b| b).count());
    }

    #[test]
    fn filled_tables() {
        let l = layout(&[3, 65]);
        let t = BitTable::filled(Arc::clone(&l), true);
        assert_eq!(t.count_ones(), 68);
        assert!(t.all_ones_range(1, 0, 64));
        let z = BitTable::zeros(l);
        assert_eq!(z.count_ones(), 0);
    }
}
