//! The model checker: global evaluation of epistemic-temporal formulas.
//!
//! [`ModelChecker`] evaluates each distinct subformula to a packed truth
//! table ([`BitTable`]) over *every* point of the system (global model
//! checking). Distinct subformulas are hash-consed to small integer ids and
//! their tables memoized behind `Arc`, so a subformula shared between
//! queries is computed once and its table shared without copying.
//!
//! The `K_p` clause is computed exactly, and *per equivalence class* rather
//! than per point: the system's precomputed `~_p` partition
//! ([`System::class_range`]/[`System::class_blocks`]) gives each class as a
//! handful of contiguous tick ranges, the subformula table is AND-reduced
//! over those ranges word-wise, and the verdict is written back to the
//! whole class with range fills. Classes are independent, so they are
//! evaluated in parallel (`ktudc_par`; sequential when the `parallel`
//! feature is off). Temporal operators are word-level range scans, also
//! parallel across runs. Primitive tables are built from per-run event
//! scans (cheap, `O(events)`) followed by word-wise range fills.
//!
//! The previous per-point scalar evaluator is preserved unchanged in
//! [`crate::reference`] as the differential-testing baseline.

use crate::bittable::{BitTable, Layout};
use crate::formula::{Formula, Prim};
use ktudc_model::budget::{AbortReason, Budget};
use ktudc_model::{
    Event, IndistinguishableBlock, Point, ProcSet, ProcessId, SuspectReport, System, Time,
};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// An epistemic-temporal model checker over one system.
///
/// # Example
///
/// ```
/// use ktudc_epistemic::{Formula, ModelChecker};
/// use ktudc_model::{Event, Point, ProcessId, RunBuilder, System};
///
/// let p0 = ProcessId::new(0);
/// let p1 = ProcessId::new(1);
///
/// // Run A: p1 crashes at tick 1. Run B: nothing happens.
/// let mut b = RunBuilder::<u8>::new(2);
/// b.append(p1, 1, Event::Crash)?;
/// let run_a = b.finish(3);
/// let run_b = RunBuilder::<u8>::new(2).finish(3);
/// let system = System::new(vec![run_a, run_b]);
/// let mut mc = ModelChecker::new(&system);
///
/// // p1 has crashed at (A, 2) — but p0 cannot know it: (B, 2) looks the same.
/// assert!(mc.eval(&Formula::crashed(p1), Point::new(0, 2)));
/// assert!(!mc.eval(&Formula::knows(p0, Formula::crashed(p1)), Point::new(0, 2)));
/// # Ok::<(), ktudc_model::ModelError>(())
/// ```
pub struct ModelChecker<'a, M> {
    system: &'a System<M>,
    layout: Arc<Layout>,
    /// Hash-consing: each distinct subformula gets a dense id on first
    /// sight; `tables[id]` memoizes its truth table.
    ids: HashMap<Formula<M>, u32>,
    tables: Vec<Option<Arc<BitTable>>>,
    /// Per-process `~_p` class structure, gathered once on first use: one
    /// block-slice per equivalence class.
    class_blocks: Vec<Option<Vec<&'a [IndistinguishableBlock]>>>,
}

impl<'a, M: Clone + Eq + Hash> ModelChecker<'a, M> {
    /// Creates a checker over `system`.
    #[must_use]
    pub fn new(system: &'a System<M>) -> Self {
        let n = system.n();
        ModelChecker {
            system,
            layout: Arc::new(Layout::for_system(system)),
            ids: HashMap::new(),
            tables: Vec::new(),
            class_blocks: vec![None; n],
        }
    }

    /// The system under analysis.
    #[must_use]
    pub fn system(&self) -> &'a System<M> {
        self.system
    }

    /// The `~_p` classes of `p`, as one block-slice per class, gathered
    /// once and reused by every `K_p` evaluation.
    fn class_blocks_for(&mut self, p: ProcessId) -> &[&'a [IndistinguishableBlock]] {
        let system = self.system;
        self.class_blocks[p.index()].get_or_insert_with(|| {
            system
                .class_range(p)
                .map(|cid| system.class_blocks(cid))
                .collect()
        })
    }

    /// Evaluates `(R, r, m) ⊨ φ`.
    ///
    /// # Panics
    ///
    /// Panics if the point is out of range for the system.
    pub fn eval(&mut self, formula: &Formula<M>, pt: Point) -> bool {
        self.table(formula).get(pt.run, pt.time)
    }

    /// Checks validity `R ⊨ φ`; on failure returns the first counterexample
    /// point.
    ///
    /// # Errors
    ///
    /// Returns the earliest point (in run order, then time) where `φ` is
    /// false.
    pub fn valid(&mut self, formula: &Formula<M>) -> Result<(), Point> {
        let table = self.table(formula);
        match table.first_zero() {
            None => Ok(()),
            Some((ri, m)) => Err(Point::new(ri, m)),
        }
    }

    /// [`valid`](Self::valid) under a [`Budget`]: table construction polls
    /// the budget (per class for `K_p`, per run for primitives and
    /// temporal operators) and memoized table bytes are charged against
    /// its memory cap. Tables whose construction the budget interrupted
    /// are **not** memoized — a partially evaluated `K_p` table is
    /// garbage, and caching it would silently corrupt every later query
    /// on this checker.
    ///
    /// # Errors
    ///
    /// The outer error is the budget trip; the inner result is the usual
    /// validity verdict with counterexample.
    pub fn valid_budgeted(
        &mut self,
        formula: &Formula<M>,
        budget: &Budget,
    ) -> Result<Result<(), Point>, AbortReason> {
        let table = self.table_budgeted(formula, Some(budget))?;
        Ok(match table.first_zero() {
            None => Ok(()),
            Some((ri, m)) => Err(Point::new(ri, m)),
        })
    }

    /// All points satisfying `φ`.
    pub fn satisfying_points(&mut self, formula: &Formula<M>) -> Vec<Point> {
        let table = self.table(formula);
        let mut out = Vec::with_capacity(table.count_ones());
        for (ri, run) in self.system.runs().iter().enumerate() {
            for m in 0..=run.horizon() {
                if table.get(ri, m) {
                    out.push(Point::new(ri, m));
                }
            }
        }
        out
    }

    /// Whether `φ` is **local to** `p` (§2.3): at every point, `p` knows
    /// whether `φ` holds, i.e. `K_p φ ∨ K_p ¬φ` is valid.
    pub fn is_local(&mut self, formula: &Formula<M>, p: ProcessId) -> bool {
        let f = Formula::or(vec![
            Formula::knows(p, formula.clone()),
            Formula::knows(p, Formula::not(formula.clone())),
        ]);
        self.valid(&f).is_ok()
    }

    /// Whether `φ` is **stable** (§2.3): `φ ⇒ ✷φ` is valid.
    pub fn is_stable(&mut self, formula: &Formula<M>) -> bool {
        let f = Formula::implies(formula.clone(), Formula::always(formula.clone()));
        self.valid(&f).is_ok()
    }

    /// Whether `φ` (local to `q`) is **insensitive to failure by** `q`
    /// (Definition 3.3): whenever `r′_q(m′) = r_q(m) · crash_q`, `φ` has the
    /// same truth value at `(r, m)` and `(r′, m′)`.
    ///
    /// Checked exactly over the system: for each crash event of `q`, the
    /// class of points whose `q`-history is the pre-crash prefix and the
    /// class whose `q`-history is that prefix plus `crash_q` must agree on
    /// `φ`.
    pub fn is_insensitive_to_failure(&mut self, formula: &Formula<M>, q: ProcessId) -> bool {
        let table = self.table(formula);
        for (ri, run) in self.system.runs().iter().enumerate() {
            let Some(crash_tick) = run.crash_time(q) else {
                continue;
            };
            let before = self.system.indistinguishable_blocks(q, ri, crash_tick - 1);
            let after = self.system.indistinguishable_blocks(q, ri, crash_tick);
            let mut values = before
                .iter()
                .chain(after.iter())
                .flat_map(|b| b.points())
                .map(|pt| table.get(pt.run, pt.time));
            let Some(first) = values.next() else { continue };
            if values.any(|v| v != first) {
                return false;
            }
        }
        true
    }

    /// `{q : (R, r, m) ⊨ K_p crash(q)}` — the set used by the paper's
    /// `f(r)` construction (P3 of §3) to define the simulated perfect
    /// detector's reports.
    pub fn knowledge_of_crashes(&mut self, p: ProcessId, pt: Point) -> ProcSet {
        ProcessId::all(self.system.n())
            .filter(|&q| self.eval(&Formula::knows(p, Formula::crashed(q)), pt))
            .collect()
    }

    /// The largest `k` such that `p` *knows* at `pt` that at least `k`
    /// processes of `set` have crashed — i.e. the minimum of
    /// `|crashed ∩ set|` over `pt`'s `~_p`-class. Used by the `f′(r)`
    /// construction (P3′ of §4).
    pub fn max_known_crashed_in(&mut self, p: ProcessId, set: ProcSet, pt: Point) -> usize {
        self.system
            .indistinguishable_blocks(p, pt.run, pt.time)
            .iter()
            .flat_map(|b| b.points())
            .map(|q_pt| {
                self.system
                    .run(q_pt.run)
                    .crashed_by(q_pt.time)
                    .intersection(set)
                    .len()
            })
            .min()
            .unwrap_or(0)
    }

    /// Number of distinct subformula tables memoized so far.
    #[must_use]
    pub fn cached_table_count(&self) -> usize {
        self.tables.iter().filter(|t| t.is_some()).count()
    }

    /// Total bytes of memoized truth tables — the checker's dominant memory
    /// cost. Tables are `Arc`-shared, so this is also the peak: tables are
    /// never copied, only borrowed.
    #[must_use]
    pub fn table_bytes(&self) -> usize {
        self.tables.iter().flatten().map(|t| t.byte_size()).sum()
    }

    /// Computes (or fetches) the truth table of `formula` over all points.
    fn table(&mut self, formula: &Formula<M>) -> Arc<BitTable> {
        match self.table_budgeted(formula, None) {
            Ok(t) => t,
            Err(_) => unreachable!("an unbudgeted evaluation cannot abort"),
        }
    }

    /// [`table`](Self::table) with optional budget polling. A tripped
    /// budget propagates as `Err` *before* the offending table is
    /// memoized: `self.tables` only ever holds fully computed tables.
    fn table_budgeted(
        &mut self,
        formula: &Formula<M>,
        budget: Option<&Budget>,
    ) -> Result<Arc<BitTable>, AbortReason> {
        let id = match self.ids.get(formula) {
            Some(&id) => id as usize,
            None => {
                let id = self.tables.len();
                self.ids.insert(
                    formula.clone(),
                    u32::try_from(id).expect("more than u32::MAX distinct subformulas"),
                );
                self.tables.push(None);
                id
            }
        };
        if let Some(t) = &self.tables[id] {
            return Ok(Arc::clone(t));
        }
        if let Some(b) = budget {
            b.check()?;
        }
        let table = match formula {
            Formula::True => BitTable::filled(Arc::clone(&self.layout), true),
            Formula::Prim(prim) => self.prim_table(prim, budget)?,
            Formula::Not(inner) => {
                let mut t = (*self.table_budgeted(inner, budget)?).clone();
                t.not_inplace();
                t
            }
            Formula::And(parts) => {
                let mut acc = BitTable::filled(Arc::clone(&self.layout), true);
                for part in parts {
                    let t = self.table_budgeted(part, budget)?;
                    acc.and_inplace(&t);
                }
                acc
            }
            Formula::Or(parts) => {
                let mut acc = BitTable::filled(Arc::clone(&self.layout), false);
                for part in parts {
                    let t = self.table_budgeted(part, budget)?;
                    acc.or_inplace(&t);
                }
                acc
            }
            Formula::Always(inner) => self.table_budgeted(inner, budget)?.always(),
            Formula::Eventually(inner) => self.table_budgeted(inner, budget)?.eventually(),
            Formula::Knows(p, inner) => {
                let t = self.table_budgeted(inner, budget)?;
                let layout = Arc::clone(&self.layout);
                knows_table(self.class_blocks_for(*p), layout, &t, budget)?
            }
        };
        if let Some(b) = budget {
            // The table is the checker's dominant memory cost; charge it
            // before memoizing so the cap bounds the cache, and re-check
            // the latch so a trip during construction (e.g. a concurrent
            // cancel) never publishes a suspect table.
            b.charge_memory(table.byte_size() as u64)?;
        }
        let table = Arc::new(table);
        self.tables[id] = Some(Arc::clone(&table));
        Ok(table)
    }

    /// Evaluates a primitive over every point: per run, a cheap event scan
    /// finds where the primitive's value changes, then word-wise fills
    /// paint the ranges. Polls the budget once per run.
    fn prim_table(&self, prim: &Prim<M>, budget: Option<&Budget>) -> Result<BitTable, AbortReason> {
        let mut acc = BitTable::zeros(Arc::clone(&self.layout));
        for (ri, run) in self.system.runs().iter().enumerate() {
            if let Some(b) = budget {
                b.poll()?;
            }
            let horizon = run.horizon();
            match prim {
                Prim::Crashed(p) => {
                    if let Some(c) = run.crash_time(*p) {
                        acc.fill_range(ri, c, horizon, true);
                    }
                }
                Prim::Initiated(action) => {
                    if let Some(t) = first_event_tick(
                        run,
                        action.initiator(),
                        |e| matches!(e, Event::Init { action: a } if a == action),
                    ) {
                        acc.fill_range(ri, t, horizon, true);
                    }
                }
                Prim::Did { p, action } => {
                    if let Some(t) = first_event_tick(
                        run,
                        *p,
                        |e| matches!(e, Event::Do { action: a } if a == action),
                    ) {
                        acc.fill_range(ri, t, horizon, true);
                    }
                }
                Prim::Sent { from, to, msg } => {
                    if let Some(t) = first_event_tick(
                        run,
                        *from,
                        |e| matches!(e, Event::Send { to: q, msg: m } if q == to && m == msg),
                    ) {
                        acc.fill_range(ri, t, horizon, true);
                    }
                }
                Prim::Received { by, from, msg } => {
                    if let Some(t) = first_event_tick(
                        run,
                        *by,
                        |e| matches!(e, Event::Recv { from: q, msg: m } if q == from && m == msg),
                    ) {
                        acc.fill_range(ri, t, horizon, true);
                    }
                }
                Prim::Suspects { p, q } => {
                    // Non-stable: value steps at each standard report. Paint
                    // each maximal true interval.
                    let mut current = false;
                    let mut start: Time = 0;
                    for (t, e) in run.timed_history(*p) {
                        if let Event::Suspect(SuspectReport::Standard(s)) = e {
                            let next = s.contains(*q);
                            if next != current {
                                if current && t > start {
                                    acc.fill_range(ri, start, t - 1, true);
                                }
                                current = next;
                                start = t;
                            }
                        }
                    }
                    if current {
                        acc.fill_range(ri, start, horizon, true);
                    }
                }
            }
        }
        Ok(acc)
    }
}

/// The `K_p` table: for each `~_p` equivalence class, AND the subformula
/// table over the class's tick ranges (word-wise), then paint the verdict
/// over the class. Classes are independent — evaluated in parallel, each
/// worker polling the shared budget once per class; verdicts computed
/// after a trip are discarded wholesale by the error return.
fn knows_table(
    class_blocks: &[&[IndistinguishableBlock]],
    layout: Arc<Layout>,
    inner: &BitTable,
    budget: Option<&Budget>,
) -> Result<BitTable, AbortReason> {
    let verdicts = ktudc_par::par_map_slice(class_blocks, |_, blocks| match budget {
        Some(b) if b.poll().is_err() => false,
        _ => inner.all_ones_blocks(blocks),
    });
    if let Some(reason) = budget.and_then(Budget::tripped) {
        return Err(reason);
    }
    let mut out = BitTable::zeros(layout);
    for (blocks, verdict) in class_blocks.iter().zip(verdicts) {
        if verdict {
            for b in *blocks {
                out.fill_range(b.run, b.from, b.to, true);
            }
        }
    }
    Ok(out)
}

fn first_event_tick<M>(
    run: &ktudc_model::Run<M>,
    p: ProcessId,
    mut pred: impl FnMut(&Event<M>) -> bool,
) -> Option<Time> {
    run.timed_history(p).find_map(|(t, e)| pred(e).then_some(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktudc_model::{ActionId, RunBuilder};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// System of two runs over 2 processes:
    /// * run 0: p0 sends "m" at 1; p1 receives at 2; p1 crashes at 3.
    /// * run 1: p0 sends "m" at 1; nothing else (message lost).
    fn lost_message_system() -> System<&'static str> {
        let mut b = RunBuilder::new(2);
        b.append(p(0), 1, Event::Send { to: p(1), msg: "m" })
            .unwrap();
        b.append(
            p(1),
            2,
            Event::Recv {
                from: p(0),
                msg: "m",
            },
        )
        .unwrap();
        b.append(p(1), 3, Event::Crash).unwrap();
        let r0 = b.finish(4);
        let mut b = RunBuilder::new(2);
        b.append(p(0), 1, Event::Send { to: p(1), msg: "m" })
            .unwrap();
        let r1 = b.finish(4);
        System::new(vec![r0, r1])
    }

    #[test]
    fn primitives_track_events() {
        let sys = lost_message_system();
        let mut mc = ModelChecker::new(&sys);
        let sent = Formula::sent(p(0), p(1), "m");
        assert!(!mc.eval(&sent, Point::new(0, 0)));
        assert!(mc.eval(&sent, Point::new(0, 1)));
        assert!(mc.eval(&sent, Point::new(1, 4)));
        let recv = Formula::received(p(1), p(0), "m");
        assert!(mc.eval(&recv, Point::new(0, 2)));
        assert!(!mc.eval(&recv, Point::new(1, 4)));
        let crash = Formula::crashed(p(1));
        assert!(!mc.eval(&crash, Point::new(0, 2)));
        assert!(mc.eval(&crash, Point::new(0, 3)));
    }

    #[test]
    fn temporal_operators() {
        let sys = lost_message_system();
        let mut mc = ModelChecker::new(&sys);
        let crash = Formula::crashed(p(1));
        // ✸crash(p1) true from the start of run 0, never in run 1.
        assert!(mc.eval(&Formula::eventually(crash.clone()), Point::new(0, 0)));
        assert!(!mc.eval(&Formula::eventually(crash.clone()), Point::new(1, 0)));
        // ✷crash(p1): only from tick 3 of run 0.
        assert!(mc.eval(&Formula::always(crash.clone()), Point::new(0, 3)));
        assert!(!mc.eval(&Formula::always(crash.clone()), Point::new(0, 2)));
        // ✷¬crash(p1) holds everywhere in run 1.
        assert!(mc.eval(&Formula::always(Formula::not(crash)), Point::new(1, 0)));
    }

    #[test]
    fn knowledge_requires_distinguishing_evidence() {
        let sys = lost_message_system();
        let mut mc = ModelChecker::new(&sys);
        let k_crash = Formula::knows(p(0), Formula::crashed(p(1)));
        // p0's history is identical in both runs — it can never know.
        for m in 0..=4 {
            assert!(!mc.eval(&k_crash, Point::new(0, m)), "tick {m}");
        }
        // p1 knows its own receive.
        let k_recv = Formula::knows(p(1), Formula::received(p(1), p(0), "m"));
        assert!(mc.eval(&k_recv, Point::new(0, 2)));
        assert!(!mc.eval(&k_recv, Point::new(1, 2)));
    }

    #[test]
    fn knowledge_axioms_hold() {
        // Veridicality (K_p φ ⇒ φ) and positive introspection
        // (K_p φ ⇒ K_p K_p φ) are validities of the S5-style semantics.
        let sys = lost_message_system();
        let mut mc = ModelChecker::new(&sys);
        let phi = Formula::received(p(1), p(0), "m");
        let k = Formula::knows(p(1), phi.clone());
        mc.valid(&Formula::implies(k.clone(), phi)).unwrap();
        mc.valid(&Formula::implies(
            k.clone(),
            Formula::knows(p(1), k.clone()),
        ))
        .unwrap();
        // Negative introspection: ¬K_p φ ⇒ K_p ¬K_p φ.
        mc.valid(&Formula::implies(
            Formula::not(k.clone()),
            Formula::knows(p(1), Formula::not(k)),
        ))
        .unwrap();
    }

    #[test]
    fn validity_returns_counterexample() {
        let sys = lost_message_system();
        let mut mc = ModelChecker::new(&sys);
        let crash = Formula::crashed(p(1));
        let err = mc.valid(&crash).unwrap_err();
        assert_eq!(err, Point::new(0, 0));
        let sat = mc.satisfying_points(&crash);
        assert_eq!(sat, vec![Point::new(0, 3), Point::new(0, 4)]);
    }

    #[test]
    fn locality_and_stability() {
        let sys = lost_message_system();
        let mut mc = ModelChecker::new(&sys);
        // recv_p1 is local to p1, not to p0.
        let recv = Formula::received(p(1), p(0), "m");
        assert!(mc.is_local(&recv, p(1)));
        assert!(!mc.is_local(&recv, p(0)));
        // K_p φ formulas are local to p (standard property).
        let kf = Formula::knows(p(0), Formula::crashed(p(1)));
        assert!(mc.is_local(&kf, p(0)));
        // Event-existence primitives are stable; Suspects is not in general.
        assert!(mc.is_stable(&recv));
        assert!(mc.is_stable(&Formula::crashed(p(1))));
        assert!(mc.is_stable(&Formula::sent(p(0), p(1), "m")));
    }

    #[test]
    fn suspects_primitive_is_not_stable() {
        let mut b = RunBuilder::<u8>::new(2);
        b.append_suspect(p(0), 1, SuspectReport::Standard(ProcSet::singleton(p(1))))
            .unwrap();
        b.append_suspect(p(0), 3, SuspectReport::Standard(ProcSet::new()))
            .unwrap();
        let sys = System::new(vec![b.finish(5)]);
        let mut mc = ModelChecker::new(&sys);
        let susp = Formula::suspects(p(0), p(1));
        assert!(mc.eval(&susp, Point::new(0, 1)));
        assert!(mc.eval(&susp, Point::new(0, 2)));
        assert!(!mc.eval(&susp, Point::new(0, 3)));
        assert!(!mc.is_stable(&susp));
    }

    #[test]
    fn insensitivity_to_failure() {
        // K_q(recv) is insensitive to q's crash: crashing doesn't teach q
        // anything. Build runs where q receives then crashes vs receives
        // and survives.
        let sys = lost_message_system();
        let mut mc = ModelChecker::new(&sys);
        let k_recv = Formula::knows(p(1), Formula::received(p(1), p(0), "m"));
        assert!(mc.is_insensitive_to_failure(&k_recv, p(1)));
        // crash(p1) itself is maximally *sensitive* to failure by p1.
        assert!(!mc.is_insensitive_to_failure(&Formula::crashed(p(1)), p(1)));
    }

    #[test]
    fn knowledge_of_crashes_and_counting() {
        let sys = lost_message_system();
        let mut mc = ModelChecker::new(&sys);
        // p1 (before crashing) knows nothing about crashes; p0 never does.
        assert!(mc.knowledge_of_crashes(p(0), Point::new(0, 4)).is_empty());
        // p1 at (0,3) has crashed; its class is just itself (a crash event
        // is visible in its own history), so K_p1 crash(p1) holds there.
        assert_eq!(
            mc.knowledge_of_crashes(p(1), Point::new(0, 3)),
            ProcSet::singleton(p(1))
        );
        // Counting: in p0's class at (0,4) there are points with 0 crashes.
        assert_eq!(
            mc.max_known_crashed_in(p(0), ProcSet::full(2), Point::new(0, 4)),
            0
        );
        assert_eq!(
            mc.max_known_crashed_in(p(1), ProcSet::full(2), Point::new(0, 3)),
            1
        );
    }

    #[test]
    fn initiated_and_did_primitives() {
        let alpha = ActionId::new(p(0), 0);
        let mut b = RunBuilder::<u8>::new(2);
        b.append(p(0), 1, Event::Init { action: alpha }).unwrap();
        b.append(p(0), 2, Event::Do { action: alpha }).unwrap();
        let sys = System::new(vec![b.finish(4)]);
        let mut mc = ModelChecker::new(&sys);
        assert!(!mc.eval(&Formula::initiated(alpha), Point::new(0, 0)));
        assert!(mc.eval(&Formula::initiated(alpha), Point::new(0, 1)));
        assert!(!mc.eval(&Formula::did(p(0), alpha), Point::new(0, 1)));
        assert!(mc.eval(&Formula::did(p(0), alpha), Point::new(0, 2)));
        // The initiator knows it initiated.
        assert!(mc.eval(
            &Formula::knows(p(0), Formula::initiated(alpha)),
            Point::new(0, 1)
        ));
    }

    #[test]
    fn caching_is_shared_across_eval_calls() {
        let sys = lost_message_system();
        let mut mc = ModelChecker::new(&sys);
        let f = Formula::knows(p(0), Formula::eventually(Formula::crashed(p(1))));
        let a = mc.eval(&f, Point::new(0, 0));
        let b = mc.eval(&f, Point::new(0, 0));
        assert_eq!(a, b);
        assert!(mc.cached_table_count() >= 3, "subformulas should be cached");
        assert!(mc.table_bytes() > 0);
    }

    #[test]
    fn budgeted_validity_matches_unbudgeted_and_charges_memory() {
        let sys = lost_message_system();
        let mut plain = ModelChecker::new(&sys);
        let mut budgeted = ModelChecker::new(&sys);
        let f = Formula::implies(
            Formula::knows(p(1), Formula::received(p(1), p(0), "m")),
            Formula::received(p(1), p(0), "m"),
        );
        let budget = Budget::unlimited();
        assert_eq!(
            budgeted.valid_budgeted(&f, &budget).unwrap(),
            plain.valid(&f)
        );
        assert!(budget.steps() > 0, "evaluation must poll");
        assert_eq!(
            budget.memory_charged(),
            budgeted.table_bytes() as u64,
            "every memoized table is charged"
        );
    }

    #[test]
    fn tripped_budget_aborts_without_poisoning_the_cache() {
        let sys = lost_message_system();
        let mut mc = ModelChecker::new(&sys);
        let f = Formula::knows(p(0), Formula::eventually(Formula::crashed(p(1))));
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        let reason = mc.valid_budgeted(&f, &budget).unwrap_err();
        assert_eq!(reason, AbortReason::Cancelled);
        assert_eq!(
            mc.cached_table_count(),
            0,
            "no table from the aborted evaluation may be memoized"
        );
        // The checker remains fully usable: a fresh budget answers the
        // same query, identically to an untouched checker.
        let fresh = Budget::unlimited();
        let verdict = mc.valid_budgeted(&f, &fresh).unwrap();
        let mut control = ModelChecker::new(&sys);
        assert_eq!(verdict, control.valid(&f));
    }

    #[test]
    fn memory_cap_aborts_table_construction() {
        let sys = lost_message_system();
        let mut mc = ModelChecker::new(&sys);
        let f = Formula::knows(p(0), Formula::eventually(Formula::crashed(p(1))));
        let budget = Budget::unlimited().with_memory_cap(1);
        let reason = mc.valid_budgeted(&f, &budget).unwrap_err();
        assert_eq!(reason, AbortReason::MemoryLimit);
        assert_eq!(mc.cached_table_count(), 0);
    }

    #[test]
    fn suspects_toggling_paints_correct_intervals() {
        // On-off-on pattern exercises the interval painter.
        let mut b = RunBuilder::<u8>::new(2);
        let q1 = ProcSet::singleton(p(1));
        b.append_suspect(p(0), 1, SuspectReport::Standard(q1))
            .unwrap();
        b.append_suspect(p(0), 2, SuspectReport::Standard(ProcSet::new()))
            .unwrap();
        b.append_suspect(p(0), 4, SuspectReport::Standard(q1))
            .unwrap();
        let sys = System::new(vec![b.finish(6)]);
        let mut mc = ModelChecker::new(&sys);
        let susp = Formula::suspects(p(0), p(1));
        let expected = [false, true, false, false, true, true, true];
        for (m, &want) in expected.iter().enumerate() {
            assert_eq!(mc.eval(&susp, Point::new(0, m as Time)), want, "tick {m}");
        }
    }
}
