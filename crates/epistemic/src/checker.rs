//! The model checker: global evaluation of epistemic-temporal formulas.
//!
//! [`ModelChecker`] evaluates each distinct subformula to a truth table over
//! *every* point of the system (global model checking), caching tables by
//! structural formula equality. The `K_p` clause is computed exactly: the
//! value at a point is the conjunction of the subformula's value over the
//! point's entire `~_p`-equivalence class, found via the
//! [`System`](ktudc_model::System) history index.

use crate::formula::{Formula, Prim};
use ktudc_model::{Event, Point, ProcSet, ProcessId, Run, SuspectReport, System, Time};
use std::collections::HashMap;
use std::hash::Hash;
use std::rc::Rc;

/// An epistemic-temporal model checker over one system.
///
/// # Example
///
/// ```
/// use ktudc_epistemic::{Formula, ModelChecker};
/// use ktudc_model::{Event, Point, ProcessId, RunBuilder, System};
///
/// let p0 = ProcessId::new(0);
/// let p1 = ProcessId::new(1);
///
/// // Run A: p1 crashes at tick 1. Run B: nothing happens.
/// let mut b = RunBuilder::<u8>::new(2);
/// b.append(p1, 1, Event::Crash)?;
/// let run_a = b.finish(3);
/// let run_b = RunBuilder::<u8>::new(2).finish(3);
/// let system = System::new(vec![run_a, run_b]);
/// let mut mc = ModelChecker::new(&system);
///
/// // p1 has crashed at (A, 2) — but p0 cannot know it: (B, 2) looks the same.
/// assert!(mc.eval(&Formula::crashed(p1), Point::new(0, 2)));
/// assert!(!mc.eval(&Formula::knows(p0, Formula::crashed(p1)), Point::new(0, 2)));
/// # Ok::<(), ktudc_model::ModelError>(())
/// ```
pub struct ModelChecker<'a, M> {
    system: &'a System<M>,
    /// Global point index offsets: point `(r, m)` lives at
    /// `offsets[r] + m`.
    offsets: Vec<usize>,
    total: usize,
    cache: HashMap<Formula<M>, Rc<Vec<bool>>>,
}

impl<'a, M: Clone + Eq + Hash> ModelChecker<'a, M> {
    /// Creates a checker over `system`.
    #[must_use]
    pub fn new(system: &'a System<M>) -> Self {
        let mut offsets = Vec::with_capacity(system.len());
        let mut total = 0usize;
        for run in system.runs() {
            offsets.push(total);
            total += run.horizon() as usize + 1;
        }
        ModelChecker {
            system,
            offsets,
            total,
            cache: HashMap::new(),
        }
    }

    /// The system under analysis.
    #[must_use]
    pub fn system(&self) -> &'a System<M> {
        self.system
    }

    fn index(&self, pt: Point) -> usize {
        self.offsets[pt.run] + pt.time as usize
    }

    /// Evaluates `(R, r, m) ⊨ φ`.
    ///
    /// # Panics
    ///
    /// Panics if the point is out of range for the system.
    pub fn eval(&mut self, formula: &Formula<M>, pt: Point) -> bool {
        let table = self.table(formula);
        table[self.index(pt)]
    }

    /// Checks validity `R ⊨ φ`; on failure returns the first counterexample
    /// point.
    ///
    /// # Errors
    ///
    /// Returns the earliest point (in run order, then time) where `φ` is
    /// false.
    pub fn valid(&mut self, formula: &Formula<M>) -> Result<(), Point> {
        let table = self.table(formula);
        for (ri, run) in self.system.runs().iter().enumerate() {
            for m in 0..=run.horizon() {
                if !table[self.offsets[ri] + m as usize] {
                    return Err(Point::new(ri, m));
                }
            }
        }
        Ok(())
    }

    /// All points satisfying `φ`.
    pub fn satisfying_points(&mut self, formula: &Formula<M>) -> Vec<Point> {
        let table = self.table(formula);
        let mut out = Vec::new();
        for (ri, run) in self.system.runs().iter().enumerate() {
            for m in 0..=run.horizon() {
                if table[self.offsets[ri] + m as usize] {
                    out.push(Point::new(ri, m));
                }
            }
        }
        out
    }

    /// Whether `φ` is **local to** `p` (§2.3): at every point, `p` knows
    /// whether `φ` holds, i.e. `K_p φ ∨ K_p ¬φ` is valid.
    pub fn is_local(&mut self, formula: &Formula<M>, p: ProcessId) -> bool {
        let f = Formula::or(vec![
            Formula::knows(p, formula.clone()),
            Formula::knows(p, Formula::not(formula.clone())),
        ]);
        self.valid(&f).is_ok()
    }

    /// Whether `φ` is **stable** (§2.3): `φ ⇒ ✷φ` is valid.
    pub fn is_stable(&mut self, formula: &Formula<M>) -> bool {
        let f = Formula::implies(formula.clone(), Formula::always(formula.clone()));
        self.valid(&f).is_ok()
    }

    /// Whether `φ` (local to `q`) is **insensitive to failure by** `q`
    /// (Definition 3.3): whenever `r′_q(m′) = r_q(m) · crash_q`, `φ` has the
    /// same truth value at `(r, m)` and `(r′, m′)`.
    ///
    /// Checked exactly over the system: for each crash event of `q`, the
    /// class of points whose `q`-history is the pre-crash prefix and the
    /// class whose `q`-history is that prefix plus `crash_q` must agree on
    /// `φ`.
    pub fn is_insensitive_to_failure(&mut self, formula: &Formula<M>, q: ProcessId) -> bool {
        let table = self.table(formula);
        for (ri, run) in self.system.runs().iter().enumerate() {
            let Some(crash_tick) = run.crash_time(q) else {
                continue;
            };
            let before = self
                .system
                .indistinguishable_blocks(q, ri, crash_tick - 1);
            let after = self.system.indistinguishable_blocks(q, ri, crash_tick);
            let mut values = before
                .iter()
                .chain(after.iter())
                .flat_map(|b| b.points())
                .map(|pt| table[self.index(pt)]);
            let Some(first) = values.next() else { continue };
            if values.any(|v| v != first) {
                return false;
            }
        }
        true
    }

    /// `{q : (R, r, m) ⊨ K_p crash(q)}` — the set used by the paper's
    /// `f(r)` construction (P3 of §3) to define the simulated perfect
    /// detector's reports.
    pub fn knowledge_of_crashes(&mut self, p: ProcessId, pt: Point) -> ProcSet {
        ProcessId::all(self.system.n())
            .filter(|&q| self.eval(&Formula::knows(p, Formula::crashed(q)), pt))
            .collect()
    }

    /// The largest `k` such that `p` *knows* at `pt` that at least `k`
    /// processes of `set` have crashed — i.e. the minimum of
    /// `|crashed ∩ set|` over `pt`'s `~_p`-class. Used by the `f′(r)`
    /// construction (P3′ of §4).
    pub fn max_known_crashed_in(&mut self, p: ProcessId, set: ProcSet, pt: Point) -> usize {
        self.system
            .indistinguishable_blocks(p, pt.run, pt.time)
            .iter()
            .flat_map(|b| b.points())
            .map(|q_pt| {
                self.system.run(q_pt.run).crashed_by(q_pt.time).intersection(set).len()
            })
            .min()
            .unwrap_or(0)
    }

    /// Computes (or fetches) the truth table of `formula` over all points.
    fn table(&mut self, formula: &Formula<M>) -> Rc<Vec<bool>> {
        if let Some(t) = self.cache.get(formula) {
            return Rc::clone(t);
        }
        let table = match formula {
            Formula::True => Rc::new(vec![true; self.total]),
            Formula::Prim(prim) => Rc::new(self.prim_table(prim)),
            Formula::Not(inner) => {
                let t = self.table(inner);
                Rc::new(t.iter().map(|&b| !b).collect())
            }
            Formula::And(parts) => {
                let mut acc = vec![true; self.total];
                for part in parts {
                    let t = self.table(part);
                    for (a, &b) in acc.iter_mut().zip(t.iter()) {
                        *a &= b;
                    }
                }
                Rc::new(acc)
            }
            Formula::Or(parts) => {
                let mut acc = vec![false; self.total];
                for part in parts {
                    let t = self.table(part);
                    for (a, &b) in acc.iter_mut().zip(t.iter()) {
                        *a |= b;
                    }
                }
                Rc::new(acc)
            }
            Formula::Always(inner) => {
                let t = self.table(inner);
                let mut acc = vec![false; self.total];
                for (ri, run) in self.system.runs().iter().enumerate() {
                    let off = self.offsets[ri];
                    let mut suffix = true;
                    for m in (0..=run.horizon() as usize).rev() {
                        suffix &= t[off + m];
                        acc[off + m] = suffix;
                    }
                }
                Rc::new(acc)
            }
            Formula::Eventually(inner) => {
                let t = self.table(inner);
                let mut acc = vec![false; self.total];
                for (ri, run) in self.system.runs().iter().enumerate() {
                    let off = self.offsets[ri];
                    let mut suffix = false;
                    for m in (0..=run.horizon() as usize).rev() {
                        suffix |= t[off + m];
                        acc[off + m] = suffix;
                    }
                }
                Rc::new(acc)
            }
            Formula::Knows(p, inner) => {
                let t = self.table(inner);
                let mut acc = vec![false; self.total];
                let mut visited = vec![false; self.total];
                for (ri, run) in self.system.runs().iter().enumerate() {
                    for m in 0..=run.horizon() {
                        let idx = self.offsets[ri] + m as usize;
                        if visited[idx] {
                            continue;
                        }
                        let blocks = self.system.indistinguishable_blocks(*p, ri, m);
                        let value = blocks
                            .iter()
                            .flat_map(|b| b.points())
                            .all(|pt| t[self.index(pt)]);
                        for pt in blocks.iter().flat_map(|b| b.points()) {
                            let i = self.index(pt);
                            acc[i] = value;
                            visited[i] = true;
                        }
                    }
                }
                Rc::new(acc)
            }
        };
        self.cache.insert(formula.clone(), Rc::clone(&table));
        table
    }

    /// Evaluates a primitive over every point, run by run.
    fn prim_table(&self, prim: &Prim<M>) -> Vec<bool> {
        let mut acc = vec![false; self.total];
        for (ri, run) in self.system.runs().iter().enumerate() {
            let off = self.offsets[ri];
            match prim {
                Prim::Crashed(p) => {
                    if let Some(c) = run.crash_time(*p) {
                        fill_from(&mut acc, off, run, c);
                    }
                }
                Prim::Initiated(action) => {
                    if let Some(t) = first_event_tick(run, action.initiator(), |e| {
                        matches!(e, Event::Init { action: a } if a == action)
                    }) {
                        fill_from(&mut acc, off, run, t);
                    }
                }
                Prim::Did { p, action } => {
                    if let Some(t) = first_event_tick(run, *p, |e| {
                        matches!(e, Event::Do { action: a } if a == action)
                    }) {
                        fill_from(&mut acc, off, run, t);
                    }
                }
                Prim::Sent { from, to, msg } => {
                    if let Some(t) = first_event_tick(run, *from, |e| {
                        matches!(e, Event::Send { to: q, msg: m } if q == to && m == msg)
                    }) {
                        fill_from(&mut acc, off, run, t);
                    }
                }
                Prim::Received { by, from, msg } => {
                    if let Some(t) = first_event_tick(run, *by, |e| {
                        matches!(e, Event::Recv { from: q, msg: m } if q == from && m == msg)
                    }) {
                        fill_from(&mut acc, off, run, t);
                    }
                }
                Prim::Suspects { p, q } => {
                    // Non-stable: value steps at each standard report.
                    let mut current = false;
                    let mut change_ticks: Vec<(Time, bool)> = Vec::new();
                    for (t, e) in run.timed_history(*p) {
                        if let Event::Suspect(SuspectReport::Standard(s)) = e {
                            change_ticks.push((t, s.contains(*q)));
                        }
                    }
                    let mut iter = change_ticks.into_iter().peekable();
                    for m in 0..=run.horizon() {
                        while matches!(iter.peek(), Some(&(t, _)) if t <= m) {
                            current = iter.next().expect("peeked").1;
                        }
                        acc[off + m as usize] = current;
                    }
                }
            }
        }
        acc
    }
}

fn fill_from<M>(acc: &mut [bool], off: usize, run: &Run<M>, from_tick: Time) {
    for m in from_tick..=run.horizon() {
        acc[off + m as usize] = true;
    }
}

fn first_event_tick<M>(
    run: &Run<M>,
    p: ProcessId,
    mut pred: impl FnMut(&Event<M>) -> bool,
) -> Option<Time> {
    run.timed_history(p)
        .find_map(|(t, e)| pred(e).then_some(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktudc_model::{ActionId, RunBuilder};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// System of two runs over 2 processes:
    /// * run 0: p0 sends "m" at 1; p1 receives at 2; p1 crashes at 3.
    /// * run 1: p0 sends "m" at 1; nothing else (message lost).
    fn lost_message_system() -> System<&'static str> {
        let mut b = RunBuilder::new(2);
        b.append(p(0), 1, Event::Send { to: p(1), msg: "m" }).unwrap();
        b.append(p(1), 2, Event::Recv { from: p(0), msg: "m" }).unwrap();
        b.append(p(1), 3, Event::Crash).unwrap();
        let r0 = b.finish(4);
        let mut b = RunBuilder::new(2);
        b.append(p(0), 1, Event::Send { to: p(1), msg: "m" }).unwrap();
        let r1 = b.finish(4);
        System::new(vec![r0, r1])
    }

    #[test]
    fn primitives_track_events() {
        let sys = lost_message_system();
        let mut mc = ModelChecker::new(&sys);
        let sent = Formula::sent(p(0), p(1), "m");
        assert!(!mc.eval(&sent, Point::new(0, 0)));
        assert!(mc.eval(&sent, Point::new(0, 1)));
        assert!(mc.eval(&sent, Point::new(1, 4)));
        let recv = Formula::received(p(1), p(0), "m");
        assert!(mc.eval(&recv, Point::new(0, 2)));
        assert!(!mc.eval(&recv, Point::new(1, 4)));
        let crash = Formula::crashed(p(1));
        assert!(!mc.eval(&crash, Point::new(0, 2)));
        assert!(mc.eval(&crash, Point::new(0, 3)));
    }

    #[test]
    fn temporal_operators() {
        let sys = lost_message_system();
        let mut mc = ModelChecker::new(&sys);
        let crash = Formula::crashed(p(1));
        // ✸crash(p1) true from the start of run 0, never in run 1.
        assert!(mc.eval(&Formula::eventually(crash.clone()), Point::new(0, 0)));
        assert!(!mc.eval(&Formula::eventually(crash.clone()), Point::new(1, 0)));
        // ✷crash(p1): only from tick 3 of run 0.
        assert!(mc.eval(&Formula::always(crash.clone()), Point::new(0, 3)));
        assert!(!mc.eval(&Formula::always(crash.clone()), Point::new(0, 2)));
        // ✷¬crash(p1) holds everywhere in run 1.
        assert!(mc.eval(
            &Formula::always(Formula::not(crash)),
            Point::new(1, 0)
        ));
    }

    #[test]
    fn knowledge_requires_distinguishing_evidence() {
        let sys = lost_message_system();
        let mut mc = ModelChecker::new(&sys);
        let k_crash = Formula::knows(p(0), Formula::crashed(p(1)));
        // p0's history is identical in both runs — it can never know.
        for m in 0..=4 {
            assert!(!mc.eval(&k_crash, Point::new(0, m)), "tick {m}");
        }
        // p1 knows its own receive.
        let k_recv = Formula::knows(p(1), Formula::received(p(1), p(0), "m"));
        assert!(mc.eval(&k_recv, Point::new(0, 2)));
        assert!(!mc.eval(&k_recv, Point::new(1, 2)));
    }

    #[test]
    fn knowledge_axioms_hold() {
        // Veridicality (K_p φ ⇒ φ) and positive introspection
        // (K_p φ ⇒ K_p K_p φ) are validities of the S5-style semantics.
        let sys = lost_message_system();
        let mut mc = ModelChecker::new(&sys);
        let phi = Formula::received(p(1), p(0), "m");
        let k = Formula::knows(p(1), phi.clone());
        mc.valid(&Formula::implies(k.clone(), phi)).unwrap();
        mc.valid(&Formula::implies(
            k.clone(),
            Formula::knows(p(1), k.clone()),
        ))
        .unwrap();
        // Negative introspection: ¬K_p φ ⇒ K_p ¬K_p φ.
        mc.valid(&Formula::implies(
            Formula::not(k.clone()),
            Formula::knows(p(1), Formula::not(k)),
        ))
        .unwrap();
    }

    #[test]
    fn validity_returns_counterexample() {
        let sys = lost_message_system();
        let mut mc = ModelChecker::new(&sys);
        let crash = Formula::crashed(p(1));
        let err = mc.valid(&crash).unwrap_err();
        assert_eq!(err, Point::new(0, 0));
        let sat = mc.satisfying_points(&crash);
        assert_eq!(sat, vec![Point::new(0, 3), Point::new(0, 4)]);
    }

    #[test]
    fn locality_and_stability() {
        let sys = lost_message_system();
        let mut mc = ModelChecker::new(&sys);
        // recv_p1 is local to p1, not to p0.
        let recv = Formula::received(p(1), p(0), "m");
        assert!(mc.is_local(&recv, p(1)));
        assert!(!mc.is_local(&recv, p(0)));
        // K_p φ formulas are local to p (standard property).
        let kf = Formula::knows(p(0), Formula::crashed(p(1)));
        assert!(mc.is_local(&kf, p(0)));
        // Event-existence primitives are stable; Suspects is not in general.
        assert!(mc.is_stable(&recv));
        assert!(mc.is_stable(&Formula::crashed(p(1))));
        assert!(mc.is_stable(&Formula::sent(p(0), p(1), "m")));
    }

    #[test]
    fn suspects_primitive_is_not_stable() {
        let mut b = RunBuilder::<u8>::new(2);
        b.append_suspect(p(0), 1, SuspectReport::Standard(ProcSet::singleton(p(1))))
            .unwrap();
        b.append_suspect(p(0), 3, SuspectReport::Standard(ProcSet::new()))
            .unwrap();
        let sys = System::new(vec![b.finish(5)]);
        let mut mc = ModelChecker::new(&sys);
        let susp = Formula::suspects(p(0), p(1));
        assert!(mc.eval(&susp, Point::new(0, 1)));
        assert!(mc.eval(&susp, Point::new(0, 2)));
        assert!(!mc.eval(&susp, Point::new(0, 3)));
        assert!(!mc.is_stable(&susp));
    }

    #[test]
    fn insensitivity_to_failure() {
        // K_q(recv) is insensitive to q's crash: crashing doesn't teach q
        // anything. Build runs where q receives then crashes vs receives
        // and survives.
        let sys = lost_message_system();
        let mut mc = ModelChecker::new(&sys);
        let k_recv = Formula::knows(p(1), Formula::received(p(1), p(0), "m"));
        assert!(mc.is_insensitive_to_failure(&k_recv, p(1)));
        // crash(p1) itself is maximally *sensitive* to failure by p1.
        assert!(!mc.is_insensitive_to_failure(&Formula::crashed(p(1)), p(1)));
    }

    #[test]
    fn knowledge_of_crashes_and_counting() {
        let sys = lost_message_system();
        let mut mc = ModelChecker::new(&sys);
        // p1 (before crashing) knows nothing about crashes; p0 never does.
        assert!(mc.knowledge_of_crashes(p(0), Point::new(0, 4)).is_empty());
        // p1 at (0,3) has crashed; its class is just itself (a crash event
        // is visible in its own history), so K_p1 crash(p1) holds there.
        assert_eq!(
            mc.knowledge_of_crashes(p(1), Point::new(0, 3)),
            ProcSet::singleton(p(1))
        );
        // Counting: in p0's class at (0,4) there are points with 0 crashes.
        assert_eq!(
            mc.max_known_crashed_in(p(0), ProcSet::full(2), Point::new(0, 4)),
            0
        );
        assert_eq!(
            mc.max_known_crashed_in(p(1), ProcSet::full(2), Point::new(0, 3)),
            1
        );
    }

    #[test]
    fn initiated_and_did_primitives() {
        let alpha = ActionId::new(p(0), 0);
        let mut b = RunBuilder::<u8>::new(2);
        b.append(p(0), 1, Event::Init { action: alpha }).unwrap();
        b.append(p(0), 2, Event::Do { action: alpha }).unwrap();
        let sys = System::new(vec![b.finish(4)]);
        let mut mc = ModelChecker::new(&sys);
        assert!(!mc.eval(&Formula::initiated(alpha), Point::new(0, 0)));
        assert!(mc.eval(&Formula::initiated(alpha), Point::new(0, 1)));
        assert!(!mc.eval(&Formula::did(p(0), alpha), Point::new(0, 1)));
        assert!(mc.eval(&Formula::did(p(0), alpha), Point::new(0, 2)));
        // The initiator knows it initiated.
        assert!(mc.eval(
            &Formula::knows(p(0), Formula::initiated(alpha)),
            Point::new(0, 1)
        ));
    }

    #[test]
    fn caching_is_shared_across_eval_calls() {
        let sys = lost_message_system();
        let mut mc = ModelChecker::new(&sys);
        let f = Formula::knows(p(0), Formula::eventually(Formula::crashed(p(1))));
        let a = mc.eval(&f, Point::new(0, 0));
        let b = mc.eval(&f, Point::new(0, 0));
        assert_eq!(a, b);
        assert!(mc.cache.len() >= 3, "subformulas should be cached");
    }
}
