//! The reference scalar evaluator — the pre-optimization model checker,
//! kept verbatim as a differential-testing and benchmarking baseline.
//!
//! [`ReferenceChecker`] evaluates each subformula to a plain `Vec<bool>`
//! truth table, one bool per point, with the `K_p` clause computed per point
//! by walking the point's `~_p`-class. It is deliberately *not* optimized:
//! the packed, class-parallel [`crate::ModelChecker`] must produce
//! bit-identical verdicts to this one (see the workspace's differential
//! property tests), and the `perf` benchmark binary measures its speedup
//! against this implementation.

use crate::formula::{Formula, Prim};
use ktudc_model::{Event, Point, ProcessId, Run, SuspectReport, System, Time};
use std::collections::HashMap;
use std::hash::Hash;
use std::rc::Rc;

/// The scalar (per-point) epistemic model checker. Same verdict semantics as
/// [`crate::ModelChecker`], one bool at a time.
pub struct ReferenceChecker<'a, M> {
    system: &'a System<M>,
    /// Global point index offsets: point `(r, m)` lives at
    /// `offsets[r] + m`.
    offsets: Vec<usize>,
    total: usize,
    cache: HashMap<Formula<M>, Rc<Vec<bool>>>,
}

impl<'a, M: Clone + Eq + Hash> ReferenceChecker<'a, M> {
    /// Creates a checker over `system`.
    #[must_use]
    pub fn new(system: &'a System<M>) -> Self {
        let mut offsets = Vec::with_capacity(system.len());
        let mut total = 0usize;
        for run in system.runs() {
            offsets.push(total);
            total += run.horizon() as usize + 1;
        }
        ReferenceChecker {
            system,
            offsets,
            total,
            cache: HashMap::new(),
        }
    }

    /// The system under analysis.
    #[must_use]
    pub fn system(&self) -> &'a System<M> {
        self.system
    }

    fn index(&self, pt: Point) -> usize {
        self.offsets[pt.run] + pt.time as usize
    }

    /// Evaluates `(R, r, m) ⊨ φ`.
    ///
    /// # Panics
    ///
    /// Panics if the point is out of range for the system.
    pub fn eval(&mut self, formula: &Formula<M>, pt: Point) -> bool {
        let table = self.table(formula);
        table[self.index(pt)]
    }

    /// Checks validity `R ⊨ φ`; on failure returns the earliest
    /// counterexample point (run order, then time).
    ///
    /// # Errors
    ///
    /// Returns the earliest point where `φ` is false.
    pub fn valid(&mut self, formula: &Formula<M>) -> Result<(), Point> {
        let table = self.table(formula);
        for (ri, run) in self.system.runs().iter().enumerate() {
            for m in 0..=run.horizon() {
                if !table[self.offsets[ri] + m as usize] {
                    return Err(Point::new(ri, m));
                }
            }
        }
        Ok(())
    }

    /// All points satisfying `φ`, in run order then time.
    pub fn satisfying_points(&mut self, formula: &Formula<M>) -> Vec<Point> {
        let table = self.table(formula);
        let mut out = Vec::new();
        for (ri, run) in self.system.runs().iter().enumerate() {
            for m in 0..=run.horizon() {
                if table[self.offsets[ri] + m as usize] {
                    out.push(Point::new(ri, m));
                }
            }
        }
        out
    }

    /// Computes (or fetches) the truth table of `formula` over all points.
    fn table(&mut self, formula: &Formula<M>) -> Rc<Vec<bool>> {
        if let Some(t) = self.cache.get(formula) {
            return Rc::clone(t);
        }
        let table = match formula {
            Formula::True => Rc::new(vec![true; self.total]),
            Formula::Prim(prim) => Rc::new(self.prim_table(prim)),
            Formula::Not(inner) => {
                let t = self.table(inner);
                Rc::new(t.iter().map(|&b| !b).collect())
            }
            Formula::And(parts) => {
                let mut acc = vec![true; self.total];
                for part in parts {
                    let t = self.table(part);
                    for (a, &b) in acc.iter_mut().zip(t.iter()) {
                        *a &= b;
                    }
                }
                Rc::new(acc)
            }
            Formula::Or(parts) => {
                let mut acc = vec![false; self.total];
                for part in parts {
                    let t = self.table(part);
                    for (a, &b) in acc.iter_mut().zip(t.iter()) {
                        *a |= b;
                    }
                }
                Rc::new(acc)
            }
            Formula::Always(inner) => {
                let t = self.table(inner);
                let mut acc = vec![false; self.total];
                for (ri, run) in self.system.runs().iter().enumerate() {
                    let off = self.offsets[ri];
                    let mut suffix = true;
                    for m in (0..=run.horizon() as usize).rev() {
                        suffix &= t[off + m];
                        acc[off + m] = suffix;
                    }
                }
                Rc::new(acc)
            }
            Formula::Eventually(inner) => {
                let t = self.table(inner);
                let mut acc = vec![false; self.total];
                for (ri, run) in self.system.runs().iter().enumerate() {
                    let off = self.offsets[ri];
                    let mut suffix = false;
                    for m in (0..=run.horizon() as usize).rev() {
                        suffix |= t[off + m];
                        acc[off + m] = suffix;
                    }
                }
                Rc::new(acc)
            }
            Formula::Knows(p, inner) => {
                let t = self.table(inner);
                let mut acc = vec![false; self.total];
                let mut visited = vec![false; self.total];
                for (ri, run) in self.system.runs().iter().enumerate() {
                    for m in 0..=run.horizon() {
                        let idx = self.offsets[ri] + m as usize;
                        if visited[idx] {
                            continue;
                        }
                        let blocks = self.system.indistinguishable_blocks(*p, ri, m);
                        let value = blocks
                            .iter()
                            .flat_map(|b| b.points())
                            .all(|pt| t[self.index(pt)]);
                        for pt in blocks.iter().flat_map(|b| b.points()) {
                            let i = self.index(pt);
                            acc[i] = value;
                            visited[i] = true;
                        }
                    }
                }
                Rc::new(acc)
            }
        };
        self.cache.insert(formula.clone(), Rc::clone(&table));
        table
    }

    /// Evaluates a primitive over every point, run by run.
    fn prim_table(&self, prim: &Prim<M>) -> Vec<bool> {
        let mut acc = vec![false; self.total];
        for (ri, run) in self.system.runs().iter().enumerate() {
            let off = self.offsets[ri];
            match prim {
                Prim::Crashed(p) => {
                    if let Some(c) = run.crash_time(*p) {
                        fill_from(&mut acc, off, run, c);
                    }
                }
                Prim::Initiated(action) => {
                    if let Some(t) = first_event_tick(
                        run,
                        action.initiator(),
                        |e| matches!(e, Event::Init { action: a } if a == action),
                    ) {
                        fill_from(&mut acc, off, run, t);
                    }
                }
                Prim::Did { p, action } => {
                    if let Some(t) = first_event_tick(
                        run,
                        *p,
                        |e| matches!(e, Event::Do { action: a } if a == action),
                    ) {
                        fill_from(&mut acc, off, run, t);
                    }
                }
                Prim::Sent { from, to, msg } => {
                    if let Some(t) = first_event_tick(
                        run,
                        *from,
                        |e| matches!(e, Event::Send { to: q, msg: m } if q == to && m == msg),
                    ) {
                        fill_from(&mut acc, off, run, t);
                    }
                }
                Prim::Received { by, from, msg } => {
                    if let Some(t) = first_event_tick(
                        run,
                        *by,
                        |e| matches!(e, Event::Recv { from: q, msg: m } if q == from && m == msg),
                    ) {
                        fill_from(&mut acc, off, run, t);
                    }
                }
                Prim::Suspects { p, q } => {
                    // Non-stable: value steps at each standard report.
                    let mut current = false;
                    let mut change_ticks: Vec<(Time, bool)> = Vec::new();
                    for (t, e) in run.timed_history(*p) {
                        if let Event::Suspect(SuspectReport::Standard(s)) = e {
                            change_ticks.push((t, s.contains(*q)));
                        }
                    }
                    let mut iter = change_ticks.into_iter().peekable();
                    for m in 0..=run.horizon() {
                        while matches!(iter.peek(), Some(&(t, _)) if t <= m) {
                            current = iter.next().expect("peeked").1;
                        }
                        acc[off + m as usize] = current;
                    }
                }
            }
        }
        acc
    }
}

fn fill_from<M>(acc: &mut [bool], off: usize, run: &Run<M>, from_tick: Time) {
    for m in from_tick..=run.horizon() {
        acc[off + m as usize] = true;
    }
}

fn first_event_tick<M>(
    run: &Run<M>,
    p: ProcessId,
    mut pred: impl FnMut(&Event<M>) -> bool,
) -> Option<Time> {
    run.timed_history(p).find_map(|(t, e)| pred(e).then_some(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelChecker;
    use ktudc_model::RunBuilder;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn lost_message_system() -> System<&'static str> {
        let mut b = RunBuilder::new(2);
        b.append(p(0), 1, Event::Send { to: p(1), msg: "m" })
            .unwrap();
        b.append(
            p(1),
            2,
            Event::Recv {
                from: p(0),
                msg: "m",
            },
        )
        .unwrap();
        b.append(p(1), 3, Event::Crash).unwrap();
        let r0 = b.finish(4);
        let mut b = RunBuilder::new(2);
        b.append(p(0), 1, Event::Send { to: p(1), msg: "m" })
            .unwrap();
        let r1 = b.finish(4);
        System::new(vec![r0, r1])
    }

    #[test]
    fn reference_agrees_with_fast_checker_on_fixture() {
        let sys = lost_message_system();
        let mut slow = ReferenceChecker::new(&sys);
        let mut fast = ModelChecker::new(&sys);
        let formulas: Vec<Formula<&'static str>> = vec![
            Formula::crashed(p(1)),
            Formula::knows(p(0), Formula::crashed(p(1))),
            Formula::knows(p(1), Formula::received(p(1), p(0), "m")),
            Formula::eventually(Formula::crashed(p(1))),
            Formula::always(Formula::not(Formula::crashed(p(1)))),
            Formula::knows(p(0), Formula::eventually(Formula::crashed(p(1)))),
            Formula::suspects(p(0), p(1)),
            Formula::implies(
                Formula::received(p(1), p(0), "m"),
                Formula::eventually(Formula::or(vec![
                    Formula::crashed(p(1)),
                    Formula::knows(p(1), Formula::sent(p(0), p(1), "m")),
                ])),
            ),
        ];
        for f in &formulas {
            assert_eq!(
                slow.satisfying_points(f),
                fast.satisfying_points(f),
                "disagreement on {f}"
            );
            assert_eq!(slow.valid(f), fast.valid(f), "validity disagreement on {f}");
        }
    }
}
