//! Epistemic-temporal model checking over systems of runs (§2.3 of Halpern
//! & Ricciardi), plus the conditions A1–A5t of §3.
//!
//! The paper's language closes application primitives (`send`, `recv`,
//! `crash`, `do`, `init`) under boolean connectives, the temporal operator
//! `✷` ("from now on", with dual `✸`), and the knowledge operators `K_p`.
//! Truth is relative to a triple `(R, r, m)` — a *system* (set of runs), a
//! run, and a time — with the crucial clause
//!
//! > `(R, r, m) ⊨ K_p φ` iff `(R, r′, m′) ⊨ φ` for **all** points
//! > `(r′, m′)` of `R` with `r′_p(m′) = r_p(m)`.
//!
//! [`ModelChecker`] implements exactly this semantics over the finite
//! [`System`](ktudc_model::System)s produced by `ktudc-sim`, by *global*
//! model checking: each subformula is evaluated to a truth table over every
//! point of the system (so `K_p` is an exact conjunction over the
//! indistinguishability class, not an approximation), with tables cached
//! per subformula.
//!
//! Truth tables are bit-packed ([`bittable::BitTable`]) so boolean
//! connectives work 64 points per instruction, `K_p` is evaluated once per
//! `~_p`-equivalence class, and independent classes / runs are processed in
//! parallel when the `parallel` feature (on by default) is enabled. The
//! original per-point scalar evaluator survives as
//! [`reference::ReferenceChecker`] and the two are held bit-identical by
//! differential tests.
//!
//! # Finite-horizon reading
//!
//! `✷φ` at `(r, m)` means "φ at every `m′` with `m ≤ m′ ≤ horizon(r)`", and
//! `✸φ` dually. Over *exhaustively enumerated* systems (see
//! `ktudc_sim::explorer`) the `K_p` clause is exact; over sampled systems a
//! reported `K_p φ` may be an overstatement (a larger sample could refute
//! it) while a reported `¬K_p φ` is always sound. The condition checkers in
//! [`conditions`] inherit the same one-sided soundness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bittable;
pub mod checker;
pub mod conditions;
pub mod formula;
pub mod reference;

pub use bittable::{BitTable, Layout};
pub use checker::ModelChecker;
pub use conditions::{check_a1, check_a2, check_a3, check_a4, check_a5, ConditionViolation};
pub use formula::{Formula, Prim};
pub use reference::ReferenceChecker;
