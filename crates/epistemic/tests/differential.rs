//! Differential property tests: the bitset-backed [`ModelChecker`] must
//! agree with the scalar [`ReferenceChecker`] — verdict for verdict, point
//! for point — on randomized small systems (n ≤ 3, horizon ≤ 5) and
//! randomized formulas.

use ktudc_epistemic::{Formula, ModelChecker, ReferenceChecker};
use ktudc_model::{ActionId, Event, ProcSet, ProcessId, Run, RunBuilder, SuspectReport, System};
use proptest::prelude::*;

const N: usize = 3;
const HORIZON: u64 = 5;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Builds one run from an adversarial append script; illegal appends are
/// simply rejected by the builder, so every script yields a valid run.
fn run_from_script(script: &[(usize, u64, u8, usize)]) -> Run<u16> {
    let mut b = RunBuilder::<u16>::new(N);
    for &(pi, t, kind, other) in script {
        let pr = ProcessId::new(pi % N);
        let q = ProcessId::new(other % N);
        let event = match kind % 6 {
            0 => Event::Send {
                to: q,
                msg: (t % 3) as u16,
            },
            1 => Event::Recv {
                from: q,
                msg: (t % 3) as u16,
            },
            2 => Event::Init {
                action: ActionId::new(pr, (t % 2) as u32),
            },
            3 => Event::Do {
                action: ActionId::new(q, (t % 2) as u32),
            },
            4 => Event::Crash,
            _ => Event::Suspect(SuspectReport::Standard(ProcSet::singleton(q))),
        };
        let _ = b.append(pr, t, event);
    }
    b.finish(HORIZON)
}

/// Decodes a byte script into a formula, consuming bytes as it recurses.
fn formula_from_script(bytes: &[u8], pos: &mut usize, depth: u8) -> Formula<u16> {
    let mut next = || {
        let b = bytes.get(*pos).copied().unwrap_or(0);
        *pos += 1;
        b
    };
    let op = next();
    let a = next() as usize;
    let b = next() as usize;
    let prim = |a: usize, b: usize| match a % 6 {
        0 => Formula::crashed(p(b % N)),
        1 => Formula::sent(p(a % N), p(b % N), (b % 3) as u16),
        2 => Formula::received(p(a % N), p(b % N), (b % 3) as u16),
        3 => Formula::initiated(ActionId::new(p(a % N), (b % 2) as u32)),
        4 => Formula::did(p(a % N), ActionId::new(p(b % N), (b % 2) as u32)),
        _ => Formula::suspects(p(a % N), p(b % N)),
    };
    if depth == 0 {
        return prim(a, b);
    }
    match op % 8 {
        0 | 1 => prim(a, b),
        2 => Formula::not(formula_from_script(bytes, pos, depth - 1)),
        3 => Formula::and(vec![
            formula_from_script(bytes, pos, depth - 1),
            formula_from_script(bytes, pos, depth - 1),
        ]),
        4 => Formula::or(vec![
            formula_from_script(bytes, pos, depth - 1),
            formula_from_script(bytes, pos, depth - 1),
        ]),
        5 => Formula::always(formula_from_script(bytes, pos, depth - 1)),
        6 => Formula::eventually(formula_from_script(bytes, pos, depth - 1)),
        _ => Formula::knows(p(a % N), formula_from_script(bytes, pos, depth - 1)),
    }
}

proptest! {
    /// On a random system and a batch of random formulas, the packed
    /// checker and the scalar reference agree on validity (including the
    /// counterexample point), on the full satisfying-point set, and on
    /// single-point evaluation — sharing one checker instance across the
    /// batch so the subformula cache is exercised too.
    #[test]
    fn packed_checker_matches_reference(
        scripts in proptest::collection::vec(
            proptest::collection::vec((0usize..3, 1u64..5, 0u8..6, 0usize..3), 0..24),
            1..5,
        ),
        fscript in proptest::collection::vec(0u8..255, 24..96),
    ) {
        let runs: Vec<Run<u16>> = scripts.iter().map(|s| run_from_script(s)).collect();
        let system = System::new(runs);
        let mut fast = ModelChecker::new(&system);
        let mut reference = ReferenceChecker::new(&system);

        let mut pos = 0;
        while pos + 3 < fscript.len() {
            let f = formula_from_script(&fscript, &mut pos, 3);
            prop_assert_eq!(fast.valid(&f), reference.valid(&f), "valid: {:?}", f);
            prop_assert_eq!(
                fast.satisfying_points(&f),
                reference.satisfying_points(&f),
                "satisfying_points: {:?}",
                f
            );
            let pt = ktudc_model::Point::new(0, system.run(0).horizon().min(2));
            prop_assert_eq!(fast.eval(&f, pt), reference.eval(&f, pt), "eval: {:?}", f);
        }
    }
}
