//! Logical laws of the implemented semantics, checked as validities over
//! explored systems: the S5 axioms for `K_p`, distribution over
//! conjunction, temporal dualities and fixpoint identities, and the
//! interaction between knowledge and stability the paper's proofs lean on.

use ktudc_epistemic::{Formula, ModelChecker};
use ktudc_model::{ActionId, Event, ProcessId, System, Time};
use ktudc_sim::{explore, ExploreConfig, ProtoAction, Protocol};

/// A tiny protocol generating varied histories: p0 sends one message to p1
/// at its first opportunity (the explorer branches over when, and whether,
/// the message is delivered).
#[derive(Clone, Debug)]
struct OneShot {
    me: ProcessId,
    sent: bool,
}

impl Protocol<u8> for OneShot {
    fn start(&mut self, me: ProcessId, _n: usize) {
        self.me = me;
    }
    fn observe(&mut self, _t: Time, e: &Event<u8>) {
        if matches!(e, Event::Send { .. }) {
            self.sent = true;
        }
    }
    fn next_action(&mut self, _t: Time) -> Option<ProtoAction<u8>> {
        (self.me == ProcessId::new(0) && !self.sent).then_some(ProtoAction::Send {
            to: ProcessId::new(1),
            msg: 7,
        })
    }
    fn quiescent(&self) -> bool {
        self.sent
    }
}

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn rich_system() -> System<u8> {
    let alpha = ActionId::new(p(0), 0);
    let cfg = ExploreConfig::new(2, 3)
        .max_failures(1)
        .initiate(1, alpha)
        .optional_initiations();
    explore(&cfg, |_| OneShot {
        me: p(0),
        sent: false,
    })
    .system
}

/// Sample formulas with varied shape over the rich system's vocabulary.
fn samples() -> Vec<Formula<u8>> {
    let alpha = ActionId::new(p(0), 0);
    vec![
        Formula::initiated(alpha),
        Formula::crashed(p(1)),
        Formula::sent(p(0), p(1), 7),
        Formula::received(p(1), p(0), 7),
        Formula::or(vec![Formula::crashed(p(0)), Formula::initiated(alpha)]),
        Formula::eventually(Formula::crashed(p(1))),
        Formula::knows(p(1), Formula::sent(p(0), p(1), 7)),
    ]
}

#[test]
fn s5_axioms_are_valid() {
    let sys = rich_system();
    let mut mc = ModelChecker::new(&sys);
    for phi in samples() {
        for q in [p(0), p(1)] {
            let k = Formula::knows(q, phi.clone());
            // T (veridicality): K φ ⇒ φ.
            mc.valid(&Formula::implies(k.clone(), phi.clone()))
                .unwrap_or_else(|pt| panic!("T fails for {phi} at {pt}"));
            // 4 (positive introspection): K φ ⇒ K K φ.
            mc.valid(&Formula::implies(k.clone(), Formula::knows(q, k.clone())))
                .unwrap_or_else(|pt| panic!("4 fails for {phi} at {pt}"));
            // 5 (negative introspection): ¬K φ ⇒ K ¬K φ.
            mc.valid(&Formula::implies(
                Formula::not(k.clone()),
                Formula::knows(q, Formula::not(k.clone())),
            ))
            .unwrap_or_else(|pt| panic!("5 fails for {phi} at {pt}"));
        }
    }
}

#[test]
fn knowledge_distributes_over_conjunction() {
    let sys = rich_system();
    let mut mc = ModelChecker::new(&sys);
    let phis = samples();
    for a in &phis {
        for b in &phis {
            for q in [p(0), p(1)] {
                let lhs = Formula::knows(q, Formula::and(vec![a.clone(), b.clone()]));
                let rhs = Formula::and(vec![
                    Formula::knows(q, a.clone()),
                    Formula::knows(q, b.clone()),
                ]);
                mc.valid(&Formula::iff(lhs, rhs))
                    .unwrap_or_else(|pt| panic!("K(∧) ≠ ∧K at {pt} for {a} / {b}"));
            }
        }
    }
}

#[test]
fn temporal_dualities_and_fixpoints() {
    let sys = rich_system();
    let mut mc = ModelChecker::new(&sys);
    for phi in samples() {
        // ✸φ ⇔ ¬✷¬φ.
        mc.valid(&Formula::iff(
            Formula::eventually(phi.clone()),
            Formula::not(Formula::always(Formula::not(phi.clone()))),
        ))
        .unwrap_or_else(|pt| panic!("duality fails for {phi} at {pt}"));
        // ✷φ ⇒ φ and φ ⇒ ✸φ (reflexive readings).
        mc.valid(&Formula::implies(Formula::always(phi.clone()), phi.clone()))
            .unwrap();
        mc.valid(&Formula::implies(
            phi.clone(),
            Formula::eventually(phi.clone()),
        ))
        .unwrap();
        // Idempotence: ✷✷φ ⇔ ✷φ, ✸✸φ ⇔ ✸φ.
        mc.valid(&Formula::iff(
            Formula::always(Formula::always(phi.clone())),
            Formula::always(phi.clone()),
        ))
        .unwrap();
        mc.valid(&Formula::iff(
            Formula::eventually(Formula::eventually(phi.clone())),
            Formula::eventually(phi.clone()),
        ))
        .unwrap();
    }
}

#[test]
fn stable_formulas_equal_their_always() {
    // For stable φ (event-existence primitives), φ ⇔ ✷φ wherever φ holds:
    // φ ⇒ ✷φ is exactly stability, and the checker's is_stable agrees with
    // the validity of the implication.
    let sys = rich_system();
    let mut mc = ModelChecker::new(&sys);
    let alpha = ActionId::new(p(0), 0);
    for phi in [
        Formula::initiated(alpha),
        Formula::crashed(p(0)),
        Formula::sent(p(0), p(1), 7),
        Formula::received(p(1), p(0), 7),
    ] {
        assert!(mc.is_stable(&phi), "{phi} must be stable");
        mc.valid(&Formula::implies(phi.clone(), Formula::always(phi.clone())))
            .unwrap();
    }
    // Knowledge of a stable formula is stable too (histories only grow, so
    // an agent never *loses* a stable fact) — a lemma the paper's proofs
    // use implicitly.
    let k = Formula::knows(p(1), Formula::received(p(1), p(0), 7));
    assert!(
        mc.is_stable(&k),
        "knowledge of a stable local fact is stable"
    );
}

#[test]
fn locality_of_knowledge_formulas() {
    // K_p φ is local to p for arbitrary φ — the property §2.3 notes
    // follows from standard knowledge axioms.
    let sys = rich_system();
    let mut mc = ModelChecker::new(&sys);
    for phi in samples() {
        for q in [p(0), p(1)] {
            let k = Formula::knows(q, phi.clone());
            assert!(mc.is_local(&k, q), "K_{q}{phi} must be local to {q}");
        }
    }
}

#[test]
fn knowledge_is_monotone_under_system_refinement() {
    // Dropping runs from a system can only *create* knowledge, never
    // destroy it: K over the sub-system is implied by... the converse —
    // knowledge over the full system implies knowledge over the
    // sub-system, for points the sub-system retains. (This is the
    // soundness direction quoted for sampled systems.)
    let full = rich_system();
    let half: Vec<_> = full.runs().iter().take(full.len() / 2).cloned().collect();
    let sub = System::new(half);
    let mut mc_full = ModelChecker::new(&full);
    let mut mc_sub = ModelChecker::new(&sub);
    let phi = Formula::initiated(ActionId::new(p(0), 0));
    let k = Formula::knows(p(1), phi);
    for pt in mc_sub.satisfying_points(&Formula::True) {
        if mc_full.eval(&k, pt) {
            assert!(
                mc_sub.eval(&k, pt),
                "knowledge lost by shrinking the system at {pt}"
            );
        }
    }
}
