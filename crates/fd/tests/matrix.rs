//! The class matrix: every oracle in the zoo, checked against every
//! standard property, with the verdicts the §2.2 hierarchy predicts.
//!
//! Each oracle is run through the same crash schedule (two failures among
//! four processes) at adversarial parameter settings, and the resulting run
//! is judged by every checker. A `yes` means the class *guarantees* the
//! property (so the checker must pass); a `no` means the adversarial oracle
//! is built to exploit the freedom (so, at these settings, the checker must
//! fail — a stronger statement than "not guaranteed").

use ktudc_fd::{
    check_fd_property, EventuallyStrongOracle, FdProperty, ImpermanentStrongOracle,
    ImpermanentWeakOracle, PerfectOracle, StrongOracle, WeakOracle,
};
use ktudc_model::{Event, ProcessId, Run, Time};
use ktudc_sim::{
    run_protocol, ChannelKind, CrashPlan, FdOracle, ProtoAction, Protocol, SimConfig, Workload,
};

/// An idle protocol: the runs exist purely to carry detector reports.
#[derive(Clone, Debug)]
struct Idle;

impl Protocol<u8> for Idle {
    fn start(&mut self, _me: ProcessId, _n: usize) {}
    fn observe(&mut self, _t: Time, _e: &Event<u8>) {}
    fn next_action(&mut self, _t: Time) -> Option<ProtoAction<u8>> {
        None
    }
    fn quiescent(&self) -> bool {
        true
    }
}

fn sample(oracle: &mut dyn FdOracle, seed: u64) -> Run<u8> {
    let config = SimConfig::new(4)
        .channel(ChannelKind::reliable())
        .crashes(CrashPlan::at(&[(1, 10), (3, 30)]))
        .horizon(300)
        .seed(seed)
        .fd_period(3);
    run_protocol(&config, |_| Idle, oracle, &Workload::none()).run
}

use FdProperty::{
    ImpermanentStrongCompleteness as ImpSC, ImpermanentWeakCompleteness as ImpWC,
    StrongAccuracy as SA, StrongCompleteness as SC, WeakAccuracy as WA, WeakCompleteness as WC,
};

/// Asserts the verdict of `prop` on runs of `oracle` matches `expected`,
/// across several seeds (all seeds must agree — the guarantees and the
/// engineered violations are both deterministic consequences of the class).
fn assert_matrix_row(mut make: impl FnMut() -> Box<dyn FdOracle>, expected: &[(FdProperty, bool)]) {
    for seed in 0..4 {
        let run = sample(make().as_mut(), seed);
        for &(prop, should_hold) in expected {
            let verdict = check_fd_property(&run, prop);
            assert_eq!(
                verdict.is_ok(),
                should_hold,
                "seed {seed}: {prop} expected {} but got {verdict:?}",
                if should_hold { "PASS" } else { "FAIL" }
            );
        }
    }
}

#[test]
fn perfect_satisfies_everything() {
    assert_matrix_row(
        || Box::new(PerfectOracle::new()),
        &[
            (SA, true),
            (WA, true),
            (SC, true),
            (WC, true),
            (ImpSC, true),
            (ImpWC, true),
        ],
    );
}

#[test]
fn strong_lies_but_completes() {
    // High false-suspicion rate: strong accuracy must break, weak accuracy
    // and the completeness properties must survive.
    assert_matrix_row(
        || Box::new(StrongOracle::with_false_prob(0.9)),
        &[
            (SA, false),
            (WA, true),
            (SC, true),
            (WC, true),
            (ImpSC, true),
            (ImpWC, true),
        ],
    );
}

#[test]
fn weak_only_monitor_completes() {
    // Zero noise isolates the class structure: only the monitor reports,
    // so strong completeness fails but weak completeness holds.
    assert_matrix_row(
        || Box::new(WeakOracle { false_prob: 0.0 }),
        &[
            (SA, true), // no noise ⇒ nothing inaccurate
            (WA, true),
            (SC, false),
            (WC, true),
            (ImpSC, false),
            (ImpWC, true),
        ],
    );
}

#[test]
fn impermanent_strong_retracts() {
    // Always-retract: the permanent completeness properties fail at the
    // horizon, the impermanent ones hold.
    assert_matrix_row(
        || {
            Box::new(ImpermanentStrongOracle {
                retract_prob: 1.0,
                false_prob: 0.0,
            })
        },
        &[
            (SA, true),
            (WA, true),
            (SC, false),
            (WC, false),
            (ImpSC, true),
            (ImpWC, true),
        ],
    );
}

#[test]
fn impermanent_weak_is_the_weakest() {
    assert_matrix_row(
        || Box::new(ImpermanentWeakOracle { retract_prob: 1.0 }),
        &[
            (SA, true),
            (WA, true),
            (SC, false),
            (WC, false),
            (ImpSC, false),
            (ImpWC, true),
        ],
    );
}

#[test]
fn eventually_strong_settles() {
    // GST well before the horizon: by the end, reports are perfect, so the
    // horizon-read completeness properties hold; pre-GST garbage breaks
    // strong accuracy (it suspects live processes early).
    assert_matrix_row(
        || Box::new(EventuallyStrongOracle::new(60)),
        &[
            (SA, false),
            (SC, true),
            (WC, true),
            (ImpSC, true),
            (ImpWC, true),
        ],
    );
}

/// The hierarchy is a chain on completeness: SC ⇒ WC ⇒ ImpWC and
/// SC ⇒ ImpSC ⇒ ImpWC, on *every* run any oracle produces.
#[test]
fn completeness_implications_hold_on_all_runs() {
    let mut oracles: Vec<Box<dyn FdOracle>> = vec![
        Box::new(PerfectOracle::new()),
        Box::new(StrongOracle::new()),
        Box::new(WeakOracle::new()),
        Box::new(ImpermanentStrongOracle::new()),
        Box::new(ImpermanentWeakOracle::new()),
        Box::new(EventuallyStrongOracle::new(40)),
    ];
    for oracle in &mut oracles {
        for seed in 0..3 {
            let run = sample(oracle.as_mut(), seed);
            let sc = check_fd_property(&run, SC).is_ok();
            let wc = check_fd_property(&run, WC).is_ok();
            let isc = check_fd_property(&run, ImpSC).is_ok();
            let iwc = check_fd_property(&run, ImpWC).is_ok();
            assert!(!sc || wc, "SC ⇒ WC broken ({})", oracle.class_name());
            assert!(!sc || isc, "SC ⇒ ImpSC broken ({})", oracle.class_name());
            assert!(!wc || iwc, "WC ⇒ ImpWC broken ({})", oracle.class_name());
            assert!(
                !isc || iwc,
                "ImpSC ⇒ ImpWC broken ({})",
                oracle.class_name()
            );
            // And on accuracy: SA ⇒ WA.
            let sa = check_fd_property(&run, SA).is_ok();
            let wa = check_fd_property(&run, WA).is_ok();
            assert!(!sa || wa, "SA ⇒ WA broken ({})", oracle.class_name());
        }
    }
}
