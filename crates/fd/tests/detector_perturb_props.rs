//! Property tests: composing `perturb` wrappers over the *empirical*
//! detectors of `fd::impls` breaks exactly the targeted contract and
//! nothing else.
//!
//! The perturb wrappers were originally regression tests for the property
//! checkers, applied to ground-truth oracles. Since they also implement
//! `ktudc_sim::Detector` by passthrough, the same schedule-driven
//! violations must hold when wrapped around detectors that *earn* their
//! suspicions from message arrivals — on clean reliable channels, where
//! every zoo detector is empirically perfect, so any violation is
//! attributable to the wrapper alone:
//!
//! * [`FalseSuspector`] breaks strong accuracy, keeps completeness and
//!   weak accuracy;
//! * [`SuspicionSuppressor`] breaks weak (and strong) completeness, keeps
//!   accuracy;
//! * [`LateRetractor`] breaks permanent completeness, keeps the
//!   impermanent reading and accuracy;
//! * [`MinFaultyInflater`] is inert — the zoo emits standard reports, so
//!   the run is indistinguishable from the unwrapped baseline.

use ktudc_fd::{
    check_fd_property, DetectorKind, FalseSuspector, FdProperty, LateRetractor, MinFaultyInflater,
    SuspicionSuppressor, ZooDetector,
};
use ktudc_model::{Event, ProcessId, Run, Time};
use ktudc_sim::{run_detected, CrashPlan, Detector, ProtoAction, Protocol, SimConfig, Workload};
use proptest::prelude::*;

/// A protocol that does nothing: the run consists purely of crashes and
/// suspect reports, which is all the FD property checkers read.
#[derive(Clone, Debug)]
struct Idle;

impl Protocol<u8> for Idle {
    fn start(&mut self, _me: ProcessId, _n: usize) {}
    fn observe(&mut self, _time: Time, _event: &Event<u8>) {}
    fn next_action(&mut self, _time: Time) -> Option<ProtoAction<u8>> {
        None
    }
    fn quiescent(&self) -> bool {
        true
    }
}

const N: usize = 4;
const HORIZON: Time = 240;
/// Crash early enough that even gossip (fail_timeout 60) detects it with
/// ample room before [`RETRACT_AT`] and the horizon.
const CRASH_AT: Time = 60;
/// Gossip suspects the crash by ~`CRASH_AT + 60` plus report cadence; 200
/// leaves the impermanent window closed well before the horizon.
const RETRACT_AT: Time = 200;

/// Clean reliable channels + one crash: every zoo detector is empirically
/// perfect here, so the unwrapped baseline satisfies all four contracts.
fn config(seed: u64) -> SimConfig {
    SimConfig::new(N)
        .crashes(CrashPlan::at(&[(N - 1, CRASH_AT)]))
        .horizon(HORIZON)
        .seed(seed)
}

fn run_wrapped<D, G>(seed: u64, make: G) -> Run<u8>
where
    D: Detector,
    G: Fn(ProcessId) -> D,
{
    run_detected(&config(seed), |_| Idle, make, &Workload::none())
        .sim
        .run
}

fn kind_strategy() -> impl Strategy<Value = DetectorKind> {
    (0usize..DetectorKind::ALL.len()).prop_map(|i| DetectorKind::ALL[i])
}

fn holds(run: &Run<u8>, prop: FdProperty) -> Result<(), String> {
    check_fd_property(run, prop).map_err(|v| v.to_string())
}

proptest! {
    /// Sanity anchor: the unwrapped detectors are perfect under this
    /// regime, so every breakage below is the wrapper's doing.
    #[test]
    fn baseline_is_perfect_on_clean_channels(kind in kind_strategy(), seed in 0u64..64) {
        let run = run_wrapped(seed, |_| kind.build());
        prop_assert!(holds(&run, FdProperty::StrongAccuracy).is_ok());
        prop_assert!(holds(&run, FdProperty::StrongCompleteness).is_ok());
    }

    /// One fabricated suspicion of the immune process p0 breaks strong
    /// accuracy — and *only* strong accuracy: the victim is retracted at
    /// the very next inner report, so completeness (a horizon reading) and
    /// weak accuracy (p1 and p2 are never falsely suspected) survive.
    #[test]
    fn false_suspector_breaks_exactly_strong_accuracy(
        kind in kind_strategy(),
        seed in 0u64..64,
        at in 20u64..180,
    ) {
        let victim = ProcessId::new(0);
        let run = run_wrapped(seed, |_| FalseSuspector::new(kind.build(), victim, at));
        prop_assert!(holds(&run, FdProperty::StrongAccuracy).is_err(),
            "{kind}: a fabricated suspicion of correct p0 must violate strong accuracy");
        prop_assert_eq!(holds(&run, FdProperty::WeakAccuracy), Ok(()),
            "{kind}: only p0 is ever falsely suspected");
        prop_assert_eq!(holds(&run, FdProperty::StrongCompleteness), Ok(()),
            "{kind}: the crash is still permanently suspected");
    }

    /// Deleting the crashed process from every report breaks weak (hence
    /// strong) completeness while accuracy is untouched — removing
    /// suspicions cannot create false ones.
    #[test]
    fn suppressor_breaks_exactly_completeness(kind in kind_strategy(), seed in 0u64..64) {
        let crashed = ProcessId::new(N - 1);
        let run = run_wrapped(seed, |_| SuspicionSuppressor::new(kind.build(), crashed));
        prop_assert!(holds(&run, FdProperty::WeakCompleteness).is_err(),
            "{kind}: nobody may ever suspect the muzzled crash");
        prop_assert!(holds(&run, FdProperty::StrongCompleteness).is_err());
        prop_assert_eq!(holds(&run, FdProperty::StrongAccuracy), Ok(()),
            "{kind}: suppression must not fabricate suspicions");
    }

    /// Emptying every report from `RETRACT_AT` on separates the paper's
    /// permanent/impermanent completeness readings: the final suspicion
    /// state is empty (permanent fails) but the crash *was* reported
    /// during the window (impermanent holds).
    #[test]
    fn late_retractor_separates_permanent_from_impermanent(
        kind in kind_strategy(),
        seed in 0u64..64,
    ) {
        let run = run_wrapped(seed, |_| LateRetractor::new(kind.build(), RETRACT_AT));
        prop_assert!(holds(&run, FdProperty::StrongCompleteness).is_err(),
            "{kind}: the horizon suspicion state is empty");
        prop_assert_eq!(holds(&run, FdProperty::ImpermanentStrongCompleteness), Ok(()),
            "{kind}: the crash was suspected before the retraction window");
        prop_assert_eq!(holds(&run, FdProperty::StrongAccuracy), Ok(()),
            "{kind}: retraction must not fabricate suspicions");
    }

    /// The inflater only rewrites generalized reports; the zoo emits
    /// standard ones, so the wrapped run is bit-identical to the baseline.
    #[test]
    fn inflater_is_inert_over_standard_report_detectors(
        kind in kind_strategy(),
        seed in 0u64..64,
        at in 0u64..200,
    ) {
        let baseline = run_wrapped(seed, |_| kind.build());
        let wrapped = run_wrapped(seed, |_| MinFaultyInflater::new(kind.build(), at));
        prop_assert_eq!(baseline, wrapped);
    }

    /// Wrappers nest: suppressing the crash *inside* a false suspector
    /// composes both violations — accuracy and completeness each fail for
    /// their own reason, and the checkers attribute them independently.
    #[test]
    fn stacked_wrappers_compose_both_violations(
        kind in kind_strategy(),
        seed in 0u64..64,
        at in 20u64..180,
    ) {
        let victim = ProcessId::new(0);
        let crashed = ProcessId::new(N - 1);
        let run = run_wrapped(seed, |_| {
            FalseSuspector::new(
                SuspicionSuppressor::new(kind.build(), crashed),
                victim,
                at,
            )
        });
        prop_assert!(holds(&run, FdProperty::StrongAccuracy).is_err());
        prop_assert!(holds(&run, FdProperty::WeakCompleteness).is_err());
        // The fabricated suspicion still targets only p0.
        prop_assert_eq!(holds(&run, FdProperty::WeakAccuracy), Ok(()));
    }
}

/// Boxed composition mirrors `wrappers_compose_over_boxed_oracles`: the
/// blanket `Detector for Box<dyn Detector>` impl lets perturbations wrap
/// dynamically chosen zoo members.
#[test]
fn wrappers_compose_over_boxed_detectors() {
    let run = run_wrapped(7, |_| {
        let boxed: Box<dyn Detector<Msg = <ZooDetector as Detector>::Msg>> =
            Box::new(DetectorKind::Heartbeat.build());
        FalseSuspector::new(boxed, ProcessId::new(0), 40)
    });
    assert!(holds(&run, FdProperty::StrongAccuracy).is_err());
    assert!(holds(&run, FdProperty::StrongCompleteness).is_ok());
}
