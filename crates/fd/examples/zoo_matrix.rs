//! Prints the empirical classification matrix at the full defaults
//! (n = 4, 6 trials per arm, horizon 240): every detector of the zoo
//! against every fault regime — the table quoted in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p ktudc-fd --example zoo_matrix
//! ```

use ktudc_fd::{classify_detector, ClassifySpec, DetectorKind, FaultRegime};

fn main() {
    print!("{:<12}", "detector");
    for regime in FaultRegime::ALL {
        print!(" {:<18}", regime.to_string());
    }
    println!();
    for detector in DetectorKind::ALL {
        print!("{:<12}", detector.to_string());
        for regime in FaultRegime::ALL {
            let v = classify_detector(&ClassifySpec::new(detector, regime));
            let mark = if regime.in_model() { "" } else { "*" };
            print!(" {:<18}", format!("{}{mark}", v.class));
        }
        println!();
    }
    println!("\n* = out-of-model regime (violates R5 fairness)");
}
