//! The Aguilera–Toueg–Deianov detector class (§5 of the paper).
//!
//! In response to the conference version of Halpern–Ricciardi, Aguilera,
//! Toueg & Deianov [ATD99] characterized the *weakest* failure detector for
//! URB/UDC: strong completeness plus an accuracy **even weaker than weak
//! accuracy** — at every time, *some* correct process is not currently
//! suspected, but it may be a *different* correct process at different
//! times. (Weak accuracy demands one fixed correct process that is never
//! suspected; ATD accuracy lets the "safe" process rotate.)
//!
//! This module provides the class as an extension: an oracle that
//! aggressively exercises the rotation freedom, and the accuracy checker.
//! The Proposition 3.1 protocol, which *latches* suspicions ("says or has
//! said"), is **not** correct against this class — latching turns the
//! rotating safe process into nobody — and the tests exhibit that
//! separation, which is precisely why ATD's weakest-detector result needed
//! a different protocol than the paper's.

use ktudc_model::{ProcSet, ProcessId, Run, SuspectReport, Time};
use ktudc_sim::{FaultTruth, FdOracle};
use rand::rngs::StdRng;

use crate::props::{FdProperty, FdViolation};

/// An oracle with strong completeness and **rotating** accuracy: at every
/// report, all crashed processes are suspected, exactly one *currently
/// safe* correct process is spared, and every other correct process is
/// suspected — maximal use of the ATD freedom. The safe process rotates
/// among the correct ones with the polling tick.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RotatingAccuracyOracle;

impl RotatingAccuracyOracle {
    /// Creates the oracle.
    #[must_use]
    pub fn new() -> Self {
        RotatingAccuracyOracle
    }
}

impl FdOracle for RotatingAccuracyOracle {
    fn poll(
        &mut self,
        p: ProcessId,
        time: Time,
        truth: &FaultTruth,
        _rng: &mut StdRng,
    ) -> Option<SuspectReport> {
        let correct: Vec<ProcessId> = truth.correct().iter().collect();
        let mut report = truth.crashed_by(time);
        if !correct.is_empty() {
            // Rotate a *pair* of spared processes with a slow window.
            // Reports persist until the next poll, so at a window boundary
            // the in-force reports mix windows w−1 and w; sparing the
            // adjacent pair {c_w, c_{w+1}} guarantees the intersection
            // {c_w} stays unsuspected at every instant — ATD accuracy —
            // while every correct process is still suspected in *some*
            // window, violating (fixed-process) weak accuracy.
            let len = correct.len();
            let window = (time / 32) as usize;
            let spared_a = correct[window % len];
            let spared_b = correct[(window + 1) % len];
            for &q in &correct {
                if q != spared_a && q != spared_b && q != p {
                    report.insert(q);
                }
            }
        }
        Some(SuspectReport::Standard(report))
    }

    fn class_name(&self) -> &'static str {
        "atd-rotating"
    }
}

/// **ATD accuracy** ("at all times, some correct process is not
/// suspected"): for every tick `m`, if the run has correct processes, at
/// least one correct process `q` is in no *live* process's
/// `Suspects_p(r, m)`. Crashed observers are excluded: their `Suspects`
/// value is frozen at crash time and no longer reflects any oracle — a
/// stale snapshot should not condemn a time-varying accuracy property.
///
/// # Errors
///
/// Returns a violation naming the first tick at which every correct
/// process is simultaneously suspected by some live process.
pub fn check_atd_accuracy<M>(run: &Run<M>) -> Result<(), FdViolation> {
    let correct = run.correct();
    if correct.is_empty() {
        return Ok(());
    }
    for m in 0..=run.horizon() {
        let crashed = run.crashed_by(m);
        let mut suspected_now = ProcSet::new();
        for p in ProcessId::all(run.n()) {
            if !crashed.contains(p) {
                suspected_now = suspected_now.union(run.suspects_at(p, m));
            }
        }
        if correct.difference(suspected_now).is_empty() {
            return Err(FdViolation {
                // Reuse the weak-accuracy tag: ATD accuracy is its
                // per-time weakening, and a dedicated variant would leak
                // into every exhaustive match downstream.
                property: FdProperty::WeakAccuracy,
                witness: format!(
                    "ATD accuracy: at tick {m} every correct process in {correct} is suspected"
                ),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::check_fd_property;
    use ktudc_model::{Event, RunBuilder};
    use ktudc_sim::{
        run_protocol, ChannelKind, CrashPlan, ProtoAction, Protocol, SimConfig, Workload,
    };

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[derive(Clone, Debug)]
    struct Idle;

    impl Protocol<u8> for Idle {
        fn start(&mut self, _me: ProcessId, _n: usize) {}
        fn observe(&mut self, _t: Time, _e: &Event<u8>) {}
        fn next_action(&mut self, _t: Time) -> Option<ProtoAction<u8>> {
            None
        }
        fn quiescent(&self) -> bool {
            true
        }
    }

    fn sample(seed: u64) -> Run<u8> {
        let config = SimConfig::new(4)
            .channel(ChannelKind::reliable())
            .crashes(CrashPlan::at(&[(3, 12)]))
            .horizon(200)
            .seed(seed)
            .fd_period(3);
        run_protocol(
            &config,
            |_| Idle,
            &mut RotatingAccuracyOracle::new(),
            &Workload::none(),
        )
        .run
    }

    #[test]
    fn rotating_oracle_satisfies_atd_accuracy_and_strong_completeness() {
        for seed in 0..4 {
            let run = sample(seed);
            check_atd_accuracy(&run).unwrap();
            check_fd_property(&run, FdProperty::StrongCompleteness).unwrap();
        }
    }

    #[test]
    fn rotating_oracle_violates_weak_accuracy() {
        // The rotation spares a *different* process at different times, so
        // (at these settings) every correct process gets suspected at some
        // point — weak accuracy, which demands one fixed spared process,
        // fails. This is exactly the gap between the HR and ATD classes.
        let run = sample(0);
        assert!(check_fd_property(&run, FdProperty::WeakAccuracy).is_err());
    }

    #[test]
    fn atd_accuracy_checker_finds_violations() {
        // A run where, at tick 2, both correct processes are suspected.
        let mut b = RunBuilder::<u8>::new(2);
        b.append_suspect(p(0), 1, SuspectReport::Standard(ProcSet::singleton(p(1))))
            .unwrap();
        b.append_suspect(p(1), 2, SuspectReport::Standard(ProcSet::singleton(p(0))))
            .unwrap();
        let run = b.finish(4);
        let err = check_atd_accuracy(&run).unwrap_err();
        assert!(err.witness.contains("tick 2"));
        // Retract one suspicion: accuracy restored from tick 3 on, but the
        // violation at tick 2 still condemns the run.
        let mut b = RunBuilder::<u8>::new(2);
        b.append_suspect(p(0), 1, SuspectReport::Standard(ProcSet::singleton(p(1))))
            .unwrap();
        b.append_suspect(p(0), 2, SuspectReport::Standard(ProcSet::new()))
            .unwrap();
        let run = b.finish(4);
        check_atd_accuracy(&run).unwrap();
    }

    #[test]
    fn latching_protocols_are_not_correct_against_atd() {
        // The Prop 3.1 protocol latches suspicions; under the rotating
        // oracle it will eventually have "suspected" every peer and
        // perform immediately, *before* gathering the acks that uniformity
        // needs — so under loss, UDC violations appear. (ATD's weakest-
        // detector theorem needed a non-latching protocol for a reason.)
        // We assert the mechanism: latched suspicions cover all peers.
        let run = sample(1);
        let mut latched = ProcSet::new();
        for (_, e) in run.timed_history(p(0)) {
            if let Event::Suspect(SuspectReport::Standard(s)) = e {
                latched = latched.union(*s);
            }
        }
        assert!(
            run.correct()
                .difference(ProcSet::singleton(p(0)))
                .is_subset_of(latched),
            "rotation must eventually have suspected every correct peer"
        );
    }
}
