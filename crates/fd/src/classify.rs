//! Empirical classification: which paper class does a detector *earn*?
//!
//! The oracles of [`crate::oracle`] satisfy their class properties by
//! construction. An empirical detector ([`crate::impls`]) satisfies
//! whatever its timeouts and the network let it satisfy — so its place in
//! the Halpern–Ricciardi hierarchy is an experimental result, not a
//! definition. This module runs a detector across seeded trials of one
//! fault regime (clean arms measuring false suspicions, crash arms
//! measuring completeness and detection latency), applies the
//! [`crate::props`] checkers to every generated run, and condenses the
//! surviving properties into an [`EmpiricalClass`] label.
//!
//! Completeness and "eventual" accuracy use the standard finite-horizon
//! readings of [`crate::props`]: *eventually* means *by the horizon*, and
//! a detector's final suspicion state is its last report. Horizons are
//! chosen so every detector under test has stabilized long before the end
//! (the defaults give ≥ 90 ticks of slack past the slowest detector's
//! worst-case detection latency).

use crate::impls::DetectorKind;
use crate::props::{check_fd_property, FdProperty};
use ktudc_model::budget::{AbortReason, Budget};
use ktudc_model::{Event, ProcSet, ProcessId, Run, SuspectReport, Time};
use ktudc_sim::{
    run_detected, ChannelKind, CrashPlan, FaultPlan, ProtoAction, Protocol, SimConfig, Workload,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The PR-3 fault regimes the zoo is swept across, plus the two clean
/// baselines. Each maps to a concrete [`FaultPlan`] / [`ChannelKind`]
/// pair via [`FaultRegime::plan`] and [`FaultRegime::channel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultRegime {
    /// Reliable channels, no injected faults.
    Clean,
    /// Fair-lossy channels (30% drop), no injected faults.
    Lossy,
    /// Reliable base + periodic 25-tick delay spikes over 20-tick windows.
    DelaySpikes,
    /// Reliable base + periodic 18-tick all-link loss bursts.
    BurstLoss,
    /// Reliable base + one bounded partition of link 0→1 (ticks 40..=70).
    Partition,
    /// Reliable base + link 0→1 permanently severed from tick 30 — the
    /// R5-violating unfair channel.
    SeveredLink,
}

impl FaultRegime {
    /// All regimes, in sweep order.
    pub const ALL: [FaultRegime; 6] = [
        FaultRegime::Clean,
        FaultRegime::Lossy,
        FaultRegime::DelaySpikes,
        FaultRegime::BurstLoss,
        FaultRegime::Partition,
        FaultRegime::SeveredLink,
    ];

    /// The fault plan this regime injects.
    #[must_use]
    pub fn plan(self) -> FaultPlan {
        match self {
            FaultRegime::Clean | FaultRegime::Lossy => FaultPlan::none(),
            FaultRegime::DelaySpikes => FaultPlan::none().delay_spikes(60, 20, 25),
            FaultRegime::BurstLoss => FaultPlan::none().burst_loss(60, 18),
            FaultRegime::Partition => FaultPlan::none().partition_link(0, 1, 40, 70),
            FaultRegime::SeveredLink => FaultPlan::none().sever_link(0, 1, 30),
        }
    }

    /// The base channel regime.
    #[must_use]
    pub fn channel(self) -> ChannelKind {
        match self {
            FaultRegime::Lossy => ChannelKind::fair_lossy(0.3),
            _ => ChannelKind::reliable(),
        }
    }

    /// Whether the regime stays inside the paper's model (R1–R5). Only the
    /// permanently severed link violates R5.
    #[must_use]
    pub fn in_model(self) -> bool {
        !matches!(self, FaultRegime::SeveredLink)
    }
}

impl fmt::Display for FaultRegime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultRegime::Clean => "clean",
            FaultRegime::Lossy => "lossy-30",
            FaultRegime::DelaySpikes => "delay-spikes",
            FaultRegime::BurstLoss => "burst-loss",
            FaultRegime::Partition => "partition",
            FaultRegime::SeveredLink => "severed-link",
        };
        f.write_str(s)
    }
}

/// One classification cell: a detector, a regime, and the sampling knobs.
///
/// Serializes flat (bare string tags for the enums) — this doubles as the
/// `ktudc-serve` wire payload for `classify` requests, pinned by a unit
/// test below.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClassifySpec {
    /// Which detector to classify.
    pub detector: DetectorKind,
    /// Which regime to sweep it across.
    pub regime: FaultRegime,
    /// System size.
    pub n: usize,
    /// Trials per arm (the cell runs `trials` crash-free arms and
    /// `trials` single-crash arms).
    pub trials: u64,
    /// Simulation horizon.
    pub horizon: Time,
    /// Base seed; arm `i` uses `seed + i` (clean) / `seed + 1000 + i`
    /// (crash).
    pub seed: u64,
}

impl ClassifySpec {
    /// Defaults: n = 4, 6 trials per arm, horizon 240, seed 0.
    ///
    /// n = 4 (not 3) so the crash arms leave the severed-link regime a
    /// *live* gossip relay: with n = 3 the crash victim is the only
    /// process bridging the severed pair, and gossip's routed accuracy
    /// legitimately collapses with it.
    #[must_use]
    pub fn new(detector: DetectorKind, regime: FaultRegime) -> Self {
        ClassifySpec {
            detector,
            regime,
            n: 4,
            trials: 6,
            horizon: 240,
            seed: 0,
        }
    }

    /// Overrides the per-arm trial count.
    #[must_use]
    pub fn trials(mut self, trials: u64) -> Self {
        self.trials = trials;
        self
    }

    /// Overrides the horizon.
    #[must_use]
    pub fn horizon(mut self, horizon: Time) -> Self {
        self.horizon = horizon;
        self
    }

    /// The tick at which the crash arms crash process `n−1`.
    #[must_use]
    pub fn crash_tick(&self) -> Time {
        (self.horizon / 3).max(1)
    }
}

/// Crash-detection latency over the crash arms, in ticks from the crash
/// to each correct observer's first suspecting report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Mean over all (observer, trial) samples.
    pub mean: f64,
    /// Worst sample.
    pub max: u64,
    /// Number of samples (observers × crash trials that detected).
    pub samples: u64,
}

/// The paper-class label condensed from the surviving properties, ordered
/// strongest-first. `Strong` and `EventuallyPerfect` are incomparable in
/// the paper's hierarchy; the label prefers `Strong` (a safety property
/// held throughout) and the verdict keeps both booleans so nothing is
/// lost.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EmpiricalClass {
    /// Strong accuracy + strong completeness in every run.
    Perfect,
    /// Weak accuracy + strong completeness in every run.
    Strong,
    /// Every false suspicion retracted by the horizon (final suspicion
    /// states ⊆ crashed) + strong completeness.
    EventuallyPerfect,
    /// Some correct process unsuspected at the horizon in every run +
    /// strong completeness.
    EventuallyStrong,
    /// Strong completeness failed: the detector missed a crash.
    Unclassified,
}

impl fmt::Display for EmpiricalClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EmpiricalClass::Perfect => "perfect",
            EmpiricalClass::Strong => "strong",
            EmpiricalClass::EventuallyPerfect => "eventually-perfect",
            EmpiricalClass::EventuallyStrong => "eventually-strong",
            EmpiricalClass::Unclassified => "unclassified",
        };
        f.write_str(s)
    }
}

/// The empirical verdict for one (detector, regime) cell.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegimeVerdict {
    /// The classified detector.
    pub detector: DetectorKind,
    /// The swept regime.
    pub regime: FaultRegime,
    /// The condensed class label.
    pub class: EmpiricalClass,
    /// `props::StrongAccuracy` held in every run.
    pub strong_accuracy: bool,
    /// `props::WeakAccuracy` held in every run.
    pub weak_accuracy: bool,
    /// `props::StrongCompleteness` held in every crash run.
    pub strong_completeness: bool,
    /// `props::ImpermanentStrongCompleteness` held in every crash run.
    pub impermanent_strong_completeness: bool,
    /// Finite-horizon ◇P reading: every final suspicion state ⊆ crashed.
    pub eventual_accuracy: bool,
    /// Finite-horizon ◇S accuracy reading: in every run some correct
    /// process is unsuspected at the horizon.
    pub eventual_weak_accuracy: bool,
    /// Total (report, live-member) pairs across all runs — each is one
    /// false suspicion event.
    pub false_suspicion_events: u64,
    /// Crash-detection latency, if every crash arm detected.
    pub detection_latency: Option<LatencyStats>,
}

/// Condenses surviving accuracy/completeness properties into the
/// strongest honest [`EmpiricalClass`] label. This is the single
/// condensation rule for *every* empirical classification in the
/// workspace — the simulator sweep here and the live wire-plane
/// classification in `ktudc-serve`'s detector plane both feed their
/// measured booleans through it, so "which class did the detector earn"
/// always means the same thing.
#[must_use]
pub fn condense_class(
    strong_completeness: bool,
    strong_accuracy: bool,
    weak_accuracy: bool,
    eventual_accuracy: bool,
    eventual_weak_accuracy: bool,
) -> EmpiricalClass {
    if !strong_completeness {
        EmpiricalClass::Unclassified
    } else if strong_accuracy {
        EmpiricalClass::Perfect
    } else if weak_accuracy {
        EmpiricalClass::Strong
    } else if eventual_accuracy {
        EmpiricalClass::EventuallyPerfect
    } else if eventual_weak_accuracy {
        EmpiricalClass::EventuallyStrong
    } else {
        EmpiricalClass::Unclassified
    }
}

impl RegimeVerdict {
    fn derive_class(&mut self) {
        self.class = condense_class(
            self.strong_completeness,
            self.strong_accuracy,
            self.weak_accuracy,
            self.eventual_accuracy,
            self.eventual_weak_accuracy,
        );
    }
}

/// Outcome of a budget-constrained classification.
#[derive(Clone, Debug, PartialEq)]
pub enum ClassifyStatus {
    /// Every arm ran; the verdict is complete.
    Done(RegimeVerdict),
    /// The budget tripped partway through the arm sweep.
    Aborted {
        /// Why the budget tripped.
        reason: AbortReason,
        /// Arms completed before the trip (of `2 × spec.trials`).
        arms_completed: u64,
    },
}

/// A protocol that does nothing: classification runs carry only crashes
/// and the detector's suspect reports, which is all the property checkers
/// read.
#[derive(Clone, Debug)]
struct Idle;

impl Protocol<u8> for Idle {
    fn start(&mut self, _me: ProcessId, _n: usize) {}
    fn observe(&mut self, _time: Time, _event: &Event<u8>) {}
    fn next_action(&mut self, _time: Time) -> Option<ProtoAction<u8>> {
        None
    }
    fn quiescent(&self) -> bool {
        true
    }
}

fn standard_reports(run: &Run<u8>, p: ProcessId) -> Vec<(Time, ProcSet)> {
    run.timed_history(p)
        .filter_map(|(t, e)| match e {
            Event::Suspect(SuspectReport::Standard(s)) => Some((t, *s)),
            _ => None,
        })
        .collect()
}

fn count_false_suspicions(run: &Run<u8>) -> u64 {
    let mut count = 0;
    for p in ProcessId::all(run.n()) {
        for (t, s) in standard_reports(run, p) {
            count += s.difference(run.crashed_by(t)).len() as u64;
        }
    }
    count
}

/// Classifies one detector under one regime (unbudgeted).
#[must_use]
pub fn classify_detector(spec: &ClassifySpec) -> RegimeVerdict {
    match classify_detector_budgeted(spec, &Budget::unlimited()) {
        ClassifyStatus::Done(verdict) => verdict,
        ClassifyStatus::Aborted { .. } => unreachable!("an unlimited budget cannot abort"),
    }
}

/// Like [`classify_detector`], but polls `budget` once per arm and stops
/// admitting new arms once it trips. A tripped sweep yields no partial
/// verdict: a class label quantifies over *all* arms, so an incomplete
/// sweep cannot honestly claim one.
#[must_use]
pub fn classify_detector_budgeted(spec: &ClassifySpec, budget: &Budget) -> ClassifyStatus {
    let crash_tick = spec.crash_tick();
    let victim = ProcessId::new(spec.n - 1);
    // Arm i < trials: crash-free; arm i ≥ trials: one crash of `victim`.
    let arms: Vec<u64> = (0..spec.trials * 2).collect();
    let runs = ktudc_par::par_map(arms, |arm| {
        if budget.check().is_err() {
            return None;
        }
        let crash = arm >= spec.trials;
        let seed = if crash {
            spec.seed + 1000 + (arm - spec.trials)
        } else {
            spec.seed + arm
        };
        let config = SimConfig::new(spec.n)
            .channel(spec.regime.channel())
            .crashes(if crash {
                CrashPlan::at(&[(victim.index(), crash_tick)])
            } else {
                CrashPlan::None
            })
            .faults(spec.regime.plan())
            .horizon(spec.horizon)
            .seed(seed);
        let out = run_detected(
            &config,
            |_| Idle,
            |_| spec.detector.build(),
            &Workload::none(),
        );
        Some((crash, out.sim.run))
    });

    let mut verdict = RegimeVerdict {
        detector: spec.detector,
        regime: spec.regime,
        class: EmpiricalClass::Unclassified,
        strong_accuracy: true,
        weak_accuracy: true,
        strong_completeness: true,
        impermanent_strong_completeness: true,
        eventual_accuracy: true,
        eventual_weak_accuracy: true,
        false_suspicion_events: 0,
        detection_latency: None,
    };
    let mut latency_samples: Vec<u64> = Vec::new();
    let mut completed: u64 = 0;
    for (crash, run) in runs.into_iter().flatten() {
        completed += 1;
        verdict.false_suspicion_events += count_false_suspicions(&run);
        verdict.strong_accuracy &= check_fd_property(&run, FdProperty::StrongAccuracy).is_ok();
        verdict.weak_accuracy &= check_fd_property(&run, FdProperty::WeakAccuracy).is_ok();
        let crashed = run.crashed_by(run.horizon());
        let correct = run.correct();
        // Finite ◇P reading: final suspicion states contain only crashed
        // processes. Finite ◇S reading: some correct process is in nobody's
        // final suspicion state.
        let mut final_union = ProcSet::new();
        for p in correct.iter() {
            let finals = run.suspects_at(p, run.horizon());
            if !finals.difference(crashed).is_empty() {
                verdict.eventual_accuracy = false;
            }
            final_union = final_union.union(finals);
        }
        if !correct.is_empty() && correct.difference(final_union).is_empty() {
            verdict.eventual_weak_accuracy = false;
        }
        if crash {
            verdict.strong_completeness &=
                check_fd_property(&run, FdProperty::StrongCompleteness).is_ok();
            verdict.impermanent_strong_completeness &=
                check_fd_property(&run, FdProperty::ImpermanentStrongCompleteness).is_ok();
            let ct = run.crash_time(victim).expect("crash arm must crash");
            for p in correct.iter() {
                if let Some((t, _)) = standard_reports(&run, p)
                    .into_iter()
                    .find(|&(t, s)| t >= ct && s.contains(victim))
                {
                    latency_samples.push(t - ct);
                }
            }
        }
    }
    if let Some(reason) = budget.tripped() {
        return ClassifyStatus::Aborted {
            reason,
            arms_completed: completed,
        };
    }
    if !latency_samples.is_empty() {
        verdict.detection_latency = Some(LatencyStats {
            mean: latency_samples.iter().sum::<u64>() as f64 / latency_samples.len() as f64,
            max: *latency_samples.iter().max().expect("non-empty"),
            samples: latency_samples.len() as u64,
        });
    }
    verdict.derive_class();
    ClassifyStatus::Done(verdict)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_regime_classifies_all_three_as_perfect() {
        for detector in DetectorKind::ALL {
            let v = classify_detector(&ClassifySpec::new(detector, FaultRegime::Clean));
            assert_eq!(v.class, EmpiricalClass::Perfect, "{detector}: {v:?}");
            assert_eq!(v.false_suspicion_events, 0, "{detector}");
            let lat = v.detection_latency.expect("crash arms must detect");
            assert!(lat.samples > 0);
            assert!(lat.max <= 120, "{detector} latency {lat:?}");
        }
    }

    #[test]
    fn burst_loss_demotes_heartbeat_but_not_phi() {
        let hb = classify_detector(&ClassifySpec::new(
            DetectorKind::Heartbeat,
            FaultRegime::BurstLoss,
        ));
        assert!(!hb.strong_accuracy, "{hb:?}");
        assert!(hb.strong_completeness, "{hb:?}");
        assert!(hb.false_suspicion_events > 0);
        let phi = classify_detector(&ClassifySpec::new(
            DetectorKind::PhiAccrual,
            FaultRegime::BurstLoss,
        ));
        assert_eq!(phi.class, EmpiricalClass::Perfect, "{phi:?}");
    }

    #[test]
    fn severed_link_demotes_direct_detectors_to_strong_but_not_gossip() {
        for detector in [DetectorKind::Heartbeat, DetectorKind::PhiAccrual] {
            let v = classify_detector(&ClassifySpec::new(detector, FaultRegime::SeveredLink));
            assert_eq!(v.class, EmpiricalClass::Strong, "{detector}: {v:?}");
            assert!(v.false_suspicion_events > 0, "{detector}");
        }
        let gossip = classify_detector(&ClassifySpec::new(
            DetectorKind::Gossip,
            FaultRegime::SeveredLink,
        ));
        assert_eq!(gossip.class, EmpiricalClass::Perfect, "{gossip:?}");
    }

    #[test]
    fn classification_is_deterministic() {
        let spec = ClassifySpec::new(DetectorKind::PhiAccrual, FaultRegime::Lossy);
        assert_eq!(classify_detector(&spec), classify_detector(&spec));
    }

    #[test]
    fn budget_trip_aborts_without_a_verdict() {
        let spec = ClassifySpec::new(DetectorKind::Heartbeat, FaultRegime::Clean);
        let budget = Budget::unlimited().with_max_steps(3);
        match classify_detector_budgeted(&spec, &budget) {
            ClassifyStatus::Aborted {
                reason,
                arms_completed,
            } => {
                assert_eq!(reason, AbortReason::StepLimit);
                assert!(arms_completed < spec.trials * 2);
            }
            ClassifyStatus::Done(v) => panic!("a 3-step cap must trip: {v:?}"),
        }
    }

    #[test]
    fn wire_schema_is_pinned() {
        // These exact strings are the serve wire payloads for `classify`
        // requests/responses. If this fails, the encoding changed: bump
        // `ktudc_serve::SCHEMA_VERSION` and repin deliberately.
        let spec = ClassifySpec::new(DetectorKind::PhiAccrual, FaultRegime::BurstLoss)
            .trials(4)
            .horizon(200);
        let json = serde_json::to_string(&spec).unwrap();
        assert_eq!(
            json,
            r#"{"detector":"PhiAccrual","regime":"BurstLoss","n":4,"trials":4,"horizon":200,"seed":0}"#
        );
        assert_eq!(serde_json::from_str::<ClassifySpec>(&json).unwrap(), spec);

        let verdict = RegimeVerdict {
            detector: DetectorKind::Heartbeat,
            regime: FaultRegime::Clean,
            class: EmpiricalClass::Perfect,
            strong_accuracy: true,
            weak_accuracy: true,
            strong_completeness: true,
            impermanent_strong_completeness: true,
            eventual_accuracy: true,
            eventual_weak_accuracy: true,
            false_suspicion_events: 0,
            detection_latency: Some(LatencyStats {
                mean: 17.5,
                max: 21,
                samples: 12,
            }),
        };
        let json = serde_json::to_string(&verdict).unwrap();
        assert_eq!(
            json,
            r#"{"detector":"Heartbeat","regime":"Clean","class":"Perfect","strong_accuracy":true,"weak_accuracy":true,"strong_completeness":true,"impermanent_strong_completeness":true,"eventual_accuracy":true,"eventual_weak_accuracy":true,"false_suspicion_events":0,"detection_latency":{"mean":17.5,"max":21,"samples":12}}"#
        );
        assert_eq!(
            serde_json::from_str::<RegimeVerdict>(&json).unwrap(),
            verdict
        );
    }

    #[test]
    fn regime_metadata() {
        assert!(FaultRegime::Clean.in_model());
        assert!(FaultRegime::Partition.in_model());
        assert!(!FaultRegime::SeveredLink.in_model());
        assert!(FaultRegime::SeveredLink.plan().has_unfair_link());
        assert_eq!(FaultRegime::Lossy.channel().drop_prob(), 0.3);
        assert_eq!(FaultRegime::Clean.to_string(), "clean");
        assert_eq!(
            EmpiricalClass::EventuallyPerfect.to_string(),
            "eventually-perfect"
        );
    }
}
