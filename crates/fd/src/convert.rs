//! Failure-detector class conversions as run-to-run transformations.
//!
//! Section 2.2 of the paper defines converting one detector class into
//! another as a function `f` on runs such that every non-failure-detector
//! event of `r` appears, in order, in `f(r)`, while `f(r)` may add
//! communication and carries *new* failure-detector events that are the ones
//! judged for the target class. This module implements the three
//! conversions the paper uses:
//!
//! * [`weak_to_strong`] — **Proposition 2.1**: processes gossip their
//!   suspicions and the converted detector reports everything heard, turning
//!   weak (resp. impermanent-weak) completeness into strong (resp.
//!   impermanent-strong) completeness while preserving accuracy.
//! * [`accumulate_reports`] — **Proposition 2.2**: reporting the union of
//!   all previously suspected processes turns impermanent-strong
//!   completeness into strong completeness while preserving accuracy.
//! * [`n_useful_to_perfect`] / [`perfect_to_n_useful`] — the §4 observation
//!   that `n`-useful (and `(n−1)`-useful) generalized detectors and perfect
//!   detectors are inter-convertible: an `(S, k)` report with `|S| = k`
//!   pins down its members as crashed, and conversely a perfect report `S`
//!   yields the generalized report `(S∪previous, |S∪previous|)`.

use ktudc_model::{Event, ProcSet, ProcessId, Run, RunBuilder, SuspectReport, Time};
use std::hash::Hash;

/// Replays a run through a per-event rewrite, revalidating R1–R4 via
/// [`RunBuilder`]. The rewrite may change payload type and may drop
/// failure-detector events (returning `None`), but must not drop sends that
/// have matching receives.
///
/// Events are replayed in tick order, with sends before receives at equal
/// ticks so R3 re-validation cannot spuriously fail.
///
/// # Panics
///
/// Panics if the rewrite produces an ill-formed run.
pub fn replay_map<M, N, F>(run: &Run<M>, mut rewrite: F) -> Run<N>
where
    N: Eq + Hash + Clone,
    F: FnMut(ProcessId, Time, &Event<M>) -> Option<Event<N>>,
{
    let n = run.n();
    let mut items: Vec<(Time, u8, ProcessId, &Event<M>)> = Vec::new();
    for p in ProcessId::all(n) {
        for (t, e) in run.timed_history(p) {
            let phase = u8::from(matches!(e, Event::Recv { .. }));
            items.push((t, phase, p, e));
        }
    }
    items.sort_by_key(|&(t, phase, p, _)| (t, phase, p));
    let mut b: RunBuilder<N> = RunBuilder::new(n);
    for (t, _, p, e) in items {
        if let Some(new_event) = rewrite(p, t, e) {
            b.append(p, t, new_event)
                .expect("rewrite of a well-formed run stayed well-formed");
        }
    }
    b.finish(run.horizon())
}

/// **Proposition 2.2**: converts a detector satisfying *impermanent* strong
/// (resp. weak) completeness into one satisfying strong (resp. weak)
/// completeness, by making each standard report the union of all standard
/// reports the process has received so far. Accuracy properties are
/// preserved: a suspicion that was accurate when first emitted stays
/// accurate forever, because crashes are permanent.
#[must_use]
pub fn accumulate_reports<M: Eq + Hash + Clone>(run: &Run<M>) -> Run<M> {
    let mut acc: Vec<ProcSet> = vec![ProcSet::new(); run.n()];
    replay_map(run, |p, _t, e| {
        Some(match e {
            Event::Suspect(SuspectReport::Standard(s)) => {
                acc[p.index()] = acc[p.index()].union(*s);
                Event::Suspect(SuspectReport::Standard(acc[p.index()]))
            }
            other => other.clone(),
        })
    })
}

/// Message payload of a [`weak_to_strong`]-converted run: either an original
/// message or a gossiped suspicion set.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum GossipMsg<M> {
    /// An original message of the underlying run.
    Original(M),
    /// A gossiped set of suspicions.
    Suspicions(ProcSet),
}

/// **Proposition 2.1**: converts a system with weak (resp. impermanent-
/// weak) detectors into one with strong (resp. impermanent-strong)
/// detectors by adding suspicion gossip.
///
/// The transformed run stretches each original tick `m` into a block of
/// `2n` ticks:
///
/// 1. slot 1 carries the original tick-`m` events (failure-detector events
///    are absorbed into gossip state instead of copied);
/// 2. slots `2..=n` have each live process send its accumulated suspicions
///    to every peer (one send per slot, per R2);
/// 3. slots `n+1..=2n−1` deliver those messages to live recipients;
/// 4. slot `2n` emits the converted report: everything the process has
///    ever suspected or heard suspected.
///
/// Gossip happens every `period`-th original tick (pass 1 to gossip every
/// tick); completeness needs gossip to recur unboundedly, which any finite
/// period provides.
///
/// Accuracy is preserved: the weak-accuracy immune process is never in any
/// original report, hence never in any gossiped set; under strong accuracy
/// every gossiped suspicion was of an already-crashed process.
///
/// # Panics
///
/// Panics if `period == 0`.
#[must_use]
pub fn weak_to_strong<M: Eq + Hash + Clone>(run: &Run<M>, period: Time) -> Run<GossipMsg<M>> {
    assert!(period >= 1, "gossip period must be positive");
    let n = run.n();
    let block = 2 * n as Time;
    let mut b: RunBuilder<GossipMsg<M>> = RunBuilder::new(n);
    // Accumulated suspicions per process (own reports + heard gossip).
    let mut acc: Vec<ProcSet> = vec![ProcSet::new(); n];
    let mut crashed = ProcSet::new();

    for m in 1..=run.horizon() {
        let base = (m - 1) * block;
        // Slot 1: original events (sends before receives is automatic here
        // because within one tick each process has at most one event, and
        // original receives at tick m correspond to original sends at ticks
        // ≤ m, which were replayed in earlier blocks or this slot; replay
        // sends first across processes to satisfy the builder).
        let mut slot_events: Vec<(u8, ProcessId, &Event<M>)> = Vec::new();
        for p in ProcessId::all(n) {
            for (t, e) in run.timed_history(p) {
                if t == m {
                    let phase = u8::from(matches!(e, Event::Recv { .. }));
                    slot_events.push((phase, p, e));
                }
            }
        }
        slot_events.sort_by_key(|&(phase, p, _)| (phase, p));
        for (_, p, e) in slot_events {
            match e {
                Event::Suspect(SuspectReport::Standard(s)) => {
                    // Absorbed, not copied: the converted run carries only
                    // the new detector's reports.
                    acc[p.index()] = acc[p.index()].union(*s);
                }
                Event::Suspect(SuspectReport::Generalized { .. }) => {
                    // Generalized reports carry no standard suspicion set;
                    // dropped (this conversion targets standard detectors).
                }
                Event::Crash => {
                    crashed.insert(p);
                    b.append(p, base + 1, Event::Crash).expect("crash replay");
                }
                other => {
                    b.append(p, base + 1, other.clone().map_msg(GossipMsg::Original))
                        .expect("original event replay");
                }
            }
        }
        if m % period != 0 {
            continue;
        }
        // Slots 2..=n: gossip sends.
        for p in ProcessId::all(n) {
            if crashed.contains(p) {
                continue;
            }
            let peers: Vec<ProcessId> = ProcessId::all(n).filter(|&q| q != p).collect();
            for (i, &q) in peers.iter().enumerate() {
                b.append(
                    p,
                    base + 2 + i as Time,
                    Event::Send {
                        to: q,
                        msg: GossipMsg::Suspicions(acc[p.index()]),
                    },
                )
                .expect("gossip send");
            }
        }
        // Slots n+1..=2n−1: deliveries to live recipients, plus state update.
        let snapshot = acc.clone();
        for q in ProcessId::all(n) {
            if crashed.contains(q) {
                continue;
            }
            let senders: Vec<ProcessId> = ProcessId::all(n)
                .filter(|&s| s != q && !crashed.contains(s))
                .collect();
            for (i, &s) in senders.iter().enumerate() {
                b.append(
                    q,
                    base + n as Time + 1 + i as Time,
                    Event::Recv {
                        from: s,
                        msg: GossipMsg::Suspicions(snapshot[s.index()]),
                    },
                )
                .expect("gossip delivery");
                acc[q.index()] = acc[q.index()].union(snapshot[s.index()]);
            }
        }
        // Slot 2n: the converted detector's report.
        for p in ProcessId::all(n) {
            if crashed.contains(p) {
                continue;
            }
            b.append_suspect(p, base + block, SuspectReport::Standard(acc[p.index()]))
                .expect("converted report");
        }
    }
    b.finish(run.horizon() * block)
}

/// §4: converts an `n`-useful (or `(n−1)`-useful) generalized detector into
/// a perfect one. A generalized report `(S, k)` with `|S| = k` certifies
/// every member of `S` crashed; the converted detector reports the union of
/// all such certified sets seen so far. Reports with `|S| > k` certify
/// nothing individually and emit the current accumulated set.
#[must_use]
pub fn n_useful_to_perfect<M: Eq + Hash + Clone>(run: &Run<M>) -> Run<M> {
    let mut acc: Vec<ProcSet> = vec![ProcSet::new(); run.n()];
    replay_map(run, |p, _t, e| {
        Some(match e {
            Event::Suspect(SuspectReport::Generalized { set, min_faulty }) => {
                if set.len() == *min_faulty {
                    acc[p.index()] = acc[p.index()].union(*set);
                }
                Event::Suspect(SuspectReport::Standard(acc[p.index()]))
            }
            other => other.clone(),
        })
    })
}

/// §4: converts a perfect detector into an `n`-useful generalized one —
/// each standard report `S` becomes `(S ∪ previous, |S ∪ previous|)`.
#[must_use]
pub fn perfect_to_n_useful<M: Eq + Hash + Clone>(run: &Run<M>) -> Run<M> {
    let mut acc: Vec<ProcSet> = vec![ProcSet::new(); run.n()];
    replay_map(run, |p, _t, e| {
        Some(match e {
            Event::Suspect(SuspectReport::Standard(s)) => {
                acc[p.index()] = acc[p.index()].union(*s);
                Event::Suspect(SuspectReport::Generalized {
                    set: acc[p.index()],
                    min_faulty: acc[p.index()].len(),
                })
            }
            other => other.clone(),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{check_fd_property, FdProperty};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn set(ids: &[usize]) -> ProcSet {
        ids.iter().map(|&i| p(i)).collect()
    }

    /// 3-process run: p2 crashes at 2; p0 (the weak monitor) suspects p2 at
    /// tick 4 and retracts at tick 6; p1 never suspects anyone.
    fn impermanent_weak_run() -> Run<u8> {
        let mut b = RunBuilder::<u8>::new(3);
        b.append(p(2), 2, Event::Crash).unwrap();
        b.append_suspect(p(0), 4, SuspectReport::Standard(set(&[2])))
            .unwrap();
        b.append_suspect(p(0), 6, SuspectReport::Standard(set(&[])))
            .unwrap();
        b.finish(8)
    }

    #[test]
    fn accumulate_turns_impermanent_into_permanent() {
        let run = impermanent_weak_run();
        // Before: p0's final Suspects is empty → weak completeness fails.
        assert!(check_fd_property(&run, FdProperty::WeakCompleteness).is_err());
        check_fd_property(&run, FdProperty::ImpermanentWeakCompleteness).unwrap();
        let converted = accumulate_reports(&run);
        check_fd_property(&converted, FdProperty::WeakCompleteness).unwrap();
        // Accuracy preserved (suspicion was post-crash).
        check_fd_property(&converted, FdProperty::StrongAccuracy).unwrap();
        converted.check_conditions(0).unwrap();
    }

    #[test]
    fn accumulate_preserves_non_fd_events() {
        let mut b = RunBuilder::<&str>::new(2);
        b.append(p(0), 1, Event::Send { to: p(1), msg: "m" })
            .unwrap();
        b.append(
            p(1),
            2,
            Event::Recv {
                from: p(0),
                msg: "m",
            },
        )
        .unwrap();
        b.append_suspect(p(0), 3, SuspectReport::Standard(set(&[1])))
            .unwrap();
        let run = b.finish(5);
        let converted = accumulate_reports(&run);
        assert_eq!(converted.history(p(1)).len(), 1);
        assert_eq!(converted.history(p(0)).len(), 2);
        assert_eq!(converted.horizon(), 5);
    }

    #[test]
    fn weak_to_strong_upgrades_completeness() {
        let run = impermanent_weak_run();
        // p1 never suspects p2 in the original: strong completeness (even
        // impermanent) fails.
        assert!(check_fd_property(&run, FdProperty::ImpermanentStrongCompleteness).is_err());
        let converted = weak_to_strong(&run, 1);
        converted.check_conditions(0).unwrap();
        // After gossip, every correct process permanently suspects p2.
        check_fd_property(&converted, FdProperty::StrongCompleteness).unwrap();
        // Accuracy preserved.
        check_fd_property(&converted, FdProperty::StrongAccuracy).unwrap();
        check_fd_property(&converted, FdProperty::WeakAccuracy).unwrap();
    }

    #[test]
    fn weak_to_strong_preserves_original_events_in_order() {
        let mut b = RunBuilder::<&str>::new(2);
        b.append(p(0), 1, Event::Send { to: p(1), msg: "x" })
            .unwrap();
        b.append(
            p(1),
            2,
            Event::Recv {
                from: p(0),
                msg: "x",
            },
        )
        .unwrap();
        let run = b.finish(3);
        let converted = weak_to_strong(&run, 1);
        // Original events appear, in order, with Original payloads.
        let p0_events: Vec<_> = converted
            .history(p(0))
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::Send {
                        msg: GossipMsg::Original(_),
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(p0_events.len(), 1);
        let p1_orig: Vec<_> = converted
            .history(p(1))
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::Recv {
                        msg: GossipMsg::Original(_),
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(p1_orig.len(), 1);
        converted.check_conditions(0).unwrap();
    }

    #[test]
    fn weak_to_strong_respects_crashes() {
        let run = impermanent_weak_run();
        let converted = weak_to_strong(&run, 1);
        // p2 crashed in block 2 → its new crash tick is (2-1)*6 + 1 = 7,
        // after participating in block 1's gossip round (2 sends, 2
        // receives, 1 report = 5 events, then the crash).
        assert_eq!(converted.crash_time(p(2)), Some(7));
        assert_eq!(converted.history(p(2)).len(), 6);
        assert!(converted.history(p(2)).last().unwrap().is_crash());
    }

    #[test]
    fn weak_to_strong_period_thins_gossip() {
        let run = impermanent_weak_run();
        let every = weak_to_strong(&run, 1);
        let sparse = weak_to_strong(&run, 4);
        assert!(sparse.event_count() < every.event_count());
        // Completeness still achieved: gossip at ticks 4 and 8 suffices
        // (the monitor's suspicion happens at tick 4).
        check_fd_property(&sparse, FdProperty::StrongCompleteness).unwrap();
    }

    #[test]
    fn n_useful_round_trip_with_perfect() {
        // Perfect-style run: p1 crashes at 2, both observers report it.
        let mut b = RunBuilder::<u8>::new(3);
        b.append(p(1), 2, Event::Crash).unwrap();
        b.append_suspect(p(0), 3, SuspectReport::Standard(set(&[1])))
            .unwrap();
        b.append_suspect(p(2), 4, SuspectReport::Standard(set(&[1])))
            .unwrap();
        let perfect_run = b.finish(6);
        check_fd_property(&perfect_run, FdProperty::StrongAccuracy).unwrap();
        check_fd_property(&perfect_run, FdProperty::StrongCompleteness).unwrap();

        let generalized = perfect_to_n_useful(&perfect_run);
        check_fd_property(&generalized, FdProperty::GeneralizedStrongAccuracy).unwrap();
        // (S, |S|) reports with F(r) ⊆ S are n-useful.
        check_fd_property(
            &generalized,
            FdProperty::GeneralizedImpermanentStrongCompleteness(3),
        )
        .unwrap();

        let back = n_useful_to_perfect(&generalized);
        check_fd_property(&back, FdProperty::StrongAccuracy).unwrap();
        check_fd_property(&back, FdProperty::StrongCompleteness).unwrap();
    }

    #[test]
    fn n_useful_to_perfect_ignores_uninformative_reports() {
        // A report (S, k) with |S| > k certifies nothing.
        let mut b = RunBuilder::<u8>::new(3);
        b.append_suspect(
            p(0),
            1,
            SuspectReport::Generalized {
                set: set(&[1, 2]),
                min_faulty: 1,
            },
        )
        .unwrap();
        let run = b.finish(3);
        let converted = n_useful_to_perfect(&run);
        // Converted report is the empty standard set — accurate.
        assert!(converted.suspects_at(p(0), 3).is_empty());
        check_fd_property(&converted, FdProperty::StrongAccuracy).unwrap();
    }

    #[test]
    fn replay_map_can_drop_fd_events() {
        let run = impermanent_weak_run();
        let stripped: Run<u8> = replay_map(&run, |_p, _t, e| match e {
            Event::Suspect(_) => None,
            other => Some(other.clone()),
        });
        assert_eq!(
            stripped
                .history(p(0))
                .iter()
                .filter(|e| e.is_suspect())
                .count(),
            0
        );
        assert_eq!(stripped.crash_time(p(2)), Some(2));
    }
}
