//! The failure-detector zoo of Halpern & Ricciardi §2.2 and §4 (after
//! Chandra & Toueg), with machine-checkable property definitions and the
//! class conversions of Propositions 2.1 and 2.2.
//!
//! # Contents
//!
//! * [`oracle`] — concrete per-process oracles pluggable into the
//!   `ktudc-sim` scheduler:
//!   [`PerfectOracle`](oracle::PerfectOracle) (strong completeness + strong
//!   accuracy), [`StrongOracle`](oracle::StrongOracle) (strong
//!   completeness + weak accuracy), [`WeakOracle`](oracle::WeakOracle)
//!   (weak completeness + weak accuracy), the impermanent variants
//!   ([`ImpermanentStrongOracle`](oracle::ImpermanentStrongOracle),
//!   [`ImpermanentWeakOracle`](oracle::ImpermanentWeakOracle)) that may
//!   *retract* suspicions, the eventually-accurate
//!   [`EventuallyStrongOracle`](oracle::EventuallyStrongOracle) (◇S, for the
//!   consensus baselines), the generalized
//!   [`TUsefulOracle`](oracle::TUsefulOracle) of §4, and the oracle-free
//!   [`CyclingSubsetOracle`](oracle::CyclingSubsetOracle) that realizes the
//!   paper's observation that a t-useful detector is *trivially*
//!   constructible when `t < n/2`.
//! * [`props`] — checkers for every accuracy/completeness property named in
//!   the paper, evaluated on finished runs with explicit finite-horizon
//!   readings.
//! * [`perturb`] — contract-*violating* wrappers for fault injection
//!   ([`FalseSuspector`](perturb::FalseSuspector),
//!   [`SuspicionSuppressor`](perturb::SuspicionSuppressor),
//!   [`LateRetractor`](perturb::LateRetractor),
//!   [`MinFaultyInflater`](perturb::MinFaultyInflater)): each breaks
//!   exactly one class property on schedule, so every checker in
//!   [`props`] is regression-tested against its own violation.
//! * [`convert`] — the run-to-run conversions: weak → strong completeness
//!   via suspicion gossip (Proposition 2.1), impermanent-strong → strong via
//!   accumulation (Proposition 2.2), and the §4 equivalences between
//!   `n`-useful generalized detectors and perfect detectors.
//! * [`atd`] — the §5 extension: the Aguilera–Toueg–Deianov weakest-class
//!   accuracy ("at all times *some* correct process is unsuspected", with
//!   the safe process allowed to rotate) and an oracle that maximally
//!   exercises the rotation freedom.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atd;
pub mod classify;
pub mod convert;
pub mod impls;
pub mod oracle;
pub mod perturb;
pub mod props;

pub use atd::{check_atd_accuracy, RotatingAccuracyOracle};
pub use classify::{
    classify_detector, classify_detector_budgeted, condense_class, ClassifySpec, ClassifyStatus,
    EmpiricalClass, FaultRegime, LatencyStats, RegimeVerdict,
};
pub use impls::{
    Beat, DetectorKind, GossipDetector, GossipMsg, HeartbeatDetector, PhiAccrualDetector,
    PhiEstimator, ZooDetector, ZooMsg,
};
pub use oracle::{
    CyclingSubsetOracle, EventuallyStrongOracle, ImpermanentStrongOracle, ImpermanentWeakOracle,
    PerfectOracle, StrongOracle, TUsefulOracle, WeakOracle,
};
pub use perturb::{FalseSuspector, LateRetractor, MinFaultyInflater, SuspicionSuppressor};
pub use props::{check_fd_property, FdProperty, FdViolation};
