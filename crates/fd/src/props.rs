//! Machine-checkable failure-detector properties (§2.2, §4).
//!
//! Each checker evaluates one property on a finished run. Accuracy
//! properties are *safety* properties and the verdicts are exact.
//! Completeness properties are *liveness* properties; on a finite prefix
//! they are evaluated under the standard finite-horizon reading —
//! "eventually" means "by the horizon" and "permanently" means "through the
//! horizon". Experiments pick horizons at which the oracles under test have
//! long since stabilized, so a failure at the horizon is reported as a
//! violation.
//!
//! A *system* satisfies a property iff every run does; use
//! [`check_fd_property_system`] for that quantification.

use ktudc_model::{ProcSet, ProcessId, Run, SuspectReport, System, Time};
use std::fmt;

/// The failure-detector properties named in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FdProperty {
    /// No process is suspected before it crashes.
    StrongAccuracy,
    /// If any process is correct, some correct process is never suspected
    /// (by anyone, at any time).
    WeakAccuracy,
    /// Every faulty process is eventually permanently suspected by every
    /// correct process.
    StrongCompleteness,
    /// Every faulty process is eventually permanently suspected by some
    /// correct process (provided some process is correct).
    WeakCompleteness,
    /// Every faulty process is eventually suspected (not necessarily
    /// permanently) by every correct process.
    ImpermanentStrongCompleteness,
    /// Every faulty process is eventually suspected (not necessarily
    /// permanently) by some correct process (provided some process is
    /// correct).
    ImpermanentWeakCompleteness,
    /// §4: every generalized report `(S, k)` is true when emitted — at
    /// least `k` members of `S` have crashed by then.
    GeneralizedStrongAccuracy,
    /// §4: every correct process eventually holds a t-useful report:
    /// `(S, k)` with `F(r) ⊆ S`, `k ≤ |S|`, and
    /// `n − |S| > min(t, n−1) − k`. The payload is the bound `t`.
    GeneralizedImpermanentStrongCompleteness(usize),
}

impl fmt::Display for FdProperty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FdProperty::StrongAccuracy => write!(f, "strong accuracy"),
            FdProperty::WeakAccuracy => write!(f, "weak accuracy"),
            FdProperty::StrongCompleteness => write!(f, "strong completeness"),
            FdProperty::WeakCompleteness => write!(f, "weak completeness"),
            FdProperty::ImpermanentStrongCompleteness => {
                write!(f, "impermanent strong completeness")
            }
            FdProperty::ImpermanentWeakCompleteness => {
                write!(f, "impermanent weak completeness")
            }
            FdProperty::GeneralizedStrongAccuracy => write!(f, "generalized strong accuracy"),
            FdProperty::GeneralizedImpermanentStrongCompleteness(t) => {
                write!(f, "generalized impermanent strong completeness (t={t})")
            }
        }
    }
}

/// Why a property check failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FdViolation {
    /// The violated property.
    pub property: FdProperty,
    /// Human-readable witness description.
    pub witness: String,
}

impl fmt::Display for FdViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} violated: {}", self.property, self.witness)
    }
}

impl std::error::Error for FdViolation {}

fn violation(property: FdProperty, witness: impl Into<String>) -> Result<(), FdViolation> {
    Err(FdViolation {
        property,
        witness: witness.into(),
    })
}

/// Checks one failure-detector property on one run (finite-horizon
/// readings; see the module docs).
///
/// # Errors
///
/// Returns the first violation found, with a witness description.
pub fn check_fd_property<M>(run: &Run<M>, property: FdProperty) -> Result<(), FdViolation> {
    match property {
        FdProperty::StrongAccuracy => check_strong_accuracy(run),
        FdProperty::WeakAccuracy => check_weak_accuracy(run),
        FdProperty::StrongCompleteness => check_strong_completeness(run, true),
        FdProperty::WeakCompleteness => check_weak_completeness(run, true),
        FdProperty::ImpermanentStrongCompleteness => check_strong_completeness(run, false),
        FdProperty::ImpermanentWeakCompleteness => check_weak_completeness(run, false),
        FdProperty::GeneralizedStrongAccuracy => check_generalized_accuracy(run),
        FdProperty::GeneralizedImpermanentStrongCompleteness(t) => check_t_useful(run, t),
    }
}

/// Checks one property across a whole system: the property holds iff it
/// holds in every run.
///
/// # Errors
///
/// Returns the first violation found, tagged with the offending run index.
pub fn check_fd_property_system<M>(
    system: &System<M>,
    property: FdProperty,
) -> Result<(), FdViolation> {
    for (i, run) in system.runs().iter().enumerate() {
        check_fd_property(run, property).map_err(|v| FdViolation {
            property: v.property,
            witness: format!("run {i}: {}", v.witness),
        })?;
    }
    Ok(())
}

/// Iterates all standard reports of `p` with their emission ticks.
fn standard_reports<M>(run: &Run<M>, p: ProcessId) -> Vec<(Time, ProcSet)> {
    run.timed_history(p)
        .filter_map(|(t, e)| match e {
            ktudc_model::Event::Suspect(SuspectReport::Standard(s)) => Some((t, *s)),
            _ => None,
        })
        .collect()
}

fn check_strong_accuracy<M>(run: &Run<M>) -> Result<(), FdViolation> {
    for p in ProcessId::all(run.n()) {
        for (t, s) in standard_reports(run, p) {
            // `Suspects_p` keeps the value `s` until the next report, but
            // the crashed set only grows, so checking at emission time is
            // exact: if `q ∈ s` and `q` crashes at c > t, then at time t the
            // property already fails.
            let crashed = run.crashed_by(t);
            if let Some(q) = s.difference(crashed).first() {
                return violation(
                    FdProperty::StrongAccuracy,
                    format!("{p} suspected {q} at tick {t} before it crashed"),
                );
            }
        }
    }
    Ok(())
}

fn check_weak_accuracy<M>(run: &Run<M>) -> Result<(), FdViolation> {
    let correct = run.correct();
    if correct.is_empty() {
        return Ok(()); // vacuous when F(r) = Proc
    }
    // Union of everything anyone ever suspected.
    let mut ever_suspected = ProcSet::new();
    for p in ProcessId::all(run.n()) {
        for (_, s) in standard_reports(run, p) {
            ever_suspected = ever_suspected.union(s);
        }
    }
    if correct.difference(ever_suspected).is_empty() {
        return violation(
            FdProperty::WeakAccuracy,
            format!("every correct process in {correct} was suspected at some point"),
        );
    }
    Ok(())
}

/// Strong / impermanent-strong completeness: every correct `p` must suspect
/// every faulty `q` — permanently (at the horizon) if `permanent`, at least
/// once otherwise.
fn check_strong_completeness<M>(run: &Run<M>, permanent: bool) -> Result<(), FdViolation> {
    let property = if permanent {
        FdProperty::StrongCompleteness
    } else {
        FdProperty::ImpermanentStrongCompleteness
    };
    let faulty = run.faulty();
    for p in run.correct().iter() {
        for q in faulty.iter() {
            let ok = if permanent {
                run.suspects_at(p, run.horizon()).contains(q)
            } else {
                standard_reports(run, p).iter().any(|(_, s)| s.contains(q))
            };
            if !ok {
                return violation(
                    property,
                    format!(
                        "correct {p} {} faulty {q} by the horizon",
                        if permanent {
                            "does not permanently suspect"
                        } else {
                            "never suspected"
                        }
                    ),
                );
            }
        }
    }
    Ok(())
}

/// Weak / impermanent-weak completeness: every faulty `q` must be suspected
/// by *some* correct process (vacuous if all crash).
fn check_weak_completeness<M>(run: &Run<M>, permanent: bool) -> Result<(), FdViolation> {
    let property = if permanent {
        FdProperty::WeakCompleteness
    } else {
        FdProperty::ImpermanentWeakCompleteness
    };
    let correct = run.correct();
    if correct.is_empty() {
        return Ok(());
    }
    for q in run.faulty().iter() {
        let ok = correct.iter().any(|p| {
            if permanent {
                run.suspects_at(p, run.horizon()).contains(q)
            } else {
                standard_reports(run, p).iter().any(|(_, s)| s.contains(q))
            }
        });
        if !ok {
            return violation(
                property,
                format!("no correct process suspects faulty {q} by the horizon"),
            );
        }
    }
    Ok(())
}

fn check_generalized_accuracy<M>(run: &Run<M>) -> Result<(), FdViolation> {
    for p in ProcessId::all(run.n()) {
        for (t, e) in run.timed_history(p) {
            if let ktudc_model::Event::Suspect(SuspectReport::Generalized { set, min_faulty }) = e {
                let actually_crashed = run.crashed_by(t).intersection(*set).len();
                if actually_crashed < *min_faulty {
                    return violation(
                        FdProperty::GeneralizedStrongAccuracy,
                        format!(
                            "{p}'s report ({set}, ≥{min_faulty}) at tick {t} overstates: only {actually_crashed} of {set} had crashed"
                        ),
                    );
                }
                if *min_faulty > set.len() {
                    return violation(
                        FdProperty::GeneralizedStrongAccuracy,
                        format!("{p}'s report claims more failures than |S| at tick {t}"),
                    );
                }
            }
        }
    }
    Ok(())
}

/// Whether `(set, k)` is a t-useful report for a run with faulty set
/// `faulty` in an `n`-process system (§4, Definition of t-useful events):
/// (a) `F(r) ⊆ S`, (b) `n − |S| > min(t, n−1) − k`, (c) `k ≤ |S|`.
#[must_use]
pub fn is_t_useful_event(n: usize, t: usize, faulty: ProcSet, set: ProcSet, k: usize) -> bool {
    faulty.is_subset_of(set)
        && k <= set.len()
        && (n - set.len()) as isize > t.min(n - 1) as isize - k as isize
}

fn check_t_useful<M>(run: &Run<M>, t: usize) -> Result<(), FdViolation> {
    let n = run.n();
    let faulty = run.faulty();
    for p in run.correct().iter() {
        let has_useful = run
            .view_at(p, run.horizon())
            .generalized_reports()
            .any(|(set, k)| is_t_useful_event(n, t, faulty, set, k));
        if !has_useful {
            return violation(
                FdProperty::GeneralizedImpermanentStrongCompleteness(t),
                format!("correct {p} never received a {t}-useful report"),
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktudc_model::{Event, RunBuilder};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn set(ids: &[usize]) -> ProcSet {
        ids.iter().map(|&i| p(i)).collect()
    }

    /// Builds a 3-process run: p2 crashes at tick 5; standard reports per
    /// the given schedule of (process, tick, suspected set).
    fn run_with_reports(reports: &[(usize, Time, &[usize])]) -> Run<u8> {
        let mut b = RunBuilder::<u8>::new(3);
        let mut items: Vec<(usize, Time, ProcSet)> =
            reports.iter().map(|&(pi, t, s)| (pi, t, set(s))).collect();
        items.sort_by_key(|&(_, t, _)| t);
        let mut crash_done = false;
        for (pi, t, s) in items {
            if t >= 5 && !crash_done {
                b.append(p(2), 5, Event::Crash).unwrap();
                crash_done = true;
            }
            b.append_suspect(p(pi), t, SuspectReport::Standard(s))
                .unwrap();
        }
        if !crash_done {
            b.append(p(2), 5, Event::Crash).unwrap();
        }
        b.finish(20)
    }

    #[test]
    fn strong_accuracy_accepts_post_crash_suspicion() {
        let run = run_with_reports(&[(0, 6, &[2]), (1, 7, &[2])]);
        check_fd_property(&run, FdProperty::StrongAccuracy).unwrap();
    }

    #[test]
    fn strong_accuracy_rejects_premature_suspicion() {
        let run = run_with_reports(&[(0, 3, &[2])]); // p2 crashes only at 5
        let err = check_fd_property(&run, FdProperty::StrongAccuracy).unwrap_err();
        assert!(err.witness.contains("p0 suspected p2 at tick 3"));
    }

    #[test]
    fn weak_accuracy_needs_one_unsuspected_correct_process() {
        // p0 and p1 correct; suspecting p1 everywhere is fine as long as p0
        // stays clean.
        let run = run_with_reports(&[(0, 6, &[1, 2]), (1, 7, &[1, 2])]);
        check_fd_property(&run, FdProperty::WeakAccuracy).unwrap();
        // Suspecting both correct processes at some point violates it.
        let run = run_with_reports(&[(0, 6, &[1]), (1, 7, &[0])]);
        assert!(check_fd_property(&run, FdProperty::WeakAccuracy).is_err());
    }

    #[test]
    fn weak_accuracy_vacuous_when_all_crash() {
        let mut b = RunBuilder::<u8>::new(2);
        b.append_suspect(p(0), 1, SuspectReport::Standard(set(&[1])))
            .unwrap();
        b.append(p(0), 2, Event::Crash).unwrap();
        b.append(p(1), 2, Event::Crash).unwrap();
        let run = b.finish(5);
        check_fd_property(&run, FdProperty::WeakAccuracy).unwrap();
    }

    #[test]
    fn strong_completeness_requires_everyone_permanently() {
        // Both correct processes end with p2 suspected.
        let run = run_with_reports(&[(0, 6, &[2]), (1, 7, &[2])]);
        check_fd_property(&run, FdProperty::StrongCompleteness).unwrap();
        // p1's *last* report retracts the suspicion → strong fails,
        // impermanent passes.
        let run = run_with_reports(&[(0, 6, &[2]), (1, 7, &[2]), (1, 9, &[])]);
        assert!(check_fd_property(&run, FdProperty::StrongCompleteness).is_err());
        check_fd_property(&run, FdProperty::ImpermanentStrongCompleteness).unwrap();
    }

    #[test]
    fn strong_completeness_missing_observer() {
        // Only p0 ever suspects p2.
        let run = run_with_reports(&[(0, 6, &[2])]);
        let err = check_fd_property(&run, FdProperty::StrongCompleteness).unwrap_err();
        assert!(err.witness.contains("p1"));
        // Weak completeness is satisfied (someone suspects).
        check_fd_property(&run, FdProperty::WeakCompleteness).unwrap();
    }

    #[test]
    fn weak_completeness_fails_when_nobody_notices() {
        let run = run_with_reports(&[(0, 6, &[]), (1, 7, &[])]);
        assert!(check_fd_property(&run, FdProperty::WeakCompleteness).is_err());
        assert!(check_fd_property(&run, FdProperty::ImpermanentWeakCompleteness).is_err());
    }

    #[test]
    fn impermanent_weak_accepts_one_transient_sighting() {
        let run = run_with_reports(&[(0, 6, &[2]), (0, 8, &[])]);
        check_fd_property(&run, FdProperty::ImpermanentWeakCompleteness).unwrap();
        assert!(check_fd_property(&run, FdProperty::WeakCompleteness).is_err());
    }

    #[test]
    fn generalized_accuracy_checks_emission_time_truth() {
        let mut b = RunBuilder::<u8>::new(3);
        b.append(p(2), 2, Event::Crash).unwrap();
        b.append_suspect(
            p(0),
            3,
            SuspectReport::Generalized {
                set: set(&[1, 2]),
                min_faulty: 1,
            },
        )
        .unwrap();
        let run = b.finish(10);
        check_fd_property(&run, FdProperty::GeneralizedStrongAccuracy).unwrap();

        // Claiming 2 faulty in {1,2} when only p2 crashed: violation.
        let mut b = RunBuilder::<u8>::new(3);
        b.append(p(2), 2, Event::Crash).unwrap();
        b.append_suspect(
            p(0),
            3,
            SuspectReport::Generalized {
                set: set(&[1, 2]),
                min_faulty: 2,
            },
        )
        .unwrap();
        let run = b.finish(10);
        assert!(check_fd_property(&run, FdProperty::GeneralizedStrongAccuracy).is_err());
    }

    #[test]
    fn t_useful_event_predicate() {
        // n=5, t=3, F = {p0}: (F, 1) is useful once p0 crashed:
        // 5 - 1 > min(3,4) - 1 = 2 → 4 > 2 ✓.
        assert!(is_t_useful_event(5, 3, set(&[0]), set(&[0]), 1));
        // Padded too far: |S|=4, k=1 → 5-4=1 > 3-1=2? no.
        assert!(!is_t_useful_event(5, 3, set(&[0]), set(&[0, 1, 2, 3]), 1));
        // F ⊄ S disqualifies.
        assert!(!is_t_useful_event(5, 3, set(&[0]), set(&[1]), 1));
        // k > |S| disqualifies.
        assert!(!is_t_useful_event(5, 3, set(&[0]), set(&[0]), 2));
        // The trivial (S, 0) with |S| = t is useful iff t < n/2 and F ⊆ S.
        assert!(is_t_useful_event(5, 2, set(&[0]), set(&[0, 1]), 0));
        assert!(!is_t_useful_event(4, 2, set(&[0]), set(&[0, 1]), 0));
    }

    #[test]
    fn t_useful_completeness_checker() {
        let t = 2;
        let mut b = RunBuilder::<u8>::new(5);
        b.append(p(4), 1, Event::Crash).unwrap();
        for pi in 0..4 {
            b.append_suspect(
                p(pi),
                3 + pi as Time,
                SuspectReport::Generalized {
                    set: set(&[4]),
                    min_faulty: 1,
                },
            )
            .unwrap();
        }
        let run = b.finish(10);
        check_fd_property(
            &run,
            FdProperty::GeneralizedImpermanentStrongCompleteness(t),
        )
        .unwrap();

        // Remove p3's report: completeness fails.
        let mut b = RunBuilder::<u8>::new(5);
        b.append(p(4), 1, Event::Crash).unwrap();
        for pi in 0..3 {
            b.append_suspect(
                p(pi),
                3 + pi as Time,
                SuspectReport::Generalized {
                    set: set(&[4]),
                    min_faulty: 1,
                },
            )
            .unwrap();
        }
        let run = b.finish(10);
        let err = check_fd_property(
            &run,
            FdProperty::GeneralizedImpermanentStrongCompleteness(t),
        )
        .unwrap_err();
        assert!(err.witness.contains("p3"));
    }

    #[test]
    fn system_quantification_reports_run_index() {
        let good = run_with_reports(&[(0, 6, &[2]), (1, 7, &[2])]);
        let bad = run_with_reports(&[(0, 3, &[2])]);
        let sys = System::new(vec![good, bad]);
        let err = check_fd_property_system(&sys, FdProperty::StrongAccuracy).unwrap_err();
        assert!(err.witness.starts_with("run 1:"));
    }

    #[test]
    fn property_display_names() {
        assert_eq!(FdProperty::StrongAccuracy.to_string(), "strong accuracy");
        assert_eq!(
            FdProperty::GeneralizedImpermanentStrongCompleteness(3).to_string(),
            "generalized impermanent strong completeness (t=3)"
        );
        let v = FdViolation {
            property: FdProperty::WeakAccuracy,
            witness: "w".into(),
        };
        assert!(v.to_string().contains("weak accuracy violated"));
    }
}
