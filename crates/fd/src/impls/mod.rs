//! Empirical failure detectors: implementations, not oracles.
//!
//! Everything in [`crate::oracle`] consults the ground-truth fault
//! schedule; everything here earns its suspicions from *observable message
//! behavior* — beats that arrive, beats that do not, counters that stop
//! growing — via the [`Detector`] interface of `ktudc-sim` and its
//! two-plane runner [`run_detected`](ktudc_sim::run_detected). The three
//! implementations span the practical lineage:
//!
//! * [`HeartbeatDetector`] — fixed-timeout beats (the Duarte et al.
//!   system-level-diagnosis baseline): perfect on clean channels, the
//!   first to break under delay or loss.
//! * [`PhiAccrualDetector`] — Hayashibara-style adaptive suspicion: learns
//!   the channel's inter-arrival distribution and survives loss, spikes,
//!   and bursts that break a fixed timeout.
//! * [`GossipDetector`] — van Renesse-style counter gossip: liveness is
//!   *routed*, so accuracy survives even severed links while the gossip
//!   graph stays connected.
//!
//! None of them can see the fault schedule, so their paper class is not a
//! definition but an *empirical finding*: `crate::classify` sweeps each
//! detector across fault regimes and lets `crate::props` decide which
//! class (perfect, strong, eventually-perfect, …) the suspicion histories
//! actually satisfy.

pub mod gossip;
pub mod heartbeat;
pub mod phi;

pub use gossip::{GossipDetector, GossipMsg};
pub use heartbeat::{Beat, HeartbeatDetector};
pub use phi::{PhiAccrualDetector, PhiEstimator};

use ktudc_model::{ProcessId, SuspectReport, Time};
use ktudc_sim::Detector;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Selector for the empirical detectors, used by the classification
/// harness, the Table-1 harness, and the serve wire (bare string tags,
/// like `FdChoice`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DetectorKind {
    /// [`HeartbeatDetector`] with default tuning.
    Heartbeat,
    /// [`PhiAccrualDetector`] with default tuning.
    PhiAccrual,
    /// [`GossipDetector`] with default tuning.
    Gossip,
}

impl DetectorKind {
    /// All selectable kinds, in display order.
    pub const ALL: [DetectorKind; 3] = [
        DetectorKind::Heartbeat,
        DetectorKind::PhiAccrual,
        DetectorKind::Gossip,
    ];

    /// Builds a fresh default-tuned instance behind the unified message
    /// type, ready for [`run_detected`](ktudc_sim::run_detected).
    #[must_use]
    pub fn build(self) -> ZooDetector {
        match self {
            DetectorKind::Heartbeat => ZooDetector::Heartbeat(HeartbeatDetector::new()),
            DetectorKind::PhiAccrual => ZooDetector::PhiAccrual(PhiAccrualDetector::new()),
            DetectorKind::Gossip => ZooDetector::Gossip(GossipDetector::new()),
        }
    }
}

impl fmt::Display for DetectorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DetectorKind::Heartbeat => "heartbeat",
            DetectorKind::PhiAccrual => "phi-accrual",
            DetectorKind::Gossip => "gossip",
        };
        f.write_str(s)
    }
}

/// Unified detector-plane message type, so dynamically chosen detectors
/// share one [`run_detected`](ktudc_sim::run_detected) instantiation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ZooMsg {
    /// A heartbeat (from [`HeartbeatDetector`] or [`PhiAccrualDetector`]).
    Beat(Beat),
    /// A gossiped counter vector.
    Gossip(GossipMsg),
}

/// Any of the three empirical detectors behind the unified [`ZooMsg`].
/// Mismatched message kinds are ignored defensively (they cannot occur
/// when all processes run the same `DetectorKind`, which the harnesses
/// enforce).
#[derive(Clone, Debug)]
pub enum ZooDetector {
    /// Heartbeat-timeout.
    Heartbeat(HeartbeatDetector),
    /// φ-accrual.
    PhiAccrual(PhiAccrualDetector),
    /// Counter gossip.
    Gossip(GossipDetector),
}

impl Detector for ZooDetector {
    type Msg = ZooMsg;

    fn start(&mut self, me: ProcessId, n: usize) {
        match self {
            ZooDetector::Heartbeat(d) => d.start(me, n),
            ZooDetector::PhiAccrual(d) => d.start(me, n),
            ZooDetector::Gossip(d) => d.start(me, n),
        }
    }

    fn on_tick(&mut self, now: Time, rng: &mut StdRng) -> Vec<(ProcessId, ZooMsg)> {
        match self {
            ZooDetector::Heartbeat(d) => d
                .on_tick(now, rng)
                .into_iter()
                .map(|(to, m)| (to, ZooMsg::Beat(m)))
                .collect(),
            ZooDetector::PhiAccrual(d) => d
                .on_tick(now, rng)
                .into_iter()
                .map(|(to, m)| (to, ZooMsg::Beat(m)))
                .collect(),
            ZooDetector::Gossip(d) => d
                .on_tick(now, rng)
                .into_iter()
                .map(|(to, m)| (to, ZooMsg::Gossip(m)))
                .collect(),
        }
    }

    fn on_recv(&mut self, now: Time, from: ProcessId, msg: &ZooMsg) {
        match (self, msg) {
            (ZooDetector::Heartbeat(d), ZooMsg::Beat(m)) => d.on_recv(now, from, m),
            (ZooDetector::PhiAccrual(d), ZooMsg::Beat(m)) => d.on_recv(now, from, m),
            (ZooDetector::Gossip(d), ZooMsg::Gossip(m)) => d.on_recv(now, from, m),
            _ => {}
        }
    }

    fn report(&mut self, now: Time) -> SuspectReport {
        match self {
            ZooDetector::Heartbeat(d) => d.report(now),
            ZooDetector::PhiAccrual(d) => d.report(now),
            ZooDetector::Gossip(d) => d.report(now),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            ZooDetector::Heartbeat(d) => d.name(),
            ZooDetector::PhiAccrual(d) => d.name(),
            ZooDetector::Gossip(d) => d.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{check_fd_property, FdProperty};
    use ktudc_model::{Event, Run};
    use ktudc_sim::{
        run_detected, ChannelKind, CrashPlan, FaultPlan, ProtoAction, Protocol, SimConfig, Workload,
    };

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[derive(Clone, Debug)]
    struct Idle;

    impl Protocol<u8> for Idle {
        fn start(&mut self, _me: ProcessId, _n: usize) {}
        fn observe(&mut self, _time: Time, _event: &Event<u8>) {}
        fn next_action(&mut self, _time: Time) -> Option<ProtoAction<u8>> {
            None
        }
        fn quiescent(&self) -> bool {
            true
        }
    }

    fn run_zoo(kind: DetectorKind, config: &SimConfig) -> Run<u8> {
        run_detected(config, |_| Idle, |_| kind.build(), &Workload::none())
            .sim
            .run
    }

    fn false_suspicions(run: &Run<u8>) -> u64 {
        let mut count = 0;
        for q in ProcessId::all(run.n()) {
            for (t, e) in run.timed_history(q) {
                if let Event::Suspect(SuspectReport::Standard(s)) = e {
                    count += s.difference(run.crashed_by(t)).len() as u64;
                }
            }
        }
        count
    }

    #[test]
    fn all_three_are_clean_on_reliable_channels() {
        for kind in DetectorKind::ALL {
            for seed in 0..4 {
                let config = SimConfig::new(4).horizon(200).seed(seed);
                let run = run_zoo(kind, &config);
                assert_eq!(
                    false_suspicions(&run),
                    0,
                    "{kind} falsely suspected on a clean reliable run (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn all_three_detect_a_crash_permanently() {
        for kind in DetectorKind::ALL {
            let config = SimConfig::new(3)
                .crashes(CrashPlan::at(&[(2, 40)]))
                .horizon(220)
                .seed(1);
            let run = run_zoo(kind, &config);
            check_fd_property(&run, FdProperty::StrongCompleteness)
                .unwrap_or_else(|v| panic!("{kind}: {v}"));
            check_fd_property(&run, FdProperty::StrongAccuracy)
                .unwrap_or_else(|v| panic!("{kind}: {v}"));
        }
    }

    #[test]
    fn heartbeat_breaks_under_burst_loss_but_phi_adapts() {
        let config = SimConfig::new(3)
            .faults(FaultPlan::none().burst_loss(60, 18))
            .horizon(240)
            .seed(2);
        let hb = run_zoo(DetectorKind::Heartbeat, &config);
        assert!(
            false_suspicions(&hb) > 0,
            "an 18-tick outage must outlast the 14-tick heartbeat timeout"
        );
        let phi = run_zoo(DetectorKind::PhiAccrual, &config);
        assert_eq!(
            false_suspicions(&phi),
            0,
            "phi-accrual must absorb an 18-tick outage"
        );
    }

    #[test]
    fn severed_link_fools_direct_detectors_but_not_gossip() {
        let config = SimConfig::new(3)
            .faults(FaultPlan::none().sever_link(0, 1, 30))
            .horizon(240)
            .seed(3);
        for kind in [DetectorKind::Heartbeat, DetectorKind::PhiAccrual] {
            let run = run_zoo(kind, &config);
            assert!(
                run.suspects_at(p(1), 240).contains(p(0)),
                "{kind}: p1 must falsely suspect the severed p0"
            );
            // But only p0 is falsely suspected: weak accuracy survives.
            check_fd_property(&run, FdProperty::WeakAccuracy)
                .unwrap_or_else(|v| panic!("{kind}: {v}"));
        }
        let gossip = run_zoo(DetectorKind::Gossip, &config);
        assert_eq!(
            false_suspicions(&gossip),
            0,
            "gossip must route around the severed link via p2"
        );
    }

    #[test]
    fn phi_adapts_to_lossy_channels_where_heartbeat_false_suspects() {
        let mut hb_false = 0;
        let mut phi_false = 0;
        for seed in 0..6 {
            let config = SimConfig::new(3)
                .channel(ChannelKind::fair_lossy(0.3))
                .horizon(300)
                .seed(seed);
            hb_false += false_suspicions(&run_zoo(DetectorKind::Heartbeat, &config));
            phi_false += false_suspicions(&run_zoo(DetectorKind::PhiAccrual, &config));
        }
        assert!(
            hb_false > 0,
            "30% loss should trip a 14-tick fixed timeout at least once in 6 runs"
        );
        assert_eq!(phi_false, 0, "phi-accrual must absorb 30% loss");
    }

    #[test]
    fn kind_roundtrips_and_builds() {
        for kind in DetectorKind::ALL {
            let json = serde_json::to_string(&kind).unwrap();
            assert_eq!(serde_json::from_str::<DetectorKind>(&json).unwrap(), kind);
            let mut d = kind.build();
            d.start(p(0), 3);
            assert_eq!(d.name(), kind.to_string());
        }
        assert_eq!(
            serde_json::to_string(&DetectorKind::PhiAccrual).unwrap(),
            r#""PhiAccrual""#
        );
    }

    #[test]
    fn mismatched_zoo_messages_are_ignored() {
        let mut d = DetectorKind::Heartbeat.build();
        d.start(p(0), 2);
        // A gossip vector delivered to a heartbeat detector is dropped.
        d.on_recv(5, p(1), &ZooMsg::Gossip(GossipMsg(vec![9, 9])));
        assert!(matches!(
            d.report(20),
            SuspectReport::Standard(s) if s.contains(p(1))
        ));
    }
}
