//! The classic heartbeat-timeout detector.
//!
//! Every `period` ticks each process broadcasts a beat; a peer silent for
//! more than `timeout` ticks is suspected, and a suspicion is retracted the
//! moment a beat arrives again. This is the detector every practical system
//! starts from (cf. the system-level diagnosis lineage of Duarte et al.):
//! cheap, aggressive, and only as accurate as its fixed timeout.
//!
//! With the default tuning (period 4, timeout 14) on clean reliable
//! channels (max delay 3), the worst-case inter-beat gap is
//! `period + max_delay − 1 = 6 < 14`, so the detector is empirically
//! *perfect*; any regime that can silence a live link for longer than the
//! timeout (bursts, spikes, partitions) manufactures false suspicions.

use ktudc_model::{ProcSet, ProcessId, SuspectReport, Time};
use ktudc_sim::Detector;
use rand::rngs::StdRng;

/// The unit heartbeat message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Beat;

/// Heartbeat-timeout detector (see module docs).
#[derive(Clone, Debug)]
pub struct HeartbeatDetector {
    me: ProcessId,
    n: usize,
    period: Time,
    timeout: Time,
    /// Last tick a beat from each peer arrived; tick 0 doubles as the
    /// start-of-run grace marker, so nobody is suspected before a full
    /// timeout has elapsed from tick 0.
    last_heard: Vec<Time>,
}

impl HeartbeatDetector {
    /// Default tuning: beat every 4 ticks, suspect after 14 silent ticks.
    #[must_use]
    pub fn new() -> Self {
        Self::with_tuning(4, 14)
    }

    /// Custom tuning.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or `timeout < period` (a timeout shorter
    /// than the beat interval suspects everyone always).
    #[must_use]
    pub fn with_tuning(period: Time, timeout: Time) -> Self {
        assert!(period >= 1, "heartbeat period must be at least 1");
        assert!(timeout >= period, "timeout must cover at least one period");
        HeartbeatDetector {
            me: ProcessId::new(0),
            n: 0,
            period,
            timeout,
            last_heard: Vec::new(),
        }
    }
}

impl Default for HeartbeatDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl Detector for HeartbeatDetector {
    type Msg = Beat;

    fn start(&mut self, me: ProcessId, n: usize) {
        self.me = me;
        self.n = n;
        self.last_heard = vec![0; n];
    }

    fn on_tick(&mut self, now: Time, _rng: &mut StdRng) -> Vec<(ProcessId, Beat)> {
        // Staggered like the scheduler's FD polling, so beats from
        // different senders spread over the period instead of bursting.
        if (now + self.me.index() as Time).is_multiple_of(self.period) {
            ProcessId::all(self.n)
                .filter(|&q| q != self.me)
                .map(|q| (q, Beat))
                .collect()
        } else {
            Vec::new()
        }
    }

    fn on_recv(&mut self, now: Time, from: ProcessId, _msg: &Beat) {
        self.last_heard[from.index()] = now;
    }

    fn report(&mut self, now: Time) -> SuspectReport {
        let suspects: ProcSet = ProcessId::all(self.n)
            .filter(|&q| {
                q != self.me && now.saturating_sub(self.last_heard[q.index()]) > self.timeout
            })
            .collect();
        SuspectReport::Standard(suspects)
    }

    fn name(&self) -> &'static str {
        "heartbeat"
    }
}
