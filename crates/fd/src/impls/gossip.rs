//! A gossip-style detector (van Renesse–Minsky–Hayden).
//!
//! Each process keeps a vector of *liveness counters*, bumps its own entry
//! every tick, and periodically ships the whole vector to one random peer.
//! On receipt the vectors are merged entry-wise (max wins) and every entry
//! that grew is stamped as freshly alive. A peer whose counter has not
//! grown for `fail_timeout` ticks is suspected.
//!
//! Because liveness information is *routed* — a counter can reach an
//! observer through any chain of gossip partners — the detector keeps its
//! accuracy even when individual links are severed: as long as the gossip
//! graph stays connected, a live process's counter keeps reaching everyone.
//! This is exactly the property the direct-channel detectors (heartbeat,
//! φ-accrual) cannot offer, and the classification harness exhibits the
//! separation on the severed-link regime.

use ktudc_model::{ProcSet, ProcessId, SuspectReport, Time};
use ktudc_sim::Detector;
use rand::rngs::StdRng;
use rand::Rng;

/// A gossiped counter vector (entry `i` is process `i`'s liveness counter).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct GossipMsg(pub Vec<u64>);

/// Gossip-style detector (see module docs).
#[derive(Clone, Debug)]
pub struct GossipDetector {
    me: ProcessId,
    n: usize,
    gossip_period: Time,
    fail_timeout: Time,
    counters: Vec<u64>,
    /// Last tick each entry grew; tick 0 doubles as start-of-run grace.
    last_bump: Vec<Time>,
}

impl GossipDetector {
    /// Default tuning: gossip every 3 ticks, suspect after 60 bump-free
    /// ticks (gossip dissemination is multi-hop, so the timeout must cover
    /// several gossip rounds plus channel delay).
    #[must_use]
    pub fn new() -> Self {
        Self::with_tuning(3, 60)
    }

    /// Custom tuning.
    ///
    /// # Panics
    ///
    /// Panics if `gossip_period` is zero or `fail_timeout` does not cover
    /// at least one gossip round.
    #[must_use]
    pub fn with_tuning(gossip_period: Time, fail_timeout: Time) -> Self {
        assert!(gossip_period >= 1, "gossip period must be at least 1");
        assert!(
            fail_timeout >= gossip_period,
            "fail timeout must cover at least one gossip round"
        );
        GossipDetector {
            me: ProcessId::new(0),
            n: 0,
            gossip_period,
            fail_timeout,
            counters: Vec::new(),
            last_bump: Vec::new(),
        }
    }
}

impl Default for GossipDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl Detector for GossipDetector {
    type Msg = GossipMsg;

    fn start(&mut self, me: ProcessId, n: usize) {
        self.me = me;
        self.n = n;
        self.counters = vec![0; n];
        self.last_bump = vec![0; n];
    }

    fn on_tick(&mut self, now: Time, rng: &mut StdRng) -> Vec<(ProcessId, GossipMsg)> {
        self.counters[self.me.index()] += 1;
        self.last_bump[self.me.index()] = now;
        if self.n < 2 || !(now + self.me.index() as Time).is_multiple_of(self.gossip_period) {
            return Vec::new();
        }
        // One random gossip partner per round, drawn from the dedicated
        // detector stream so partner choice is seed-reproducible.
        let offset = rng.gen_range(1..self.n);
        let partner = ProcessId::new((self.me.index() + offset) % self.n);
        vec![(partner, GossipMsg(self.counters.clone()))]
    }

    fn on_recv(&mut self, now: Time, _from: ProcessId, msg: &GossipMsg) {
        for q in ProcessId::all(self.n) {
            if let Some(&theirs) = msg.0.get(q.index()) {
                if theirs > self.counters[q.index()] {
                    self.counters[q.index()] = theirs;
                    self.last_bump[q.index()] = now;
                }
            }
        }
    }

    fn report(&mut self, now: Time) -> SuspectReport {
        let suspects: ProcSet = ProcessId::all(self.n)
            .filter(|&q| {
                q != self.me && now.saturating_sub(self.last_bump[q.index()]) > self.fail_timeout
            })
            .collect();
        SuspectReport::Standard(suspects)
    }

    fn name(&self) -> &'static str {
        "gossip"
    }
}
