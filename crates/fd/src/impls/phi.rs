//! The φ-accrual detector (Hayashibara et al.), adapted to simulator ticks.
//!
//! Instead of a fixed timeout, the receiver keeps a sliding window of
//! inter-arrival gaps per peer and converts the current silence into a
//! *suspicion level* under an exponential inter-arrival model:
//!
//! ```text
//! φ(gap) = −log₁₀ P(next beat arrives later than gap) = gap / (mean · ln 10)
//! ```
//!
//! A peer is suspected once φ crosses a threshold (default 6, i.e. the
//! observed silence would occur with probability 10⁻⁶ if the peer were
//! alive and the channel behaved as historically observed). Because `mean`
//! is *learned*, the detector adapts: on a lossy channel the observed
//! inter-arrival mean stretches and the effective timeout stretches with
//! it, which is exactly why φ-accrual keeps its accuracy in regimes where
//! a fixed-timeout heartbeat detector turns into a false-suspicion machine.

use super::heartbeat::Beat;
use ktudc_model::{ProcSet, ProcessId, SuspectReport, Time};
use ktudc_sim::Detector;
use rand::rngs::StdRng;
use std::collections::VecDeque;
use std::f64::consts::LN_10;

/// Sliding-window arrival statistics for one peer.
#[derive(Clone, Debug, Default)]
struct PeerWindow {
    last_arrival: Time,
    gaps: VecDeque<Time>,
}

/// φ-accrual adaptive detector (see module docs).
#[derive(Clone, Debug)]
pub struct PhiAccrualDetector {
    me: ProcessId,
    n: usize,
    period: Time,
    threshold: f64,
    window: usize,
    min_samples: usize,
    /// Prior mean inter-arrival used until `min_samples` gaps are observed.
    prior_mean: f64,
    peers: Vec<PeerWindow>,
}

impl PhiAccrualDetector {
    /// Default tuning: beat every 4 ticks, suspect at φ ≥ 6, window of 20
    /// gaps, bootstrap prior mean 7 (period + default max delay).
    #[must_use]
    pub fn new() -> Self {
        Self::with_tuning(4, 6.0, 20)
    }

    /// Custom tuning.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero, `threshold` is not positive, or
    /// `window` is zero.
    #[must_use]
    pub fn with_tuning(period: Time, threshold: f64, window: usize) -> Self {
        assert!(period >= 1, "beat period must be at least 1");
        assert!(threshold > 0.0, "phi threshold must be positive");
        assert!(window >= 1, "window must hold at least one gap");
        PhiAccrualDetector {
            me: ProcessId::new(0),
            n: 0,
            period,
            threshold,
            window,
            min_samples: 3,
            prior_mean: (period + 3) as f64,
            peers: Vec::new(),
        }
    }

    /// The current suspicion level for `q` at tick `now` (0 for self and
    /// for peers heard this tick).
    #[must_use]
    pub fn phi(&self, q: ProcessId, now: Time) -> f64 {
        if q == self.me || self.n == 0 {
            return 0.0;
        }
        let peer = &self.peers[q.index()];
        let gap = now.saturating_sub(peer.last_arrival) as f64;
        let mean = if peer.gaps.len() >= self.min_samples {
            peer.gaps.iter().sum::<Time>() as f64 / peer.gaps.len() as f64
        } else {
            self.prior_mean
        };
        gap / (mean.max(1.0) * LN_10)
    }
}

impl Default for PhiAccrualDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl Detector for PhiAccrualDetector {
    type Msg = Beat;

    fn start(&mut self, me: ProcessId, n: usize) {
        self.me = me;
        self.n = n;
        self.peers = vec![PeerWindow::default(); n];
    }

    fn on_tick(&mut self, now: Time, _rng: &mut StdRng) -> Vec<(ProcessId, Beat)> {
        if (now + self.me.index() as Time).is_multiple_of(self.period) {
            ProcessId::all(self.n)
                .filter(|&q| q != self.me)
                .map(|q| (q, Beat))
                .collect()
        } else {
            Vec::new()
        }
    }

    fn on_recv(&mut self, now: Time, from: ProcessId, _msg: &Beat) {
        let peer = &mut self.peers[from.index()];
        // The first arrival seeds `last_arrival` without recording the
        // bogus gap-from-tick-0.
        if peer.last_arrival > 0 {
            peer.gaps.push_back(now.saturating_sub(peer.last_arrival));
            if peer.gaps.len() > self.window {
                peer.gaps.pop_front();
            }
        }
        peer.last_arrival = now;
    }

    fn report(&mut self, now: Time) -> SuspectReport {
        let suspects: ProcSet = ProcessId::all(self.n)
            .filter(|&q| q != self.me && self.phi(q, now) >= self.threshold)
            .collect();
        SuspectReport::Standard(suspects)
    }

    fn name(&self) -> &'static str {
        "phi-accrual"
    }
}
