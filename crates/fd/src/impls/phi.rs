//! The φ-accrual detector (Hayashibara et al.), adapted to simulator ticks.
//!
//! Instead of a fixed timeout, the receiver keeps a sliding window of
//! inter-arrival gaps per peer and converts the current silence into a
//! *suspicion level* under an exponential inter-arrival model:
//!
//! ```text
//! φ(gap) = −log₁₀ P(next beat arrives later than gap) = gap / (mean · ln 10)
//! ```
//!
//! A peer is suspected once φ crosses a threshold (default 6, i.e. the
//! observed silence would occur with probability 10⁻⁶ if the peer were
//! alive and the channel behaved as historically observed). Because `mean`
//! is *learned*, the detector adapts: on a lossy channel the observed
//! inter-arrival mean stretches and the effective timeout stretches with
//! it, which is exactly why φ-accrual keeps its accuracy in regimes where
//! a fixed-timeout heartbeat detector turns into a false-suspicion machine.

use super::heartbeat::Beat;
use ktudc_model::{ProcSet, ProcessId, SuspectReport, Time};
use ktudc_sim::Detector;
use rand::rngs::StdRng;
use std::collections::VecDeque;
use std::f64::consts::LN_10;

/// The φ-accrual *math*, detached from the simulator: a sliding window
/// of inter-arrival gaps for one peer and the conversion of the current
/// silence into a suspicion level. Time is a plain `f64` in whatever
/// unit the caller measures arrivals in (simulator ticks here,
/// wall-clock milliseconds in the live `ktudc-serve` detector plane) —
/// φ is scale-free because it only ever divides a gap by a mean gap.
///
/// The first arrival seeds `last_arrival` without recording a gap (the
/// gap from the epoch is an artifact of when observation started, not of
/// the channel), and until [`min_samples`](Self::with_min_samples) gaps
/// are observed the estimator falls back on the caller's prior mean.
#[derive(Clone, Debug)]
pub struct PhiEstimator {
    last_arrival: f64,
    gaps: VecDeque<f64>,
    window: usize,
    min_samples: usize,
    prior_mean: f64,
}

impl PhiEstimator {
    /// A fresh estimator with a bootstrap `prior_mean` inter-arrival and
    /// a sliding window of `window` gaps (3 observed gaps before the
    /// learned mean replaces the prior).
    ///
    /// # Panics
    ///
    /// Panics if `prior_mean` is not positive or `window` is zero.
    #[must_use]
    pub fn new(prior_mean: f64, window: usize) -> Self {
        assert!(prior_mean > 0.0, "prior mean must be positive");
        assert!(window >= 1, "window must hold at least one gap");
        PhiEstimator {
            last_arrival: 0.0,
            gaps: VecDeque::new(),
            window,
            min_samples: 3,
            prior_mean,
        }
    }

    /// Overrides how many gaps must be observed before the learned mean
    /// takes over from the prior.
    #[must_use]
    pub fn with_min_samples(mut self, min_samples: usize) -> Self {
        self.min_samples = min_samples.max(1);
        self
    }

    /// Records an arrival at time `now`.
    pub fn observe(&mut self, now: f64) {
        if self.last_arrival > 0.0 {
            self.gaps.push_back((now - self.last_arrival).max(0.0));
            if self.gaps.len() > self.window {
                self.gaps.pop_front();
            }
        }
        self.last_arrival = now;
    }

    /// The suspicion level at time `now`: `gap / (mean · ln 10)`.
    #[must_use]
    pub fn phi(&self, now: f64) -> f64 {
        let gap = (now - self.last_arrival).max(0.0);
        gap / (self.mean_gap().max(1.0) * LN_10)
    }

    /// The mean inter-arrival currently in effect (the prior until
    /// enough gaps are observed).
    #[must_use]
    pub fn mean_gap(&self) -> f64 {
        if self.gaps.len() >= self.min_samples {
            self.gaps.iter().sum::<f64>() / self.gaps.len() as f64
        } else {
            self.prior_mean
        }
    }

    /// Observed gaps currently in the window.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.gaps.len()
    }

    /// The time of the last observed arrival (0 before any arrival).
    #[must_use]
    pub fn last_arrival(&self) -> f64 {
        self.last_arrival
    }

    /// Forgets all learned history (a peer restart: its channel
    /// distribution starts over).
    pub fn reset(&mut self) {
        self.last_arrival = 0.0;
        self.gaps.clear();
    }
}

/// φ-accrual adaptive detector (see module docs). The per-peer math
/// lives in [`PhiEstimator`]; this type adapts it to the simulator's
/// [`Detector`] interface (tick clock, beat fan-out, suspect reports).
#[derive(Clone, Debug)]
pub struct PhiAccrualDetector {
    me: ProcessId,
    n: usize,
    period: Time,
    threshold: f64,
    window: usize,
    /// Prior mean inter-arrival used until enough gaps are observed.
    prior_mean: f64,
    peers: Vec<PhiEstimator>,
}

impl PhiAccrualDetector {
    /// Default tuning: beat every 4 ticks, suspect at φ ≥ 6, window of 20
    /// gaps, bootstrap prior mean 7 (period + default max delay).
    #[must_use]
    pub fn new() -> Self {
        Self::with_tuning(4, 6.0, 20)
    }

    /// Custom tuning.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero, `threshold` is not positive, or
    /// `window` is zero.
    #[must_use]
    pub fn with_tuning(period: Time, threshold: f64, window: usize) -> Self {
        assert!(period >= 1, "beat period must be at least 1");
        assert!(threshold > 0.0, "phi threshold must be positive");
        assert!(window >= 1, "window must hold at least one gap");
        PhiAccrualDetector {
            me: ProcessId::new(0),
            n: 0,
            period,
            threshold,
            window,
            prior_mean: (period + 3) as f64,
            peers: Vec::new(),
        }
    }

    /// The current suspicion level for `q` at tick `now` (0 for self and
    /// for peers heard this tick).
    #[must_use]
    pub fn phi(&self, q: ProcessId, now: Time) -> f64 {
        if q == self.me || self.n == 0 {
            return 0.0;
        }
        self.peers[q.index()].phi(now as f64)
    }
}

impl Default for PhiAccrualDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl Detector for PhiAccrualDetector {
    type Msg = Beat;

    fn start(&mut self, me: ProcessId, n: usize) {
        self.me = me;
        self.n = n;
        self.peers = vec![PhiEstimator::new(self.prior_mean, self.window); n];
    }

    fn on_tick(&mut self, now: Time, _rng: &mut StdRng) -> Vec<(ProcessId, Beat)> {
        if (now + self.me.index() as Time).is_multiple_of(self.period) {
            ProcessId::all(self.n)
                .filter(|&q| q != self.me)
                .map(|q| (q, Beat))
                .collect()
        } else {
            Vec::new()
        }
    }

    fn on_recv(&mut self, now: Time, from: ProcessId, _msg: &Beat) {
        self.peers[from.index()].observe(now as f64);
    }

    fn report(&mut self, now: Time) -> SuspectReport {
        let suspects: ProcSet = ProcessId::all(self.n)
            .filter(|&q| q != self.me && self.phi(q, now) >= self.threshold)
            .collect();
        SuspectReport::Standard(suspects)
    }

    fn name(&self) -> &'static str {
        "phi-accrual"
    }
}
