//! Concrete failure-detector oracles.
//!
//! Each oracle realizes one class from the hierarchy of §2.2 / §4 and is
//! deliberately *adversarial within its class*: it exercises every freedom
//! the class definition permits (false suspicions wherever accuracy does not
//! forbid them, retractions wherever completeness is only impermanent,
//! arbitrary garbage before stabilization for the eventually-accurate
//! classes). Protocols proven correct against these oracles therefore rely
//! only on the guaranteed properties, not on incidental niceness.
//!
//! All oracles are deterministic given the scheduler-provided RNG.

use ktudc_model::{ProcSet, ProcessId, SuspectReport, Time};
use ktudc_sim::{FaultTruth, FdOracle};
use rand::rngs::StdRng;
use rand::Rng;

/// Picks the weak-accuracy "immune" process: some process that never
/// crashes in this run and is never suspected by anyone. We use the
/// lowest-indexed correct process; if every process crashes, weak accuracy
/// is vacuous and there is no immune process.
fn immune(truth: &FaultTruth) -> Option<ProcessId> {
    truth.correct().first()
}

/// A random subset of `Proc − exclusions`, each member included with
/// probability `prob`. Used for class-permitted false suspicions.
fn random_suspects(n: usize, exclusions: ProcSet, prob: f64, rng: &mut StdRng) -> ProcSet {
    ProcessId::all(n)
        .filter(|&q| !exclusions.contains(q) && rng.gen_bool(prob))
        .collect()
}

/// **Perfect failure detector** (strong completeness + strong accuracy): at
/// every poll, reports exactly the set of processes that have crashed so
/// far. No process is ever suspected before it crashes, and every crashed
/// process is suspected by everyone forever after.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PerfectOracle;

impl PerfectOracle {
    /// Creates a perfect oracle.
    #[must_use]
    pub fn new() -> Self {
        PerfectOracle
    }
}

impl FdOracle for PerfectOracle {
    fn poll(
        &mut self,
        _p: ProcessId,
        time: Time,
        truth: &FaultTruth,
        _rng: &mut StdRng,
    ) -> Option<SuspectReport> {
        Some(SuspectReport::Standard(truth.crashed_by(time)))
    }

    fn class_name(&self) -> &'static str {
        "perfect"
    }
}

/// **Strong failure detector** (strong completeness + weak accuracy): every
/// report contains all processes crashed so far, *plus* arbitrary false
/// suspicions of anyone except the immune correct process (and the polling
/// process itself, which trivially knows it has not crashed).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StrongOracle {
    /// Probability with which each non-immune live process is falsely
    /// suspected in a given report.
    pub false_prob: f64,
}

impl StrongOracle {
    /// Creates a strong oracle with the default 25% false-suspicion rate.
    #[must_use]
    pub fn new() -> Self {
        StrongOracle { false_prob: 0.25 }
    }

    /// Creates a strong oracle with a custom false-suspicion rate.
    ///
    /// # Panics
    ///
    /// Panics if `false_prob` is not in `[0, 1]`.
    #[must_use]
    pub fn with_false_prob(false_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&false_prob));
        StrongOracle { false_prob }
    }
}

impl Default for StrongOracle {
    fn default() -> Self {
        StrongOracle::new()
    }
}

impl FdOracle for StrongOracle {
    fn poll(
        &mut self,
        p: ProcessId,
        time: Time,
        truth: &FaultTruth,
        rng: &mut StdRng,
    ) -> Option<SuspectReport> {
        let mut exclusions = ProcSet::singleton(p);
        if let Some(star) = immune(truth) {
            exclusions.insert(star);
        }
        let report = truth.crashed_by(time).union(random_suspects(
            truth.n(),
            exclusions,
            self.false_prob,
            rng,
        ));
        Some(SuspectReport::Standard(report))
    }

    fn class_name(&self) -> &'static str {
        "strong"
    }
}

/// **Weak failure detector** (weak completeness + weak accuracy): only one
/// designated correct *monitor* process is guaranteed to (permanently)
/// suspect the faulty processes; everyone else's reports are noise
/// constrained only by weak accuracy. The monitor is the lowest-indexed
/// correct process; when every process crashes, completeness is vacuous.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeakOracle {
    /// False-suspicion rate for non-monitor processes.
    pub false_prob: f64,
}

impl WeakOracle {
    /// Creates a weak oracle with the default 25% false-suspicion rate.
    #[must_use]
    pub fn new() -> Self {
        WeakOracle { false_prob: 0.25 }
    }
}

impl Default for WeakOracle {
    fn default() -> Self {
        WeakOracle::new()
    }
}

impl FdOracle for WeakOracle {
    fn poll(
        &mut self,
        p: ProcessId,
        time: Time,
        truth: &FaultTruth,
        rng: &mut StdRng,
    ) -> Option<SuspectReport> {
        let star = immune(truth);
        let monitor = star; // lowest-indexed correct process plays both roles
        let mut exclusions = ProcSet::singleton(p);
        if let Some(star) = star {
            exclusions.insert(star);
        }
        let noise = random_suspects(truth.n(), exclusions, self.false_prob, rng);
        let report = if Some(p) == monitor {
            truth.crashed_by(time).union(noise)
        } else {
            noise
        };
        Some(SuspectReport::Standard(report))
    }

    fn class_name(&self) -> &'static str {
        "weak"
    }
}

/// **Impermanent-strong failure detector** (impermanent strong
/// completeness + weak accuracy): every correct process suspects every
/// faulty process at least once after it crashes — but the suspicion is *retracted* on
/// subsequent polls with probability `retract_prob`, so `Suspects_p` does
/// not stabilize. This is the class Proposition 2.2 converts into a strong
/// detector by accumulation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ImpermanentStrongOracle {
    /// Probability that an already-reported crashed process is *omitted*
    /// from a given report.
    pub retract_prob: f64,
    /// False-suspicion rate (subject to weak accuracy).
    pub false_prob: f64,
}

impl ImpermanentStrongOracle {
    /// Creates an impermanent-strong oracle with 50% retraction and 25%
    /// false-suspicion rates.
    #[must_use]
    pub fn new() -> Self {
        ImpermanentStrongOracle {
            retract_prob: 0.5,
            false_prob: 0.25,
        }
    }
}

impl Default for ImpermanentStrongOracle {
    fn default() -> Self {
        ImpermanentStrongOracle::new()
    }
}

impl FdOracle for ImpermanentStrongOracle {
    fn poll(
        &mut self,
        p: ProcessId,
        time: Time,
        truth: &FaultTruth,
        rng: &mut StdRng,
    ) -> Option<SuspectReport> {
        let mut exclusions = ProcSet::singleton(p);
        if let Some(star) = immune(truth) {
            exclusions.insert(star);
        }
        // Crashed processes are included, then individually retracted with
        // `retract_prob` — except on the first poll after their crash, so
        // impermanent completeness (suspected *at least once*) holds
        // deterministically: a crash at tick c is unconditionally reported
        // while `time` is within one polling period of c. We approximate
        // "first poll" as `time - c < 8` (two default polling periods).
        let crashed = truth.crashed_by(time);
        let report: ProcSet = crashed
            .iter()
            .filter(|&q| {
                let just_crashed =
                    matches!(truth.crash_time(q), Some(c) if time.saturating_sub(c) < 8);
                just_crashed || !rng.gen_bool(self.retract_prob)
            })
            .collect();
        let noise = random_suspects(truth.n(), exclusions, self.false_prob, rng);
        Some(SuspectReport::Standard(report.union(noise)))
    }

    fn class_name(&self) -> &'static str {
        "impermanent-strong"
    }
}

/// **Impermanent-weak failure detector** (impermanent weak completeness +
/// weak accuracy): only the monitor ever reliably notices crashes, and even
/// it retracts. By Corollary 3.2 this weakest class of the paper's
/// hierarchy still suffices for UDC with unbounded failures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ImpermanentWeakOracle {
    /// Probability that the monitor omits a crashed process after its first
    /// report.
    pub retract_prob: f64,
}

impl ImpermanentWeakOracle {
    /// Creates an impermanent-weak oracle with 50% retraction.
    #[must_use]
    pub fn new() -> Self {
        ImpermanentWeakOracle { retract_prob: 0.5 }
    }
}

impl Default for ImpermanentWeakOracle {
    fn default() -> Self {
        ImpermanentWeakOracle::new()
    }
}

impl FdOracle for ImpermanentWeakOracle {
    fn poll(
        &mut self,
        p: ProcessId,
        time: Time,
        truth: &FaultTruth,
        rng: &mut StdRng,
    ) -> Option<SuspectReport> {
        if Some(p) != immune(truth) {
            return Some(SuspectReport::Standard(ProcSet::new()));
        }
        let report: ProcSet = truth
            .crashed_by(time)
            .iter()
            .filter(|&q| {
                let just_crashed =
                    matches!(truth.crash_time(q), Some(c) if time.saturating_sub(c) < 8);
                just_crashed || !rng.gen_bool(self.retract_prob)
            })
            .collect();
        Some(SuspectReport::Standard(report))
    }

    fn class_name(&self) -> &'static str {
        "impermanent-weak"
    }
}

/// **Eventually-strong failure detector** (◇S): before the stabilization
/// time `gst` its reports are unconstrained garbage (it may suspect anyone,
/// including every correct process); from `gst` on it behaves perfectly.
/// This is the detector class of the Chandra–Toueg rotating-coordinator
/// consensus baseline (`t < n/2` row of Table 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EventuallyStrongOracle {
    /// The (unknown to the protocol) global stabilization time.
    pub gst: Time,
    /// Pre-`gst` garbage-suspicion rate.
    pub chaos_prob: f64,
}

impl EventuallyStrongOracle {
    /// Creates a ◇S oracle stabilizing at `gst` with 40% pre-GST noise.
    #[must_use]
    pub fn new(gst: Time) -> Self {
        EventuallyStrongOracle {
            gst,
            chaos_prob: 0.4,
        }
    }
}

impl FdOracle for EventuallyStrongOracle {
    fn poll(
        &mut self,
        p: ProcessId,
        time: Time,
        truth: &FaultTruth,
        rng: &mut StdRng,
    ) -> Option<SuspectReport> {
        if time < self.gst {
            Some(SuspectReport::Standard(random_suspects(
                truth.n(),
                ProcSet::singleton(p),
                self.chaos_prob,
                rng,
            )))
        } else {
            Some(SuspectReport::Standard(truth.crashed_by(time)))
        }
    }

    fn class_name(&self) -> &'static str {
        "eventually-strong"
    }
}

/// **t-useful generalized failure detector** (§4): emits generalized
/// reports `(S, k)` — "at least `k` processes in `S` are faulty" —
/// satisfying *generalized strong accuracy* (the claim is always true at
/// emission time) and *generalized impermanent strong completeness* (every
/// correct process eventually receives a t-useful event).
///
/// The emitted `S` is the run's faulty set `F(r)` padded with up to
/// `n − min(t, n−1) − 1` correct processes, and `k = |crashed-so-far ∩ S|`.
/// The padding bound is exactly what keeps the eventual report useful:
/// usefulness needs `k > |S| − n + min(t, n−1)`, and once every faulty
/// process has crashed, `k = |F(r)|` and `|S| = |F(r)| + pad`, so the
/// requirement is `pad < n − min(t, n−1)`. The padding exercises the
/// defining ambiguity of generalized detectors (the report does not say
/// *which* members of `S` are faulty) while preserving usefulness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TUsefulOracle {
    /// The context's failure bound `t`.
    pub t: usize,
}

impl TUsefulOracle {
    /// Creates a t-useful oracle for a context with at most `t` failures.
    #[must_use]
    pub fn new(t: usize) -> Self {
        TUsefulOracle { t }
    }
}

impl FdOracle for TUsefulOracle {
    fn poll(
        &mut self,
        _p: ProcessId,
        time: Time,
        truth: &FaultTruth,
        _rng: &mut StdRng,
    ) -> Option<SuspectReport> {
        let n = truth.n();
        let faulty = truth.faulty();
        let max_pad = n.saturating_sub(self.t.min(n - 1)) - 1;
        let mut set = faulty;
        for q in ProcessId::all(n) {
            if set.len() >= faulty.len() + max_pad {
                break;
            }
            if !faulty.contains(q) {
                set.insert(q);
            }
        }
        let min_faulty = truth.crashed_by(time).intersection(set).len();
        Some(SuspectReport::Generalized { set, min_faulty })
    }

    fn class_name(&self) -> &'static str {
        "t-useful"
    }
}

/// The *oracle-free* t-useful detector for `t < n/2` (§4): cycles through
/// every `t`-sized subset `S` of `Proc`, emitting `(S, 0)`. Suspecting
/// nobody is trivially accurate, and because `|F(r)| ≤ t`, some emitted `S`
/// contains `F(r)`; when `t < n/2`, `n − |S| = n − t > t ≥ min(t, n−1) − 0`,
/// so that event is t-useful. This realizes Corollary 4.2 (Gopal–Toueg:
/// UDC without failure detectors when fewer than half the processes fail) —
/// note the implementation consults **no ground truth at all**.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CyclingSubsetOracle {
    /// Subset size (the failure bound `t`).
    pub t: usize,
    /// Per-process cursor into the subset enumeration.
    cursors: Vec<usize>,
}

impl CyclingSubsetOracle {
    /// Creates the cycling oracle for subset size `t` in an `n`-process
    /// system.
    ///
    /// # Panics
    ///
    /// Panics if `t >= n/2` rounded up — the construction is only t-useful
    /// for `t < n/2` — or if `C(n, t)` overflows the enumeration (not
    /// possible for the supported `n ≤ 128` with `t < n/2 ≤ 64` in practice
    /// because cycling only materializes one subset at a time).
    #[must_use]
    pub fn new(n: usize, t: usize) -> Self {
        assert!(
            2 * t < n,
            "the trivial cycling construction is t-useful only for t < n/2 (got t={t}, n={n})"
        );
        CyclingSubsetOracle {
            t,
            cursors: vec![0; n],
        }
    }

    /// The `i`-th `t`-sized subset of `{0, …, n−1}` in a rotating scheme:
    /// the window of `t` consecutive indices (mod `n`) starting at `i mod n`.
    /// Rotating windows are enough: any `≤ t`-sized faulty set is contained
    /// in *some* window of `t` consecutive indices only if the faulty set is
    /// consecutive — which it need not be — so we enumerate true
    /// combinations instead via an index-unranking scheme.
    fn subset(n: usize, t: usize, i: usize) -> ProcSet {
        // Unrank combination `i mod C(n, t)` in lexicographic order.
        let total = binomial(n, t);
        let mut rank = i % total.max(1);
        let mut set = ProcSet::new();
        let mut next = 0usize;
        let mut remaining = t;
        while remaining > 0 {
            let with_next = binomial(n - next - 1, remaining - 1);
            if rank < with_next {
                set.insert(ProcessId::new(next));
                remaining -= 1;
            } else {
                rank -= with_next;
            }
            next += 1;
        }
        set
    }
}

fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc * (n - i) as u128 / (i + 1) as u128;
    }
    acc.min(usize::MAX as u128) as usize
}

impl FdOracle for CyclingSubsetOracle {
    fn poll(
        &mut self,
        p: ProcessId,
        _time: Time,
        truth: &FaultTruth,
        _rng: &mut StdRng,
    ) -> Option<SuspectReport> {
        let n = truth.n();
        let cursor = &mut self.cursors[p.index()];
        let set = Self::subset(n, self.t, *cursor);
        *cursor += 1;
        Some(SuspectReport::Generalized { set, min_faulty: 0 })
    }

    fn class_name(&self) -> &'static str {
        "cycling-(S,0)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn truth_3() -> FaultTruth {
        // p1 crashes at 5; p0, p2 correct.
        FaultTruth::new(vec![None, Some(5), None])
    }

    #[test]
    fn perfect_reports_exactly_the_crashed() {
        let mut o = PerfectOracle::new();
        let truth = truth_3();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            o.poll(p(0), 4, &truth, &mut rng),
            Some(SuspectReport::Standard(ProcSet::new()))
        );
        assert_eq!(
            o.poll(p(0), 5, &truth, &mut rng),
            Some(SuspectReport::Standard(ProcSet::singleton(p(1))))
        );
        assert_eq!(o.class_name(), "perfect");
    }

    #[test]
    fn strong_never_suspects_the_immune_process() {
        let mut o = StrongOracle::with_false_prob(0.9);
        let truth = truth_3(); // immune = p0
        let mut rng = StdRng::seed_from_u64(1);
        for t in 1..200 {
            let SuspectReport::Standard(s) = o.poll(p(2), t, &truth, &mut rng).unwrap() else {
                panic!("standard oracle emitted generalized report");
            };
            assert!(!s.contains(p(0)), "immune p0 suspected at tick {t}");
            if t >= 5 {
                assert!(s.contains(p(1)), "crashed p1 missing at tick {t}");
            }
        }
    }

    #[test]
    fn strong_does_false_suspect_non_immune() {
        let mut o = StrongOracle::with_false_prob(0.9);
        let truth = truth_3();
        let mut rng = StdRng::seed_from_u64(2);
        let mut saw_false = false;
        for t in 1..50 {
            if let Some(SuspectReport::Standard(s)) = o.poll(p(0), t, &truth, &mut rng) {
                if s.contains(p(2)) {
                    saw_false = true; // p2 is correct but suspected
                }
            }
        }
        assert!(
            saw_false,
            "a 90% false-prob strong oracle must lie sometimes"
        );
    }

    #[test]
    fn weak_only_monitor_sees_crashes() {
        let mut o = WeakOracle { false_prob: 0.0 };
        let truth = truth_3(); // monitor = immune = p0
        let mut rng = StdRng::seed_from_u64(3);
        // Monitor reports the crash.
        let SuspectReport::Standard(s) = o.poll(p(0), 10, &truth, &mut rng).unwrap() else {
            panic!()
        };
        assert!(s.contains(p(1)));
        // Non-monitor with zero noise reports nothing.
        let SuspectReport::Standard(s) = o.poll(p(2), 10, &truth, &mut rng).unwrap() else {
            panic!()
        };
        assert!(s.is_empty());
    }

    #[test]
    fn impermanent_strong_retracts_but_reports_first() {
        let mut o = ImpermanentStrongOracle {
            retract_prob: 1.0,
            false_prob: 0.0,
        };
        let truth = truth_3();
        let mut rng = StdRng::seed_from_u64(4);
        // Within the just-crashed window: unconditionally reported.
        let SuspectReport::Standard(s) = o.poll(p(0), 6, &truth, &mut rng).unwrap() else {
            panic!()
        };
        assert!(s.contains(p(1)));
        // Long after: always retracted (retract_prob = 1).
        let SuspectReport::Standard(s) = o.poll(p(0), 100, &truth, &mut rng).unwrap() else {
            panic!()
        };
        assert!(!s.contains(p(1)), "retraction expected");
    }

    #[test]
    fn impermanent_weak_silent_for_non_monitor() {
        let mut o = ImpermanentWeakOracle::new();
        let truth = truth_3();
        let mut rng = StdRng::seed_from_u64(5);
        let SuspectReport::Standard(s) = o.poll(p(2), 6, &truth, &mut rng).unwrap() else {
            panic!()
        };
        assert!(s.is_empty());
        let SuspectReport::Standard(s) = o.poll(p(0), 6, &truth, &mut rng).unwrap() else {
            panic!()
        };
        assert!(s.contains(p(1)));
    }

    #[test]
    fn eventually_strong_is_chaotic_then_perfect() {
        let mut o = EventuallyStrongOracle::new(50);
        let truth = truth_3();
        let mut rng = StdRng::seed_from_u64(6);
        let mut chaos = false;
        for t in 1..50 {
            if let Some(SuspectReport::Standard(s)) = o.poll(p(0), t, &truth, &mut rng) {
                if s.contains(p(2)) || (t < 5 && s.contains(p(1))) {
                    chaos = true; // suspected someone not crashed
                }
            }
        }
        assert!(chaos, "pre-GST ◇S should emit garbage at 40% noise");
        for t in 50..80 {
            let SuspectReport::Standard(s) = o.poll(p(0), t, &truth, &mut rng).unwrap() else {
                panic!()
            };
            assert_eq!(s, ProcSet::singleton(p(1)), "post-GST must be perfect");
        }
    }

    #[test]
    fn t_useful_reports_are_accurate_and_eventually_useful() {
        let t = 3;
        let n = 5;
        let truth = FaultTruth::new(vec![Some(3), Some(8), None, None, None]);
        let mut o = TUsefulOracle::new(t);
        let mut rng = StdRng::seed_from_u64(7);
        for time in 1..20 {
            let Some(SuspectReport::Generalized { set, min_faulty }) =
                o.poll(p(2), time, &truth, &mut rng)
            else {
                panic!()
            };
            // Generalized strong accuracy: claim true at emission time.
            assert!(truth.crashed_by(time).intersection(set).len() >= min_faulty);
            assert!(min_faulty <= set.len());
            // F(r) ⊆ S always (the oracle pads, never shrinks).
            assert!(truth.faulty().is_subset_of(set));
            if time >= 8 {
                // All faulty crashed: the event must be t-useful.
                assert!(
                    n - set.len() > t.min(n - 1) - min_faulty,
                    "event ({set}, {min_faulty}) not {t}-useful at tick {time}"
                );
            }
        }
    }

    #[test]
    fn cycling_oracle_covers_every_subset() {
        let n = 5;
        let t = 2;
        let mut o = CyclingSubsetOracle::new(n, t);
        let truth = FaultTruth::new(vec![None; n]);
        let mut rng = StdRng::seed_from_u64(8);
        let mut seen = std::collections::BTreeSet::new();
        for time in 1..=binomial(n, t) as Time {
            let Some(SuspectReport::Generalized { set, min_faulty }) =
                o.poll(p(0), time, &truth, &mut rng)
            else {
                panic!()
            };
            assert_eq!(min_faulty, 0);
            assert_eq!(set.len(), t);
            seen.insert(set);
        }
        assert_eq!(seen.len(), binomial(n, t), "all C(5,2)=10 subsets emitted");
    }

    #[test]
    #[should_panic(expected = "t < n/2")]
    fn cycling_oracle_rejects_large_t() {
        let _ = CyclingSubsetOracle::new(4, 2);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(7, 3), 35);
        assert_eq!(binomial(4, 0), 1);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(6, 6), 1);
    }

    #[test]
    fn all_crashed_runs_have_no_immune_process() {
        let truth = FaultTruth::new(vec![Some(1), Some(2)]);
        assert_eq!(immune(&truth), None);
        // Strong oracle still works (weak accuracy vacuous).
        let mut o = StrongOracle::new();
        let mut rng = StdRng::seed_from_u64(9);
        assert!(o.poll(p(0), 1, &truth, &mut rng).is_some());
    }
}
