//! Contract-violating oracle wrappers for fault injection.
//!
//! Each wrapper composes over any [`FdOracle`] and breaks exactly one
//! class property on schedule, so the property checkers in [`props`]
//! can be demonstrated — and regression-tested — to catch their own
//! violation:
//!
//! | wrapper | breaks | still holds |
//! |---|---|---|
//! | [`FalseSuspector`] | strong accuracy (and weak, if aimed at every correct process over time) | completeness |
//! | [`SuspicionSuppressor`] | strong *and* weak completeness | accuracy |
//! | [`LateRetractor`] | permanent completeness | impermanent completeness |
//! | [`MinFaultyInflater`] | generalized strong accuracy | t-useful completeness |
//!
//! Wrappers only transform what the inner oracle emits (plus, for the
//! false suspector, one fabricated report); they never draw from the RNG,
//! so a perturbed run differs from its baseline only where the schedule
//! says it should.
//!
//! [`props`]: crate::props

use ktudc_model::{ProcSet, ProcessId, SuspectReport, Time};
use ktudc_sim::{Detector, FaultTruth, FdOracle};
use rand::rngs::StdRng;

/// Injects one false suspicion: at the first poll at or after `at`, the
/// report gains `victim` — even though `victim` may be alive and well.
/// Wrapped around a perfect or strong detector this violates **strong
/// accuracy** ("nobody is suspected before they crash"); aimed at the
/// run's immune process (the lowest-indexed correct one) the violation is
/// guaranteed rather than merely possible.
#[derive(Clone, Debug)]
pub struct FalseSuspector<O> {
    inner: O,
    victim: ProcessId,
    at: Time,
    fired: bool,
}

impl<O> FalseSuspector<O> {
    /// Wraps `inner`, scheduling one false suspicion of `victim` at the
    /// first poll at or after tick `at`.
    pub fn new(inner: O, victim: ProcessId, at: Time) -> Self {
        FalseSuspector {
            inner,
            victim,
            at,
            fired: false,
        }
    }
}

impl<O: FdOracle> FdOracle for FalseSuspector<O> {
    fn poll(
        &mut self,
        p: ProcessId,
        time: Time,
        truth: &FaultTruth,
        rng: &mut StdRng,
    ) -> Option<SuspectReport> {
        let base = self.inner.poll(p, time, truth, rng);
        if self.fired || time < self.at {
            return base;
        }
        self.fired = true;
        let mut set = base
            .and_then(SuspectReport::standard_set)
            .unwrap_or_default();
        set.insert(self.victim);
        Some(SuspectReport::Standard(set))
    }

    fn class_name(&self) -> &'static str {
        "perturbed:false-suspect"
    }
}

/// Erases every suspicion of one process: wrapped around any standard
/// detector, `of` never appears in a report. If `of` crashes, this
/// violates **weak completeness** (and a fortiori strong completeness) —
/// no correct process ever suspects it.
#[derive(Clone, Debug)]
pub struct SuspicionSuppressor<O> {
    inner: O,
    of: ProcessId,
}

impl<O> SuspicionSuppressor<O> {
    /// Wraps `inner`, deleting `of` from every standard report.
    pub fn new(inner: O, of: ProcessId) -> Self {
        SuspicionSuppressor { inner, of }
    }
}

impl<O: FdOracle> FdOracle for SuspicionSuppressor<O> {
    fn poll(
        &mut self,
        p: ProcessId,
        time: Time,
        truth: &FaultTruth,
        rng: &mut StdRng,
    ) -> Option<SuspectReport> {
        match self.inner.poll(p, time, truth, rng) {
            Some(SuspectReport::Standard(mut set)) => {
                set.remove(self.of);
                Some(SuspectReport::Standard(set))
            }
            other => other,
        }
    }

    fn class_name(&self) -> &'static str {
        "perturbed:suppress"
    }
}

/// Retracts everything late in the run: from tick `after` on, every
/// standard report is replaced by the empty set. A permanent-completeness
/// detector so wrapped violates **strong/weak completeness** (which are
/// read off the *final* suspicion state at the horizon) while the
/// *impermanent* completeness properties — "suspected at least once after
/// the crash" — still hold, provided the crash was reported before
/// `after`. This is the paper's permanent/impermanent distinction made
/// executable.
#[derive(Clone, Debug)]
pub struct LateRetractor<O> {
    inner: O,
    after: Time,
}

impl<O> LateRetractor<O> {
    /// Wraps `inner`, emptying every standard report from tick `after` on.
    pub fn new(inner: O, after: Time) -> Self {
        LateRetractor { inner, after }
    }
}

impl<O: FdOracle> FdOracle for LateRetractor<O> {
    fn poll(
        &mut self,
        p: ProcessId,
        time: Time,
        truth: &FaultTruth,
        rng: &mut StdRng,
    ) -> Option<SuspectReport> {
        match self.inner.poll(p, time, truth, rng) {
            Some(SuspectReport::Standard(_)) if time >= self.after => {
                Some(SuspectReport::Standard(ProcSet::new()))
            }
            other => other,
        }
    }

    fn class_name(&self) -> &'static str {
        "perturbed:late-retract"
    }
}

/// Overstates a generalized report once: at the first poll at or after
/// `at`, the report's claimed lower bound `min_faulty` is inflated by one.
/// Wrapped around a t-useful detector (whose bound is exact) this violates
/// **generalized strong accuracy** — the claim "at least k+1 of S are
/// faulty" is false at emission time.
#[derive(Clone, Debug)]
pub struct MinFaultyInflater<O> {
    inner: O,
    at: Time,
    fired: bool,
}

impl<O> MinFaultyInflater<O> {
    /// Wraps `inner`, scheduling one inflated bound at the first poll at
    /// or after tick `at`.
    pub fn new(inner: O, at: Time) -> Self {
        MinFaultyInflater {
            inner,
            at,
            fired: false,
        }
    }
}

impl<O: FdOracle> FdOracle for MinFaultyInflater<O> {
    fn poll(
        &mut self,
        p: ProcessId,
        time: Time,
        truth: &FaultTruth,
        rng: &mut StdRng,
    ) -> Option<SuspectReport> {
        match self.inner.poll(p, time, truth, rng) {
            Some(SuspectReport::Generalized { set, min_faulty })
                if !self.fired && time >= self.at =>
            {
                self.fired = true;
                Some(SuspectReport::Generalized {
                    set,
                    min_faulty: min_faulty + 1,
                })
            }
            other => other,
        }
    }

    fn class_name(&self) -> &'static str {
        "perturbed:inflate-min-faulty"
    }
}

/// Forwards the detector plumbing (start / on_tick / on_recv) to the
/// wrapped implementation and applies `$transform` to each polled report —
/// so the same wrapper types that perturb ground-truth oracles perturb the
/// empirical detectors of [`crate::impls`], and the same "breaks exactly
/// one contract" guarantees carry over (regression-tested by
/// `tests/detector_perturb_props.rs`).
macro_rules! detector_passthrough {
    ($wrapper:ident, $name:literal, |$self_:ident, $now:ident, $base:ident| $transform:expr) => {
        impl<D: Detector> Detector for $wrapper<D> {
            type Msg = D::Msg;

            fn start(&mut self, me: ProcessId, n: usize) {
                self.inner.start(me, n);
            }

            fn on_tick(&mut self, now: Time, rng: &mut StdRng) -> Vec<(ProcessId, D::Msg)> {
                self.inner.on_tick(now, rng)
            }

            fn on_recv(&mut self, now: Time, from: ProcessId, msg: &D::Msg) {
                self.inner.on_recv(now, from, msg);
            }

            fn report(&mut self, now: Time) -> SuspectReport {
                let base = self.inner.report(now);
                let $self_ = self;
                let $now = now;
                let $base = base;
                $transform
            }

            fn name(&self) -> &'static str {
                $name
            }
        }
    };
}

detector_passthrough!(
    FalseSuspector,
    "perturbed:false-suspect",
    |me, now, base| {
        if me.fired || now < me.at {
            base
        } else {
            me.fired = true;
            let mut set = base.standard_set().unwrap_or_default();
            set.insert(me.victim);
            SuspectReport::Standard(set)
        }
    }
);

detector_passthrough!(
    SuspicionSuppressor,
    "perturbed:suppress",
    |me, _now, base| {
        match base {
            SuspectReport::Standard(mut set) => {
                set.remove(me.of);
                SuspectReport::Standard(set)
            }
            other => other,
        }
    }
);

detector_passthrough!(LateRetractor, "perturbed:late-retract", |me, now, base| {
    match base {
        SuspectReport::Standard(_) if now >= me.after => SuspectReport::Standard(ProcSet::new()),
        other => other,
    }
});

detector_passthrough!(
    MinFaultyInflater,
    "perturbed:inflate-min-faulty",
    |me, now, base| {
        match base {
            SuspectReport::Generalized { set, min_faulty } if !me.fired && now >= me.at => {
                me.fired = true;
                SuspectReport::Generalized {
                    set,
                    min_faulty: min_faulty + 1,
                }
            }
            // The empirical detectors emit standard reports, so the
            // inflater is inert over them — kept for wrapper parity.
            other => other,
        }
    }
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{PerfectOracle, TUsefulOracle};
    use crate::props::{check_fd_property, FdProperty};
    use ktudc_model::{Event, Run};
    use ktudc_sim::{run_protocol, CrashPlan, ProtoAction, Protocol, SimConfig, Workload};

    /// A protocol that does nothing: the run consists purely of crashes
    /// and suspect reports, which is all the FD property checkers read.
    #[derive(Clone, Debug)]
    struct Idle;

    impl Protocol<u8> for Idle {
        fn start(&mut self, _me: ProcessId, _n: usize) {}
        fn observe(&mut self, _time: Time, _event: &Event<u8>) {}
        fn next_action(&mut self, _time: Time) -> Option<ProtoAction<u8>> {
            None
        }
        fn quiescent(&self) -> bool {
            true
        }
    }

    fn config() -> SimConfig {
        SimConfig::new(4)
            .crashes(CrashPlan::at(&[(1, 10)]))
            .horizon(100)
            .seed(3)
    }

    fn run_with<O: FdOracle>(oracle: &mut O) -> Run<u8> {
        run_protocol(&config(), |_| Idle, oracle, &Workload::none()).run
    }

    #[test]
    fn false_suspector_breaks_strong_accuracy_and_its_checker_sees_it() {
        let baseline = run_with(&mut PerfectOracle::new());
        check_fd_property(&baseline, FdProperty::StrongAccuracy).unwrap();

        // p0 is the immune (lowest-indexed correct) process: falsely
        // suspecting it is unambiguously an accuracy violation.
        let mut lying = FalseSuspector::new(PerfectOracle::new(), ProcessId::new(0), 20);
        let run = run_with(&mut lying);
        let violation = check_fd_property(&run, FdProperty::StrongAccuracy).unwrap_err();
        assert_eq!(violation.property, FdProperty::StrongAccuracy);
        // Completeness is untouched.
        check_fd_property(&run, FdProperty::StrongCompleteness).unwrap();
    }

    #[test]
    fn suppressor_breaks_completeness_and_its_checker_sees_it() {
        let baseline = run_with(&mut PerfectOracle::new());
        check_fd_property(&baseline, FdProperty::StrongCompleteness).unwrap();
        check_fd_property(&baseline, FdProperty::WeakCompleteness).unwrap();

        let mut muzzled = SuspicionSuppressor::new(PerfectOracle::new(), ProcessId::new(1));
        let run = run_with(&mut muzzled);
        check_fd_property(&run, FdProperty::StrongCompleteness).unwrap_err();
        check_fd_property(&run, FdProperty::WeakCompleteness).unwrap_err();
        // Accuracy is untouched: removing suspicions cannot create false ones.
        check_fd_property(&run, FdProperty::StrongAccuracy).unwrap();
    }

    #[test]
    fn late_retractor_separates_permanent_from_impermanent_completeness() {
        let mut amnesiac = LateRetractor::new(PerfectOracle::new(), 60);
        let run = run_with(&mut amnesiac);
        // The final suspicion state is empty: permanent completeness fails…
        check_fd_property(&run, FdProperty::StrongCompleteness).unwrap_err();
        // …but the crash *was* reported before the retraction, so the
        // impermanent reading still holds.
        check_fd_property(&run, FdProperty::ImpermanentStrongCompleteness).unwrap();
        check_fd_property(&run, FdProperty::StrongAccuracy).unwrap();
    }

    #[test]
    fn inflater_breaks_generalized_accuracy_and_its_checker_sees_it() {
        let t = 2;
        let baseline = run_with(&mut TUsefulOracle::new(t));
        check_fd_property(&baseline, FdProperty::GeneralizedStrongAccuracy).unwrap();

        let mut braggart = MinFaultyInflater::new(TUsefulOracle::new(t), 20);
        let run = run_with(&mut braggart);
        let violation = check_fd_property(&run, FdProperty::GeneralizedStrongAccuracy).unwrap_err();
        assert_eq!(violation.property, FdProperty::GeneralizedStrongAccuracy);
    }

    #[test]
    fn wrappers_compose_over_boxed_oracles() {
        let boxed: Box<dyn FdOracle> = Box::new(PerfectOracle::new());
        let mut lying = FalseSuspector::new(boxed, ProcessId::new(0), 20);
        let run = run_with(&mut lying);
        check_fd_property(&run, FdProperty::StrongAccuracy).unwrap_err();
    }
}
