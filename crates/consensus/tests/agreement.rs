//! Consensus scenario tests: coordinator-crash cascades, proposal
//! diversity, determinism, and the interplay with detector quality.

use ktudc_consensus::proposal_for;
use ktudc_consensus::rotating::RotatingConsensus;
use ktudc_consensus::spec::{check_consensus, decisions, ConsensusViolation};
use ktudc_consensus::strong::StrongConsensus;
use ktudc_fd::{EventuallyStrongOracle, PerfectOracle, StrongOracle};
use ktudc_model::{ProcessId, Time};
use ktudc_sim::{run_protocol, ChannelKind, CrashPlan, SimConfig, Workload};

fn reliable(n: usize, seed: u64, horizon: Time) -> SimConfig {
    SimConfig::new(n)
        .channel(ChannelKind::reliable())
        .horizon(horizon)
        .seed(seed)
}

/// Crash the first *two* coordinators in sequence: rounds 1 and 2 must be
/// abandoned via suspicion and round 3's coordinator decides.
#[test]
fn rotating_survives_coordinator_cascade() {
    let props = [10, 20, 30, 40, 50];
    for seed in 0..6 {
        let config = reliable(5, seed, 3500).crashes(CrashPlan::at(&[(0, 8), (1, 12)]));
        let out = run_protocol(
            &config,
            |p| RotatingConsensus::new(proposal_for(&props, p)),
            &mut EventuallyStrongOracle::new(150),
            &Workload::none(),
        );
        check_consensus(&out.run, &props).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        // The decision cannot come from thin air.
        let ds = decisions(&out.run);
        assert!(!ds.is_empty());
    }
}

/// All-same proposals must decide that value (a validity corollary).
#[test]
fn unanimous_proposals_decide_the_unanimous_value() {
    let props = [42];
    for seed in 0..4 {
        let config = reliable(4, seed, 2500).crashes(CrashPlan::at(&[(2, 30)]));
        let out = run_protocol(
            &config,
            |p| StrongConsensus::new(proposal_for(&props, p)),
            &mut StrongOracle::new(),
            &Workload::none(),
        );
        check_consensus(&out.run, &props).unwrap();
        for (_, v, _) in decisions(&out.run) {
            assert_eq!(v, 42);
        }
    }
}

/// Consensus pipelines are deterministic per seed.
#[test]
fn consensus_is_deterministic() {
    let props = [7, 9];
    let go = || {
        let config = reliable(4, 13, 2500).crashes(CrashPlan::at(&[(1, 9)]));
        run_protocol(
            &config,
            |p| RotatingConsensus::new(proposal_for(&props, p)),
            &mut EventuallyStrongOracle::new(100),
            &Workload::none(),
        )
        .run
    };
    assert_eq!(go(), go());
}

/// The strong-detector algorithm also works with a perfect detector (a
/// stronger class can only help) and under crash-at-the-last-moment
/// schedules.
#[test]
fn strong_algorithm_with_perfect_fd_and_late_crashes() {
    let props = [1, 2, 3, 4, 5, 6];
    for seed in 0..4 {
        let config = reliable(6, seed, 4000).crashes(CrashPlan::at(&[(0, 80), (5, 95)]));
        let out = run_protocol(
            &config,
            |p| StrongConsensus::new(proposal_for(&props, p)),
            &mut PerfectOracle::new(),
            &Workload::none(),
        );
        check_consensus(&out.run, &props).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// Uniform agreement stress: run many seeds of the rotating protocol with
/// crashes timed around the decide broadcast; any decided value must be
/// unanimous among *all* deciders including processes that crash right
/// after deciding.
#[test]
fn uniform_agreement_under_decide_time_crashes() {
    let props = [100, 200, 300];
    for seed in 0..20 {
        let config = reliable(3, seed, 2500).crashes(CrashPlan::Random {
            max_failures: 1,
            latest: 120,
        });
        let out = run_protocol(
            &config,
            |p| RotatingConsensus::new(proposal_for(&props, p)),
            &mut EventuallyStrongOracle::new(60),
            &Workload::none(),
        );
        match check_consensus(&out.run, &props) {
            Ok(()) => {}
            // A crash may stall termination in unlucky schedules pre-GST,
            // but agreement/validity/integrity must never break.
            Err(ConsensusViolation::Termination { .. }) => {
                let ds = decisions(&out.run);
                if let Some(&(_, v0, _)) = ds.first() {
                    assert!(ds.iter().all(|&(_, v, _)| v == v0), "seed {seed}: split");
                }
            }
            Err(other) => panic!("seed {seed}: {other}"),
        }
    }
}

/// Larger committee smoke test: seven processes, three crashes, strong FD.
#[test]
fn seven_process_committee() {
    let props: Vec<u64> = (0..7).map(|i| 1000 + i).collect();
    let config = reliable(7, 3, 5000).crashes(CrashPlan::at(&[(1, 25), (3, 50), (6, 75)]));
    let out = run_protocol(
        &config,
        |p: ProcessId| StrongConsensus::new(proposal_for(&props, p)),
        &mut StrongOracle::new(),
        &Workload::none(),
    );
    check_consensus(&out.run, &props).unwrap();
}
