//! The Chandra–Toueg rotating-coordinator consensus algorithm (for ◇S
//! failure detectors and a correct majority, `t < n/2`).
//!
//! Round `r` is coordinated by `c_r = p_{(r−1) mod n}` and has the classic
//! four phases:
//!
//! 1. everyone sends its current estimate (with the round-stamp of when it
//!    was adopted) to `c_r`;
//! 2. `c_r` gathers a majority of estimates, adopts the one with the
//!    largest stamp, and broadcasts it as a `try`;
//! 3. a participant either *acks* the `try` (adopting the estimate) or,
//!    if its detector currently suspects `c_r`, *nacks* and moves to the
//!    next round;
//! 4. on a majority of acks `c_r` reliably broadcasts `decide`; on any
//!    nack it moves on.
//!
//! A received `decide` is relayed to everyone *before* the local decision
//! event (send-then-do, as in the Proposition 2.4 UDC protocol), giving
//! uniform agreement. With ◇S, pre-stabilization false suspicions can burn
//! rounds but never split decisions (majorities intersect); after
//! stabilization the first correct coordinator drives termination.

use crate::ConsMsg;
use ktudc_model::{ActionId, Event, ProcSet, ProcessId, SuspectReport, Time};
use ktudc_sim::{ProtoAction, Protocol};
use std::collections::{BTreeMap, VecDeque};

#[derive(Clone, Debug)]
enum Step {
    Send(ProcessId, ConsMsg),
    Decide(u64),
}

/// The rotating-coordinator protocol for one consensus instance.
#[derive(Clone, Debug)]
pub struct RotatingConsensus {
    me: ProcessId,
    n: usize,
    /// This process's initial proposal.
    proposal: u64,
    estimate: u64,
    ts: u32,
    round: u32,
    /// Whether this process acked (or, as coordinator, self-acked) the
    /// current round's `try`.
    acked: bool,
    /// Whether, as coordinator, the `try` was already broadcast.
    try_sent: bool,
    /// Whether the round-entry estimate was sent.
    estimate_sent: bool,
    decided: Option<u64>,
    /// Latest detector report (◇S uses *current* suspicions).
    suspects: ProcSet,
    /// Buffered estimates per round: (from, value, ts).
    estimates: BTreeMap<u32, Vec<(ProcessId, u64, u32)>>,
    /// Buffered `try` values per round.
    tries: BTreeMap<u32, u64>,
    acks: BTreeMap<u32, usize>,
    nacks: BTreeMap<u32, usize>,
    plan: VecDeque<Step>,
}

impl RotatingConsensus {
    /// Creates an instance proposing `proposal`.
    #[must_use]
    pub fn new(proposal: u64) -> Self {
        RotatingConsensus {
            me: ProcessId::new(0),
            n: 0,
            proposal,
            estimate: proposal,
            ts: 0,
            round: 1,
            acked: false,
            try_sent: false,
            estimate_sent: false,
            decided: None,
            suspects: ProcSet::new(),
            estimates: BTreeMap::new(),
            tries: BTreeMap::new(),
            acks: BTreeMap::new(),
            nacks: BTreeMap::new(),
            plan: VecDeque::new(),
        }
    }

    /// The coordinator of round `r`.
    fn coordinator(&self, r: u32) -> ProcessId {
        ProcessId::new((r as usize - 1) % self.n)
    }

    fn majority(&self) -> usize {
        self.n / 2 + 1
    }

    /// The value this process decided, if it has.
    #[must_use]
    pub fn decision(&self) -> Option<u64> {
        self.decided
    }

    /// The value this process proposed.
    #[must_use]
    pub fn proposal(&self) -> u64 {
        self.proposal
    }

    /// The current round (for observability in experiments).
    #[must_use]
    pub fn round(&self) -> u32 {
        self.round
    }

    fn advance_round(&mut self) {
        self.round += 1;
        self.acked = false;
        self.try_sent = false;
        self.estimate_sent = false;
    }

    fn enqueue_decide(&mut self, value: u64) {
        // Relay first, decide strictly after (uniform agreement).
        for q in ProcessId::all(self.n) {
            if q != self.me {
                self.plan
                    .push_back(Step::Send(q, ConsMsg::Decide { value }));
            }
        }
        self.plan.push_back(Step::Decide(value));
    }

    /// Event-driven progress: called from `next_action` when the plan is
    /// empty. Pushes at most one batch of steps.
    fn progress(&mut self) {
        if self.decided.is_some() {
            return;
        }
        let r = self.round;
        let coord = self.coordinator(r);
        // Round entry: send the estimate.
        if !self.estimate_sent {
            self.estimate_sent = true;
            if coord == self.me {
                self.estimates
                    .entry(r)
                    .or_default()
                    .push((self.me, self.estimate, self.ts));
            } else {
                self.plan.push_back(Step::Send(
                    coord,
                    ConsMsg::Estimate {
                        round: r,
                        value: self.estimate,
                        ts: self.ts,
                    },
                ));
                return;
            }
        }
        // Participant: react to the round's `try`, then move on immediately
        // (phase 4 is the coordinator's wait, not the participant's).
        if !self.acked {
            if let Some(&v) = self.tries.get(&r) {
                self.estimate = v;
                self.ts = r;
                self.acked = true;
                if coord == self.me {
                    // Coordinator self-acks and stays for phase 4.
                    *self.acks.entry(r).or_default() += 1;
                } else {
                    self.plan
                        .push_back(Step::Send(coord, ConsMsg::Ack { round: r }));
                    self.advance_round();
                    return;
                }
            } else if coord != self.me && self.suspects.contains(coord) {
                // Suspect the coordinator: nack and move on.
                self.plan
                    .push_back(Step::Send(coord, ConsMsg::Nack { round: r }));
                self.advance_round();
                return;
            }
        }
        // Coordinator duties.
        if coord == self.me {
            if !self.try_sent && self.estimates.get(&r).map_or(0, Vec::len) >= self.majority() {
                let &(_, v, _) = self
                    .estimates
                    .get(&r)
                    .expect("nonempty by majority check")
                    .iter()
                    .max_by_key(|&&(_, _, ts)| ts)
                    .expect("nonempty");
                self.try_sent = true;
                self.tries.insert(r, v);
                for q in ProcessId::all(self.n) {
                    if q != self.me {
                        self.plan
                            .push_back(Step::Send(q, ConsMsg::Try { round: r, value: v }));
                    }
                }
                return;
            }
            if self.try_sent {
                // Phase 4: wait for a majority of replies; decide iff none
                // of them is a nack, otherwise give up the round.
                let acks = self.acks.get(&r).copied().unwrap_or(0);
                let nacks = self.nacks.get(&r).copied().unwrap_or(0);
                if acks >= self.majority() {
                    let v = *self.tries.get(&r).expect("try recorded when sent");
                    self.enqueue_decide(v);
                    return;
                }
                if nacks > 0 && acks + nacks >= self.majority() {
                    self.advance_round();
                }
            }
        }
    }
}

impl Protocol<ConsMsg> for RotatingConsensus {
    fn start(&mut self, me: ProcessId, n: usize) {
        self.me = me;
        self.n = n;
    }

    fn observe(&mut self, _time: Time, event: &Event<ConsMsg>) {
        match event {
            Event::Suspect(SuspectReport::Standard(s)) => self.suspects = *s,
            Event::Do { action } => self.decided = Some(u64::from(action.seq())),
            Event::Recv { from, msg } => match msg {
                ConsMsg::Estimate { round, value, ts } => {
                    self.estimates
                        .entry(*round)
                        .or_default()
                        .push((*from, *value, *ts));
                }
                ConsMsg::Try { round, value } => {
                    self.tries.insert(*round, *value);
                }
                ConsMsg::Ack { round } => *self.acks.entry(*round).or_default() += 1,
                ConsMsg::Nack { round } => *self.nacks.entry(*round).or_default() += 1,
                ConsMsg::Decide { value } => {
                    if self.decided.is_none()
                        && !self.plan.iter().any(|s| matches!(s, Step::Decide(_)))
                    {
                        self.enqueue_decide(*value);
                    }
                }
                ConsMsg::Vector { .. } => {
                    // Strong-detector algorithm traffic; not used here.
                }
            },
            _ => {}
        }
    }

    fn next_action(&mut self, _time: Time) -> Option<ProtoAction<ConsMsg>> {
        if self.plan.is_empty() {
            self.progress();
        }
        match self.plan.pop_front() {
            Some(Step::Send(to, msg)) => Some(ProtoAction::Send { to, msg }),
            Some(Step::Decide(v)) => {
                if self.decided.is_none() {
                    Some(ProtoAction::Do(ActionId::new(
                        self.me,
                        u32::try_from(v).expect("test values fit u32"),
                    )))
                } else {
                    None
                }
            }
            None => None,
        }
    }

    fn quiescent(&self) -> bool {
        self.decided.is_some() && self.plan.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proposal_for;
    use crate::spec::{check_consensus, ConsensusViolation};
    use ktudc_fd::EventuallyStrongOracle;
    use ktudc_sim::{run_protocol, ChannelKind, CrashPlan, NullOracle, SimConfig, Workload};

    fn reliable(n: usize, seed: u64, horizon: Time) -> SimConfig {
        SimConfig::new(n)
            .channel(ChannelKind::reliable())
            .horizon(horizon)
            .seed(seed)
    }

    #[test]
    fn decides_with_eventually_strong_fd_and_majority() {
        let props = [10, 20, 30];
        for seed in 0..8 {
            let config = reliable(5, seed, 2500).crashes(CrashPlan::at(&[(0, 15), (3, 40)]));
            let out = run_protocol(
                &config,
                |p| RotatingConsensus::new(proposal_for(&props, p)),
                &mut EventuallyStrongOracle::new(120),
                &Workload::none(),
            );
            check_consensus(&out.run, &props).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn decides_without_failures_even_pre_gst() {
        // With no crash, round 1's coordinator is live; false suspicions may
        // burn rounds but the run still converges after stabilization.
        let props = [1, 2];
        for seed in 0..6 {
            let config = reliable(4, seed, 2500);
            let out = run_protocol(
                &config,
                |p| RotatingConsensus::new(proposal_for(&props, p)),
                &mut EventuallyStrongOracle::new(200),
                &Workload::none(),
            );
            check_consensus(&out.run, &props).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn flp_witness_no_detector_plus_crash_means_no_termination() {
        // The FLP-flavoured cell: no failure detector and the round-1
        // coordinator crashes. Nobody can ever nack, so nobody advances —
        // no decision at any horizon. (A single run is not the FLP proof,
        // but it is the executable shadow of it.)
        let props = [10, 20];
        let config = reliable(3, 7, 3000).crashes(CrashPlan::at(&[(0, 5)]));
        let out = run_protocol(
            &config,
            |p| RotatingConsensus::new(proposal_for(&props, p)),
            &mut NullOracle::new(),
            &Workload::none(),
        );
        assert!(matches!(
            check_consensus(&out.run, &props),
            Err(ConsensusViolation::Termination { .. })
        ));
        assert!(!out.quiescent);
    }

    #[test]
    fn validity_decided_value_was_proposed() {
        let props = [42];
        let config = reliable(3, 1, 1500);
        let out = run_protocol(
            &config,
            |p| RotatingConsensus::new(proposal_for(&props, p)),
            &mut EventuallyStrongOracle::new(50),
            &Workload::none(),
        );
        check_consensus(&out.run, &props).unwrap();
        let ds = crate::spec::decisions(&out.run);
        assert!(ds.iter().all(|&(_, v, _)| v == 42));
    }

    #[test]
    fn accessors() {
        let proto = RotatingConsensus::new(9);
        assert_eq!(proto.decision(), None);
        assert_eq!(proto.round(), 1);
    }
}
