//! The Chandra–Toueg consensus algorithm for **strong** failure detectors
//! (strong completeness + weak accuracy), tolerating up to `n − 1`
//! failures — the detector class the paper compares against UDC in the
//! right-hand columns of Table 1.
//!
//! Phase 1 runs `n − 1` asynchronous rounds; in each, every process
//! broadcasts its vector of known proposals and waits, for every peer `q`,
//! until it has `q`'s round-`r` vector or its detector has (ever) suspected
//! `q`. Phase 2 exchanges final vectors once more and each process keeps
//! only the entries present in *every* vector it waited for. Weak accuracy
//! guarantees some correct process is never suspected, so everyone always
//! waits for it and its knowledge threads through all vectors, making the
//! phase-2 intersections equal; everyone decides the first defined entry.
//!
//! Suspicions are *latched* (a once-suspected process stays suspected for
//! waiting purposes), which keeps the algorithm correct even under
//! impermanent-strong detectors — mirroring the "says or has said" clause
//! of the UDC protocol of Proposition 3.1.

use crate::ConsMsg;
use ktudc_model::{ActionId, Event, ProcSet, ProcessId, SuspectReport, Time};
use ktudc_sim::{ProtoAction, Protocol};
use std::collections::{BTreeMap, VecDeque};

#[derive(Clone, Debug)]
enum Step {
    Send(ProcessId, ConsMsg),
    Decide(u64),
}

/// Phase-2 marker round number.
const PHASE2: u32 = 0;

/// The strong-detector consensus protocol for one instance.
#[derive(Clone, Debug)]
pub struct StrongConsensus {
    me: ProcessId,
    n: usize,
    proposal: u64,
    /// Learned proposals, indexed by process.
    known: Vec<Option<u64>>,
    /// Current round, `1 ..= n−1`, then [`PHASE2`], then decided.
    round: u32,
    round_sent: bool,
    in_phase2: bool,
    decided: Option<u64>,
    ever_suspected: ProcSet,
    /// Vectors received per round (key `PHASE2` holds phase-2 vectors).
    vectors: BTreeMap<u32, BTreeMap<ProcessId, Vec<Option<u64>>>>,
    plan: VecDeque<Step>,
}

impl StrongConsensus {
    /// Creates an instance proposing `proposal`.
    #[must_use]
    pub fn new(proposal: u64) -> Self {
        StrongConsensus {
            me: ProcessId::new(0),
            n: 0,
            proposal,
            known: Vec::new(),
            round: 1,
            round_sent: false,
            in_phase2: false,
            decided: None,
            ever_suspected: ProcSet::new(),
            vectors: BTreeMap::new(),
            plan: VecDeque::new(),
        }
    }

    /// The value this process decided, if it has.
    #[must_use]
    pub fn decision(&self) -> Option<u64> {
        self.decided
    }

    fn merge(&mut self, vector: &[Option<u64>]) {
        for (mine, theirs) in self.known.iter_mut().zip(vector) {
            if mine.is_none() {
                *mine = *theirs;
            }
        }
    }

    /// The round-`key` wait is satisfied when, for every peer `q`, a
    /// vector has arrived or `q` has (ever) been suspected.
    fn wait_satisfied(&self, key: u32) -> bool {
        let empty = BTreeMap::new();
        let got = self.vectors.get(&key).unwrap_or(&empty);
        ProcessId::all(self.n)
            .filter(|&q| q != self.me)
            .all(|q| got.contains_key(&q) || self.ever_suspected.contains(q))
    }

    fn broadcast_vector(&mut self, key: u32) {
        for q in ProcessId::all(self.n) {
            if q != self.me {
                self.plan.push_back(Step::Send(
                    q,
                    ConsMsg::Vector {
                        round: key,
                        known: self.known.clone(),
                    },
                ));
            }
        }
    }

    fn enqueue_decide(&mut self, value: u64) {
        for q in ProcessId::all(self.n) {
            if q != self.me {
                self.plan
                    .push_back(Step::Send(q, ConsMsg::Decide { value }));
            }
        }
        self.plan.push_back(Step::Decide(value));
    }

    fn progress(&mut self) {
        if self.decided.is_some() {
            return;
        }
        let phase1_rounds = (self.n - 1) as u32;
        if !self.in_phase2 {
            if !self.round_sent {
                self.round_sent = true;
                let key = self.round;
                self.broadcast_vector(key);
                return;
            }
            if self.wait_satisfied(self.round) {
                // Merge everything that arrived for this round.
                if let Some(got) = self.vectors.get(&self.round) {
                    let vectors: Vec<Vec<Option<u64>>> = got.values().cloned().collect();
                    for v in vectors {
                        self.merge(&v);
                    }
                }
                if self.round >= phase1_rounds {
                    self.in_phase2 = true;
                    self.broadcast_vector(PHASE2);
                } else {
                    self.round += 1;
                    self.round_sent = false;
                }
                return;
            }
            return;
        }
        // Phase 2: wait, intersect, decide.
        if self.wait_satisfied(PHASE2) {
            let mut agreed = self.known.clone();
            if let Some(got) = self.vectors.get(&PHASE2) {
                for vector in got.values() {
                    for (mine, theirs) in agreed.iter_mut().zip(vector) {
                        if theirs.is_none() {
                            *mine = None;
                        }
                    }
                }
            }
            let value = agreed
                .iter()
                .flatten()
                .next()
                .copied()
                .expect("own proposal threads through every wait set");
            self.enqueue_decide(value);
        }
    }
}

impl Protocol<ConsMsg> for StrongConsensus {
    fn start(&mut self, me: ProcessId, n: usize) {
        self.me = me;
        self.n = n;
        self.known = vec![None; n];
        self.known[me.index()] = Some(self.proposal);
    }

    fn observe(&mut self, _time: Time, event: &Event<ConsMsg>) {
        match event {
            Event::Suspect(SuspectReport::Standard(s)) => {
                self.ever_suspected = self.ever_suspected.union(*s);
            }
            Event::Do { action } => self.decided = Some(u64::from(action.seq())),
            Event::Recv { from, msg } => match msg {
                ConsMsg::Vector { round, known } => {
                    self.vectors
                        .entry(*round)
                        .or_default()
                        .insert(*from, known.clone());
                }
                ConsMsg::Decide { value }
                    if self.decided.is_none()
                        && !self.plan.iter().any(|s| matches!(s, Step::Decide(_))) =>
                {
                    self.enqueue_decide(*value);
                }
                _ => {}
            },
            _ => {}
        }
    }

    fn next_action(&mut self, _time: Time) -> Option<ProtoAction<ConsMsg>> {
        if self.plan.is_empty() {
            self.progress();
        }
        match self.plan.pop_front() {
            Some(Step::Send(to, msg)) => Some(ProtoAction::Send { to, msg }),
            Some(Step::Decide(v)) => {
                if self.decided.is_none() {
                    Some(ProtoAction::Do(ActionId::new(
                        self.me,
                        u32::try_from(v).expect("test values fit u32"),
                    )))
                } else {
                    None
                }
            }
            None => None,
        }
    }

    fn quiescent(&self) -> bool {
        self.decided.is_some() && self.plan.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proposal_for;
    use crate::spec::{check_consensus, ConsensusViolation};
    use ktudc_fd::{PerfectOracle, StrongOracle};
    use ktudc_sim::{run_protocol, ChannelKind, CrashPlan, SimConfig, Workload};

    fn reliable(n: usize, seed: u64, horizon: Time) -> SimConfig {
        SimConfig::new(n)
            .channel(ChannelKind::reliable())
            .horizon(horizon)
            .seed(seed)
    }

    #[test]
    fn decides_with_strong_fd_beyond_majority_failures() {
        // t = n − 1 = 3 of 4 crash — far beyond what ◇S consensus survives.
        let props = [5, 6, 7, 8];
        for seed in 0..8 {
            let config =
                reliable(4, seed, 3000).crashes(CrashPlan::at(&[(0, 20), (1, 35), (3, 50)]));
            let out = run_protocol(
                &config,
                |p| StrongConsensus::new(proposal_for(&props, p)),
                &mut StrongOracle::new(),
                &Workload::none(),
            );
            check_consensus(&out.run, &props).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn decides_failure_free() {
        let props = [100, 200];
        for seed in 0..6 {
            let config = reliable(5, seed, 3000);
            let out = run_protocol(
                &config,
                |p| StrongConsensus::new(proposal_for(&props, p)),
                &mut StrongOracle::new(),
                &Workload::none(),
            );
            check_consensus(&out.run, &props).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn decides_with_perfect_fd() {
        let props = [1, 2, 3];
        let config = reliable(3, 2, 2000).crashes(CrashPlan::at(&[(2, 10)]));
        let out = run_protocol(
            &config,
            |p| StrongConsensus::new(proposal_for(&props, p)),
            &mut PerfectOracle::new(),
            &Workload::none(),
        );
        check_consensus(&out.run, &props).unwrap();
    }

    #[test]
    fn stalls_without_completeness() {
        // A null detector never unblocks waits on a crashed peer.
        let props = [1, 2, 3];
        let config = reliable(3, 4, 2000).crashes(CrashPlan::at(&[(1, 5)]));
        let out = run_protocol(
            &config,
            |p| StrongConsensus::new(proposal_for(&props, p)),
            &mut ktudc_sim::NullOracle::new(),
            &Workload::none(),
        );
        assert!(matches!(
            check_consensus(&out.run, &props),
            Err(ConsensusViolation::Termination { .. })
        ));
    }

    #[test]
    fn accessors() {
        let proto = StrongConsensus::new(11);
        assert_eq!(proto.decision(), None);
    }
}
