//! Chandra–Toueg consensus baselines for the comparison rows of Table 1.
//!
//! The paper contrasts UDC against consensus: consensus needs `◇W`-class
//! detectors for `t < n/2` and strong detectors for `n/2 ≤ t ≤ n − 1`,
//! *regardless* of channel reliability, whereas UDC's requirements move
//! with the channel regime. This crate supplies executable consensus
//! protocols over the same simulator so the bench harness can populate
//! those rows:
//!
//! * [`rotating::RotatingConsensus`] — the Chandra–Toueg rotating-
//!   coordinator algorithm, correct with an eventually-strong (◇S)
//!   detector and a majority of correct processes (`t < n/2`);
//! * [`strong::StrongConsensus`] — the Chandra–Toueg algorithm for strong
//!   detectors, tolerating up to `n − 1` failures;
//! * [`spec`] — machine-checkable consensus properties (uniform
//!   agreement, validity, integrity, termination-by-horizon).
//!
//! Decisions are recorded in histories as `do_p(a_{p.v})` events — the
//! `seq` of the performed [`ActionId`](ktudc_model::ActionId) carries the
//! decided value — so consensus runs use the same event vocabulary as
//! everything else and the epistemic tooling applies unchanged.
//!
//! Consensus is evaluated over **reliable** channels, Chandra & Toueg's own
//! setting; the paper notes their algorithms adapt to fair-lossy channels
//! with retransmission, and the conclusion recorded in Table 1 (the FD
//! class needed) is the same in both regimes. An FLP-flavoured witness —
//! no failure detector ⇒ non-termination under a crash — is exercised in
//! the tests and the bench harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rotating;
pub mod spec;
pub mod strong;

use ktudc_model::ProcessId;
use std::fmt;

/// Messages of both consensus protocols.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum ConsMsg {
    /// Phase-1 estimate sent to the round's coordinator.
    Estimate {
        /// Round number.
        round: u32,
        /// Current estimate.
        value: u64,
        /// Timestamp: the round in which the estimate was adopted.
        ts: u32,
    },
    /// Phase-2 coordinator proposal.
    Try {
        /// Round number.
        round: u32,
        /// Proposed value.
        value: u64,
    },
    /// Phase-3 positive acknowledgment.
    Ack {
        /// Round number.
        round: u32,
    },
    /// Phase-3 negative acknowledgment (coordinator suspected).
    Nack {
        /// Round number.
        round: u32,
    },
    /// Reliable-broadcast decision announcement.
    Decide {
        /// Decided value.
        value: u64,
    },
    /// Knowledge vector for the strong-detector algorithm: `known[i]` is
    /// `Some(v)` once `p_i`'s proposal `v` has been learned.
    Vector {
        /// Asynchronous round number (1-based; `0` marks phase 2).
        round: u32,
        /// Learned proposals, indexed by process.
        known: Vec<Option<u64>>,
    },
}

impl fmt::Debug for ConsMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsMsg::Estimate { round, value, ts } => {
                write!(f, "est(r{round}, v{value}, ts{ts})")
            }
            ConsMsg::Try { round, value } => write!(f, "try(r{round}, v{value})"),
            ConsMsg::Ack { round } => write!(f, "ack(r{round})"),
            ConsMsg::Nack { round } => write!(f, "nack(r{round})"),
            ConsMsg::Decide { value } => write!(f, "decide(v{value})"),
            ConsMsg::Vector { round, known } => write!(f, "vec(r{round}, {known:?})"),
        }
    }
}

/// Assigns proposal values by process index: `p_i` proposes
/// `proposals[i % proposals.len()]`. The common workload generator for the
/// consensus experiments.
#[must_use]
pub fn proposal_for(proposals: &[u64], p: ProcessId) -> u64 {
    proposals[p.index() % proposals.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposal_assignment_cycles() {
        let props = [10, 20];
        assert_eq!(proposal_for(&props, ProcessId::new(0)), 10);
        assert_eq!(proposal_for(&props, ProcessId::new(1)), 20);
        assert_eq!(proposal_for(&props, ProcessId::new(2)), 10);
    }

    #[test]
    fn message_debug_formats() {
        assert_eq!(
            format!(
                "{:?}",
                ConsMsg::Estimate {
                    round: 1,
                    value: 7,
                    ts: 0
                }
            ),
            "est(r1, v7, ts0)"
        );
        assert_eq!(format!("{:?}", ConsMsg::Decide { value: 3 }), "decide(v3)");
    }
}
