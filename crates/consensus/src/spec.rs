//! Consensus specification checkers.
//!
//! Decisions are `do_p(a)` events whose [`ActionId::seq`] carries the
//! decided value. The checker evaluates the classic four properties, with
//! termination under the usual finite-horizon reading:
//!
//! * **Integrity** — each process decides at most once;
//! * **Uniform agreement** — no two processes (correct *or faulty*)
//!   decide differently;
//! * **Validity** — every decided value was proposed;
//! * **Termination** — every correct process decides by the horizon.

use ktudc_model::{Event, ProcessId, Run, Time};
use std::fmt;

/// A consensus property violation with its witness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConsensusViolation {
    /// A process decided twice.
    Integrity {
        /// The offender.
        process: ProcessId,
    },
    /// Two processes decided different values.
    Agreement {
        /// First decider and value.
        a: (ProcessId, u64),
        /// Conflicting decider and value.
        b: (ProcessId, u64),
    },
    /// A decided value was never proposed.
    Validity {
        /// The decider.
        process: ProcessId,
        /// The unproposed value.
        value: u64,
    },
    /// A correct process never decided (by the horizon).
    Termination {
        /// The undecided correct process.
        process: ProcessId,
    },
}

impl fmt::Display for ConsensusViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsensusViolation::Integrity { process } => {
                write!(f, "integrity: {process} decided more than once")
            }
            ConsensusViolation::Agreement { a, b } => write!(
                f,
                "uniform agreement: {} decided {} but {} decided {}",
                a.0, a.1, b.0, b.1
            ),
            ConsensusViolation::Validity { process, value } => {
                write!(f, "validity: {process} decided unproposed value {value}")
            }
            ConsensusViolation::Termination { process } => {
                write!(f, "termination: correct {process} never decided")
            }
        }
    }
}

impl std::error::Error for ConsensusViolation {}

/// Extracts every decision `(process, value, tick)` from a run.
#[must_use]
pub fn decisions<M>(run: &Run<M>) -> Vec<(ProcessId, u64, Time)> {
    let mut out = Vec::new();
    for p in ProcessId::all(run.n()) {
        for (t, e) in run.timed_history(p) {
            if let Event::Do { action } = e {
                out.push((p, u64::from(action.seq()), t));
            }
        }
    }
    out
}

/// Checks all four consensus properties on a finished run.
///
/// # Errors
///
/// Returns the first violation found (integrity, then agreement, then
/// validity, then termination).
pub fn check_consensus<M>(run: &Run<M>, proposals: &[u64]) -> Result<(), ConsensusViolation> {
    let decided = decisions(run);
    // Integrity.
    for p in ProcessId::all(run.n()) {
        if decided.iter().filter(|(q, _, _)| *q == p).count() > 1 {
            return Err(ConsensusViolation::Integrity { process: p });
        }
    }
    // Uniform agreement.
    if let Some(&(p0, v0, _)) = decided.first() {
        for &(p1, v1, _) in &decided[1..] {
            if v1 != v0 {
                return Err(ConsensusViolation::Agreement {
                    a: (p0, v0),
                    b: (p1, v1),
                });
            }
        }
    }
    // Validity.
    for &(p, v, _) in &decided {
        if !proposals.contains(&v) {
            return Err(ConsensusViolation::Validity {
                process: p,
                value: v,
            });
        }
    }
    // Termination (finite-horizon reading).
    for p in run.correct().iter() {
        if !decided.iter().any(|(q, _, _)| *q == p) {
            return Err(ConsensusViolation::Termination { process: p });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktudc_model::{ActionId, RunBuilder};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn decide(b: &mut RunBuilder<u8>, who: usize, value: u32, t: Time) {
        b.append(
            p(who),
            t,
            Event::Do {
                action: ActionId::new(p(who), value),
            },
        )
        .unwrap();
    }

    #[test]
    fn all_good() {
        let mut b = RunBuilder::<u8>::new(3);
        decide(&mut b, 0, 7, 2);
        decide(&mut b, 1, 7, 3);
        decide(&mut b, 2, 7, 4);
        let run = b.finish(5);
        check_consensus(&run, &[7, 9]).unwrap();
        assert_eq!(decisions(&run).len(), 3);
    }

    #[test]
    fn agreement_violation() {
        let mut b = RunBuilder::<u8>::new(2);
        decide(&mut b, 0, 7, 2);
        decide(&mut b, 1, 9, 3);
        let run = b.finish(5);
        assert!(matches!(
            check_consensus(&run, &[7, 9]),
            Err(ConsensusViolation::Agreement { .. })
        ));
    }

    #[test]
    fn uniform_agreement_binds_faulty_deciders() {
        // p0 decides 7 then crashes; p1 decides 9: uniform agreement broken
        // even though p0 is faulty.
        let mut b = RunBuilder::<u8>::new(2);
        decide(&mut b, 0, 7, 2);
        b.append(p(0), 3, Event::Crash).unwrap();
        decide(&mut b, 1, 9, 4);
        let run = b.finish(5);
        assert!(matches!(
            check_consensus(&run, &[7, 9]),
            Err(ConsensusViolation::Agreement { .. })
        ));
    }

    #[test]
    fn validity_violation() {
        let mut b = RunBuilder::<u8>::new(1);
        decide(&mut b, 0, 5, 2);
        let run = b.finish(3);
        assert!(matches!(
            check_consensus(&run, &[7]),
            Err(ConsensusViolation::Validity { value: 5, .. })
        ));
    }

    #[test]
    fn termination_violation_only_for_correct() {
        let mut b = RunBuilder::<u8>::new(2);
        decide(&mut b, 0, 7, 2);
        let run = b.finish(5);
        assert!(matches!(
            check_consensus(&run, &[7]),
            Err(ConsensusViolation::Termination { process }) if process == p(1)
        ));
        // If the undecided process crashed, termination is satisfied.
        let mut b = RunBuilder::<u8>::new(2);
        decide(&mut b, 0, 7, 2);
        b.append(p(1), 3, Event::Crash).unwrap();
        let run = b.finish(5);
        check_consensus(&run, &[7]).unwrap();
    }

    #[test]
    fn integrity_violation() {
        let mut b = RunBuilder::<u8>::new(1);
        decide(&mut b, 0, 7, 2);
        decide(&mut b, 0, 7, 3);
        let run = b.finish(5);
        assert!(matches!(
            check_consensus(&run, &[7]),
            Err(ConsensusViolation::Integrity { .. })
        ));
    }

    #[test]
    fn violation_display() {
        let v = ConsensusViolation::Agreement {
            a: (p(0), 1),
            b: (p(1), 2),
        };
        assert!(v.to_string().contains("p0 decided 1 but p1 decided 2"));
    }
}
