//! Property-based tests on the run model's invariants.

use ktudc_model::{
    ActionId, Event, ModelError, ProcSet, ProcessId, Run, RunBuilder, SuspectReport, System,
};
use proptest::prelude::*;

/// Arbitrary append attempts: a (process, tick, event-kind) script. Many
/// entries will be rejected by the builder; the invariant is that whatever
/// *commits* forms a well-formed run.
fn script_strategy() -> impl Strategy<Value = Vec<(usize, u64, u8, usize)>> {
    proptest::collection::vec((0usize..4, 1u64..30, 0u8..6, 0usize..4), 0..80)
}

fn build_from_script(script: &[(usize, u64, u8, usize)]) -> Run<u16> {
    let mut b = RunBuilder::<u16>::new(4);
    for &(pi, t, kind, other) in script {
        let p = ProcessId::new(pi);
        let q = ProcessId::new(other);
        let event = match kind {
            0 => Event::Send {
                to: q,
                msg: (t % 7) as u16,
            },
            1 => Event::Recv {
                from: q,
                msg: (t % 7) as u16,
            },
            2 => Event::Init {
                action: ActionId::new(p, (t % 3) as u32),
            },
            3 => Event::Do {
                action: ActionId::new(q, (t % 3) as u32),
            },
            4 => Event::Crash,
            _ => Event::Suspect(SuspectReport::Standard(ProcSet::singleton(q))),
        };
        let _ = b.append(p, t, event);
    }
    b.finish(35)
}

proptest! {
    /// Whatever the adversarial append script, the committed run passes the
    /// R1–R4 validator (R5 skipped: scripts are not fair).
    #[test]
    fn builder_output_is_always_wellformed(script in script_strategy()) {
        let run = build_from_script(&script);
        run.check_conditions(0).unwrap();
    }

    /// Serde round-trips preserve runs exactly.
    #[test]
    fn serde_roundtrip(script in script_strategy()) {
        let run = build_from_script(&script);
        let json = serde_json::to_string(&run).unwrap();
        let back: Run<u16> = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, run);
    }

    /// Prefixes: `run.prefix(m)` is extended by `run` at every `m`, has the
    /// right horizon, and history prefixes agree.
    #[test]
    fn prefixes_are_extensions(script in script_strategy(), m in 0u64..35) {
        let run = build_from_script(&script);
        let pre = run.prefix(m);
        prop_assert_eq!(pre.horizon(), m.min(run.horizon()));
        prop_assert!(pre.is_extended_by(m, &run));
        for p in ProcessId::all(4) {
            prop_assert_eq!(pre.history(p), run.history_at(p, m));
        }
        pre.check_conditions(0).unwrap();
    }

    /// Crash accounting: `faulty` = processes with a crash event, crashes
    /// are history-final, and `crashed_by` is monotone in time.
    #[test]
    fn crash_bookkeeping(script in script_strategy()) {
        let run = build_from_script(&script);
        for p in ProcessId::all(4) {
            let has_crash = run.history(p).iter().any(Event::is_crash);
            prop_assert_eq!(run.faulty().contains(p), has_crash);
            if has_crash {
                prop_assert!(run.history(p).last().unwrap().is_crash());
            }
        }
        let mut prev = ProcSet::new();
        for m in 0..=run.horizon() {
            let now = run.crashed_by(m);
            prop_assert!(prev.is_subset_of(now));
            prev = now;
        }
        prop_assert_eq!(prev, run.faulty());
    }

    /// The system index is consistent with brute-force indistinguishability:
    /// for random points, the block set returned contains exactly the points
    /// with equal local history.
    #[test]
    fn system_index_matches_bruteforce(
        s1 in script_strategy(),
        s2 in script_strategy(),
        m in 0u64..35,
        pi in 0usize..4,
    ) {
        let sys = System::new(vec![build_from_script(&s1), build_from_script(&s2)]);
        let p = ProcessId::new(pi);
        let blocks = sys.indistinguishable_blocks(p, 0, m);
        let member = |run: usize, t: u64| {
            blocks.iter().any(|b| b.run == run && b.from <= t && t <= b.to)
        };
        let reference = sys.run(0).history_at(p, m);
        for (ri, run) in sys.runs().iter().enumerate() {
            for t in 0..=run.horizon() {
                let equal = run.history_at(p, t) == reference;
                prop_assert_eq!(
                    member(ri, t),
                    equal,
                    "index and brute force disagree at (r{}, {})", ri, t
                );
            }
        }
    }

    /// Suspects_p tracks the most recent standard report at every time.
    #[test]
    fn suspects_tracks_latest_report(script in script_strategy(), m in 0u64..35) {
        let run = build_from_script(&script);
        for p in ProcessId::all(4) {
            let expected = run
                .history_at(p, m)
                .iter()
                .rev()
                .find_map(|e| match e {
                    Event::Suspect(SuspectReport::Standard(s)) => Some(*s),
                    _ => None,
                })
                .unwrap_or_default();
            prop_assert_eq!(run.suspects_at(p, m), expected);
        }
    }

    /// Receives never outnumber sends per (sender, receiver, payload) at
    /// any cut — the count form of R3.
    #[test]
    fn receives_never_exceed_sends(script in script_strategy(), m in 0u64..35) {
        let run = build_from_script(&script);
        for from in ProcessId::all(4) {
            for to in ProcessId::all(4) {
                for msg in 0u16..7 {
                    let sent = run.view_at(from, m).send_count(to, &msg);
                    let recv = run.view_at(to, m).recv_count(from, &msg);
                    prop_assert!(recv <= sent, "{recv} receives vs {sent} sends");
                }
            }
        }
    }
}

/// Deterministic negative check kept outside proptest: the validator flags
/// a hand-corrupted fairness situation.
#[test]
fn validator_flags_unfair_channels() {
    let mut b = RunBuilder::<u16>::new(2);
    for t in 1..=20 {
        b.append(
            ProcessId::new(0),
            t,
            Event::Send {
                to: ProcessId::new(1),
                msg: 1,
            },
        )
        .unwrap();
    }
    let run = b.finish(25);
    assert!(matches!(
        run.check_conditions(10),
        Err(ModelError::UnfairChannel { .. })
    ));
}
