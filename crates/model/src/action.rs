//! Coordination actions.
//!
//! Section 2.4 of the paper assumes each process `p` has a set `A_p` of
//! coordination actions it can *initiate*, with `A_p` and `A_q` disjoint for
//! `p ≠ q` ("think of the actions in `A_p` as somehow being tagged by `p`").
//! We realize the tagging literally: an [`ActionId`] carries its initiator,
//! so disjointness holds by construction.

use crate::ProcessId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A coordination action `α ∈ A_p`, identified by its initiating process and
/// a per-initiator sequence number.
///
/// Only `initiator` may perform the `init_p(α)` event for this action (and at
/// most once per run); any process may perform `do(α)` once the action has
/// been initiated. Both constraints are enforced by
/// [`RunBuilder`](crate::RunBuilder).
///
/// # Example
///
/// ```
/// use ktudc_model::{ActionId, ProcessId};
/// let alpha = ActionId::new(ProcessId::new(2), 7);
/// assert_eq!(alpha.initiator(), ProcessId::new(2));
/// assert_eq!(alpha.seq(), 7);
/// assert_eq!(alpha.to_string(), "a2.7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ActionId {
    initiator: ProcessId,
    seq: u32,
}

impl ActionId {
    /// Creates the `seq`-th action of `initiator`'s action set `A_p`.
    #[must_use]
    pub fn new(initiator: ProcessId, seq: u32) -> Self {
        ActionId { initiator, seq }
    }

    /// The process that owns (and alone may initiate) this action.
    #[must_use]
    pub fn initiator(self) -> ProcessId {
        self.initiator
    }

    /// The per-initiator sequence number distinguishing actions in `A_p`.
    #[must_use]
    pub fn seq(self) -> u32 {
        self.seq
    }
}

impl fmt::Debug for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}.{}", self.initiator.index(), self.seq)
    }
}

impl fmt::Display for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}.{}", self.initiator.index(), self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let a = ActionId::new(ProcessId::new(1), 4);
        assert_eq!(a.initiator().index(), 1);
        assert_eq!(a.seq(), 4);
    }

    #[test]
    fn action_sets_are_disjoint_by_construction() {
        // Two actions with the same sequence number but different initiators
        // are different actions: A_p ∩ A_q = ∅ for p ≠ q.
        let a = ActionId::new(ProcessId::new(0), 0);
        let b = ActionId::new(ProcessId::new(1), 0);
        assert_ne!(a, b);
    }

    #[test]
    fn ordering_groups_by_initiator() {
        let a00 = ActionId::new(ProcessId::new(0), 0);
        let a01 = ActionId::new(ProcessId::new(0), 1);
        let a10 = ActionId::new(ProcessId::new(1), 0);
        assert!(a00 < a01);
        assert!(a01 < a10);
    }

    #[test]
    fn display_and_debug() {
        let a = ActionId::new(ProcessId::new(3), 12);
        assert_eq!(a.to_string(), "a3.12");
        assert_eq!(format!("{a:?}"), "a3.12");
    }

    #[test]
    fn serde_roundtrip() {
        let a = ActionId::new(ProcessId::new(5), 9);
        let json = serde_json::to_string(&a).unwrap();
        assert_eq!(a, serde_json::from_str::<ActionId>(&json).unwrap());
    }
}
