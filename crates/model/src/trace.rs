//! Human-readable run traces.
//!
//! Debugging a distributed protocol means reading executions; [`trace`]
//! renders a run as a tick-by-tick timeline with one column per process,
//! in the spirit of the space–time diagrams of the literature. Only ticks
//! carrying at least one event are printed.
//!
//! ```
//! use ktudc_model::{trace, Event, ProcessId, RunBuilder};
//!
//! let p0 = ProcessId::new(0);
//! let p1 = ProcessId::new(1);
//! let mut b = RunBuilder::<&str>::new(2);
//! b.append(p0, 1, Event::Send { to: p1, msg: "hi" })?;
//! b.append(p1, 3, Event::Recv { from: p0, msg: "hi" })?;
//! b.append(p1, 4, Event::Crash)?;
//! let run = b.finish(5);
//!
//! let text = trace(&run);
//! assert!(text.contains("send(p1, \"hi\")"));
//! assert!(text.contains("crash"));
//! # Ok::<(), ktudc_model::ModelError>(())
//! ```

use crate::{ProcessId, Run, Time};
use std::collections::BTreeMap;
use std::fmt::Debug;
use std::fmt::Write as _;

/// Renders the full run as a timeline table.
#[must_use]
pub fn trace<M: Debug>(run: &Run<M>) -> String {
    trace_window(run, 0, run.horizon())
}

/// Renders the ticks of `[from, to]` (inclusive) as a timeline table.
///
/// # Panics
///
/// Panics if `to` exceeds the run's horizon.
#[must_use]
pub fn trace_window<M: Debug>(run: &Run<M>, from: Time, to: Time) -> String {
    assert!(to <= run.horizon());
    let n = run.n();
    // Collect events per tick.
    let mut by_tick: BTreeMap<Time, Vec<(ProcessId, String)>> = BTreeMap::new();
    for p in ProcessId::all(n) {
        for (t, e) in run.timed_history(p) {
            if t >= from && t <= to {
                by_tick.entry(t).or_default().push((p, format!("{e:?}")));
            }
        }
    }
    let width = by_tick
        .values()
        .flatten()
        .map(|(_, s)| s.len())
        .max()
        .unwrap_or(8)
        .max(8)
        + 2;
    let mut out = String::new();
    let _ = write!(out, "{:>6} ", "tick");
    for p in ProcessId::all(n) {
        let _ = write!(out, "| {:<width$}", p.to_string());
    }
    out.push('\n');
    let _ = writeln!(out, "{:-<1$}", "", 7 + n * (width + 2));
    for (t, events) in by_tick {
        let _ = write!(out, "{t:>6} ");
        for p in ProcessId::all(n) {
            let cell = events
                .iter()
                .find(|(q, _)| *q == p)
                .map(|(_, s)| s.as_str())
                .unwrap_or("");
            let _ = write!(out, "| {cell:<width$}");
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "horizon {} · F(r) = {} · {} events",
        run.horizon(),
        run.faulty(),
        run.event_count()
    );
    out
}

/// One-line statistics summary of a run.
#[must_use]
pub fn summary<M>(run: &Run<M>) -> String {
    format!(
        "n={} horizon={} events={} sends={} faulty={}",
        run.n(),
        run.horizon(),
        run.event_count(),
        run.send_count_total(),
        run.faulty()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, RunBuilder};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn sample() -> Run<&'static str> {
        let mut b = RunBuilder::new(3);
        b.append(p(0), 1, Event::Send { to: p(1), msg: "x" })
            .unwrap();
        b.append(
            p(1),
            2,
            Event::Recv {
                from: p(0),
                msg: "x",
            },
        )
        .unwrap();
        b.append(p(2), 4, Event::Crash).unwrap();
        b.finish(6)
    }

    #[test]
    fn trace_contains_all_events_and_metadata() {
        let run = sample();
        let text = trace(&run);
        assert!(text.contains("send(p1, \"x\")"));
        assert!(text.contains("recv(p0, \"x\")"));
        assert!(text.contains("crash"));
        assert!(text.contains("F(r) = {p2}"));
        assert!(text.contains("3 events"));
        // Header names every process column.
        let header = text.lines().next().unwrap();
        for i in 0..3 {
            assert!(header.contains(&format!("p{i}")), "missing column p{i}");
        }
    }

    #[test]
    fn window_restricts_ticks() {
        let run = sample();
        let text = trace_window(&run, 3, 6);
        assert!(!text.contains("send"));
        assert!(text.contains("crash"));
    }

    #[test]
    fn empty_run_still_renders() {
        let run = RunBuilder::<u8>::new(2).finish(3);
        let text = trace(&run);
        assert!(text.contains("0 events"));
        assert!(summary(&run).contains("events=0"));
    }

    #[test]
    #[should_panic]
    fn window_beyond_horizon_panics() {
        let run = sample();
        let _ = trace_window(&run, 0, 99);
    }
}
