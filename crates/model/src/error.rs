//! Error type for run-construction and run-condition violations.

use crate::{ProcessId, Time};
use std::error::Error;
use std::fmt;

/// A violation of the well-formedness conditions R1–R5 (or of the §2.4
/// initiation constraints) detected while building or checking a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// A process index was out of range for the run's system size.
    UnknownProcess {
        /// The offending process.
        process: ProcessId,
        /// The run's system size `n`.
        n: usize,
    },
    /// R2 violation: two events appended to the same process at the same
    /// tick, or an event appended at a tick earlier than the previous one.
    NonMonotonicTime {
        /// The process whose history was being extended.
        process: ProcessId,
        /// Tick of the previous event.
        last: Time,
        /// Tick of the offending append.
        attempted: Time,
    },
    /// R3 violation: a `recv` with no matching earlier (or simultaneous)
    /// `send` in the claimed sender's history.
    ReceiveWithoutSend {
        /// The receiving process.
        receiver: ProcessId,
        /// The claimed sender.
        sender: ProcessId,
        /// Tick of the offending receive.
        time: Time,
    },
    /// R4 violation: an event appended after `crash_p`.
    EventAfterCrash {
        /// The crashed process.
        process: ProcessId,
        /// Tick of the offending append.
        time: Time,
    },
    /// §2.4 violation: `init_p(α)` performed by a process other than
    /// `α.initiator()`.
    ForeignInit {
        /// The process that attempted the initiation.
        process: ProcessId,
    },
    /// §2.4 violation: `init_p(α)` appeared twice for the same `α`.
    DuplicateInit {
        /// The process that attempted the re-initiation.
        process: ProcessId,
        /// Tick of the offending append.
        time: Time,
    },
    /// A `do(α)` for an action that was never initiated anywhere in the run.
    /// (This is DC3 of the UDC spec, checked structurally when requested.)
    DoWithoutInit {
        /// The process that executed the action.
        process: ProcessId,
        /// Tick of the offending execution.
        time: Time,
    },
    /// R5 (finite-horizon reading) violation: a message was sent at least
    /// `threshold` times to a process that never crashed, yet was never
    /// received.
    UnfairChannel {
        /// The sending process.
        sender: ProcessId,
        /// The receiving process.
        receiver: ProcessId,
        /// How many copies were sent by the horizon.
        sent: usize,
        /// The fairness threshold used by the check.
        threshold: usize,
    },
    /// An event was appended at or beyond the run's declared horizon.
    BeyondHorizon {
        /// Tick of the offending append.
        time: Time,
        /// The declared horizon.
        horizon: Time,
    },
    /// A probability parameter was outside its admissible range (NaN,
    /// negative, or at/above an exclusive upper bound). Surfaced as a typed
    /// error so callers fail at configuration time rather than panicking
    /// deep inside the RNG.
    InvalidProbability {
        /// The parameter's name (e.g. `drop_prob`).
        param: &'static str,
        /// The offending value, rendered as text (keeps `Eq` derivable).
        value: String,
        /// Human-readable admissible range (e.g. `[0, 1)`).
        range: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownProcess { process, n } => {
                write!(f, "process {process} out of range for a {n}-process system")
            }
            ModelError::NonMonotonicTime {
                process,
                last,
                attempted,
            } => write!(
                f,
                "R2 violation at {process}: event at tick {attempted} not after previous tick {last}"
            ),
            ModelError::ReceiveWithoutSend {
                receiver,
                sender,
                time,
            } => write!(
                f,
                "R3 violation: {receiver} received from {sender} at tick {time} without a matching send"
            ),
            ModelError::EventAfterCrash { process, time } => {
                write!(f, "R4 violation: event at {process} at tick {time} after crash")
            }
            ModelError::ForeignInit { process } => {
                write!(f, "init by {process} for an action it does not own")
            }
            ModelError::DuplicateInit { process, time } => {
                write!(f, "duplicate init at {process} at tick {time}")
            }
            ModelError::DoWithoutInit { process, time } => {
                write!(f, "do at {process} at tick {time} for an action never initiated")
            }
            ModelError::UnfairChannel {
                sender,
                receiver,
                sent,
                threshold,
            } => write!(
                f,
                "R5 violation: {sent} copies (≥ threshold {threshold}) sent {sender}→{receiver} but none received and {receiver} never crashed"
            ),
            ModelError::BeyondHorizon { time, horizon } => {
                write!(f, "event at tick {time} at or beyond horizon {horizon}")
            }
            ModelError::InvalidProbability {
                param,
                value,
                range,
            } => {
                write!(f, "{param} = {value} is outside the admissible range {range}")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_informative() {
        let errs = [
            ModelError::UnknownProcess {
                process: ProcessId::new(9),
                n: 3,
            },
            ModelError::NonMonotonicTime {
                process: ProcessId::new(0),
                last: 5,
                attempted: 5,
            },
            ModelError::ReceiveWithoutSend {
                receiver: ProcessId::new(1),
                sender: ProcessId::new(0),
                time: 3,
            },
            ModelError::EventAfterCrash {
                process: ProcessId::new(2),
                time: 7,
            },
            ModelError::ForeignInit {
                process: ProcessId::new(1),
            },
            ModelError::DuplicateInit {
                process: ProcessId::new(1),
                time: 2,
            },
            ModelError::DoWithoutInit {
                process: ProcessId::new(0),
                time: 4,
            },
            ModelError::UnfairChannel {
                sender: ProcessId::new(0),
                receiver: ProcessId::new(1),
                sent: 12,
                threshold: 10,
            },
            ModelError::BeyondHorizon {
                time: 10,
                horizon: 10,
            },
            ModelError::InvalidProbability {
                param: "drop_prob",
                value: "NaN".to_string(),
                range: "[0, 1)",
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
        assert!(ModelError::ForeignInit {
            process: ProcessId::new(1)
        }
        .to_string()
        .contains("p1"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: Error>(_: E) {}
        takes_err(ModelError::ForeignInit {
            process: ProcessId::new(0),
        });
    }
}
