//! Cooperative computation budgets and cancellation.
//!
//! Exhaustive exploration and global model checking are exponential in
//! their parameters, so every long-running compute path in the workspace
//! accepts a [`Budget`]: a deadline, a step cap, and an approximate
//! memory cap, plus a shared [`CancelToken`]. Computations *poll* the
//! budget at natural unit boundaries (a DFS node, a trial, an
//! equivalence class) and unwind cooperatively when it is exhausted,
//! returning whatever partial result they accumulated instead of
//! nothing.
//!
//! The design goals, in order:
//!
//! * **Cheap polling.** [`Budget::poll`] is one relaxed `fetch_add` and
//!   two relaxed loads on the hot path; the clock is consulted only
//!   every [`POLL_STRIDE`] polls. [`Budget::check`] is the boundary
//!   variant that always consults the clock — use it between chunks of
//!   work, not inside inner loops.
//! * **Shareable.** A `&Budget` is `Sync`: the same budget is polled
//!   concurrently by every worker of a parallel fan-out, and the first
//!   worker to exhaust it trips a latch that makes every subsequent
//!   poll fail fast, so siblings unwind promptly.
//! * **Observable.** Every poll bumps a heartbeat counter that an
//!   external watchdog can sample: a worker whose heartbeat stops
//!   moving is stuck in a non-cooperative region (or wedged), which is
//!   exactly what a serving layer needs to detect and report.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Polls between clock reads in [`Budget::poll`]. Chosen so that even
/// very cheap poll sites (one DFS node) amortize the `Instant::now()`
/// syscall to noise while keeping deadline-overshoot bounded by a few
/// thousand nodes of work.
pub const POLL_STRIDE: u64 = 1024;

/// Why a budgeted computation stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AbortReason {
    /// The deadline passed.
    Deadline,
    /// The shared [`CancelToken`] was cancelled.
    Cancelled,
    /// The step cap was spent.
    StepLimit,
    /// The approximate memory cap was exceeded.
    MemoryLimit,
}

impl AbortReason {
    /// Stable lower-case name (log/metric label).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AbortReason::Deadline => "deadline",
            AbortReason::Cancelled => "cancelled",
            AbortReason::StepLimit => "step-limit",
            AbortReason::MemoryLimit => "memory-limit",
        }
    }

    fn to_code(self) -> u8 {
        match self {
            AbortReason::Deadline => 1,
            AbortReason::Cancelled => 2,
            AbortReason::StepLimit => 3,
            AbortReason::MemoryLimit => 4,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(AbortReason::Deadline),
            2 => Some(AbortReason::Cancelled),
            3 => Some(AbortReason::StepLimit),
            4 => Some(AbortReason::MemoryLimit),
            _ => None,
        }
    }
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A shared cancellation flag. Cloning yields another handle to the
/// *same* flag; cancelling through any handle cancels every budget the
/// token was attached to.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the flag. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether the flag has been raised.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// A resource budget for one computation: deadline, step cap,
/// approximate memory cap, and a cancellation token.
///
/// All limit checks latch: the first failed poll *trips* the budget and
/// every later poll (from any thread) fails fast with the same
/// [`AbortReason`], so a parallel fan-out sharing one budget unwinds
/// promptly once any worker exhausts it.
#[derive(Debug)]
pub struct Budget {
    deadline: Option<Instant>,
    max_steps: u64,
    max_memory_bytes: u64,
    cancel: CancelToken,
    steps: AtomicU64,
    memory_bytes: AtomicU64,
    heartbeat: Arc<AtomicU64>,
    /// 0 = live; otherwise `AbortReason::to_code` of the first trip.
    tripped: AtomicU8,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    /// A budget with no limits at all — polls always succeed (but still
    /// bump the heartbeat and honor cancellation).
    #[must_use]
    pub fn unlimited() -> Self {
        Budget {
            deadline: None,
            max_steps: u64::MAX,
            max_memory_bytes: u64::MAX,
            cancel: CancelToken::new(),
            steps: AtomicU64::new(0),
            memory_bytes: AtomicU64::new(0),
            heartbeat: Arc::new(AtomicU64::new(0)),
            tripped: AtomicU8::new(0),
        }
    }

    /// Sets an absolute deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deadline `timeout` from now.
    #[must_use]
    pub fn deadline_in(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Caps the number of polled steps.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Caps the bytes charged through [`Budget::charge_memory`]. The cap
    /// is approximate by construction: only explicitly charged
    /// allocations count.
    #[must_use]
    pub fn with_memory_cap(mut self, bytes: u64) -> Self {
        self.max_memory_bytes = bytes;
        self
    }

    /// Attaches a shared cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// A handle to this budget's cancellation flag.
    #[must_use]
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The heartbeat counter, bumped on every poll. A watchdog keeps a
    /// clone and samples it: no movement across its ticks means the
    /// computation is stuck in a non-cooperative region.
    #[must_use]
    pub fn heartbeat(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.heartbeat)
    }

    /// The configured deadline, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Time remaining until the deadline (`None` when no deadline is
    /// set; `Some(ZERO)` when it already passed).
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Steps polled so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// The latched abort reason, if the budget has tripped.
    #[must_use]
    pub fn tripped(&self) -> Option<AbortReason> {
        AbortReason::from_code(self.tripped.load(Ordering::Acquire))
    }

    /// Latches `reason` (first writer wins) and returns the effective
    /// reason.
    fn trip(&self, reason: AbortReason) -> AbortReason {
        match self.tripped.compare_exchange(
            0,
            reason.to_code(),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => reason,
            Err(prev) => AbortReason::from_code(prev).unwrap_or(reason),
        }
    }

    /// Hot-path poll: call once per smallest unit of work (a DFS node,
    /// an event scan). One relaxed `fetch_add` plus two relaxed loads;
    /// the clock is consulted only every [`POLL_STRIDE`] polls.
    ///
    /// # Errors
    ///
    /// Returns the (latched) [`AbortReason`] once any limit is hit.
    pub fn poll(&self) -> Result<(), AbortReason> {
        let n = self.steps.fetch_add(1, Ordering::Relaxed) + 1;
        self.heartbeat.store(n, Ordering::Relaxed);
        if let Some(r) = self.tripped() {
            return Err(r);
        }
        if n >= self.max_steps {
            return Err(self.trip(AbortReason::StepLimit));
        }
        if self.cancel.is_cancelled() {
            return Err(self.trip(AbortReason::Cancelled));
        }
        if n.is_multiple_of(POLL_STRIDE) {
            self.check_deadline()?;
        }
        Ok(())
    }

    /// Boundary poll: like [`Budget::poll`] but always consults the
    /// clock. Call between chunks of work (a trial, a subtree, a
    /// journal batch) where prompt deadline detection matters more than
    /// the cost of `Instant::now()`.
    ///
    /// # Errors
    ///
    /// Returns the (latched) [`AbortReason`] once any limit is hit.
    pub fn check(&self) -> Result<(), AbortReason> {
        let n = self.steps.fetch_add(1, Ordering::Relaxed) + 1;
        self.heartbeat.store(n, Ordering::Relaxed);
        if let Some(r) = self.tripped() {
            return Err(r);
        }
        if n >= self.max_steps {
            return Err(self.trip(AbortReason::StepLimit));
        }
        if self.cancel.is_cancelled() {
            return Err(self.trip(AbortReason::Cancelled));
        }
        self.check_deadline()
    }

    /// Charges `bytes` against the approximate memory cap.
    ///
    /// # Errors
    ///
    /// Returns [`AbortReason::MemoryLimit`] (latched) once the running
    /// total exceeds the cap.
    pub fn charge_memory(&self, bytes: u64) -> Result<(), AbortReason> {
        if let Some(r) = self.tripped() {
            return Err(r);
        }
        let total = self.memory_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if total > self.max_memory_bytes {
            return Err(self.trip(AbortReason::MemoryLimit));
        }
        Ok(())
    }

    /// Bytes charged so far.
    #[must_use]
    pub fn memory_charged(&self) -> u64 {
        self.memory_bytes.load(Ordering::Relaxed)
    }

    fn check_deadline(&self) -> Result<(), AbortReason> {
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(self.trip(AbortReason::Deadline));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_always_polls_ok() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            b.poll().unwrap();
        }
        b.check().unwrap();
        assert_eq!(b.steps(), 10_001);
        assert!(b.tripped().is_none());
        assert!(b.remaining().is_none());
    }

    #[test]
    fn step_cap_trips_and_latches() {
        let b = Budget::unlimited().with_max_steps(5);
        for _ in 0..4 {
            b.poll().unwrap();
        }
        assert_eq!(b.poll(), Err(AbortReason::StepLimit));
        // Latched: every subsequent poll fails with the same reason.
        assert_eq!(b.poll(), Err(AbortReason::StepLimit));
        assert_eq!(b.tripped(), Some(AbortReason::StepLimit));
    }

    #[test]
    fn cancellation_is_shared_and_prompt() {
        let token = CancelToken::new();
        let b = Budget::unlimited().with_cancel(token.clone());
        b.poll().unwrap();
        token.cancel();
        // The very next poll observes it — no stride delay.
        assert_eq!(b.poll(), Err(AbortReason::Cancelled));
        assert!(b.cancel_token().is_cancelled());
    }

    #[test]
    fn expired_deadline_is_caught_at_boundary_and_within_a_stride() {
        let b = Budget::unlimited().with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(b.check(), Err(AbortReason::Deadline));

        let b = Budget::unlimited().with_deadline(Instant::now() - Duration::from_millis(1));
        let mut tripped = None;
        for i in 0..=POLL_STRIDE {
            if let Err(r) = b.poll() {
                tripped = Some((i, r));
                break;
            }
        }
        let (polls, reason) = tripped.expect("deadline must trip within one stride");
        assert_eq!(reason, AbortReason::Deadline);
        assert!(polls < POLL_STRIDE, "caught within a stride, was {polls}");
        assert_eq!(b.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn memory_cap_trips_on_cumulative_charge() {
        let b = Budget::unlimited().with_memory_cap(100);
        b.charge_memory(60).unwrap();
        assert_eq!(b.charge_memory(60), Err(AbortReason::MemoryLimit));
        assert_eq!(b.memory_charged(), 120);
        // Tripping poisons polls too.
        assert_eq!(b.poll(), Err(AbortReason::MemoryLimit));
    }

    #[test]
    fn heartbeat_tracks_polls_across_threads() {
        let b = Budget::unlimited();
        let hb = b.heartbeat();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1_000 {
                        b.poll().unwrap();
                    }
                });
            }
        });
        assert_eq!(b.steps(), 4_000);
        assert!(hb.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn first_trip_reason_wins() {
        let b = Budget::unlimited().with_max_steps(1);
        assert_eq!(b.poll(), Err(AbortReason::StepLimit));
        b.cancel_token().cancel();
        // Already latched on StepLimit; cancellation doesn't rewrite it.
        assert_eq!(b.poll(), Err(AbortReason::StepLimit));
    }

    #[test]
    fn abort_reason_names_are_stable() {
        assert_eq!(AbortReason::Deadline.name(), "deadline");
        assert_eq!(AbortReason::Cancelled.to_string(), "cancelled");
        assert_eq!(AbortReason::StepLimit.name(), "step-limit");
        assert_eq!(AbortReason::MemoryLimit.name(), "memory-limit");
    }
}
