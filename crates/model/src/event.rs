//! Events recorded in process histories.
//!
//! Section 2.1 of the paper lists the events that may appear in a process
//! `p`'s history: communication events `send_p(q, msg)` / `recv_p(q, msg)`,
//! internal events `do_p(α)` / `init_p(α)`, the special `crash_p` event, and
//! failure-detector events `suspect_p(x)`. The owning process `p` is implicit
//! in *which* history an event appears in, so [`Event`] records only the
//! remaining data.

use crate::{ActionId, ProcSet, ProcessId, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A failure-detector report, i.e. the payload `x` of a `suspect_p(x)` event.
///
/// * [`SuspectReport::Standard`] is the paper's *standard* report "the
///   processes in `S` are faulty" (§2.2). The paper's *g-standard* detectors,
///   whose raw reports map to such sets via a function `g`, are represented
///   post-`g`: whatever oracle produced the report has already applied `g`.
/// * [`SuspectReport::Generalized`] is the *generalized* report of §4, "at
///   least `min_faulty` processes in `set` are faulty" (without saying
///   which), written `suspect_p(S, k)` in the paper.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SuspectReport {
    /// "The processes in `S` are faulty."
    Standard(ProcSet),
    /// "At least `min_faulty` of the processes in `set` are faulty."
    Generalized {
        /// The component `S` within which failures are suspected.
        set: ProcSet,
        /// The claimed lower bound `k ≤ |S|` on failures within `set`.
        min_faulty: usize,
    },
}

impl SuspectReport {
    /// For a standard report, the suspected set `S`; for a generalized
    /// report, `None` (a generalized report does not identify individuals).
    #[must_use]
    pub fn standard_set(self) -> Option<ProcSet> {
        match self {
            SuspectReport::Standard(s) => Some(s),
            SuspectReport::Generalized { .. } => None,
        }
    }

    /// For a generalized report, the pair `(S, k)`.
    #[must_use]
    pub fn generalized(self) -> Option<(ProcSet, usize)> {
        match self {
            SuspectReport::Standard(_) => None,
            SuspectReport::Generalized { set, min_faulty } => Some((set, min_faulty)),
        }
    }
}

impl fmt::Debug for SuspectReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuspectReport::Standard(s) => write!(f, "suspect({s})"),
            SuspectReport::Generalized { set, min_faulty } => {
                write!(f, "suspect({set}, ≥{min_faulty})")
            }
        }
    }
}

impl fmt::Display for SuspectReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// One event in a process history.
///
/// The type parameter `M` is the protocol's message payload. The model crate
/// places no constraint on it beyond what each operation needs (`Eq` for
/// history comparison, `Clone` for run construction, and so on).
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Event<M> {
    /// `send_p(q, msg)`: the owning process sends `msg` to `to`.
    Send {
        /// The destination process `q`.
        to: ProcessId,
        /// The message payload.
        msg: M,
    },
    /// `recv_p(q, msg)`: the owning process receives `msg` from `from`.
    Recv {
        /// The sending process `q`.
        from: ProcessId,
        /// The message payload.
        msg: M,
    },
    /// `init_p(α)`: the owning process initiates coordination action `α`.
    /// Only `α.initiator()` may perform this, at most once per run.
    Init {
        /// The action being initiated.
        action: ActionId,
    },
    /// `do_p(α)`: the owning process executes coordination action `α`.
    Do {
        /// The action being executed.
        action: ActionId,
    },
    /// `crash_p`: the owning process crashes; by R4 this is the final event
    /// of its history.
    Crash,
    /// `suspect_p(x)`: the owning process receives report `x` from its
    /// failure detector.
    Suspect(SuspectReport),
}

impl<M> Event<M> {
    /// Returns `true` for `crash_p`.
    #[must_use]
    pub fn is_crash(&self) -> bool {
        matches!(self, Event::Crash)
    }

    /// Returns `true` for failure-detector events.
    #[must_use]
    pub fn is_suspect(&self) -> bool {
        matches!(self, Event::Suspect(_))
    }

    /// The action of an `Init` or `Do` event, if this is one.
    #[must_use]
    pub fn action(&self) -> Option<ActionId> {
        match self {
            Event::Init { action } | Event::Do { action } => Some(*action),
            _ => None,
        }
    }

    /// Maps the message payload type, preserving everything else.
    ///
    /// Used by the failure-detector *conversions* and the `f(r)` simulation
    /// construction, which rewrite runs into runs over a different (or the
    /// same) payload type.
    pub fn map_msg<N>(self, mut f: impl FnMut(M) -> N) -> Event<N> {
        match self {
            Event::Send { to, msg } => Event::Send { to, msg: f(msg) },
            Event::Recv { from, msg } => Event::Recv { from, msg: f(msg) },
            Event::Init { action } => Event::Init { action },
            Event::Do { action } => Event::Do { action },
            Event::Crash => Event::Crash,
            Event::Suspect(x) => Event::Suspect(x),
        }
    }
}

impl<M: fmt::Debug> fmt::Debug for Event<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Send { to, msg } => write!(f, "send({to}, {msg:?})"),
            Event::Recv { from, msg } => write!(f, "recv({from}, {msg:?})"),
            Event::Init { action } => write!(f, "init({action})"),
            Event::Do { action } => write!(f, "do({action})"),
            Event::Crash => write!(f, "crash"),
            Event::Suspect(x) => write!(f, "{x:?}"),
        }
    }
}

/// An event together with the tick at which it was appended to its history.
///
/// Timestamps situate an event within the run `r : Time → Cut`; they are
/// *not* part of the local history for indistinguishability purposes
/// (`(r,m) ~_p (r′,m′)` compares event sequences only — an asynchronous
/// process cannot read the global clock).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TimedEvent<M> {
    /// The tick at which the event was appended (the smallest `m` with the
    /// event present in `r_p(m)`).
    pub time: Time,
    /// The event itself.
    pub event: Event<M>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn suspect_report_accessors() {
        let s: ProcSet = [p(1)].into_iter().collect();
        let std = SuspectReport::Standard(s);
        assert_eq!(std.standard_set(), Some(s));
        assert_eq!(std.generalized(), None);

        let gen = SuspectReport::Generalized {
            set: s,
            min_faulty: 1,
        };
        assert_eq!(gen.standard_set(), None);
        assert_eq!(gen.generalized(), Some((s, 1)));
    }

    #[test]
    fn event_classifiers() {
        let e: Event<u8> = Event::Crash;
        assert!(e.is_crash());
        assert!(!e.is_suspect());
        let e: Event<u8> = Event::Suspect(SuspectReport::Standard(ProcSet::new()));
        assert!(e.is_suspect());
        let a = ActionId::new(p(0), 1);
        assert_eq!(Event::<u8>::Init { action: a }.action(), Some(a));
        assert_eq!(Event::<u8>::Do { action: a }.action(), Some(a));
        assert_eq!(Event::<u8>::Crash.action(), None);
    }

    #[test]
    fn map_msg_preserves_structure() {
        let e = Event::Send { to: p(1), msg: 7u8 };
        match e.map_msg(|m| m as u32 * 2) {
            Event::Send { to, msg } => {
                assert_eq!(to, p(1));
                assert_eq!(msg, 14u32);
            }
            other => panic!("unexpected {other:?}"),
        }
        let e: Event<u8> = Event::Crash;
        assert_eq!(e.map_msg(|m| m as u32), Event::Crash);
    }

    #[test]
    fn debug_formats() {
        let e = Event::Send { to: p(2), msg: "x" };
        assert_eq!(format!("{e:?}"), "send(p2, \"x\")");
        let e: Event<&str> = Event::Suspect(SuspectReport::Generalized {
            set: ProcSet::singleton(p(0)),
            min_faulty: 1,
        });
        assert_eq!(format!("{e:?}"), "suspect({p0}, ≥1)");
    }

    #[test]
    fn serde_roundtrip() {
        let e = Event::Recv {
            from: p(3),
            msg: String::from("hello"),
        };
        let json = serde_json::to_string(&e).unwrap();
        assert_eq!(e, serde_json::from_str::<Event<String>>(&json).unwrap());
    }
}
