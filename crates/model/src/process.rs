//! Process identifiers and sets of processes.
//!
//! The paper fixes a finite set `Proc = {p_1, …, p_n}`. We identify processes
//! by a zero-based index and represent subsets of `Proc` as a 128-bit bitset,
//! which bounds supported system sizes at 128 processes — far above anything
//! the experiments exercise.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one process in the fixed finite set `Proc`.
///
/// Process ids are zero-based indices; the paper's `p_1, …, p_n` correspond
/// to `ProcessId::new(0), …, ProcessId::new(n - 1)`.
///
/// # Example
///
/// ```
/// use ktudc_model::ProcessId;
/// let p = ProcessId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "p3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(u32);

impl ProcessId {
    /// Maximum number of processes supported by [`ProcSet`].
    pub const MAX_PROCESSES: usize = 128;

    /// Creates the process id with the given zero-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= ProcessId::MAX_PROCESSES`.
    #[must_use]
    pub fn new(index: usize) -> Self {
        assert!(
            index < Self::MAX_PROCESSES,
            "process index {index} exceeds the supported maximum of {}",
            Self::MAX_PROCESSES
        );
        ProcessId(index as u32)
    }

    /// Returns the zero-based index of this process.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over all process ids of a system with `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n > ProcessId::MAX_PROCESSES`.
    pub fn all(n: usize) -> impl DoubleEndedIterator<Item = ProcessId> + Clone {
        assert!(n <= Self::MAX_PROCESSES);
        (0..n).map(ProcessId::new)
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A subset of `Proc`, represented as a 128-bit bitset.
///
/// `ProcSet` is used for failure-detector reports ("the processes in `S` are
/// faulty"), for the faulty set `F(r)` of a run, and throughout the condition
/// checkers. It is a cheap [`Copy`] value.
///
/// # Example
///
/// ```
/// use ktudc_model::{ProcSet, ProcessId};
///
/// let mut s = ProcSet::new();
/// s.insert(ProcessId::new(0));
/// s.insert(ProcessId::new(2));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(ProcessId::new(2)));
/// assert!(!s.contains(ProcessId::new(1)));
///
/// let t = ProcSet::full(3); // {p0, p1, p2}
/// assert!(s.is_subset_of(t));
/// assert_eq!(t.difference(s), ProcSet::from_iter([ProcessId::new(1)]));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ProcSet(u128);

impl ProcSet {
    /// Creates the empty set.
    #[must_use]
    pub fn new() -> Self {
        ProcSet(0)
    }

    /// Creates the set `{p_0, …, p_{n-1}}` of all processes in an
    /// `n`-process system.
    ///
    /// # Panics
    ///
    /// Panics if `n > ProcessId::MAX_PROCESSES`.
    #[must_use]
    pub fn full(n: usize) -> Self {
        assert!(n <= ProcessId::MAX_PROCESSES);
        if n == ProcessId::MAX_PROCESSES {
            ProcSet(u128::MAX)
        } else {
            ProcSet((1u128 << n) - 1)
        }
    }

    /// Creates a singleton set.
    #[must_use]
    pub fn singleton(p: ProcessId) -> Self {
        ProcSet(1u128 << p.index())
    }

    /// Returns `true` if the set has no elements.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Returns the number of processes in the set.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Returns `true` if `p` is a member.
    #[must_use]
    pub fn contains(self, p: ProcessId) -> bool {
        self.0 & (1u128 << p.index()) != 0
    }

    /// Inserts `p`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, p: ProcessId) -> bool {
        let bit = 1u128 << p.index();
        let fresh = self.0 & bit == 0;
        self.0 |= bit;
        fresh
    }

    /// Removes `p`; returns `true` if it was present.
    pub fn remove(&mut self, p: ProcessId) -> bool {
        let bit = 1u128 << p.index();
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Returns the union `self ∪ other`.
    #[must_use]
    pub fn union(self, other: ProcSet) -> ProcSet {
        ProcSet(self.0 | other.0)
    }

    /// Returns the intersection `self ∩ other`.
    #[must_use]
    pub fn intersection(self, other: ProcSet) -> ProcSet {
        ProcSet(self.0 & other.0)
    }

    /// Returns the difference `self ∖ other`.
    #[must_use]
    pub fn difference(self, other: ProcSet) -> ProcSet {
        ProcSet(self.0 & !other.0)
    }

    /// Returns the complement relative to an `n`-process universe, i.e.
    /// `Proc ∖ self`.
    #[must_use]
    pub fn complement(self, n: usize) -> ProcSet {
        ProcSet::full(n).difference(self)
    }

    /// Returns `true` if every member of `self` is in `other`.
    #[must_use]
    pub fn is_subset_of(self, other: ProcSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Returns `true` if the two sets share no members.
    #[must_use]
    pub fn is_disjoint_from(self, other: ProcSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Iterates over the members in increasing index order.
    pub fn iter(self) -> Iter {
        Iter(self.0)
    }

    /// Returns an arbitrary member (the one with the smallest index), if any.
    #[must_use]
    pub fn first(self) -> Option<ProcessId> {
        if self.0 == 0 {
            None
        } else {
            Some(ProcessId::new(self.0.trailing_zeros() as usize))
        }
    }

    /// Enumerates every subset of `self` (including the empty set and `self`
    /// itself). Useful for exhaustive checks on small systems.
    ///
    /// The number of subsets is `2^len`, so call this only on small sets.
    pub fn subsets(self) -> impl Iterator<Item = ProcSet> {
        let members: Vec<ProcessId> = self.iter().collect();
        let count = 1usize << members.len();
        (0..count).map(move |mask| {
            let mut s = ProcSet::new();
            for (i, &p) in members.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    s.insert(p);
                }
            }
            s
        })
    }
}

/// Iterator over the members of a [`ProcSet`], in increasing index order.
#[derive(Clone, Debug)]
pub struct Iter(u128);

impl Iterator for Iter {
    type Item = ProcessId;

    fn next(&mut self) -> Option<ProcessId> {
        if self.0 == 0 {
            None
        } else {
            let idx = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(ProcessId::new(idx))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

impl IntoIterator for ProcSet {
    type Item = ProcessId;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        self.iter()
    }
}

impl FromIterator<ProcessId> for ProcSet {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let mut s = ProcSet::new();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl Extend<ProcessId> for ProcSet {
    fn extend<I: IntoIterator<Item = ProcessId>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl fmt::Debug for ProcSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for ProcSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn process_id_roundtrip() {
        for i in [0, 1, 63, 127] {
            assert_eq!(ProcessId::new(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn process_id_out_of_range_panics() {
        let _ = ProcessId::new(128);
    }

    #[test]
    fn all_enumerates_in_order() {
        let v: Vec<usize> = ProcessId::all(4).map(ProcessId::index).collect();
        assert_eq!(v, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_and_full() {
        assert!(ProcSet::new().is_empty());
        assert_eq!(ProcSet::new().len(), 0);
        let f = ProcSet::full(5);
        assert_eq!(f.len(), 5);
        for i in 0..5 {
            assert!(f.contains(p(i)));
        }
        assert!(!f.contains(p(5)));
        assert_eq!(ProcSet::full(128).len(), 128);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = ProcSet::new();
        assert!(s.insert(p(2)));
        assert!(!s.insert(p(2)));
        assert!(s.contains(p(2)));
        assert!(s.remove(p(2)));
        assert!(!s.remove(p(2)));
        assert!(s.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a: ProcSet = [p(0), p(1), p(2)].into_iter().collect();
        let b: ProcSet = [p(1), p(3)].into_iter().collect();
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersection(b), ProcSet::singleton(p(1)));
        assert_eq!(a.difference(b), [p(0), p(2)].into_iter().collect());
        assert!(ProcSet::singleton(p(1)).is_subset_of(a));
        assert!(!a.is_subset_of(b));
        assert!(a.is_disjoint_from(ProcSet::singleton(p(5))));
        assert_eq!(a.complement(4), [p(3)].into_iter().collect());
    }

    #[test]
    fn iteration_order_and_first() {
        let s: ProcSet = [p(5), p(0), p(9)].into_iter().collect();
        let v: Vec<usize> = s.iter().map(ProcessId::index).collect();
        assert_eq!(v, vec![0, 5, 9]);
        assert_eq!(s.first(), Some(p(0)));
        assert_eq!(ProcSet::new().first(), None);
        assert_eq!(s.iter().len(), 3);
    }

    #[test]
    fn subsets_enumeration() {
        let s: ProcSet = [p(0), p(2)].into_iter().collect();
        let subs: Vec<ProcSet> = s.subsets().collect();
        assert_eq!(subs.len(), 4);
        assert!(subs.contains(&ProcSet::new()));
        assert!(subs.contains(&s));
        assert!(subs.contains(&ProcSet::singleton(p(0))));
        assert!(subs.contains(&ProcSet::singleton(p(2))));
    }

    #[test]
    fn display_formatting() {
        let s: ProcSet = [p(1), p(3)].into_iter().collect();
        assert_eq!(s.to_string(), "{p1, p3}");
        assert_eq!(ProcSet::new().to_string(), "{}");
        assert_eq!(format!("{s:?}"), "{p1, p3}");
    }

    #[test]
    fn extend_adds_members() {
        let mut s = ProcSet::singleton(p(0));
        s.extend([p(1), p(2)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn serde_roundtrip() {
        let s: ProcSet = [p(0), p(7)].into_iter().collect();
        let json = serde_json::to_string(&s).unwrap();
        let back: ProcSet = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        let q = ProcessId::new(7);
        let json = serde_json::to_string(&q).unwrap();
        let back: ProcessId = serde_json::from_str(&json).unwrap();
        assert_eq!(q, back);
    }
}
