//! Formal model of asynchronous message-passing runs, following Section 2.1
//! of Halpern & Ricciardi, *A Knowledge-Theoretic Analysis of Uniform
//! Distributed Coordination and Failure Detectors* (PODC 1999).
//!
//! The paper models an execution of a distributed system as a **run**: a
//! function from time (natural numbers) to **cuts**, where a cut is a tuple of
//! finite per-process **histories** and a history is a sequence of **events**
//! (sends, receives, action initiations/executions, crashes, and
//! failure-detector reports). Runs must satisfy conditions **R1–R5**
//! (initially-empty histories, one event per process per tick, receives are
//! preceded by matching sends, crashes are final, and fair channels).
//!
//! This crate provides that model as plain data:
//!
//! * [`ProcessId`] and [`ProcSet`] — the fixed finite set `Proc` of processes;
//! * [`ActionId`] — coordination actions `α ∈ A_p`, tagged by their initiator;
//! * [`Event`] — the six event kinds of the paper, generic over the protocol
//!   message payload `M`;
//! * [`Run`] and [`RunBuilder`] — time-stamped per-process event logs with the
//!   structural conditions R1–R4 enforced at construction and all five
//!   conditions checkable after the fact ([`Run::check_conditions`]);
//! * [`HistoryView`] — query helpers over a local history prefix `r_p(m)`;
//! * [`System`] — a set of runs with an index for the indistinguishability
//!   relation `(r,m) ~_p (r′,m′)` that underlies the knowledge operator `K_p`.
//!
//! Everything downstream — the simulator, the failure-detector checkers, the
//! epistemic model checker, and the UDC protocols — speaks in terms of these
//! types. Payloads are a type parameter `M` so that this crate stays agnostic
//! of any particular protocol's wire format.
//!
//! # Finite horizons
//!
//! Paper runs are infinite; ours are finite prefixes up to a **horizon**.
//! Conditions whose statement quantifies over all of time (R5 fairness, the
//! "eventually"/"permanently" clauses of failure-detector properties) are
//! therefore *approximated* at the horizon; each checker documents its
//! finite-horizon reading and the rest of the workspace picks horizons at
//! which the protocols under test quiesce.
//!
//! # Example
//!
//! ```
//! use ktudc_model::{ActionId, Event, ProcessId, RunBuilder};
//!
//! let p0 = ProcessId::new(0);
//! let p1 = ProcessId::new(1);
//! let alpha = ActionId::new(p0, 0);
//!
//! let mut b = RunBuilder::<&'static str>::new(2);
//! b.append(p0, 1, Event::Init { action: alpha })?;
//! b.append(p0, 2, Event::Send { to: p1, msg: "do-alpha" })?;
//! b.append(p1, 3, Event::Recv { from: p0, msg: "do-alpha" })?;
//! b.append(p0, 3, Event::Do { action: alpha })?;
//! b.append(p1, 4, Event::Do { action: alpha })?;
//! let run = b.finish(5);
//!
//! assert!(run.faulty().is_empty());
//! assert_eq!(run.history_at(p1, 3).len(), 1);
//! run.check_conditions(1)?;
//! # Ok::<(), ktudc_model::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
pub mod budget;
mod error;
mod event;
pub mod hashing;
mod history;
mod process;
mod run;
mod system;
pub mod trace;

pub use action::ActionId;
pub use budget::{AbortReason, Budget, CancelToken};
pub use error::ModelError;
pub use event::{Event, SuspectReport, TimedEvent};
pub use history::HistoryView;
pub use process::{ProcSet, ProcessId};
pub use run::{Point, Run, RunBuilder};
pub use system::{IndistinguishableBlock, System};
pub use trace::{summary, trace, trace_window};

/// Discrete time, ranging over the natural numbers as in the paper.
pub type Time = u64;
