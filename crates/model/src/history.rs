//! Query helpers over a local history prefix `r_p(m)`.
//!
//! A history is just a slice of [`Event`]s; [`HistoryView`] wraps such a
//! slice with the derived quantities the paper keeps referring to: whether
//! `crash_p` has occurred, whether `init_p(α)` / `do_p(α)` appear, message
//! send/receive counts (for the fairness condition R5), and the
//! `Suspects_p(r,m)` function of §2.2 (the most recent standard
//! failure-detector report, or `∅` if there has been none).

use crate::{ActionId, Event, ProcSet, ProcessId, SuspectReport};

/// A read-only view over a local history prefix `r_p(m)`.
///
/// # Example
///
/// ```
/// use ktudc_model::{Event, HistoryView, ProcSet, ProcessId, SuspectReport};
///
/// let q = ProcessId::new(1);
/// let history = [
///     Event::Send { to: q, msg: "m" },
///     Event::Suspect(SuspectReport::Standard(ProcSet::singleton(q))),
///     Event::Send { to: q, msg: "m" },
/// ];
/// let view = HistoryView::new(&history);
/// assert_eq!(view.send_count(q, &"m"), 2);
/// assert!(view.suspects().contains(q));
/// assert!(!view.crashed());
/// ```
#[derive(Debug)]
pub struct HistoryView<'a, M> {
    events: &'a [Event<M>],
}

impl<M> Clone for HistoryView<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<M> Copy for HistoryView<'_, M> {}

impl<'a, M> HistoryView<'a, M> {
    /// Wraps a history slice.
    #[must_use]
    pub fn new(events: &'a [Event<M>]) -> Self {
        HistoryView { events }
    }

    /// The underlying event slice.
    #[must_use]
    pub fn events(self) -> &'a [Event<M>] {
        self.events
    }

    /// Number of events in the prefix.
    #[must_use]
    pub fn len(self) -> usize {
        self.events.len()
    }

    /// Returns `true` for the empty history (R1 start state).
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.events.is_empty()
    }

    /// Returns `true` if `crash_p` appears (i.e. the process is faulty and
    /// has already crashed within this prefix).
    #[must_use]
    pub fn crashed(self) -> bool {
        // By R4 a crash can only be the final event, so checking the last
        // event suffices; we still scan defensively for unvalidated input.
        self.events.iter().any(Event::is_crash)
    }

    /// Returns `true` if `init(α)` appears in the prefix.
    #[must_use]
    pub fn initiated(self, action: ActionId) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, Event::Init { action: a } if *a == action))
    }

    /// Returns `true` if `do(α)` appears in the prefix.
    #[must_use]
    pub fn did(self, action: ActionId) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, Event::Do { action: a } if *a == action))
    }

    /// All actions initiated in the prefix, in order of initiation.
    pub fn initiated_actions(self) -> impl Iterator<Item = ActionId> + 'a {
        self.events.iter().filter_map(|e| match e {
            Event::Init { action } => Some(*action),
            _ => None,
        })
    }

    /// All actions executed in the prefix, in order of execution.
    pub fn done_actions(self) -> impl Iterator<Item = ActionId> + 'a {
        self.events.iter().filter_map(|e| match e {
            Event::Do { action } => Some(*action),
            _ => None,
        })
    }

    /// `Suspects_p(r,m)` of §2.2: the set carried by the most recent
    /// *standard* failure-detector report in the prefix, or the empty set if
    /// there has been none. Generalized reports do not affect this value.
    #[must_use]
    pub fn suspects(self) -> ProcSet {
        self.events
            .iter()
            .rev()
            .find_map(|e| match e {
                Event::Suspect(SuspectReport::Standard(s)) => Some(*s),
                _ => None,
            })
            .unwrap_or_default()
    }

    /// Every failure-detector report in the prefix, in order of arrival.
    pub fn suspect_reports(self) -> impl Iterator<Item = SuspectReport> + 'a {
        self.events.iter().filter_map(|e| match e {
            Event::Suspect(x) => Some(*x),
            _ => None,
        })
    }

    /// Every *generalized* report `(S, k)` in the prefix, in order.
    pub fn generalized_reports(self) -> impl Iterator<Item = (ProcSet, usize)> + 'a {
        self.suspect_reports()
            .filter_map(SuspectReport::generalized)
    }
}

impl<'a, M: Eq> HistoryView<'a, M> {
    /// Number of `send(to, msg)` events in the prefix. Used by the fairness
    /// condition R5, which counts occurrences of the *same* send event.
    #[must_use]
    pub fn send_count(self, to: ProcessId, msg: &M) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Send { to: t, msg: m } if *t == to && m == msg))
            .count()
    }

    /// Number of `recv(from, msg)` events in the prefix.
    #[must_use]
    pub fn recv_count(self, from: ProcessId, msg: &M) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Recv { from: f, msg: m } if *f == from && m == msg))
            .count()
    }

    /// Returns `true` if `send(to, msg)` appears at least once.
    #[must_use]
    pub fn sent(self, to: ProcessId, msg: &M) -> bool {
        self.send_count(to, msg) > 0
    }

    /// Returns `true` if `recv(from, msg)` appears at least once.
    #[must_use]
    pub fn received(self, from: ProcessId, msg: &M) -> bool {
        self.recv_count(from, msg) > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn sample() -> Vec<Event<&'static str>> {
        let q = p(1);
        vec![
            Event::Init {
                action: ActionId::new(p(0), 0),
            },
            Event::Send { to: q, msg: "a" },
            Event::Send { to: q, msg: "a" },
            Event::Recv {
                from: q,
                msg: "ack",
            },
            Event::Suspect(SuspectReport::Standard(ProcSet::singleton(p(2)))),
            Event::Do {
                action: ActionId::new(p(0), 0),
            },
            Event::Suspect(SuspectReport::Generalized {
                set: ProcSet::full(3),
                min_faulty: 1,
            }),
        ]
    }

    #[test]
    fn counting_sends_and_recvs() {
        let h = sample();
        let v = HistoryView::new(&h);
        assert_eq!(v.send_count(p(1), &"a"), 2);
        assert_eq!(v.send_count(p(1), &"b"), 0);
        assert_eq!(v.send_count(p(2), &"a"), 0);
        assert_eq!(v.recv_count(p(1), &"ack"), 1);
        assert!(v.sent(p(1), &"a"));
        assert!(v.received(p(1), &"ack"));
        assert!(!v.received(p(1), &"a"));
    }

    #[test]
    fn action_queries() {
        let h = sample();
        let v = HistoryView::new(&h);
        let alpha = ActionId::new(p(0), 0);
        let beta = ActionId::new(p(0), 1);
        assert!(v.initiated(alpha));
        assert!(v.did(alpha));
        assert!(!v.initiated(beta));
        assert!(!v.did(beta));
        assert_eq!(v.initiated_actions().collect::<Vec<_>>(), vec![alpha]);
        assert_eq!(v.done_actions().collect::<Vec<_>>(), vec![alpha]);
    }

    #[test]
    fn suspects_is_latest_standard_report() {
        let h = sample();
        let v = HistoryView::new(&h);
        // Trailing generalized report does not override the standard one.
        assert_eq!(v.suspects(), ProcSet::singleton(p(2)));
        assert_eq!(v.suspect_reports().count(), 2);
        assert_eq!(
            v.generalized_reports().collect::<Vec<_>>(),
            vec![(ProcSet::full(3), 1)]
        );
    }

    #[test]
    fn suspects_defaults_to_empty() {
        let h: Vec<Event<u8>> = vec![];
        let v = HistoryView::new(&h);
        assert!(v.suspects().is_empty());
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert!(!v.crashed());
    }

    #[test]
    fn crash_detection() {
        let h: Vec<Event<u8>> = vec![Event::Crash];
        assert!(HistoryView::new(&h).crashed());
    }

    #[test]
    fn suspects_overridden_by_newer_standard_report() {
        let h: Vec<Event<u8>> = vec![
            Event::Suspect(SuspectReport::Standard(ProcSet::singleton(p(1)))),
            Event::Suspect(SuspectReport::Standard(ProcSet::singleton(p(2)))),
        ];
        assert_eq!(HistoryView::new(&h).suspects(), ProcSet::singleton(p(2)));
    }
}
