//! Runs, run construction, and the conditions R1–R5.
//!
//! A run `r` is a function from time to cuts; equivalently (and this is how
//! we store it) a time-stamped event log per process, from which the cut at
//! any tick is a derived view. [`RunBuilder`] enforces the *structural*
//! conditions at append time:
//!
//! * **R1** — histories start empty (trivially true of an empty log);
//! * **R2** — per process, at most one event per tick, appended in strictly
//!   increasing tick order;
//! * **R3** — a `recv_q(p, msg)` is only accepted if the number of matching
//!   `send_p(q, msg)` events already appended (at a tick ≤ the receive's) is
//!   strictly greater than the number of matching receives already accepted,
//!   i.e. channels neither corrupt nor duplicate;
//! * **R4** — nothing may follow `crash_p`;
//! * plus the §2.4 initiation constraints: `init_p(α)` only by
//!   `α.initiator()`, at most once per run.
//!
//! **R5** (fairness) is a liveness property of infinite runs; on a finite
//! prefix it is checked by [`Run::check_conditions`] under the documented
//! finite-horizon reading (a message sent at least `threshold` times to a
//! never-crashing process must have been received at least once).

use crate::{ActionId, Event, HistoryView, ModelError, ProcSet, ProcessId, SuspectReport, Time};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

/// A point `(r, m)`: a run index paired with a time, relative to some
/// [`System`](crate::System).
///
/// The paper works with pairs of a run and a time; since our systems are
/// vectors of runs, a point names the run by index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Point {
    /// Index of the run within its system.
    pub run: usize,
    /// The time `m`.
    pub time: Time,
}

impl Point {
    /// Creates the point `(run, time)`.
    #[must_use]
    pub fn new(run: usize, time: Time) -> Self {
        Point { run, time }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(r{}, {})", self.run, self.time)
    }
}

/// Per-process event log: times and events in two parallel vectors so local
/// history prefixes can be returned as plain `&[Event<M>]` slices.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
struct ProcessLog<M> {
    times: Vec<Time>,
    events: Vec<Event<M>>,
}

impl<M> Default for ProcessLog<M> {
    fn default() -> Self {
        ProcessLog {
            times: Vec::new(),
            events: Vec::new(),
        }
    }
}

impl<M> ProcessLog<M> {
    /// Number of events with time ≤ `m` (valid because times are strictly
    /// increasing).
    fn prefix_len(&self, m: Time) -> usize {
        self.times.partition_point(|&t| t <= m)
    }
}

/// A finite run prefix: per-process time-stamped histories up to a horizon.
///
/// The run covers ticks `0 ..= horizon()`; by R1 every history is empty at
/// tick 0, and events carry ticks in `1 ..= horizon()`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Run<M> {
    n: usize,
    horizon: Time,
    logs: Vec<ProcessLog<M>>,
}

impl<M> Run<M> {
    /// The number of processes `n = |Proc|`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The last tick covered by this finite prefix.
    #[must_use]
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// The full local history of `p` (i.e. `r_p(horizon)`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range for this run's system size.
    #[must_use]
    pub fn history(&self, p: ProcessId) -> &[Event<M>] {
        &self.logs[p.index()].events
    }

    /// The local history prefix `r_p(m)`: all events of `p` with tick ≤ `m`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range for this run's system size.
    #[must_use]
    pub fn history_at(&self, p: ProcessId, m: Time) -> &[Event<M>] {
        let log = &self.logs[p.index()];
        &log.events[..log.prefix_len(m)]
    }

    /// [`HistoryView`] over `r_p(m)`.
    #[must_use]
    pub fn view_at(&self, p: ProcessId, m: Time) -> HistoryView<'_, M> {
        HistoryView::new(self.history_at(p, m))
    }

    /// Iterates over `p`'s events together with their ticks.
    pub fn timed_history(&self, p: ProcessId) -> impl Iterator<Item = (Time, &Event<M>)> {
        let log = &self.logs[p.index()];
        log.times.iter().copied().zip(log.events.iter())
    }

    /// The tick at which `p` crashed, if it is faulty in this run.
    #[must_use]
    pub fn crash_time(&self, p: ProcessId) -> Option<Time> {
        let log = &self.logs[p.index()];
        match log.events.last() {
            Some(Event::Crash) => Some(*log.times.last().expect("nonempty")),
            _ => None,
        }
    }

    /// `F(r)`: the set of faulty processes (those whose history contains
    /// `crash_p`).
    #[must_use]
    pub fn faulty(&self) -> ProcSet {
        ProcessId::all(self.n)
            .filter(|&p| self.crash_time(p).is_some())
            .collect()
    }

    /// `Proc − F(r)`: the correct processes of this run.
    #[must_use]
    pub fn correct(&self) -> ProcSet {
        self.faulty().complement(self.n)
    }

    /// The set of processes that have crashed by tick `m` inclusive.
    #[must_use]
    pub fn crashed_by(&self, m: Time) -> ProcSet {
        ProcessId::all(self.n)
            .filter(|&p| matches!(self.crash_time(p), Some(t) if t <= m))
            .collect()
    }

    /// `Suspects_p(r,m)` of §2.2.
    #[must_use]
    pub fn suspects_at(&self, p: ProcessId, m: Time) -> ProcSet {
        self.view_at(p, m).suspects()
    }

    /// The smallest tick `m` at which `p`'s history equals its history at
    /// `at`, i.e. the tick of `p`'s latest event in `r_p(at)` (0 for an empty
    /// prefix). Useful when reasoning about when knowledge was acquired.
    #[must_use]
    pub fn last_event_time(&self, p: ProcessId, at: Time) -> Time {
        let log = &self.logs[p.index()];
        let len = log.prefix_len(at);
        if len == 0 {
            0
        } else {
            log.times[len - 1]
        }
    }

    /// Total number of events in the run, across all processes.
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.logs.iter().map(|l| l.events.len()).sum()
    }

    /// Number of `Send` events in the run (a message-complexity measure).
    #[must_use]
    pub fn send_count_total(&self) -> usize {
        self.logs
            .iter()
            .map(|l| {
                l.events
                    .iter()
                    .filter(|e| matches!(e, Event::Send { .. }))
                    .count()
            })
            .sum()
    }

    /// Every action initiated anywhere in the run, with its initiation tick.
    pub fn initiations(&self) -> impl Iterator<Item = (Time, ActionId)> + '_ {
        ProcessId::all(self.n).flat_map(move |p| {
            self.timed_history(p).filter_map(|(t, e)| match e {
                Event::Init { action } => Some((t, *action)),
                _ => None,
            })
        })
    }

    /// Maps the message payload type of every event.
    pub fn map_msg<N>(self, mut f: impl FnMut(M) -> N) -> Run<N> {
        Run {
            n: self.n,
            horizon: self.horizon,
            logs: self
                .logs
                .into_iter()
                .map(|log| ProcessLog {
                    times: log.times,
                    events: log.events.into_iter().map(|e| e.map_msg(&mut f)).collect(),
                })
                .collect(),
        }
    }

    /// Returns the prefix of this run up to (and including) tick `m` as a
    /// run with horizon `min(m, horizon)`. The paper writes this as the
    /// requirement "`r′` extends `(r, m)`" in reverse: `r.prefix(m)` is the
    /// common part.
    #[must_use]
    pub fn prefix(&self, m: Time) -> Run<M>
    where
        M: Clone,
    {
        let horizon = m.min(self.horizon);
        Run {
            n: self.n,
            horizon,
            logs: self
                .logs
                .iter()
                .map(|log| {
                    let len = log.prefix_len(horizon);
                    ProcessLog {
                        times: log.times[..len].to_vec(),
                        events: log.events[..len].to_vec(),
                    }
                })
                .collect(),
        }
    }
}

impl<M: Eq> Run<M> {
    /// The indistinguishability relation `(r, m) ~_p (r′, m′)`: true iff
    /// `r_p(m) = r′_p(m′)` *as event sequences*. Ticks are global-clock data
    /// an asynchronous process cannot observe, so they do not participate.
    #[must_use]
    pub fn indistinguishable(&self, m: Time, other: &Run<M>, m2: Time, p: ProcessId) -> bool {
        self.history_at(p, m) == other.history_at(p, m2)
    }

    /// Returns `true` if `other` extends `(self, m)`: both runs agree on
    /// every cut up to tick `m` (the paper's `r′(m′) = r(m′)` for all
    /// `m′ ≤ m`).
    #[must_use]
    pub fn is_extended_by(&self, m: Time, other: &Run<M>) -> bool {
        if self.n != other.n || other.horizon < m {
            return false;
        }
        ProcessId::all(self.n).all(|p| {
            let a = &self.logs[p.index()];
            let b = &other.logs[p.index()];
            let len = a.prefix_len(m);
            b.prefix_len(m) == len
                && a.events[..len] == b.events[..len]
                && a.times[..len] == b.times[..len]
        })
    }
}

impl<M: Eq + Hash + Clone> Run<M> {
    /// Checks R1–R5 and the §2.4 initiation constraints on a completed run.
    ///
    /// R1–R4 and the initiation constraints are exact. R5 (fairness) uses
    /// the finite-horizon reading: for every sender `p`, receiver `q`, and
    /// payload `msg`, if `send_p(q, msg)` occurs at least
    /// `fairness_threshold` times and `q` never crashes in the run, then
    /// `recv_q(p, msg)` must occur at least once. Pass `0` to skip the R5
    /// check (e.g. for adversarial schedules that are deliberately unfair).
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check_conditions(&self, fairness_threshold: usize) -> Result<(), ModelError> {
        // R2 + R4 + horizon bounds + init constraints, per process.
        let mut inits: HashMap<ActionId, ProcessId> = HashMap::new();
        for p in ProcessId::all(self.n) {
            let log = &self.logs[p.index()];
            let mut last: Option<Time> = None;
            let mut crashed = false;
            for (i, (&t, e)) in log.times.iter().zip(log.events.iter()).enumerate() {
                if t == 0 || t > self.horizon {
                    return Err(ModelError::BeyondHorizon {
                        time: t,
                        horizon: self.horizon,
                    });
                }
                if let Some(last) = last {
                    if t <= last {
                        return Err(ModelError::NonMonotonicTime {
                            process: p,
                            last,
                            attempted: t,
                        });
                    }
                }
                last = Some(t);
                if crashed {
                    return Err(ModelError::EventAfterCrash {
                        process: p,
                        time: t,
                    });
                }
                match e {
                    Event::Crash => crashed = true,
                    Event::Init { action } => {
                        if action.initiator() != p {
                            return Err(ModelError::ForeignInit { process: p });
                        }
                        if inits.insert(*action, p).is_some() {
                            return Err(ModelError::DuplicateInit {
                                process: p,
                                time: t,
                            });
                        }
                    }
                    _ => {}
                }
                let _ = i;
            }
        }

        // R3: every receive is matched, count-wise, by earlier-or-equal sends.
        // Build per-(sender, receiver, msg) send tick lists, then check each
        // receive against them.
        let mut send_ticks: HashMap<(ProcessId, ProcessId, &M), Vec<Time>> = HashMap::new();
        for p in ProcessId::all(self.n) {
            for (t, e) in self.timed_history(p) {
                if let Event::Send { to, msg } = e {
                    send_ticks.entry((p, *to, msg)).or_default().push(t);
                }
            }
        }
        for q in ProcessId::all(self.n) {
            // Receives appear in tick order within a history, and send tick
            // lists are in tick order, so a counting scan suffices.
            let mut consumed: HashMap<(ProcessId, &M), usize> = HashMap::new();
            for (t, e) in self.timed_history(q) {
                if let Event::Recv { from, msg } = e {
                    let ticks = send_ticks.get(&(*from, q, msg));
                    let used = consumed.entry((*from, msg)).or_insert(0);
                    let available = ticks
                        .map(|ts| ts.partition_point(|&st| st <= t))
                        .unwrap_or(0);
                    if *used >= available {
                        return Err(ModelError::ReceiveWithoutSend {
                            receiver: q,
                            sender: *from,
                            time: t,
                        });
                    }
                    *used += 1;
                }
            }
        }

        // R5, finite-horizon reading.
        if fairness_threshold > 0 {
            for ((sender, receiver, msg), ticks) in &send_ticks {
                if ticks.len() >= fairness_threshold
                    && self.crash_time(*receiver).is_none()
                    && self
                        .view_at(*receiver, self.horizon)
                        .recv_count(*sender, msg)
                        == 0
                {
                    return Err(ModelError::UnfairChannel {
                        sender: *sender,
                        receiver: *receiver,
                        sent: ticks.len(),
                        threshold: fairness_threshold,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Incremental run constructor enforcing R1–R4 and the §2.4 initiation
/// constraints at append time.
///
/// The simulator drives a `RunBuilder`; tests may also build runs by hand.
/// Call [`RunBuilder::finish`] to freeze the run at a horizon.
#[derive(Clone, Debug)]
pub struct RunBuilder<M> {
    n: usize,
    logs: Vec<ProcessLog<M>>,
    crashed: ProcSet,
    inits: HashMap<ActionId, Time>,
    /// (sender, receiver, msg) → (send ticks, receives consumed).
    channel: HashMap<(ProcessId, ProcessId, M), (Vec<Time>, usize)>,
}

impl<M: Eq + Hash + Clone> RunBuilder<M> {
    /// Creates a builder for an `n`-process run with all histories empty
    /// (R1).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds [`ProcessId::MAX_PROCESSES`].
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "a system needs at least one process");
        assert!(n <= ProcessId::MAX_PROCESSES);
        RunBuilder {
            n,
            logs: (0..n).map(|_| ProcessLog::default()).collect(),
            crashed: ProcSet::new(),
            inits: HashMap::new(),
            channel: HashMap::new(),
        }
    }

    /// The number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The set of processes that have crashed so far.
    #[must_use]
    pub fn crashed(&self) -> ProcSet {
        self.crashed
    }

    /// The current local history of `p`.
    #[must_use]
    pub fn history(&self, p: ProcessId) -> &[Event<M>] {
        &self.logs[p.index()].events
    }

    /// Appends `event` to `p`'s history at tick `time`, enforcing R2–R4 and
    /// the initiation constraints.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] and leaves the builder unchanged if the
    /// append would violate a condition:
    ///
    /// * [`ModelError::UnknownProcess`] — `p` out of range;
    /// * [`ModelError::NonMonotonicTime`] — tick not strictly after `p`'s
    ///   previous event, or tick 0 (R2);
    /// * [`ModelError::EventAfterCrash`] — `p` already crashed (R4);
    /// * [`ModelError::ReceiveWithoutSend`] — unmatched receive (R3);
    /// * [`ModelError::ForeignInit`] / [`ModelError::DuplicateInit`] — §2.4.
    pub fn append(&mut self, p: ProcessId, time: Time, event: Event<M>) -> Result<(), ModelError> {
        if p.index() >= self.n {
            return Err(ModelError::UnknownProcess {
                process: p,
                n: self.n,
            });
        }
        let log = &self.logs[p.index()];
        let last = log.times.last().copied().unwrap_or(0);
        if time <= last || time == 0 {
            return Err(ModelError::NonMonotonicTime {
                process: p,
                last,
                attempted: time,
            });
        }
        if self.crashed.contains(p) {
            return Err(ModelError::EventAfterCrash { process: p, time });
        }
        match &event {
            Event::Recv { from, msg } => {
                if from.index() >= self.n {
                    return Err(ModelError::UnknownProcess {
                        process: *from,
                        n: self.n,
                    });
                }
                let entry = self.channel.get(&(*from, p, msg.clone()));
                let available = entry
                    .map(|(ticks, _)| ticks.partition_point(|&st| st <= time))
                    .unwrap_or(0);
                let used = entry.map(|(_, u)| *u).unwrap_or(0);
                if used >= available {
                    return Err(ModelError::ReceiveWithoutSend {
                        receiver: p,
                        sender: *from,
                        time,
                    });
                }
            }
            Event::Send { to, .. } if to.index() >= self.n => {
                return Err(ModelError::UnknownProcess {
                    process: *to,
                    n: self.n,
                });
            }
            Event::Init { action } => {
                if action.initiator() != p {
                    return Err(ModelError::ForeignInit { process: p });
                }
                if self.inits.contains_key(action) {
                    return Err(ModelError::DuplicateInit { process: p, time });
                }
            }
            _ => {}
        }
        // Commit.
        match &event {
            Event::Crash => {
                self.crashed.insert(p);
            }
            Event::Init { action } => {
                self.inits.insert(*action, time);
            }
            Event::Send { to, msg } => {
                self.channel
                    .entry((p, *to, msg.clone()))
                    .or_insert_with(|| (Vec::new(), 0))
                    .0
                    .push(time);
            }
            Event::Recv { from, msg } => {
                self.channel
                    .entry((*from, p, msg.clone()))
                    .or_insert_with(|| (Vec::new(), 0))
                    .1 += 1;
            }
            _ => {}
        }
        let log = &mut self.logs[p.index()];
        log.times.push(time);
        log.events.push(event);
        Ok(())
    }

    /// Appends `event` like [`RunBuilder::append`] but *without* the R3
    /// receive-matching check: a `Recv` is committed even when every
    /// matching send has already been consumed.
    ///
    /// This exists for **fault injection**: a simulator delivering a
    /// duplicated copy of a message must be able to record what actually
    /// happened on the wire, producing a deliberately ill-formed run that
    /// [`Run::check_conditions`] then flags with
    /// [`ModelError::ReceiveWithoutSend`] — the detection signal. Channel
    /// accounting is still updated (the extra receive is counted), and
    /// every other constraint (process range, R2 monotonicity, R4
    /// post-crash silence, §2.4 initiation) is still enforced, so the
    /// *only* way a force-appended run can be ill-formed is the R3
    /// violation deliberately introduced.
    ///
    /// # Errors
    ///
    /// Same as [`RunBuilder::append`] minus
    /// [`ModelError::ReceiveWithoutSend`].
    pub fn force_append(
        &mut self,
        p: ProcessId,
        time: Time,
        event: Event<M>,
    ) -> Result<(), ModelError> {
        if p.index() >= self.n {
            return Err(ModelError::UnknownProcess {
                process: p,
                n: self.n,
            });
        }
        let log = &self.logs[p.index()];
        let last = log.times.last().copied().unwrap_or(0);
        if time <= last || time == 0 {
            return Err(ModelError::NonMonotonicTime {
                process: p,
                last,
                attempted: time,
            });
        }
        if self.crashed.contains(p) {
            return Err(ModelError::EventAfterCrash { process: p, time });
        }
        match &event {
            Event::Recv { from, .. } if from.index() >= self.n => {
                return Err(ModelError::UnknownProcess {
                    process: *from,
                    n: self.n,
                });
            }
            Event::Send { to, .. } if to.index() >= self.n => {
                return Err(ModelError::UnknownProcess {
                    process: *to,
                    n: self.n,
                });
            }
            Event::Init { action } => {
                if action.initiator() != p {
                    return Err(ModelError::ForeignInit { process: p });
                }
                if self.inits.contains_key(action) {
                    return Err(ModelError::DuplicateInit { process: p, time });
                }
            }
            _ => {}
        }
        // Commit — identical to `append`.
        match &event {
            Event::Crash => {
                self.crashed.insert(p);
            }
            Event::Init { action } => {
                self.inits.insert(*action, time);
            }
            Event::Send { to, msg } => {
                self.channel
                    .entry((p, *to, msg.clone()))
                    .or_insert_with(|| (Vec::new(), 0))
                    .0
                    .push(time);
            }
            Event::Recv { from, msg } => {
                self.channel
                    .entry((*from, p, msg.clone()))
                    .or_insert_with(|| (Vec::new(), 0))
                    .1 += 1;
            }
            _ => {}
        }
        let log = &mut self.logs[p.index()];
        log.times.push(time);
        log.events.push(event);
        Ok(())
    }

    /// Convenience: append a `suspect` event.
    ///
    /// # Errors
    ///
    /// Same as [`RunBuilder::append`].
    pub fn append_suspect(
        &mut self,
        p: ProcessId,
        time: Time,
        report: SuspectReport,
    ) -> Result<(), ModelError> {
        self.append(p, time, Event::Suspect(report))
    }

    /// The tick of the latest event appended to `p`, or 0.
    #[must_use]
    pub fn last_time(&self, p: ProcessId) -> Time {
        self.logs[p.index()].times.last().copied().unwrap_or(0)
    }

    /// Iterates over `p`'s events so far together with their ticks — the
    /// builder analogue of [`Run::timed_history`], for callers (like the
    /// explorer's symmetry canonicalizer) that need the timed prefix of a
    /// run still under construction without snapshotting it.
    pub fn timed_history(&self, p: ProcessId) -> impl Iterator<Item = (Time, &Event<M>)> {
        let log = &self.logs[p.index()];
        log.times.iter().copied().zip(log.events.iter())
    }

    /// Removes and returns `p`'s most recent event, reversing every side
    /// effect of the [`RunBuilder::append`] that added it (crash flag, init
    /// registry, channel send/receive accounting). This is the backbone of
    /// the explorer's undo log: branches share one builder and rewind it
    /// instead of cloning it.
    ///
    /// Undos must be performed in reverse append order *across the whole
    /// builder* (strict LIFO), not just per process — e.g. un-appending a
    /// send while a later receive of that message is still present would
    /// corrupt the R3 accounting. The explorer's depth-first structure
    /// guarantees this discipline.
    pub fn unappend(&mut self, p: ProcessId) -> Option<Event<M>> {
        let log = &mut self.logs[p.index()];
        let time = log.times.pop()?;
        let event = log.events.pop().expect("times and events move in lockstep");
        match &event {
            Event::Crash => {
                self.crashed.remove(p);
            }
            Event::Init { action } => {
                self.inits.remove(action);
            }
            Event::Send { to, msg } => {
                let entry = self
                    .channel
                    .get_mut(&(p, *to, msg.clone()))
                    .expect("send was recorded at append time");
                let popped = entry.0.pop();
                debug_assert_eq!(popped, Some(time), "sends must be unappended LIFO");
            }
            Event::Recv { from, msg } => {
                let entry = self
                    .channel
                    .get_mut(&(*from, p, msg.clone()))
                    .expect("receive was recorded at append time");
                entry.1 -= 1;
            }
            _ => {}
        }
        Some(event)
    }

    /// Freezes the run at `horizon` (which must be at least the tick of the
    /// latest appended event).
    ///
    /// # Panics
    ///
    /// Panics if an appended event lies beyond `horizon`.
    #[must_use]
    pub fn finish(self, horizon: Time) -> Run<M> {
        self.assert_horizon(horizon);
        Run {
            n: self.n,
            horizon,
            logs: self.logs,
        }
    }

    /// Like [`RunBuilder::finish`], but leaves the builder usable: only the
    /// event logs are copied out. Used by the copy-light explorer, which
    /// snapshots a run at each leaf and then rewinds the shared builder.
    ///
    /// # Panics
    ///
    /// Panics if an appended event lies beyond `horizon`.
    #[must_use]
    pub fn snapshot(&self, horizon: Time) -> Run<M> {
        self.assert_horizon(horizon);
        Run {
            n: self.n,
            horizon,
            logs: self.logs.clone(),
        }
    }

    fn assert_horizon(&self, horizon: Time) {
        let max = self
            .logs
            .iter()
            .filter_map(|l| l.times.last().copied())
            .max()
            .unwrap_or(0);
        assert!(
            horizon >= max,
            "horizon {horizon} precedes an appended event at tick {max}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn two_proc_run() -> Run<&'static str> {
        let alpha = ActionId::new(p(0), 0);
        let mut b = RunBuilder::new(2);
        b.append(p(0), 1, Event::Init { action: alpha }).unwrap();
        b.append(p(0), 2, Event::Send { to: p(1), msg: "m" })
            .unwrap();
        b.append(
            p(1),
            3,
            Event::Recv {
                from: p(0),
                msg: "m",
            },
        )
        .unwrap();
        b.append(p(0), 3, Event::Do { action: alpha }).unwrap();
        b.append(p(1), 4, Event::Do { action: alpha }).unwrap();
        b.finish(6)
    }

    #[test]
    fn histories_and_prefixes() {
        let r = two_proc_run();
        assert_eq!(r.n(), 2);
        assert_eq!(r.horizon(), 6);
        assert_eq!(r.history(p(0)).len(), 3);
        assert_eq!(r.history_at(p(0), 0).len(), 0); // R1
        assert_eq!(r.history_at(p(0), 1).len(), 1);
        assert_eq!(r.history_at(p(0), 2).len(), 2);
        assert_eq!(r.history_at(p(1), 2).len(), 0);
        assert_eq!(r.history_at(p(1), 6).len(), 2);
        assert_eq!(r.event_count(), 5);
        assert_eq!(r.send_count_total(), 1);
    }

    #[test]
    fn faulty_and_crash_time() {
        let mut b = RunBuilder::<u8>::new(3);
        b.append(p(1), 2, Event::Crash).unwrap();
        let r = b.finish(5);
        assert_eq!(r.faulty(), ProcSet::singleton(p(1)));
        assert_eq!(r.correct(), [p(0), p(2)].into_iter().collect());
        assert_eq!(r.crash_time(p(1)), Some(2));
        assert_eq!(r.crash_time(p(0)), None);
        assert!(r.crashed_by(1).is_empty());
        assert_eq!(r.crashed_by(2), ProcSet::singleton(p(1)));
    }

    #[test]
    fn r2_rejects_same_tick_and_zero() {
        let mut b = RunBuilder::<u8>::new(1);
        assert!(matches!(
            b.append(p(0), 0, Event::Crash),
            Err(ModelError::NonMonotonicTime { .. })
        ));
        b.append(p(0), 5, Event::Send { to: p(0), msg: 1 }).unwrap();
        assert!(matches!(
            b.append(p(0), 5, Event::Crash),
            Err(ModelError::NonMonotonicTime { .. })
        ));
        assert!(matches!(
            b.append(p(0), 3, Event::Crash),
            Err(ModelError::NonMonotonicTime { .. })
        ));
    }

    #[test]
    fn r3_rejects_unmatched_receive() {
        let mut b = RunBuilder::<&str>::new(2);
        assert!(matches!(
            b.append(
                p(1),
                1,
                Event::Recv {
                    from: p(0),
                    msg: "m"
                }
            ),
            Err(ModelError::ReceiveWithoutSend { .. })
        ));
        b.append(p(0), 1, Event::Send { to: p(1), msg: "m" })
            .unwrap();
        b.append(
            p(1),
            2,
            Event::Recv {
                from: p(0),
                msg: "m",
            },
        )
        .unwrap();
        // No duplication: a second receive of a once-sent message is refused.
        assert!(matches!(
            b.append(
                p(1),
                3,
                Event::Recv {
                    from: p(0),
                    msg: "m"
                }
            ),
            Err(ModelError::ReceiveWithoutSend { .. })
        ));
        // But a second send enables a second receive.
        b.append(p(0), 3, Event::Send { to: p(1), msg: "m" })
            .unwrap();
        b.append(
            p(1),
            4,
            Event::Recv {
                from: p(0),
                msg: "m",
            },
        )
        .unwrap();
    }

    #[test]
    fn r3_receive_not_before_send() {
        // A receive at tick 1 cannot consume a send at tick 2; the builder
        // only sees events in order, so simulate via check_conditions on a
        // hand-built run: builder appends sends then receives, so craft the
        // receive first at a later process... Builder-order already prevents
        // out-of-order appends per process; cross-process the tick check in
        // append covers it.
        let mut b = RunBuilder::<&str>::new(2);
        b.append(p(0), 5, Event::Send { to: p(1), msg: "m" })
            .unwrap();
        // Receive at tick 3 < send tick 5 is refused even though the send is
        // already in the builder.
        assert!(matches!(
            b.append(
                p(1),
                3,
                Event::Recv {
                    from: p(0),
                    msg: "m"
                }
            ),
            Err(ModelError::ReceiveWithoutSend { .. })
        ));
        // Same tick as the send is allowed (R3 says "in r_p(m)", inclusive).
        b.append(
            p(1),
            5,
            Event::Recv {
                from: p(0),
                msg: "m",
            },
        )
        .unwrap();
    }

    #[test]
    fn r4_rejects_events_after_crash() {
        let mut b = RunBuilder::<u8>::new(1);
        b.append(p(0), 1, Event::Crash).unwrap();
        assert!(matches!(
            b.append(p(0), 2, Event::Send { to: p(0), msg: 0 }),
            Err(ModelError::EventAfterCrash { .. })
        ));
    }

    #[test]
    fn init_constraints() {
        let alpha = ActionId::new(p(0), 0);
        let mut b = RunBuilder::<u8>::new(2);
        assert!(matches!(
            b.append(p(1), 1, Event::Init { action: alpha }),
            Err(ModelError::ForeignInit { .. })
        ));
        b.append(p(0), 1, Event::Init { action: alpha }).unwrap();
        assert!(matches!(
            b.append(p(0), 2, Event::Init { action: alpha }),
            Err(ModelError::DuplicateInit { .. })
        ));
    }

    #[test]
    fn unknown_process_errors() {
        let mut b = RunBuilder::<u8>::new(2);
        assert!(matches!(
            b.append(p(5), 1, Event::Crash),
            Err(ModelError::UnknownProcess { .. })
        ));
        assert!(matches!(
            b.append(p(0), 1, Event::Send { to: p(9), msg: 0 }),
            Err(ModelError::UnknownProcess { .. })
        ));
    }

    #[test]
    fn check_conditions_accepts_wellformed() {
        let r = two_proc_run();
        r.check_conditions(1).unwrap();
    }

    #[test]
    fn check_conditions_flags_unfairness() {
        let mut b = RunBuilder::<&str>::new(2);
        for t in 1..=10 {
            b.append(
                p(0),
                t,
                Event::Send {
                    to: p(1),
                    msg: "lost",
                },
            )
            .unwrap();
        }
        let r = b.finish(12);
        assert!(matches!(
            r.check_conditions(10),
            Err(ModelError::UnfairChannel { sent: 10, .. })
        ));
        // Below threshold: fine.
        r.check_conditions(11).unwrap();
        // Threshold 0 disables the fairness check.
        r.check_conditions(0).unwrap();
    }

    #[test]
    fn unfairness_excused_by_receiver_crash() {
        let mut b = RunBuilder::<&str>::new(2);
        for t in 1..=10 {
            b.append(
                p(0),
                t,
                Event::Send {
                    to: p(1),
                    msg: "lost",
                },
            )
            .unwrap();
        }
        b.append(p(1), 11, Event::Crash).unwrap();
        let r = b.finish(12);
        r.check_conditions(5).unwrap();
    }

    #[test]
    fn indistinguishability_ignores_ticks() {
        // Same event sequence at different ticks ⇒ indistinguishable.
        let mut b1 = RunBuilder::<&str>::new(2);
        b1.append(p(0), 1, Event::Send { to: p(1), msg: "m" })
            .unwrap();
        let r1 = b1.finish(4);
        let mut b2 = RunBuilder::<&str>::new(2);
        b2.append(p(0), 3, Event::Send { to: p(1), msg: "m" })
            .unwrap();
        let r2 = b2.finish(4);
        assert!(r1.indistinguishable(1, &r2, 3, p(0)));
        assert!(r1.indistinguishable(2, &r2, 4, p(0)));
        assert!(!r1.indistinguishable(1, &r2, 2, p(0))); // r2_p0(2) is empty
        assert!(r1.indistinguishable(0, &r2, 0, p(1))); // both empty
    }

    #[test]
    fn extension_relation() {
        let r = two_proc_run();
        assert!(r.is_extended_by(3, &r));
        let pref = r.prefix(3);
        assert_eq!(pref.horizon(), 3);
        assert!(pref.is_extended_by(3, &r));
        assert!(pref.is_extended_by(2, &r));
        // A different run does not extend it.
        let mut b = RunBuilder::<&str>::new(2);
        b.append(p(0), 1, Event::Send { to: p(1), msg: "x" })
            .unwrap();
        let other = b.finish(6);
        assert!(!pref.is_extended_by(1, &other));
    }

    #[test]
    fn prefix_truncates_histories() {
        let r = two_proc_run();
        let pre = r.prefix(2);
        assert_eq!(pre.history(p(0)).len(), 2);
        assert_eq!(pre.history(p(1)).len(), 0);
        pre.check_conditions(0).unwrap();
    }

    #[test]
    fn map_msg_rewrites_payloads() {
        let r = two_proc_run();
        let r2 = r.map_msg(|s| s.len());
        assert_eq!(r2.history(p(1))[0], Event::Recv { from: p(0), msg: 1 });
        assert_eq!(r2.event_count(), 5);
    }

    #[test]
    fn finish_horizon_must_cover_events() {
        let mut b = RunBuilder::<u8>::new(1);
        b.append(p(0), 7, Event::Crash).unwrap();
        let result = std::panic::catch_unwind(move || b.finish(5));
        assert!(result.is_err());
    }

    #[test]
    fn last_event_time_and_suspects() {
        let mut b = RunBuilder::<u8>::new(2);
        b.append_suspect(p(0), 4, SuspectReport::Standard(ProcSet::singleton(p(1))))
            .unwrap();
        let r = b.finish(8);
        assert_eq!(r.last_event_time(p(0), 3), 0);
        assert_eq!(r.last_event_time(p(0), 8), 4);
        assert!(r.suspects_at(p(0), 3).is_empty());
        assert_eq!(r.suspects_at(p(0), 4), ProcSet::singleton(p(1)));
    }

    #[test]
    fn unappend_reverses_every_side_effect() {
        let alpha = ActionId::new(p(0), 0);
        let mut b = RunBuilder::<&str>::new(2);
        b.append(p(0), 1, Event::Init { action: alpha }).unwrap();
        b.append(p(0), 2, Event::Send { to: p(1), msg: "m" })
            .unwrap();
        b.append(
            p(1),
            3,
            Event::Recv {
                from: p(0),
                msg: "m",
            },
        )
        .unwrap();
        b.append(p(1), 4, Event::Crash).unwrap();

        // Rewind everything, strictly LIFO.
        assert!(matches!(b.unappend(p(1)), Some(Event::Crash)));
        assert!(!b.crashed().contains(p(1)));
        assert!(matches!(b.unappend(p(1)), Some(Event::Recv { .. })));
        assert!(matches!(b.unappend(p(0)), Some(Event::Send { .. })));
        assert!(matches!(b.unappend(p(0)), Some(Event::Init { .. })));
        assert!(b.unappend(p(0)).is_none());

        // The builder is as-new: the receive is unmatched again, the init is
        // re-appendable, and a crashed process may act.
        assert!(matches!(
            b.append(
                p(1),
                1,
                Event::Recv {
                    from: p(0),
                    msg: "m"
                }
            ),
            Err(ModelError::ReceiveWithoutSend { .. })
        ));
        b.append(p(0), 1, Event::Init { action: alpha }).unwrap();
        b.append(p(1), 1, Event::Send { to: p(0), msg: "x" })
            .unwrap();
        assert_eq!(b.finish(2).event_count(), 2);
    }

    #[test]
    fn snapshot_leaves_builder_usable() {
        let mut b = RunBuilder::<&str>::new(2);
        b.append(p(0), 1, Event::Send { to: p(1), msg: "m" })
            .unwrap();
        let r1 = b.snapshot(3);
        b.append(
            p(1),
            2,
            Event::Recv {
                from: p(0),
                msg: "m",
            },
        )
        .unwrap();
        let r2 = b.snapshot(3);
        assert_eq!(r1.event_count(), 1);
        assert_eq!(r2.event_count(), 2);
        assert_eq!(b.finish(3), r2);
    }

    #[test]
    fn serde_roundtrip() {
        let r = two_proc_run();
        let json = serde_json::to_string(&r).unwrap();
        let back: Run<&str> = serde_json::from_str(&json).unwrap();
        // &str deserializes as borrowed; compare structurally via event count
        // and a spot check.
        assert_eq!(back.event_count(), r.event_count());
        assert_eq!(back.horizon(), r.horizon());
    }

    #[test]
    fn initiations_enumerates_all() {
        let r = two_proc_run();
        let inits: Vec<_> = r.initiations().collect();
        assert_eq!(inits, vec![(1, ActionId::new(p(0), 0))]);
    }
}
