//! Systems: sets of runs, with an index for indistinguishability.
//!
//! A *system* `R` is a set of runs (§2.1); knowledge is defined relative to a
//! system: `(R, r, m) ⊨ K_p φ` iff `φ` holds at **every** point `(r′, m′)` of
//! `R` with `r′_p(m′) = r_p(m)`. Evaluating `K_p` therefore needs, given a
//! local history, all points of the system sharing it.
//!
//! [`System`] resolves the whole `~_p` relation at construction: every
//! `(run, process)` timeline is partitioned into contiguous blocks of
//! constant history, blocks with equal histories (hash first — via the
//! stable hasher in [`crate::hashing`] — then exact comparison, so
//! collisions cannot produce wrong answers) are merged into *equivalence
//! classes*, and each block remembers its class id. A query is then a binary
//! search plus a slice borrow: no hashing, no history comparison, no
//! allocation. The epistemic checker leans on this heavily — it evaluates
//! `K_p` once per class instead of once per point.

use crate::hashing::hash_history;
use crate::{Point, ProcessId, Run, Time};
use std::collections::HashMap;
use std::hash::Hash;
use std::ops::Range;

/// A contiguous block of points of one run sharing a local history for some
/// process: ticks `from ..= to` of run `run`, at which the process's history
/// prefix has length `len`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndistinguishableBlock {
    /// Run index within the system.
    pub run: usize,
    /// First tick of the block.
    pub from: Time,
    /// Last tick of the block (inclusive).
    pub to: Time,
    /// Length of the local history prefix throughout the block.
    pub len: usize,
}

impl IndistinguishableBlock {
    /// Iterates the points of the block.
    pub fn points(self) -> impl Iterator<Item = Point> {
        (self.from..=self.to).map(move |t| Point::new(self.run, t))
    }

    /// Number of points in the block.
    #[must_use]
    pub fn point_count(self) -> usize {
        (self.to - self.from) as usize + 1
    }
}

/// A finite system of runs over a common process set, indexed for the
/// indistinguishability relation `~_p`.
///
/// # Example
///
/// ```
/// use ktudc_model::{Event, ProcessId, RunBuilder, System};
///
/// let p0 = ProcessId::new(0);
/// let p1 = ProcessId::new(1);
/// let mut b = RunBuilder::<&str>::new(2);
/// b.append(p0, 1, Event::Send { to: p1, msg: "m" })?;
/// let r0 = b.finish(3);
///
/// let mut b = RunBuilder::<&str>::new(2);
/// b.append(p0, 2, Event::Send { to: p1, msg: "m" })?;
/// b.append(p1, 3, Event::Recv { from: p0, msg: "m" })?;
/// let r1 = b.finish(3);
///
/// let sys = System::new(vec![r0, r1]);
/// // After sending, p0 cannot tell the two runs apart at any tick:
/// let blocks = sys.indistinguishable_blocks(p0, 0, 1);
/// assert_eq!(blocks.iter().map(|b| b.run).collect::<Vec<_>>(), vec![0, 1]);
/// # Ok::<(), ktudc_model::ModelError>(())
/// ```
#[derive(Clone, Debug)]
pub struct System<M> {
    runs: Vec<Run<M>>,
    n: usize,
    /// `classes[cid]` = the blocks of one `~_p` equivalence class, in run
    /// order. Class ids are grouped by process (see `class_offsets`) and
    /// assigned in first-encounter order over (process, run, tick), so they
    /// are deterministic for a given run list.
    classes: Vec<Vec<IndistinguishableBlock>>,
    /// `class_offsets[p] .. class_offsets[p + 1]` is the id range of
    /// process `p`'s classes. Length `n + 1`.
    class_offsets: Vec<usize>,
    /// `run_blocks[p][ri]` = ascending `(block_start, class_id)` pairs
    /// partitioning `[0, horizon]` of run `ri` for process `p`.
    run_blocks: Vec<Vec<Vec<(Time, u32)>>>,
}

impl<M: Eq + Hash> System<M> {
    /// Builds a system from runs, resolving the full indistinguishability
    /// relation up front.
    ///
    /// # Panics
    ///
    /// Panics if the runs disagree on the number of processes, or if `runs`
    /// is empty (a system must be nonempty for knowledge to be well
    /// defined).
    #[must_use]
    pub fn new(runs: Vec<Run<M>>) -> Self {
        assert!(!runs.is_empty(), "a system must contain at least one run");
        let n = runs[0].n();
        assert!(
            runs.iter().all(|r| r.n() == n),
            "all runs of a system must share the same process set"
        );
        let mut classes: Vec<Vec<IndistinguishableBlock>> = Vec::new();
        let mut class_offsets = Vec::with_capacity(n + 1);
        class_offsets.push(0);
        let mut run_blocks: Vec<Vec<Vec<(Time, u32)>>> = Vec::with_capacity(n);
        for p in ProcessId::all(n) {
            // hash → candidate class ids; exact comparison picks within the
            // bucket, so collisions merge nothing.
            let mut by_hash: HashMap<u64, Vec<u32>> = HashMap::new();
            let mut per_run: Vec<Vec<(Time, u32)>> = Vec::with_capacity(runs.len());
            for (ri, run) in runs.iter().enumerate() {
                let mut table: Vec<(Time, u32)> = Vec::new();
                // Event ticks partition [0, horizon] into blocks of constant
                // history.
                let ticks: Vec<Time> = run.timed_history(p).map(|(t, _)| t).collect();
                let mut block_start: Time = 0;
                for (len, boundary) in ticks
                    .iter()
                    .copied()
                    .chain(std::iter::once(run.horizon() + 1))
                    .enumerate()
                {
                    if boundary > block_start {
                        let history = &run.history(p)[..len];
                        let candidates = by_hash.entry(hash_history(history)).or_default();
                        let cid = candidates
                            .iter()
                            .copied()
                            .find(|&c| {
                                let rep = classes[c as usize][0];
                                runs[rep.run].history(p)[..rep.len] == *history
                            })
                            .unwrap_or_else(|| {
                                let c = u32::try_from(classes.len())
                                    .expect("more than u32::MAX history classes");
                                classes.push(Vec::new());
                                candidates.push(c);
                                c
                            });
                        classes[cid as usize].push(IndistinguishableBlock {
                            run: ri,
                            from: block_start,
                            to: boundary - 1,
                            len,
                        });
                        table.push((block_start, cid));
                    }
                    block_start = boundary;
                }
                per_run.push(table);
            }
            run_blocks.push(per_run);
            class_offsets.push(classes.len());
        }
        System {
            runs,
            n,
            classes,
            class_offsets,
            run_blocks,
        }
    }
}

impl<M> System<M> {
    /// All blocks of points of the system whose `p`-history equals the
    /// `p`-history at `(run, m)` — i.e. the equivalence class of `(run, m)`
    /// under `~_p`, as contiguous blocks in run order. Always includes a
    /// block containing `(run, m)` itself (reflexivity).
    ///
    /// # Panics
    ///
    /// Panics if `run` is out of range or `m` exceeds that run's horizon.
    #[must_use]
    pub fn indistinguishable_blocks(
        &self,
        p: ProcessId,
        run: usize,
        m: Time,
    ) -> &[IndistinguishableBlock] {
        &self.classes[self.class_id(p, run, m) as usize]
    }

    /// The equivalence-class id of point `(run, m)` under `~_p`. Ids are
    /// global across processes; use [`System::class_range`] for a process's
    /// id range.
    ///
    /// # Panics
    ///
    /// Panics if `run` is out of range or `m` exceeds that run's horizon.
    #[must_use]
    pub fn class_id(&self, p: ProcessId, run: usize, m: Time) -> u32 {
        let r = &self.runs[run];
        assert!(m <= r.horizon(), "tick {m} beyond horizon {}", r.horizon());
        let table = &self.run_blocks[p.index()][run];
        let i = table.partition_point(|&(from, _)| from <= m) - 1;
        table[i].1
    }

    /// The blocks of equivalence class `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a class id of this system.
    #[must_use]
    pub fn class_blocks(&self, id: u32) -> &[IndistinguishableBlock] {
        &self.classes[id as usize]
    }

    /// The id range of process `p`'s equivalence classes; together with
    /// [`System::class_blocks`] this iterates the whole `~_p` partition
    /// without touching individual points.
    #[must_use]
    pub fn class_range(&self, p: ProcessId) -> Range<u32> {
        let lo = self.class_offsets[p.index()] as u32;
        let hi = self.class_offsets[p.index() + 1] as u32;
        lo..hi
    }

    /// Total number of equivalence classes over all processes.
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// The number of processes shared by every run.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The runs of the system.
    #[must_use]
    pub fn runs(&self) -> &[Run<M>] {
        &self.runs
    }

    /// The run at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn run(&self, index: usize) -> &Run<M> {
        &self.runs[index]
    }

    /// Number of runs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Always `false`: systems are nonempty by construction. Provided for
    /// API completeness alongside [`System::len`].
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Iterates over every point `(r, m)` of the system, `m` ranging over
    /// `0 ..= horizon` of each run.
    pub fn points(&self) -> impl Iterator<Item = Point> + '_ {
        self.runs
            .iter()
            .enumerate()
            .flat_map(|(ri, r)| (0..=r.horizon()).map(move |m| Point::new(ri, m)))
    }

    /// Total number of points.
    #[must_use]
    pub fn point_count(&self) -> usize {
        self.runs.iter().map(|r| r.horizon() as usize + 1).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, RunBuilder};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn send_run(tick: Time, horizon: Time) -> Run<&'static str> {
        let mut b = RunBuilder::new(2);
        b.append(p(0), tick, Event::Send { to: p(1), msg: "m" })
            .unwrap();
        b.finish(horizon)
    }

    #[test]
    fn blocks_partition_the_timeline() {
        let sys = System::new(vec![send_run(2, 5)]);
        // p0's history is empty on [0,1] and has one event on [2,5].
        let empty_blocks = sys.indistinguishable_blocks(p(0), 0, 0);
        assert_eq!(empty_blocks.len(), 1);
        assert_eq!((empty_blocks[0].from, empty_blocks[0].to), (0, 1));
        assert_eq!(empty_blocks[0].len, 0);
        let sent_blocks = sys.indistinguishable_blocks(p(0), 0, 3);
        assert_eq!(sent_blocks.len(), 1);
        assert_eq!((sent_blocks[0].from, sent_blocks[0].to), (2, 5));
        // p1 never observes anything: one block covering everything.
        let p1_blocks = sys.indistinguishable_blocks(p(1), 0, 4);
        assert_eq!((p1_blocks[0].from, p1_blocks[0].to), (0, 5));
    }

    #[test]
    fn cross_run_indistinguishability() {
        // Two runs where p0 sends at different ticks: after the send the
        // histories coincide, so the classes span both runs.
        let sys = System::new(vec![send_run(1, 4), send_run(3, 4)]);
        let blocks = sys.indistinguishable_blocks(p(0), 0, 2);
        let runs: Vec<usize> = blocks.iter().map(|b| b.run).collect();
        assert_eq!(runs, vec![0, 1]);
        // Point expansion covers the right ticks.
        let pts: Vec<Point> = blocks.iter().flat_map(|b| b.points()).collect();
        assert!(pts.contains(&Point::new(0, 1)));
        assert!(pts.contains(&Point::new(1, 3)));
        assert!(!pts.contains(&Point::new(1, 2))); // history still empty there
    }

    #[test]
    fn reflexivity() {
        let sys = System::new(vec![send_run(1, 3)]);
        for pt in sys.points() {
            for q in ProcessId::all(2) {
                let blocks = sys.indistinguishable_blocks(q, pt.run, pt.time);
                assert!(
                    blocks
                        .iter()
                        .any(|b| b.run == pt.run && b.from <= pt.time && pt.time <= b.to),
                    "point {pt} missing from its own ~_{q} class"
                );
            }
        }
    }

    #[test]
    fn distinguishable_histories_are_separated() {
        let mut b = RunBuilder::<&str>::new(2);
        b.append(p(0), 1, Event::Send { to: p(1), msg: "x" })
            .unwrap();
        let rx = b.finish(3);
        let sys = System::new(vec![send_run(1, 3), rx]);
        // At tick 1, p0 sent "m" in run 0 and "x" in run 1: different classes.
        let blocks = sys.indistinguishable_blocks(p(0), 0, 1);
        assert!(blocks.iter().all(|b| b.run == 0));
        // p1 saw nothing in either: same class.
        let blocks = sys.indistinguishable_blocks(p(1), 0, 1);
        assert_eq!(blocks.len(), 2);
    }

    #[test]
    fn points_enumeration_and_count() {
        let sys = System::new(vec![send_run(1, 2), send_run(1, 4)]);
        assert_eq!(sys.point_count(), 3 + 5);
        assert_eq!(sys.points().count(), 8);
        assert_eq!(sys.len(), 2);
        assert!(!sys.is_empty());
        assert_eq!(sys.n(), 2);
        assert_eq!(sys.run(1).horizon(), 4);
    }

    #[test]
    fn class_index_is_consistent() {
        let sys = System::new(vec![send_run(1, 4), send_run(3, 4), send_run(1, 4)]);
        for q in ProcessId::all(2) {
            let range = sys.class_range(q);
            // Every point's class id is in its process's range, and the
            // class's blocks contain the point.
            for pt in sys.points() {
                let cid = sys.class_id(q, pt.run, pt.time);
                assert!(range.contains(&cid));
                assert!(sys
                    .class_blocks(cid)
                    .iter()
                    .any(|b| b.run == pt.run && b.from <= pt.time && pt.time <= b.to));
                assert_eq!(
                    sys.class_blocks(cid),
                    sys.indistinguishable_blocks(q, pt.run, pt.time)
                );
            }
            // Each class's blocks are disjoint, in run order, and their
            // union over the range partitions all points.
            let mut covered = 0;
            for cid in range {
                let blocks = sys.class_blocks(cid);
                assert!(!blocks.is_empty());
                for w in blocks.windows(2) {
                    assert!(w[0].run < w[1].run || (w[0].run == w[1].run && w[0].to < w[1].from));
                }
                covered += blocks.iter().map(|b| b.point_count()).sum::<usize>();
            }
            assert_eq!(covered, sys.point_count());
        }
        assert_eq!(
            sys.class_count(),
            (0..2).map(|q| sys.class_range(p(q)).len()).sum::<usize>()
        );
    }

    #[test]
    fn class_ids_are_deterministic() {
        let build = || System::new(vec![send_run(1, 4), send_run(3, 4)]);
        let a = build();
        let b = build();
        for pt in a.points() {
            for q in ProcessId::all(2) {
                assert_eq!(
                    a.class_id(q, pt.run, pt.time),
                    b.class_id(q, pt.run, pt.time)
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn empty_system_panics() {
        let _ = System::<u8>::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "same process set")]
    fn mismatched_process_counts_panic() {
        let r2 = send_run(1, 2);
        let mut b = RunBuilder::<&str>::new(3);
        b.append(p(0), 1, Event::Crash).unwrap();
        let r3 = b.finish(2);
        let _ = System::new(vec![r2, r3]);
    }
}
