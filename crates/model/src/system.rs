//! Systems: sets of runs, with an index for indistinguishability.
//!
//! A *system* `R` is a set of runs (§2.1); knowledge is defined relative to a
//! system: `(R, r, m) ⊨ K_p φ` iff `φ` holds at **every** point `(r′, m′)` of
//! `R` with `r′_p(m′) = r_p(m)`. Evaluating `K_p` therefore needs, given a
//! local history, all points of the system sharing it. [`System`] maintains
//! that index: for every run, process, and distinct history *length*, one
//! entry covering the contiguous tick range over which the history is
//! unchanged, keyed by a hash of the event sequence (with exact comparison on
//! lookup, so hash collisions cannot produce wrong answers).

use crate::{Event, Point, ProcessId, Run, Time};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// A contiguous block of points of one run sharing a local history for some
/// process: ticks `from ..= to` of run `run`, at which the process's history
/// prefix has length `len`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndistinguishableBlock {
    /// Run index within the system.
    pub run: usize,
    /// First tick of the block.
    pub from: Time,
    /// Last tick of the block (inclusive).
    pub to: Time,
    /// Length of the local history prefix throughout the block.
    pub len: usize,
}

impl IndistinguishableBlock {
    /// Iterates the points of the block.
    pub fn points(self) -> impl Iterator<Item = Point> {
        (self.from..=self.to).map(move |t| Point::new(self.run, t))
    }
}

/// A finite system of runs over a common process set, indexed for the
/// indistinguishability relation `~_p`.
///
/// # Example
///
/// ```
/// use ktudc_model::{Event, ProcessId, RunBuilder, System};
///
/// let p0 = ProcessId::new(0);
/// let p1 = ProcessId::new(1);
/// let mut b = RunBuilder::<&str>::new(2);
/// b.append(p0, 1, Event::Send { to: p1, msg: "m" })?;
/// let r0 = b.finish(3);
///
/// let mut b = RunBuilder::<&str>::new(2);
/// b.append(p0, 2, Event::Send { to: p1, msg: "m" })?;
/// b.append(p1, 3, Event::Recv { from: p0, msg: "m" })?;
/// let r1 = b.finish(3);
///
/// let sys = System::new(vec![r0, r1]);
/// // After sending, p0 cannot tell the two runs apart at any tick:
/// let blocks = sys.indistinguishable_blocks(p0, 0, 1);
/// assert_eq!(blocks.iter().map(|b| b.run).collect::<Vec<_>>(), vec![0, 1]);
/// # Ok::<(), ktudc_model::ModelError>(())
/// ```
#[derive(Clone, Debug)]
pub struct System<M> {
    runs: Vec<Run<M>>,
    n: usize,
    /// (process, history hash) → blocks of points with that history.
    index: HashMap<(ProcessId, u64), Vec<IndistinguishableBlock>>,
}

fn hash_history<M: Hash>(events: &[Event<M>]) -> u64 {
    let mut h = DefaultHasher::new();
    events.hash(&mut h);
    h.finish()
}

impl<M: Eq + Hash> System<M> {
    /// Builds a system from runs, indexing local histories.
    ///
    /// # Panics
    ///
    /// Panics if the runs disagree on the number of processes, or if `runs`
    /// is empty (a system must be nonempty for knowledge to be well
    /// defined).
    #[must_use]
    pub fn new(runs: Vec<Run<M>>) -> Self {
        assert!(!runs.is_empty(), "a system must contain at least one run");
        let n = runs[0].n();
        assert!(
            runs.iter().all(|r| r.n() == n),
            "all runs of a system must share the same process set"
        );
        let mut index: HashMap<(ProcessId, u64), Vec<IndistinguishableBlock>> = HashMap::new();
        for (ri, run) in runs.iter().enumerate() {
            for p in ProcessId::all(n) {
                // Event ticks partition [0, horizon] into blocks of constant
                // history.
                let ticks: Vec<Time> = run.timed_history(p).map(|(t, _)| t).collect();
                let mut block_start: Time = 0;
                for (len, boundary) in ticks
                    .iter()
                    .copied()
                    .chain(std::iter::once(run.horizon() + 1))
                    .enumerate()
                {
                    if boundary > block_start {
                        let history = &run.history(p)[..len];
                        let key = (p, hash_history(history));
                        index.entry(key).or_default().push(IndistinguishableBlock {
                            run: ri,
                            from: block_start,
                            to: boundary - 1,
                            len,
                        });
                    }
                    block_start = boundary;
                }
            }
        }
        System { runs, n, index }
    }

    /// All blocks of points of the system whose `p`-history equals the
    /// `p`-history at `(run, m)` — i.e. the equivalence class of `(run, m)`
    /// under `~_p`, as contiguous blocks. Always includes a block containing
    /// `(run, m)` itself (reflexivity).
    ///
    /// # Panics
    ///
    /// Panics if `run` is out of range or `m` exceeds that run's horizon.
    #[must_use]
    pub fn indistinguishable_blocks(
        &self,
        p: ProcessId,
        run: usize,
        m: Time,
    ) -> Vec<IndistinguishableBlock> {
        let r = &self.runs[run];
        assert!(m <= r.horizon(), "tick {m} beyond horizon {}", r.horizon());
        let history = r.history_at(p, m);
        let key = (p, hash_history(history));
        match self.index.get(&key) {
            None => Vec::new(),
            Some(blocks) => blocks
                .iter()
                .copied()
                .filter(|b| self.runs[b.run].history_at(p, b.from) == history)
                .collect(),
        }
    }
}

impl<M> System<M> {
    /// The number of processes shared by every run.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The runs of the system.
    #[must_use]
    pub fn runs(&self) -> &[Run<M>] {
        &self.runs
    }

    /// The run at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn run(&self, index: usize) -> &Run<M> {
        &self.runs[index]
    }

    /// Number of runs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Always `false`: systems are nonempty by construction. Provided for
    /// API completeness alongside [`System::len`].
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Iterates over every point `(r, m)` of the system, `m` ranging over
    /// `0 ..= horizon` of each run.
    pub fn points(&self) -> impl Iterator<Item = Point> + '_ {
        self.runs
            .iter()
            .enumerate()
            .flat_map(|(ri, r)| (0..=r.horizon()).map(move |m| Point::new(ri, m)))
    }

    /// Total number of points.
    #[must_use]
    pub fn point_count(&self) -> usize {
        self.runs.iter().map(|r| r.horizon() as usize + 1).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, RunBuilder};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn send_run(tick: Time, horizon: Time) -> Run<&'static str> {
        let mut b = RunBuilder::new(2);
        b.append(p(0), tick, Event::Send { to: p(1), msg: "m" }).unwrap();
        b.finish(horizon)
    }

    #[test]
    fn blocks_partition_the_timeline() {
        let sys = System::new(vec![send_run(2, 5)]);
        // p0's history is empty on [0,1] and has one event on [2,5].
        let empty_blocks = sys.indistinguishable_blocks(p(0), 0, 0);
        assert_eq!(empty_blocks.len(), 1);
        assert_eq!((empty_blocks[0].from, empty_blocks[0].to), (0, 1));
        assert_eq!(empty_blocks[0].len, 0);
        let sent_blocks = sys.indistinguishable_blocks(p(0), 0, 3);
        assert_eq!(sent_blocks.len(), 1);
        assert_eq!((sent_blocks[0].from, sent_blocks[0].to), (2, 5));
        // p1 never observes anything: one block covering everything.
        let p1_blocks = sys.indistinguishable_blocks(p(1), 0, 4);
        assert_eq!((p1_blocks[0].from, p1_blocks[0].to), (0, 5));
    }

    #[test]
    fn cross_run_indistinguishability() {
        // Two runs where p0 sends at different ticks: after the send the
        // histories coincide, so the classes span both runs.
        let sys = System::new(vec![send_run(1, 4), send_run(3, 4)]);
        let blocks = sys.indistinguishable_blocks(p(0), 0, 2);
        let runs: Vec<usize> = blocks.iter().map(|b| b.run).collect();
        assert_eq!(runs, vec![0, 1]);
        // Point expansion covers the right ticks.
        let pts: Vec<Point> = blocks.iter().flat_map(|b| b.points()).collect();
        assert!(pts.contains(&Point::new(0, 1)));
        assert!(pts.contains(&Point::new(1, 3)));
        assert!(!pts.contains(&Point::new(1, 2))); // history still empty there
    }

    #[test]
    fn reflexivity() {
        let sys = System::new(vec![send_run(1, 3)]);
        for pt in sys.points() {
            for q in ProcessId::all(2) {
                let blocks = sys.indistinguishable_blocks(q, pt.run, pt.time);
                assert!(
                    blocks
                        .iter()
                        .any(|b| b.run == pt.run && b.from <= pt.time && pt.time <= b.to),
                    "point {pt} missing from its own ~_{q} class"
                );
            }
        }
    }

    #[test]
    fn distinguishable_histories_are_separated() {
        let mut b = RunBuilder::<&str>::new(2);
        b.append(p(0), 1, Event::Send { to: p(1), msg: "x" }).unwrap();
        let rx = b.finish(3);
        let sys = System::new(vec![send_run(1, 3), rx]);
        // At tick 1, p0 sent "m" in run 0 and "x" in run 1: different classes.
        let blocks = sys.indistinguishable_blocks(p(0), 0, 1);
        assert!(blocks.iter().all(|b| b.run == 0));
        // p1 saw nothing in either: same class.
        let blocks = sys.indistinguishable_blocks(p(1), 0, 1);
        assert_eq!(blocks.len(), 2);
    }

    #[test]
    fn points_enumeration_and_count() {
        let sys = System::new(vec![send_run(1, 2), send_run(1, 4)]);
        assert_eq!(sys.point_count(), 3 + 5);
        assert_eq!(sys.points().count(), 8);
        assert_eq!(sys.len(), 2);
        assert!(!sys.is_empty());
        assert_eq!(sys.n(), 2);
        assert_eq!(sys.run(1).horizon(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn empty_system_panics() {
        let _ = System::<u8>::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "same process set")]
    fn mismatched_process_counts_panic() {
        let r2 = send_run(1, 2);
        let mut b = RunBuilder::<&str>::new(3);
        b.append(p(0), 1, Event::Crash).unwrap();
        let r3 = b.finish(2);
        let _ = System::new(vec![r2, r3]);
    }
}
