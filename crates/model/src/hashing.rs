//! Stable hashing for local histories.
//!
//! The indistinguishability index keys local histories by hash. The standard
//! library's `DefaultHasher` is explicitly unstable across releases and
//! process invocations are only saved by it currently being unkeyed — too
//! fragile for something the whole epistemic layer sits on, and previously
//! this hashing was duplicated ad hoc. [`StableHasher`] is the single
//! implementation: 64-bit FNV-1a with every integer write widened to
//! little-endian bytes, so a given event sequence hashes identically on every
//! platform, forever (pinned by a unit test below).
//!
//! Collisions are still possible (any 64-bit hash has them); all lookups in
//! [`crate::System`] resolve them by exact history comparison, so a collision
//! can cost time but never correctness.

use crate::Event;
use std::hash::{Hash, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A [`Hasher`] with a platform- and version-independent byte stream:
/// 64-bit FNV-1a, with multi-byte integers contributed as little-endian.
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher { state: FNV_OFFSET }
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }

    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }

    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }

    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }

    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }

    // Pointer-width integers are widened to 64 bits so 32- and 64-bit
    // targets agree.
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }

    fn write_i8(&mut self, i: i8) {
        self.write_u8(i as u8);
    }

    fn write_i16(&mut self, i: i16) {
        self.write_u16(i as u16);
    }

    fn write_i32(&mut self, i: i32) {
        self.write_u32(i as u32);
    }

    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }

    fn write_i128(&mut self, i: i128) {
        self.write_u128(i as u128);
    }

    fn write_isize(&mut self, i: isize) {
        self.write_i64(i as i64);
    }
}

/// Stable 64-bit hash of any `Hash` value.
#[must_use]
pub fn stable_hash<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = StableHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// Stable hash of a local history prefix — the one hash function behind the
/// system's indistinguishability index.
#[must_use]
pub fn hash_history<M: Hash>(events: &[Event<M>]) -> u64 {
    stable_hash(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, ProcessId};

    #[test]
    fn history_hash_is_pinned() {
        // Stability pin: these constants must never change. If this test
        // fails, the hash function (or the derived `Hash` of `Event`) has
        // changed and every persisted or cross-build comparison of history
        // hashes is silently broken — fix the regression, don't repin.
        let empty: &[Event<u16>] = &[];
        assert_eq!(hash_history(empty), 0xa8c7_f832_281a_39c5);

        let history: Vec<Event<u16>> = vec![
            Event::Send {
                to: ProcessId::new(1),
                msg: 7,
            },
            Event::Recv {
                from: ProcessId::new(0),
                msg: 7,
            },
            Event::Crash,
        ];
        assert_eq!(hash_history(&history), 0xeaf2_3c41_7288_83f2);
    }

    #[test]
    fn prefixes_hash_differently() {
        let history: Vec<Event<u16>> = vec![
            Event::Send {
                to: ProcessId::new(1),
                msg: 3,
            },
            Event::Send {
                to: ProcessId::new(1),
                msg: 3,
            },
        ];
        assert_ne!(hash_history(&history[..1]), hash_history(&history));
        assert_ne!(hash_history(&history[..0]), hash_history(&history[..1]));
    }

    #[test]
    fn integer_writes_match_byte_writes() {
        // The LE widening contract: hashing 0x0102030405060708u64 must equal
        // hashing its little-endian bytes.
        let mut a = StableHasher::new();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = StableHasher::new();
        b.write(&[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(a.finish(), b.finish());

        let mut c = StableHasher::new();
        c.write_usize(42);
        let mut d = StableHasher::new();
        d.write_u64(42);
        assert_eq!(c.finish(), d.finish());
    }
}
