//! Checkpointed exhaustive exploration — kill it, restart it, get the
//! same answer.
//!
//! [`explore`](crate::explore) fans the first scheduling slots out into
//! independent subtrees whose level-order concatenation is the sequential
//! depth-first run order, for *any* fan-out width. That makes the subtree
//! the natural checkpoint unit: this module journals each completed
//! subtree's runs to a [`ktudc_store::Journal`], so a SIGKILL'd
//! exploration resumes from the last durable subtree instead of tick
//! zero.
//!
//! # Bit-identical resumption
//!
//! The whole point is machine-checkable recovery: a resumed exploration
//! must produce the **same** [`ExploreResult`] — run for run, byte for
//! byte, hence the same [`system_digest`](crate::system_digest) — as an
//! uninterrupted one. Three choices make that hold:
//!
//! * the fan-out width is a fixed constant ([`CHECKPOINT_SUBTREE_TARGET`])
//!   recorded in the journal header, never the machine's thread count, so
//!   the subtree split replays identically anywhere;
//! * the journal header pins the full [`ExploreSpec`]; resuming against a
//!   journal written for a different spec is an error, not a silent
//!   garbage merge;
//! * assembly is by subtree index with [`explore`](crate::explore)'s
//!   exact run-cap semantics, so completion order (and how many crashes
//!   interrupted the job) is invisible in the output.
//!
//! Torn final entries — the expected artifact of a kill mid-append — are
//! truncated off by the journal layer; the affected subtree is simply
//! recomputed.

use crate::ckpt_codec;
use crate::explorer::{
    assemble_subtree_runs, assemble_subtrees, expand_frontier, subtree_runs, ExploreResult,
    Frontier,
};
use crate::wire::{ExploreSpec, WireMsg};
use ktudc_model::budget::{AbortReason, Budget};
use ktudc_model::Run;
use ktudc_store::{Journal, SyncPolicy};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;

/// The fixed breadth-first fan-out width of checkpointed explorations.
///
/// Deliberately NOT derived from the thread count: the subtree split must
/// replay identically on any machine that resumes the journal.
pub const CHECKPOINT_SUBTREE_TARGET: usize = 64;

/// One journal entry of a checkpointed exploration, JSON-encoded.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
enum JournalEntry {
    /// First entry of every journal: pins the job and the subtree split.
    Header {
        spec: ExploreSpec,
        subtree_target: usize,
    },
    /// A completed subtree: its frontier index and its capped DFS output.
    Subtree {
        index: usize,
        runs: Vec<Run<WireMsg>>,
        complete: bool,
    },
    /// The degenerate all-leaves case (the whole space fit inside the
    /// frontier): the final assembled result in one entry.
    Leaves {
        runs: Vec<Run<WireMsg>>,
        complete: bool,
    },
}

/// What a checkpointed exploration did: how much was replayed from the
/// journal versus computed fresh.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointStats {
    /// Independent subtrees the exploration splits into.
    pub total_subtrees: usize,
    /// Subtrees whose runs were replayed from the journal.
    pub resumed_subtrees: usize,
    /// Subtrees computed (and journaled) by this invocation.
    pub computed_subtrees: usize,
    /// Valid journal entries found at open (including the header).
    pub replayed_entries: u64,
    /// Torn/corrupt bytes the journal layer truncated at open.
    pub truncated_bytes: u64,
    /// Whether the journal already existed (i.e. this was a resume).
    pub resumed: bool,
}

/// The outcome of a *budgeted* checkpointed exploration
/// ([`explore_spec_checkpointed_budgeted`]).
#[derive(Debug)]
pub enum CheckpointOutcome {
    /// The exploration ran to its natural end.
    Done(ExploreResult<WireMsg>),
    /// The budget tripped. The journal holds only subtrees whose DFS
    /// finished *before* the trip, so resuming against it with a fresh
    /// budget reproduces the uninterrupted result bit-identically.
    Aborted {
        /// Why the budget tripped.
        reason: AbortReason,
        /// Runs assembled from the subtrees available at the trip
        /// (journaled or in-memory); `None` when the trip preceded the
        /// first full run. When present, always `complete == false`.
        partial: Option<ExploreResult<WireMsg>>,
        /// Subtrees durable in the journal — the resume position.
        subtrees_done: usize,
    },
}

/// Runs the exploration a spec describes, checkpointing completed
/// subtrees to the journal at `path` so a killed job can resume. The
/// result is bit-identical to [`explore_spec`](crate::explore_spec) for
/// the same spec, whatever mixture of replay and fresh computation
/// produced it.
///
/// `sync` sets the fsync discipline of the journal
/// ([`SyncPolicy::Always`] for crash tests, [`SyncPolicy::EveryN`] to
/// amortize when losing a few recomputable subtrees is acceptable).
///
/// # Errors
///
/// Returns the spec-validation error, any I/O failure, a journal written
/// for a *different* spec, or an unparseable (version-skewed) journal.
pub fn explore_spec_checkpointed(
    spec: &ExploreSpec,
    path: &Path,
    sync: SyncPolicy,
) -> Result<(ExploreResult<WireMsg>, CheckpointStats), String> {
    match explore_spec_checkpointed_budgeted(spec, path, sync, None)? {
        (CheckpointOutcome::Done(result), stats) => Ok((result, stats)),
        (CheckpointOutcome::Aborted { .. }, _) => {
            unreachable!("an unbudgeted exploration cannot abort")
        }
    }
}

/// [`explore_spec_checkpointed`] under an optional [`Budget`].
///
/// When the budget trips, the walk stops cooperatively and returns
/// [`CheckpointOutcome::Aborted`] with the partial system and the resume
/// position. The abort rule that keeps resumption sound: a subtree is
/// journaled only if the budget had not tripped by the time its batch
/// finished — a budget-truncated subtree looks exactly like a run-cap-
/// truncated one (`complete == false`) and journaling it would silently
/// poison every later resume, so whole batches in flight at the trip are
/// kept in-memory (for the partial result) but *not* journaled, and a
/// resume recomputes them.
///
/// # Errors
///
/// Same failure modes as [`explore_spec_checkpointed`].
pub fn explore_spec_checkpointed_budgeted(
    spec: &ExploreSpec,
    path: &Path,
    sync: SyncPolicy,
    budget: Option<&Budget>,
) -> Result<(CheckpointOutcome, CheckpointStats), String> {
    let config = spec.to_config()?;
    let (mut journal, recovered) = Journal::recover(path, sync)
        .map_err(|e| format!("checkpoint journal {}: {e}", path.display()))?;

    let mut stats = CheckpointStats {
        replayed_entries: recovered.entries.len() as u64,
        truncated_bytes: recovered.truncated_bytes,
        resumed: recovered.existed && !recovered.entries.is_empty(),
        ..CheckpointStats::default()
    };

    // Replay the journal: header first, then completed subtrees.
    let mut subtree_target = CHECKPOINT_SUBTREE_TARGET;
    let mut done: HashMap<usize, (Vec<Run<WireMsg>>, bool)> = HashMap::new();
    let mut leaves: Option<(Vec<Run<WireMsg>>, bool)> = None;
    for (i, bytes) in recovered.entries.iter().enumerate() {
        let entry: JournalEntry = decode_entry(bytes).map_err(|e| {
            format!(
                "checkpoint journal {}: entry {i} does not parse ({e}); \
                     the journal was written by an incompatible version",
                path.display()
            )
        })?;
        match (i, entry) {
            (
                0,
                JournalEntry::Header {
                    spec: pinned,
                    subtree_target: target,
                },
            ) => {
                if pinned != *spec {
                    return Err(format!(
                        "checkpoint journal {} was written for a different exploration; \
                         refusing to merge (delete it to start over)",
                        path.display()
                    ));
                }
                subtree_target = target;
            }
            (0, _) => {
                return Err(format!(
                    "checkpoint journal {}: first entry is not a header",
                    path.display()
                ));
            }
            (
                _,
                JournalEntry::Subtree {
                    index,
                    runs,
                    complete,
                },
            ) => {
                done.insert(index, (runs, complete));
            }
            (_, JournalEntry::Leaves { runs, complete }) => {
                leaves = Some((runs, complete));
            }
            (_, JournalEntry::Header { .. }) => {
                return Err(format!(
                    "checkpoint journal {}: duplicate header at entry {i}",
                    path.display()
                ));
            }
        }
    }
    if recovered.entries.is_empty() {
        append(
            &mut journal,
            &JournalEntry::Header {
                spec: spec.clone(),
                subtree_target,
            },
        )?;
    }

    let frontier: Frontier<WireMsg, _> =
        expand_frontier(&config, &|p| spec.protocol.instantiate(p), subtree_target);

    if frontier.exhausted(&config) {
        // Whole space fit inside the frontier: one terminal entry.
        stats.total_subtrees = 1;
        if let Some((runs, complete)) = leaves {
            stats.resumed_subtrees = 1;
            return Ok((
                CheckpointOutcome::Done(ExploreResult {
                    system: ktudc_model::System::new(runs),
                    complete,
                }),
                stats,
            ));
        }
        if let Some(b) = budget {
            if let Err(reason) = b.check() {
                return Ok((
                    CheckpointOutcome::Aborted {
                        reason,
                        partial: None,
                        subtrees_done: 0,
                    },
                    stats,
                ));
            }
        }
        let result = frontier.leaves_result(&config);
        journal
            .append(&ckpt_codec::encode_leaves(
                result.system.runs(),
                result.complete,
            ))
            .map_err(|e| format!("checkpoint append: {e}"))?;
        stats.computed_subtrees = 1;
        return Ok((CheckpointOutcome::Done(result), stats));
    }

    let Frontier { level, t, p_idx } = frontier;
    stats.total_subtrees = level.len();

    // Split the frontier into already-journaled subtrees and fresh work.
    let mut results: Vec<Option<(Vec<Run<WireMsg>>, bool)>> = Vec::with_capacity(level.len());
    let mut todo = Vec::new();
    for (index, state) in level.into_iter().enumerate() {
        match done.remove(&index) {
            Some(replayed) => {
                stats.resumed_subtrees += 1;
                results.push(Some(replayed));
            }
            None => {
                results.push(None);
                todo.push((index, state));
            }
        }
    }

    // Compute missing subtrees in small parallel chunks, journaling after
    // each chunk so a kill between chunks loses at most one chunk of
    // work. Chunk size tracks the worker count; it affects only the
    // checkpoint cadence, never the output (assembly is by index). The
    // fan-out steals: subtree sizes are uneven, so contiguous chunking
    // would park finished workers behind the unluckiest one.
    // A computed subtree: its index, its runs, and its completeness.
    type Computed = (usize, (Vec<Run<WireMsg>>, bool));
    // At least 8 per chunk so group commit amortizes even on one core;
    // a kill between syncs costs at most one chunk of recomputation.
    let chunk = (ktudc_par::thread_count().max(1) * 2).max(8);
    for batch in todo.chunks(chunk) {
        if let Some(b) = budget {
            if b.check().is_err() {
                break;
            }
        }
        let (computed, _): (Vec<Computed>, _) =
            ktudc_par::par_map_steal(batch.to_vec(), |(index, mut state)| {
                (index, subtree_runs(&config, &mut state, t, p_idx, budget))
            });
        // If the budget tripped during this batch, at least one of its
        // subtrees was abort-truncated — and an abort-truncated subtree is
        // indistinguishable from a legitimately run-cap-truncated one
        // (`complete == false` either way). Journaling it would poison
        // every later resume, so the whole batch stays in-memory (it still
        // feeds the partial result) and a resume recomputes it.
        let tripped = budget.is_some_and(|b| b.tripped().is_some());
        if !tripped {
            // Group commit: one framed write and at most one fsync for
            // the whole chunk, instead of an fsync per subtree. Durability
            // granularity is unchanged (frames validate individually; a
            // torn batch recovers its prefix and the rest is recomputed).
            let entries: Vec<Vec<u8>> = computed
                .iter()
                .map(|(index, (runs, complete))| {
                    ckpt_codec::encode_subtree(*index, runs, *complete)
                })
                .collect();
            journal
                .append_batch(&entries)
                .map_err(|e| format!("checkpoint append: {e}"))?;
            stats.computed_subtrees += computed.len();
        }
        for (index, runs_complete) in computed {
            results[index] = Some(runs_complete);
        }
        if tripped {
            break;
        }
    }
    journal
        .sync()
        .map_err(|e| format!("checkpoint journal {}: sync: {e}", path.display()))?;

    if let Some(reason) = budget.and_then(Budget::tripped) {
        let subtrees_done = stats.resumed_subtrees + stats.computed_subtrees;
        let available: Vec<(Vec<Run<WireMsg>>, bool)> = results.into_iter().flatten().collect();
        let (runs, _) = assemble_subtree_runs(available, config.max_runs);
        return Ok((
            CheckpointOutcome::Aborted {
                reason,
                partial: (!runs.is_empty()).then(|| ExploreResult {
                    system: ktudc_model::System::new(runs),
                    complete: false,
                }),
                subtrees_done,
            },
            stats,
        ));
    }

    let ordered: Vec<(Vec<Run<WireMsg>>, bool)> = results
        .into_iter()
        .map(|r| r.expect("every subtree index resolved"))
        .collect();
    Ok((
        CheckpointOutcome::Done(assemble_subtrees(ordered, config.max_runs)),
        stats,
    ))
}

/// Resumes (or, if already finished, replays) the checkpointed
/// exploration journaled at `path`, reading the pinned [`ExploreSpec`]
/// from the journal header instead of requiring the caller to restate
/// it. This is what a `--resume <checkpoint>` CLI does.
///
/// # Errors
///
/// Returns an error when `path` does not exist (a missing journal is
/// *not* silently started fresh — there is no spec to start from), has
/// no parseable header, or when [`explore_spec_checkpointed`] fails.
pub fn resume_checkpoint(
    path: &Path,
    sync: SyncPolicy,
) -> Result<(ExploreSpec, ExploreResult<WireMsg>, CheckpointStats), String> {
    if !path.exists() {
        return Err(format!(
            "no checkpoint journal at {}; nothing to resume",
            path.display()
        ));
    }
    let header = {
        let (journal, recovered) = Journal::recover(path, SyncPolicy::Never)
            .map_err(|e| format!("checkpoint journal {}: {e}", path.display()))?;
        drop(journal);
        let Some(first) = recovered.entries.first() else {
            return Err(format!(
                "checkpoint journal {} is empty; nothing to resume",
                path.display()
            ));
        };
        std::str::from_utf8(first)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str::<JournalEntry>(s).map_err(|e| e.to_string()))
            .map_err(|e| {
                format!(
                    "checkpoint journal {}: header does not parse ({e})",
                    path.display()
                )
            })?
    };
    let JournalEntry::Header { spec, .. } = header else {
        return Err(format!(
            "checkpoint journal {}: first entry is not a header",
            path.display()
        ));
    };
    let (result, stats) = explore_spec_checkpointed(&spec, path, sync)?;
    Ok((spec, result, stats))
}

/// Serializes and appends one entry (the JSON form — used for the
/// header; run-carrying entries go through the binary codec).
fn append(journal: &mut Journal, entry: &JournalEntry) -> Result<(), String> {
    let bytes = serde_json::to_string(entry)
        .map_err(|e| format!("checkpoint encode: {e}"))?
        .into_bytes();
    journal
        .append(&bytes)
        .map_err(|e| format!("checkpoint append: {e}"))
}

/// Decodes one journal entry: binary (tagged) entries through the
/// compact codec, everything else — the header, and whole journals
/// written before the codec existed — as JSON.
fn decode_entry(bytes: &[u8]) -> Result<JournalEntry, String> {
    if ckpt_codec::is_binary(bytes) {
        return Ok(match ckpt_codec::decode(bytes)? {
            ckpt_codec::RunsEntry::Subtree {
                index,
                runs,
                complete,
            } => JournalEntry::Subtree {
                index,
                runs,
                complete,
            },
            ckpt_codec::RunsEntry::Leaves { runs, complete } => {
                JournalEntry::Leaves { runs, complete }
            }
        });
    }
    std::str::from_utf8(bytes)
        .map_err(|e| e.to_string())
        .and_then(|s| serde_json::from_str(s).map_err(|e| e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{run_explore_spec, system_digest, WireProtocol};
    use std::path::PathBuf;

    struct TempPath(PathBuf);

    impl TempPath {
        fn new(tag: &str) -> Self {
            let mut p = std::env::temp_dir();
            p.push(format!(
                "ktudc-checkpoint-test-{tag}-{}",
                std::process::id()
            ));
            let _ = std::fs::remove_file(&p);
            TempPath(p)
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn oneshot_spec() -> ExploreSpec {
        let mut spec = ExploreSpec::new(2, 3);
        spec.max_failures = 1;
        spec.protocol = WireProtocol::OneShot {
            from: 0,
            to: 1,
            msg: 7,
        };
        spec
    }

    #[test]
    fn fresh_checkpointed_run_matches_direct_exploration() {
        let tmp = TempPath::new("fresh");
        let spec = oneshot_spec();
        let (result, stats) = explore_spec_checkpointed(&spec, &tmp.0, SyncPolicy::Never).unwrap();
        let direct = run_explore_spec(&spec).unwrap();
        assert_eq!(system_digest(&result.system), direct.digest);
        assert_eq!(result.complete, direct.complete);
        assert_eq!(result.system.len(), direct.runs);
        assert!(!stats.resumed);
        assert_eq!(stats.computed_subtrees, stats.total_subtrees);
        assert_eq!(stats.resumed_subtrees, 0);
    }

    #[test]
    fn second_invocation_replays_everything_bit_identically() {
        let tmp = TempPath::new("replay");
        let spec = oneshot_spec();
        let (first, _) = explore_spec_checkpointed(&spec, &tmp.0, SyncPolicy::Never).unwrap();
        let (second, stats) = explore_spec_checkpointed(&spec, &tmp.0, SyncPolicy::Never).unwrap();
        assert!(stats.resumed);
        assert_eq!(stats.computed_subtrees, 0);
        assert_eq!(stats.resumed_subtrees, stats.total_subtrees);
        assert_eq!(first.system.runs(), second.system.runs());
        assert_eq!(system_digest(&first.system), system_digest(&second.system));
    }

    #[test]
    fn torn_tail_resumes_to_the_identical_digest() {
        let tmp = TempPath::new("torn");
        let spec = oneshot_spec();
        let baseline = run_explore_spec(&spec).unwrap();
        explore_spec_checkpointed(&spec, &tmp.0, SyncPolicy::Never).unwrap();

        // Simulate a kill mid-append: tear bytes off the journal tail.
        let bytes = std::fs::read(&tmp.0).unwrap();
        std::fs::write(&tmp.0, &bytes[..bytes.len() - bytes.len() / 3]).unwrap();

        let (resumed, stats) = explore_spec_checkpointed(&spec, &tmp.0, SyncPolicy::Never).unwrap();
        assert!(stats.truncated_bytes > 0 || stats.computed_subtrees > 0);
        assert_eq!(system_digest(&resumed.system), baseline.digest);
        assert_eq!(resumed.complete, baseline.complete);
    }

    #[test]
    fn journal_for_a_different_spec_is_refused() {
        let tmp = TempPath::new("mismatch");
        let spec = oneshot_spec();
        explore_spec_checkpointed(&spec, &tmp.0, SyncPolicy::Never).unwrap();
        let other = ExploreSpec::new(2, 2);
        let err = explore_spec_checkpointed(&other, &tmp.0, SyncPolicy::Never).unwrap_err();
        assert!(err.contains("different exploration"), "{err}");
    }

    #[test]
    fn all_leaves_case_checkpoints_and_replays() {
        // Horizon 1 with 2 idle processes: the space fits inside the
        // frontier, exercising the Leaves path.
        let tmp = TempPath::new("leaves");
        let spec = ExploreSpec::new(2, 1);
        let direct = run_explore_spec(&spec).unwrap();
        let (first, s1) = explore_spec_checkpointed(&spec, &tmp.0, SyncPolicy::Never).unwrap();
        assert_eq!(system_digest(&first.system), direct.digest);
        assert_eq!(s1.computed_subtrees, 1);
        let (second, s2) = explore_spec_checkpointed(&spec, &tmp.0, SyncPolicy::Never).unwrap();
        assert_eq!(system_digest(&second.system), direct.digest);
        assert_eq!(s2.resumed_subtrees, 1);
        assert_eq!(s2.computed_subtrees, 0);
    }

    #[test]
    fn resume_reads_the_spec_from_the_header() {
        let tmp = TempPath::new("resume-header");
        let spec = oneshot_spec();
        let baseline = run_explore_spec(&spec).unwrap();
        explore_spec_checkpointed(&spec, &tmp.0, SyncPolicy::Never).unwrap();

        // Tear the tail so the resume has real work to do.
        let bytes = std::fs::read(&tmp.0).unwrap();
        std::fs::write(&tmp.0, &bytes[..bytes.len() - bytes.len() / 4]).unwrap();

        let (recovered_spec, result, _stats) =
            resume_checkpoint(&tmp.0, SyncPolicy::Never).unwrap();
        assert_eq!(recovered_spec, spec);
        assert_eq!(system_digest(&result.system), baseline.digest);
    }

    #[test]
    fn resume_refuses_missing_and_headerless_journals() {
        let missing = TempPath::new("resume-missing");
        let err = resume_checkpoint(&missing.0, SyncPolicy::Never).unwrap_err();
        assert!(err.contains("nothing to resume"), "{err}");
        // A missing journal must not be created by the failed resume.
        assert!(!missing.0.exists());

        let empty = TempPath::new("resume-empty");
        {
            let _ = ktudc_store::Journal::create(&empty.0, SyncPolicy::Never).unwrap();
        }
        let err = resume_checkpoint(&empty.0, SyncPolicy::Never).unwrap_err();
        assert!(err.contains("nothing to resume"), "{err}");
    }

    #[test]
    fn budget_aborted_checkpoint_resumes_to_the_identical_digest() {
        let tmp = TempPath::new("budget-abort");
        let spec = oneshot_spec();
        let baseline = run_explore_spec(&spec).unwrap();

        // Probe how many polls a full checkpointed walk takes (on a
        // scratch journal), then allow only half: the abort is then
        // guaranteed on any machine, whatever its fan-out.
        let probe = Budget::unlimited();
        {
            let scratch = TempPath::new("budget-abort-probe");
            explore_spec_checkpointed_budgeted(&spec, &scratch.0, SyncPolicy::Never, Some(&probe))
                .unwrap();
        }
        let budget = Budget::unlimited().with_max_steps(probe.steps() / 2);
        let (outcome, _stats) =
            explore_spec_checkpointed_budgeted(&spec, &tmp.0, SyncPolicy::Never, Some(&budget))
                .unwrap();
        let CheckpointOutcome::Aborted {
            reason,
            partial,
            subtrees_done,
        } = outcome
        else {
            panic!("a half-walk step cap must abort this exploration");
        };
        assert_eq!(reason, ktudc_model::AbortReason::StepLimit);
        if let Some(partial) = &partial {
            assert!(!partial.complete);
            assert!(partial.system.len() <= baseline.runs);
        }
        assert!(subtrees_done < CHECKPOINT_SUBTREE_TARGET);

        // Resume with no budget: the journal must contain only clean
        // subtrees, so the final result is bit-identical to uninterrupted.
        let (resumed, stats) = explore_spec_checkpointed(&spec, &tmp.0, SyncPolicy::Never).unwrap();
        assert!(stats.resumed);
        assert_eq!(system_digest(&resumed.system), baseline.digest);
        assert_eq!(resumed.complete, baseline.complete);
        assert_eq!(resumed.system.len(), baseline.runs);
    }

    #[test]
    fn pre_cancelled_budget_aborts_without_poisoning_the_journal() {
        let tmp = TempPath::new("budget-cancel");
        let spec = oneshot_spec();
        let baseline = run_explore_spec(&spec).unwrap();

        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        let (outcome, _) =
            explore_spec_checkpointed_budgeted(&spec, &tmp.0, SyncPolicy::Never, Some(&budget))
                .unwrap();
        let CheckpointOutcome::Aborted {
            reason,
            subtrees_done,
            ..
        } = outcome
        else {
            panic!("a pre-cancelled budget must abort");
        };
        assert_eq!(reason, ktudc_model::AbortReason::Cancelled);
        assert_eq!(subtrees_done, 0);

        let (resumed, _) = explore_spec_checkpointed(&spec, &tmp.0, SyncPolicy::Never).unwrap();
        assert_eq!(system_digest(&resumed.system), baseline.digest);
    }

    #[test]
    fn run_cap_semantics_survive_checkpointing() {
        let tmp = TempPath::new("cap");
        let mut spec = oneshot_spec();
        spec.max_runs = 10;
        let direct = run_explore_spec(&spec).unwrap();
        assert!(!direct.complete);
        let (result, _) = explore_spec_checkpointed(&spec, &tmp.0, SyncPolicy::Never).unwrap();
        assert_eq!(system_digest(&result.system), direct.digest);
        assert!(!result.complete);
        let (replayed, _) = explore_spec_checkpointed(&spec, &tmp.0, SyncPolicy::Never).unwrap();
        assert_eq!(system_digest(&replayed.system), direct.digest);
    }
}
