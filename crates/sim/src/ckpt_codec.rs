//! Compact binary codec for the hot checkpoint-journal entries.
//!
//! Measured on the perf recovery workload, JSON encoding of `Subtree`
//! entries costs several times the exploration itself — the journaling
//! tax was ~97% serialization. This codec writes the same information in
//! a dense little-endian form (tag bytes for event variants, raw
//! integers for times and process indices), an order of magnitude
//! smaller and faster than the JSON path.
//!
//! Only the run-carrying entries (`Subtree`, `Leaves`) use it; the
//! `Header` entry stays JSON so `resume` can keep reading the pinned
//! [`ExploreSpec`](crate::wire::ExploreSpec) with serde. The two formats
//! coexist in one journal and are distinguished by the first byte: JSON
//! entries start with `{` (0x7B), binary entries with a tag in
//! `0x01..=0x02`. Journals written before this codec existed are pure
//! JSON and still decode.
//!
//! Decoding does not trust the bytes: runs are rebuilt through
//! [`RunBuilder`] in slot order (tick-ascending, process-ascending —
//! exactly how the explorer generated them), so every model-level
//! validity rule (R2 one-event-per-tick, R4 crash-finality, channel
//! send/receive matching) is re-checked. A corrupted-but-checksummed
//! entry surfaces as a decode error, never as an inconsistent run.

use crate::wire::WireMsg;
use ktudc_model::{ActionId, Event, ProcSet, ProcessId, Run, RunBuilder, SuspectReport, Time};

/// Entry tag for a `Subtree` payload.
pub const TAG_SUBTREE: u8 = 0x01;
/// Entry tag for a `Leaves` payload.
pub const TAG_LEAVES: u8 = 0x02;

const EV_SEND: u8 = 0x00;
const EV_RECV: u8 = 0x01;
const EV_INIT: u8 = 0x02;
const EV_DO: u8 = 0x03;
const EV_CRASH: u8 = 0x04;
const EV_SUSPECT: u8 = 0x05;
const SUSPECT_STANDARD: u8 = 0x00;
const SUSPECT_GENERALIZED: u8 = 0x01;

/// A decoded run-carrying entry.
#[derive(Debug, PartialEq, Eq)]
pub enum RunsEntry {
    /// A completed subtree: frontier index plus its capped DFS output.
    Subtree {
        /// The subtree's frontier index.
        index: usize,
        /// The subtree's runs.
        runs: Vec<Run<WireMsg>>,
        /// Whether the subtree hit no run cap.
        complete: bool,
    },
    /// The degenerate all-leaves entry.
    Leaves {
        /// The assembled runs.
        runs: Vec<Run<WireMsg>>,
        /// Whether the exploration hit no run cap.
        complete: bool,
    },
}

/// Encodes a `Subtree` entry from borrowed runs (no intermediate clone).
#[must_use]
pub fn encode_subtree(index: usize, runs: &[Run<WireMsg>], complete: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + runs.iter().map(run_size_hint).sum::<usize>());
    out.push(TAG_SUBTREE);
    out.extend_from_slice(
        &u32::try_from(index)
            .expect("subtree index fits u32")
            .to_le_bytes(),
    );
    push_runs(&mut out, runs, complete);
    out
}

/// Encodes a `Leaves` entry from borrowed runs.
#[must_use]
pub fn encode_leaves(runs: &[Run<WireMsg>], complete: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + runs.iter().map(run_size_hint).sum::<usize>());
    out.push(TAG_LEAVES);
    push_runs(&mut out, runs, complete);
    out
}

/// Whether an entry's bytes are in this binary format (as opposed to the
/// legacy/Header JSON form, which always starts with `{`).
#[must_use]
pub fn is_binary(bytes: &[u8]) -> bool {
    matches!(bytes.first(), Some(&TAG_SUBTREE | &TAG_LEAVES))
}

/// Decodes a binary entry, revalidating every run through [`RunBuilder`].
///
/// # Errors
///
/// Returns a description of the first malformed byte range or
/// model-validity violation.
pub fn decode(bytes: &[u8]) -> Result<RunsEntry, String> {
    let mut r = Reader { bytes, at: 0 };
    let tag = r.u8()?;
    match tag {
        TAG_SUBTREE => {
            let index = r.u32()? as usize;
            let (runs, complete) = read_runs(&mut r)?;
            r.done()?;
            Ok(RunsEntry::Subtree {
                index,
                runs,
                complete,
            })
        }
        TAG_LEAVES => {
            let (runs, complete) = read_runs(&mut r)?;
            r.done()?;
            Ok(RunsEntry::Leaves { runs, complete })
        }
        other => Err(format!("unknown checkpoint entry tag {other:#04x}")),
    }
}

fn run_size_hint(run: &Run<WireMsg>) -> usize {
    // ~12 bytes per event plus fixed run framing; an estimate, only used
    // to seed the Vec capacity.
    16 + (0..run.n())
        .map(|p| 4 + run.history(ProcessId::new(p)).len() * 12)
        .sum::<usize>()
}

fn push_runs(out: &mut Vec<u8>, runs: &[Run<WireMsg>], complete: bool) {
    out.push(u8::from(complete));
    out.extend_from_slice(
        &u32::try_from(runs.len())
            .expect("run count fits u32")
            .to_le_bytes(),
    );
    for run in runs {
        push_run(out, run);
    }
}

fn push_run(out: &mut Vec<u8>, run: &Run<WireMsg>) {
    out.push(u8::try_from(run.n()).expect("process count fits u8"));
    out.extend_from_slice(&run.horizon().to_le_bytes());
    for p in 0..run.n() {
        let p = ProcessId::new(p);
        let count = run.history(p).len();
        out.extend_from_slice(
            &u32::try_from(count)
                .expect("event count fits u32")
                .to_le_bytes(),
        );
        for (time, event) in run.timed_history(p) {
            out.extend_from_slice(&time.to_le_bytes());
            push_event(out, event);
        }
    }
}

fn push_event(out: &mut Vec<u8>, event: &Event<WireMsg>) {
    match event {
        Event::Send { to, msg } => {
            out.push(EV_SEND);
            out.push(u8::try_from(to.index()).expect("process fits u8"));
            out.push(*msg);
        }
        Event::Recv { from, msg } => {
            out.push(EV_RECV);
            out.push(u8::try_from(from.index()).expect("process fits u8"));
            out.push(*msg);
        }
        Event::Init { action } => {
            out.push(EV_INIT);
            push_action(out, *action);
        }
        Event::Do { action } => {
            out.push(EV_DO);
            push_action(out, *action);
        }
        Event::Crash => out.push(EV_CRASH),
        Event::Suspect(report) => {
            out.push(EV_SUSPECT);
            match report {
                SuspectReport::Standard(set) => {
                    out.push(SUSPECT_STANDARD);
                    push_set(out, *set);
                }
                SuspectReport::Generalized { set, min_faulty } => {
                    out.push(SUSPECT_GENERALIZED);
                    push_set(out, *set);
                    out.extend_from_slice(
                        &u32::try_from(*min_faulty)
                            .expect("bound fits u32")
                            .to_le_bytes(),
                    );
                }
            }
        }
    }
}

fn push_action(out: &mut Vec<u8>, action: ActionId) {
    out.push(u8::try_from(action.initiator().index()).expect("process fits u8"));
    out.extend_from_slice(&action.seq().to_le_bytes());
}

fn push_set(out: &mut Vec<u8>, set: ProcSet) {
    let bits = set.iter().fold(0u128, |acc, p| acc | (1 << p.index()));
    out.extend_from_slice(&bits.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn take(&mut self, len: usize) -> Result<&[u8], String> {
        let end = self.at.checked_add(len).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(format!(
                "checkpoint entry truncated at byte {} (wanted {len} more of {})",
                self.at,
                self.bytes.len()
            ));
        };
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn u128(&mut self) -> Result<u128, String> {
        Ok(u128::from_le_bytes(
            self.take(16)?.try_into().expect("16 bytes"),
        ))
    }

    fn done(&self) -> Result<(), String> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(format!(
                "checkpoint entry has {} trailing bytes",
                self.bytes.len() - self.at
            ))
        }
    }
}

fn read_runs(r: &mut Reader) -> Result<(Vec<Run<WireMsg>>, bool), String> {
    let complete = match r.u8()? {
        0 => false,
        1 => true,
        other => return Err(format!("bad completeness byte {other:#04x}")),
    };
    let count = r.u32()? as usize;
    let mut runs = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        runs.push(read_run(r)?);
    }
    Ok((runs, complete))
}

fn read_run(r: &mut Reader) -> Result<Run<WireMsg>, String> {
    let n = r.u8()? as usize;
    if n == 0 || n > ProcessId::MAX_PROCESSES {
        return Err(format!("bad process count {n}"));
    }
    let horizon: Time = r.u64()?;
    let mut logs: Vec<Vec<(Time, Event<WireMsg>)>> = Vec::with_capacity(n);
    for _ in 0..n {
        let count = r.u32()? as usize;
        let mut log = Vec::with_capacity(count.min(1 << 20));
        let mut last: Time = 0;
        for _ in 0..count {
            let time = r.u64()?;
            if time < last || time > horizon {
                return Err(format!(
                    "event time {time} out of order or past horizon {horizon}"
                ));
            }
            last = time;
            log.push((time, read_event(r)?));
        }
        logs.push(log);
    }
    // Replay in slot order (tick-ascending, process-ascending — the
    // explorer's own generation order), so same-tick sends land before
    // the receives that consume them and the builder's validation holds.
    // Iterate only the ticks that carry events: a corrupted horizon is
    // bounded-checked above per event, but must not drive the loop
    // count (2^63 empty ticks would spin forever).
    let mut times: Vec<Time> = logs.iter().flatten().map(|&(t, _)| t).collect();
    times.sort_unstable();
    times.dedup();
    let mut builder = RunBuilder::new(n);
    let mut cursors = vec![0usize; n];
    for &t in &times {
        for (p, log) in logs.iter().enumerate() {
            let at = &mut cursors[p];
            while *at < log.len() && log[*at].0 == t {
                builder
                    .append(ProcessId::new(p), t, log[*at].1.clone())
                    .map_err(|e| format!("journaled run fails validation: {e}"))?;
                *at += 1;
            }
        }
    }
    Ok(builder.finish(horizon))
}

fn read_event(r: &mut Reader) -> Result<Event<WireMsg>, String> {
    match r.u8()? {
        EV_SEND => Ok(Event::Send {
            to: read_process(r)?,
            msg: r.u8()?,
        }),
        EV_RECV => Ok(Event::Recv {
            from: read_process(r)?,
            msg: r.u8()?,
        }),
        EV_INIT => Ok(Event::Init {
            action: read_action(r)?,
        }),
        EV_DO => Ok(Event::Do {
            action: read_action(r)?,
        }),
        EV_CRASH => Ok(Event::Crash),
        EV_SUSPECT => match r.u8()? {
            SUSPECT_STANDARD => Ok(Event::Suspect(SuspectReport::Standard(read_set(r)?))),
            SUSPECT_GENERALIZED => {
                let set = read_set(r)?;
                let min_faulty = r.u32()? as usize;
                Ok(Event::Suspect(SuspectReport::Generalized {
                    set,
                    min_faulty,
                }))
            }
            other => Err(format!("bad suspect-report tag {other:#04x}")),
        },
        other => Err(format!("bad event tag {other:#04x}")),
    }
}

fn read_process(r: &mut Reader) -> Result<ProcessId, String> {
    let i = r.u8()? as usize;
    if i >= ProcessId::MAX_PROCESSES {
        return Err(format!("process index {i} out of range"));
    }
    Ok(ProcessId::new(i))
}

fn read_action(r: &mut Reader) -> Result<ActionId, String> {
    let initiator = read_process(r)?;
    let seq = r.u32()?;
    Ok(ActionId::new(initiator, seq))
}

fn read_set(r: &mut Reader) -> Result<ProcSet, String> {
    let bits = r.u128()?;
    let mut set = ProcSet::new();
    for i in 0..ProcessId::MAX_PROCESSES {
        if bits & (1 << i) != 0 {
            set.insert(ProcessId::new(i));
        }
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_runs() -> Vec<Run<WireMsg>> {
        // One run exercising every event variant, one trivial run.
        let mut b = RunBuilder::new(3);
        let alpha = ActionId::new(ProcessId::new(0), 0);
        b.append(ProcessId::new(0), 1, Event::Init { action: alpha })
            .unwrap();
        b.append(
            ProcessId::new(0),
            2,
            Event::Send {
                to: ProcessId::new(1),
                msg: 7,
            },
        )
        .unwrap();
        b.append(
            ProcessId::new(1),
            2,
            Event::Recv {
                from: ProcessId::new(0),
                msg: 7,
            },
        )
        .unwrap();
        b.append(
            ProcessId::new(1),
            3,
            Event::Suspect(SuspectReport::Standard(ProcSet::singleton(ProcessId::new(
                2,
            )))),
        )
        .unwrap();
        b.append(ProcessId::new(2), 3, Event::Crash).unwrap();
        b.append(ProcessId::new(0), 4, Event::Do { action: alpha })
            .unwrap();
        b.append(
            ProcessId::new(1),
            5,
            Event::Suspect(SuspectReport::Generalized {
                set: ProcSet::singleton(ProcessId::new(2)),
                min_faulty: 1,
            }),
        )
        .unwrap();
        let full = b.finish(6);
        let empty = RunBuilder::new(3).finish(6);
        vec![full, empty]
    }

    #[test]
    fn subtree_roundtrips_every_event_variant() {
        let runs = sample_runs();
        let bytes = encode_subtree(42, &runs, false);
        assert!(is_binary(&bytes));
        match decode(&bytes).expect("roundtrip") {
            RunsEntry::Subtree {
                index,
                runs: back,
                complete,
            } => {
                assert_eq!(index, 42);
                assert!(!complete);
                assert_eq!(back, runs);
            }
            other => panic!("wrong entry kind: {other:?}"),
        }
    }

    #[test]
    fn leaves_roundtrip() {
        let runs = sample_runs();
        let bytes = encode_leaves(&runs, true);
        match decode(&bytes).expect("roundtrip") {
            RunsEntry::Leaves {
                runs: back,
                complete,
            } => {
                assert!(complete);
                assert_eq!(back, runs);
            }
            other => panic!("wrong entry kind: {other:?}"),
        }
    }

    #[test]
    fn truncation_anywhere_is_an_error_never_a_panic() {
        let bytes = encode_subtree(7, &sample_runs(), true);
        for len in 0..bytes.len() {
            assert!(
                decode(&bytes[..len]).is_err(),
                "a {len}-byte prefix of a {}-byte entry must not decode",
                bytes.len()
            );
        }
    }

    #[test]
    fn corrupt_interior_bytes_cannot_smuggle_an_invalid_run() {
        // Flip every byte in turn; each mutation must either fail to
        // decode or still decode to *model-valid* runs (the builder
        // replay re-checks validity; equality with the original is not
        // required — e.g. a flipped message byte is a different but
        // valid run).
        let runs = sample_runs();
        let bytes = encode_subtree(3, &runs, true);
        for at in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[at] ^= 0x40;
            if let Ok(RunsEntry::Subtree { runs, .. } | RunsEntry::Leaves { runs, .. }) =
                decode(&mutated)
            {
                for run in runs {
                    run.check_conditions(run.n())
                        .expect("decoded run must be valid");
                }
            }
        }
    }

    #[test]
    fn json_is_never_mistaken_for_binary() {
        assert!(!is_binary(b"{\"Header\":{}}"));
        assert!(!is_binary(b""));
    }
}
