//! Exhaustive schedule enumeration for small systems.
//!
//! The epistemic model checker of `ktudc-epistemic` is *exact* only over the
//! complete system of runs a protocol generates in a context. For small
//! parameters (2–3 processes, horizons of a handful of ticks) that system is
//! finite and enumerable: at each tick each live process nondeterministically
//! chooses to **stutter**, **crash** (while the failure budget lasts),
//! **receive** one pending message, or take its next **protocol action**.
//! The explorer branches over every combination, capturing the scheduler
//! adversary in full.
//!
//! Message loss needs no separate branch: at a finite horizon, a message
//! dropped by the channel is indistinguishable from one that is still in
//! flight, and the stutter branch already covers "not delivered yet" at
//! every tick. The generated systems therefore satisfy the unreliable-
//! communication reading of the paper's condition A2 (any message may fail
//! to arrive).
//!
//! Failure-detector behaviour is *not* branched over (that would explode the
//! state space); instead an optional deterministic oracle function maps the
//! branch-local crashed set to a report, which suffices for perfect-FD
//! contexts.
//!
//! # Exploration strategy
//!
//! [`explore`] shares ONE mutable state across the whole depth-first tree
//! and rewinds it with an undo log ([`RunBuilder::unappend`] plus reverse
//! channel/protocol bookkeeping) instead of deep-cloning builder, channels
//! and every protocol at each branch; only the one protocol a branch
//! actually steps is cloned. The first few scheduling slots are expanded
//! breadth-first into independent subtrees which are then explored on
//! multiple threads (`ktudc-par`, feature `parallel`). Both changes are
//! invisible in the output: runs come back in exactly the depth-first
//! branch order of the original clone-per-branch enumerator, which is kept
//! as [`explore_reference`] and held identical by differential tests.

use crate::protocol::{ProtoAction, Protocol};
use ktudc_model::budget::{AbortReason, Budget};
use ktudc_model::hashing::StableHasher;
use ktudc_model::{Event, ProcSet, ProcessId, Run, RunBuilder, SuspectReport, System, Time};
use std::collections::{HashSet, VecDeque};
use std::hash::{Hash, Hasher};

/// Deterministic failure-detector rule for the explorer: given the polling
/// process, the tick, and the branch-local crashed set, optionally produce a
/// report.
pub type ExplorerFd = fn(ProcessId, Time, ProcSet) -> Option<SuspectReport>;

/// Configuration of an exhaustive exploration.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Number of processes (keep at 2–3).
    pub n: usize,
    /// Last tick to simulate (keep small; branching is exponential in
    /// `n · horizon`).
    pub horizon: Time,
    /// Maximum number of crashes across the run (the context's bound `t`).
    pub max_failures: usize,
    /// If `false`, a process only stutters when it has no other choice,
    /// shrinking the space at the cost of scheduler coverage.
    pub allow_stutter: bool,
    /// Optional deterministic failure-detector rule.
    pub fd: Option<ExplorerFd>,
    /// With `fd_forced` (the default) a tick where the rule emits gives the
    /// process no other choice (deterministic reports, smaller state
    /// space); otherwise the report is one more branch — needed when the
    /// A-conditions must hold, since a forced report can preempt a crash.
    pub fd_forced: bool,
    /// Initiations: `(tick, action)`. With `forced_initiations` (the
    /// default) the initiator deterministically takes the `init` slot at
    /// that tick; with optional initiations the `init` becomes one more
    /// *branch* available at every tick from the scheduled one onward (and
    /// may never be taken at all), which matches contexts where requests
    /// arrive asynchronously — the setting the knowledge conditions A3/A4
    /// of the paper presuppose.
    pub initiations: Vec<(Time, ktudc_model::ActionId)>,
    /// See [`ExploreConfig::initiations`].
    pub forced_initiations: bool,
    /// Hard cap on generated runs; exceeded explorations are truncated and
    /// flagged in [`ExploreResult::complete`].
    pub max_runs: usize,
    /// State-space reduction knobs. All off by default, in which case the
    /// enumeration is bit-identical to [`explore_reference`]; see
    /// [`Reduction`] for what turning them on preserves and what it
    /// sacrifices.
    pub reduction: Reduction,
}

/// State-space reduction knobs for [`explore`] (via
/// [`explore_with_stats`]). Everything here is **off by default**.
///
/// * `symmetry` — classes of interchangeable processes. At every tick
///   boundary the explorer canonicalizes the branch state under all
///   process relabelings that permute within each class (identity
///   elsewhere) and prunes any state isomorphic to one already explored.
///   Every pruned run is a relabeling of a kept run (the cover property
///   pinned by the differential proptests), so verdicts of formulas
///   *closed under the declared relabelings* — the UDC conditions are
///   symmetric conjunctions over all processes — are preserved. The
///   caller vouches that class members are genuinely interchangeable:
///   `make` gives them the same protocol (differing only in `me`), no
///   initiation names them (initiators are auto-excluded), and the FD
///   rule treats them uniformly. Dedup is by 64-bit canonical digest, so
///   it inherits the usual 2⁻⁶⁴ collision caveat of hash-compaction.
/// * `sleep_sets` — prunes *delayed re-delivery*: a `recv` that was
///   already enabled at the previous tick and refused (the process
///   stuttered over it) is not offered again this tick. The pruned run is
///   a stutter-shifted variant of a kept run, so timestamp-free verdicts
///   at the horizon are preserved for stutter-insensitive,
///   time-oblivious protocols (pinned empirically by the verdict
///   proptests); exact run sets are **not** — do not combine with
///   digest-identity expectations. Inert when `allow_stutter` is off
///   (the rule's premise — an idle refusal — cannot arise).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Reduction {
    /// Classes of interchangeable process indices (disjoint; singletons
    /// and out-of-range indices are ignored).
    pub symmetry: Vec<Vec<usize>>,
    /// Prune deliveries refused at the previous tick (see type docs).
    pub sleep_sets: bool,
}

impl Reduction {
    /// Whether any knob is on (i.e. [`explore`] must take the reduced
    /// path rather than the reference-identical one).
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.sleep_sets || self.symmetry.iter().any(|c| c.len() > 1)
    }
}

/// Counters from one exploration: how much work each reduction saved and
/// how the parallel fan-out behaved. All zero when the corresponding
/// mechanism is off (or the run was single-threaded).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReductionStats {
    /// Tick-boundary states pruned as symmetric duplicates of an
    /// already-explored state (each prunes an entire subtree).
    pub states_canonicalized: u64,
    /// `recv` branches pruned by the sleep-set rule.
    pub sleep_set_pruned: u64,
    /// Subtrees a fan-out worker took from a sibling's share.
    pub steals: u64,
    /// Worker threads the fan-out used.
    pub workers: usize,
}

impl ReductionStats {
    fn absorb(&mut self, other: ReductionStats) {
        self.states_canonicalized += other.states_canonicalized;
        self.sleep_set_pruned += other.sleep_set_pruned;
        self.steals += other.steals;
    }
}

impl ExploreConfig {
    /// A default exploration: `n` processes, the given horizon, up to
    /// `n − 1` failures, stutter allowed, no failure detector, no workload,
    /// 200 000-run cap.
    #[must_use]
    pub fn new(n: usize, horizon: Time) -> Self {
        ExploreConfig {
            n,
            horizon,
            max_failures: n.saturating_sub(1),
            allow_stutter: true,
            fd: None,
            fd_forced: true,
            initiations: Vec::new(),
            forced_initiations: true,
            max_runs: 200_000,
            reduction: Reduction::default(),
        }
    }

    /// Declares `class` as interchangeable processes for symmetry
    /// reduction (see [`Reduction`]). May be called once per class.
    #[must_use]
    pub fn symmetric(mut self, class: Vec<usize>) -> Self {
        self.reduction.symmetry.push(class);
        self
    }

    /// Enables sleep-set pruning of refused deliveries (see
    /// [`Reduction`]).
    #[must_use]
    pub fn with_sleep_sets(mut self) -> Self {
        self.reduction.sleep_sets = true;
        self
    }

    /// Sets the failure budget.
    #[must_use]
    pub fn max_failures(mut self, t: usize) -> Self {
        self.max_failures = t;
        self
    }

    /// Sets the deterministic failure-detector rule.
    #[must_use]
    pub fn fd(mut self, fd: ExplorerFd) -> Self {
        self.fd = Some(fd);
        self
    }

    /// Makes failure-detector reports a branch instead of preempting the
    /// slot (see [`ExploreConfig::fd_forced`]).
    #[must_use]
    pub fn optional_fd(mut self) -> Self {
        self.fd_forced = false;
        self
    }

    /// Adds an initiation to the workload.
    #[must_use]
    pub fn initiate(mut self, tick: Time, action: ktudc_model::ActionId) -> Self {
        self.initiations.push((tick, action));
        self
    }

    /// Makes initiations optional branches instead of forced events: from
    /// the scheduled tick onward the initiator *may* initiate (once), or
    /// never. Required for the A3/A4 context conditions to hold, since
    /// forced initiations make `init` derivable from elapsed time.
    #[must_use]
    pub fn optional_initiations(mut self) -> Self {
        self.forced_initiations = false;
        self
    }

    /// Sets the run cap.
    #[must_use]
    pub fn max_runs(mut self, cap: usize) -> Self {
        self.max_runs = cap;
        self
    }

    /// Disables the unconditional stutter branch.
    #[must_use]
    pub fn without_stutter(mut self) -> Self {
        self.allow_stutter = false;
        self
    }
}

/// The result of an exploration.
#[derive(Debug)]
pub struct ExploreResult<M> {
    /// The generated system.
    pub system: System<M>,
    /// `false` if the run cap truncated the enumeration, in which case
    /// downstream epistemic verdicts are only sound for *violations* (a
    /// larger system can only refute more knowledge, not restore it).
    pub complete: bool,
}

/// The outcome of a *budgeted* exploration ([`explore_budgeted`]).
#[derive(Debug)]
pub enum ExploreStatus<M> {
    /// The enumeration ran to its natural end (which may still be
    /// truncated by `max_runs` — see [`ExploreResult::complete`]).
    Done(ExploreResult<M>),
    /// The budget tripped mid-walk. `partial` holds every run fully
    /// generated before the trip (always `complete == false`); the
    /// verdict soundness caveat of [`ExploreResult::complete`] applies.
    Aborted {
        /// Why the budget tripped.
        reason: AbortReason,
        /// Runs generated before the trip — `None` when the budget
        /// tripped before the first full run (a [`System`] must be
        /// nonempty for knowledge to be well defined). When present,
        /// always `complete == false`.
        partial: Option<ExploreResult<M>>,
    },
}

#[derive(Clone)]
pub(crate) struct ExploreState<M, P> {
    builder: RunBuilder<M>,
    protocols: Vec<P>,
    /// FIFO channel contents, indexed `from * n + to`.
    channels: Vec<VecDeque<M>>,
    crashes: usize,
    /// Which entries of `config.initiations` have fired, by index.
    inits_done: Vec<bool>,
    /// Sleep masks, one per process: bit `q` set means the process
    /// stuttered at its previous slot while channel `q → p` held a
    /// deliverable message (it *refused* that delivery). Maintained only
    /// when sleep-set reduction is on; always all-zero otherwise.
    sleep: Vec<u128>,
}

/// One process's options at a tick.
enum Choice<M> {
    Stutter,
    Crash,
    Init(ktudc_model::ActionId),
    Suspect(SuspectReport),
    Recv(ProcessId),
    Act(ProtoAction<M>),
}

fn initial_state<M, P, F>(config: &ExploreConfig, make: &F) -> ExploreState<M, P>
where
    M: Clone + Eq + Hash,
    P: Protocol<M> + Clone,
    F: Fn(ProcessId) -> P,
{
    let n = config.n;
    ExploreState {
        builder: RunBuilder::new(n),
        protocols: ProcessId::all(n)
            .map(|p| {
                let mut proto = make(p);
                proto.start(p, n);
                proto
            })
            .collect(),
        channels: (0..n * n).map(|_| VecDeque::new()).collect(),
        crashes: 0,
        inits_done: vec![false; config.initiations.len()],
        sleep: vec![0; n],
    }
}

/// Whether sleep-set pruning is live for this config: the knob is on AND
/// stutter is allowed (without a stutter branch the "idle refusal" the
/// rule keys on cannot arise, and pruning could strand a process with no
/// choice at all).
fn sleep_sets_on(config: &ExploreConfig) -> bool {
    config.reduction.sleep_sets && config.allow_stutter
}

/// One process relabeling: `fwd[old] = new` and its inverse. Identity
/// outside the declared symmetry classes.
struct Perm {
    fwd: Vec<usize>,
    inv: Vec<usize>,
}

/// The validated symmetry group of a config: every composition of
/// within-class permutations (identity included, first). `None` when no
/// usable class survives validation — then symmetry reduction is off.
struct SymmetryPlan {
    perms: Vec<Perm>,
}

/// All permutations of `items` (as reordered copies). Sizes here are
/// class sizes (≤ a handful), so the factorial is tiny.
fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for (i, &head) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, head);
            out.push(tail);
        }
    }
    out
}

/// Validates the declared classes and materializes the full permutation
/// group. Classes are clipped to in-range indices, deduplicated, made
/// disjoint (first declaration wins), and stripped of any process that an
/// initiation names as initiator — relabeling such a process would move
/// its `init` event onto a process the config forbids from initiating,
/// producing non-runs of the context.
fn symmetry_plan(config: &ExploreConfig) -> Option<SymmetryPlan> {
    let n = config.n;
    let mut claimed = vec![false; n];
    for (_, a) in &config.initiations {
        if a.initiator().index() < n {
            claimed[a.initiator().index()] = true;
        }
    }
    let mut classes: Vec<Vec<usize>> = Vec::new();
    for declared in &config.reduction.symmetry {
        let mut class: Vec<usize> = declared
            .iter()
            .copied()
            .filter(|&p| p < n && !claimed[p])
            .collect();
        class.sort_unstable();
        class.dedup();
        for &p in &class {
            claimed[p] = true;
        }
        if class.len() > 1 {
            classes.push(class);
        }
    }
    if classes.is_empty() {
        return None;
    }
    // The group is the product of per-class symmetric groups: extend each
    // accumulated permutation by every arrangement of the next class.
    let mut fwds: Vec<Vec<usize>> = vec![(0..n).collect()];
    for class in &classes {
        let images = permutations(class);
        let mut next = Vec::with_capacity(fwds.len() * images.len());
        for base in &fwds {
            for image in &images {
                let mut fwd = base.clone();
                for (&slot, &target) in class.iter().zip(image.iter()) {
                    fwd[slot] = target;
                }
                next.push(fwd);
            }
        }
        fwds = next;
    }
    let perms = fwds
        .into_iter()
        .map(|fwd| {
            let mut inv = vec![0; n];
            for (old, &new) in fwd.iter().enumerate() {
                inv[new] = old;
            }
            Perm { fwd, inv }
        })
        .collect();
    Some(SymmetryPlan { perms })
}

/// Hashes one event with every embedded process identity pushed through
/// `fwd`. Message payloads hash as-is — the caller vouches they do not
/// encode process identities (true of every wire protocol in this repo).
fn hash_event_relabeled<M: Hash>(h: &mut StableHasher, event: &Event<M>, fwd: &[usize]) {
    match event {
        Event::Send { to, msg } => {
            h.write_u8(0);
            h.write_usize(fwd[to.index()]);
            msg.hash(h);
        }
        Event::Recv { from, msg } => {
            h.write_u8(1);
            h.write_usize(fwd[from.index()]);
            msg.hash(h);
        }
        Event::Init { action } => {
            h.write_u8(2);
            h.write_usize(fwd[action.initiator().index()]);
            h.write_u32(action.seq());
        }
        Event::Do { action } => {
            h.write_u8(3);
            h.write_usize(fwd[action.initiator().index()]);
            h.write_u32(action.seq());
        }
        Event::Crash => h.write_u8(4),
        Event::Suspect(report) => {
            h.write_u8(5);
            match report {
                SuspectReport::Standard(set) => {
                    h.write_u8(0);
                    h.write_u128(relabel_set(*set, fwd));
                }
                SuspectReport::Generalized { set, min_faulty } => {
                    h.write_u8(1);
                    h.write_u128(relabel_set(*set, fwd));
                    h.write_usize(*min_faulty);
                }
            }
        }
    }
}

/// A [`ProcSet`] as a bitmask with every member pushed through `fwd`.
fn relabel_set(set: ProcSet, fwd: &[usize]) -> u128 {
    set.iter().fold(0u128, |m, p| m | (1 << fwd[p.index()]))
}

/// A per-process sleep mask (bits are *sender* indices) pushed through
/// `fwd`.
fn relabel_mask(mask: u128, fwd: &[usize], n: usize) -> u128 {
    (0..n)
        .filter(|&q| mask >> q & 1 == 1)
        .fold(0u128, |m, q| m | (1 << fwd[q]))
}

/// Structural digest of the branch state as seen through one relabeling:
/// the state that would have resulted had class members been named
/// differently from the start. Two states with equal digests under some
/// pair of group elements are isomorphic (modulo 64-bit collisions), and
/// — protocols being deterministic functions of `(me, observed history)`
/// — generate relabeled-identical subtrees.
fn relabeled_digest<M, P>(state: &ExploreState<M, P>, n: usize, t: Time, perm: &Perm) -> u64
where
    M: Clone + Eq + Hash,
{
    let mut h = StableHasher::new();
    // The tick matters: an all-stutter tick leaves every component below
    // unchanged, but the state one tick later has one tick less future —
    // pruning it as "the same" would drop its runs entirely.
    h.write_u64(t);
    for new_p in 0..n {
        let old_p = ProcessId::new(perm.inv[new_p]);
        for (time, event) in state.builder.timed_history(old_p) {
            h.write_u64(time);
            hash_event_relabeled(&mut h, event, &perm.fwd);
        }
        h.write_u8(0xFE);
    }
    for new_from in 0..n {
        for new_to in 0..n {
            let chan = &state.channels[perm.inv[new_from] * n + perm.inv[new_to]];
            h.write_usize(chan.len());
            for msg in chan {
                msg.hash(&mut h);
            }
        }
    }
    h.write_usize(state.crashes);
    for &done in &state.inits_done {
        h.write_u8(u8::from(done));
    }
    for new_p in 0..n {
        h.write_u128(relabel_mask(state.sleep[perm.inv[new_p]], &perm.fwd, n));
    }
    h.finish()
}

/// The canonical digest: minimum of [`relabeled_digest`] over the whole
/// group. Equal canonical digests ⇒ the states are in the same orbit
/// (group closure turns the two witnessing relabelings into one mapping
/// state to state), so one representative subtree covers both.
fn canonical_digest<M, P>(state: &ExploreState<M, P>, n: usize, t: Time, plan: &SymmetryPlan) -> u64
where
    M: Clone + Eq + Hash,
{
    plan.perms
        .iter()
        .map(|perm| relabeled_digest(state, n, t, perm))
        .min()
        .expect("the group always contains the identity")
}

/// One finished run's canonical digest: the minimum, over the config's
/// declared symmetry group, of a digest of its per-process histories with
/// every process index relabeled. `timed` selects whether event times are
/// hashed alongside the events.
fn run_canonical_digest<M>(run: &Run<M>, plan: &SymmetryPlan, timed: bool) -> u64
where
    M: Clone + Eq + Hash,
{
    plan.perms
        .iter()
        .map(|perm| {
            let mut h = StableHasher::new();
            for new_p in 0..run.n() {
                let old_p = ProcessId::new(perm.inv[new_p]);
                for (time, event) in run.timed_history(old_p) {
                    if timed {
                        h.write_u64(time);
                    }
                    hash_event_relabeled(&mut h, event, &perm.fwd);
                }
                h.write_u8(0xFE);
            }
            h.finish()
        })
        .min()
        .expect("the group always contains the identity")
}

/// The canonical run digests of a system under `config`'s declared
/// [`Reduction`] symmetry, in run order — the differential-testing
/// companion of the reduced explorer.
///
/// Two runs get equal digests iff (up to the 2⁻⁶⁴ hash-collision caveat)
/// one is a process relabeling of the other under the declared classes.
/// A reduced exploration *covers* its reference iff the reference's
/// digest **set** is contained in the reduced one's (the reduced side
/// keeps one representative per orbit, so multisets differ by design):
///
/// * symmetry-only reductions preserve the `timed = true` digest set;
/// * sleep sets shift delivery times, so anything involving them is
///   compared with `timed = false` (the per-process *event sequences*,
///   which is what a time-oblivious protocol observes).
///
/// With no symmetry declared the digest is plain (identity-only), making
/// this a run-content digest usable for exact set comparisons too.
#[must_use]
pub fn canonical_run_digests<M>(config: &ExploreConfig, system: &System<M>, timed: bool) -> Vec<u64>
where
    M: Clone + Eq + Hash,
{
    let identity = SymmetryPlan {
        perms: vec![Perm {
            fwd: (0..config.n).collect(),
            inv: (0..config.n).collect(),
        }],
    };
    let plan = symmetry_plan(config).unwrap_or(identity);
    system
        .runs()
        .iter()
        .map(|run| run_canonical_digest(run, &plan, timed))
        .collect()
}

/// Exhaustively enumerates the system generated by the protocol in the
/// configured context.
///
/// Runs are produced in depth-first branch order — identical, run for run,
/// to [`explore_reference`] — but the tree is walked copy-light (one shared
/// state, rewound via an undo log) and the top-level branches fan out
/// across threads when the `parallel` feature is on.
///
/// # Panics
///
/// Panics if `config.n` is zero or exceeds the supported maximum.
pub fn explore<M, P, F>(config: &ExploreConfig, make: F) -> ExploreResult<M>
where
    M: Clone + Eq + Hash + Send,
    P: Protocol<M> + Clone + Send,
    F: Fn(ProcessId) -> P,
{
    explore_with_stats(config, make).0
}

/// [`explore`] returning its [`ReductionStats`] alongside the result —
/// the entry point for benchmarks and any caller that wants to see how
/// much the configured reductions and the work-stealing fan-out did.
///
/// With `config.reduction` at its default this is exactly [`explore`]
/// (bit-identical to [`explore_reference`]); with reductions on, the run
/// set shrinks as documented on [`Reduction`]. Either way the output is
/// the same for every thread count.
///
/// # Panics
///
/// Panics if `config.n` is zero or exceeds the supported maximum.
pub fn explore_with_stats<M, P, F>(
    config: &ExploreConfig,
    make: F,
) -> (ExploreResult<M>, ReductionStats)
where
    M: Clone + Eq + Hash + Send,
    P: Protocol<M> + Clone + Send,
    F: Fn(ProcessId) -> P,
{
    let mut stats = ReductionStats::default();
    let (runs, complete) = explore_runs(config, &make, None, &mut stats);
    (
        ExploreResult {
            system: System::new(runs),
            complete,
        },
        stats,
    )
}

/// [`explore`] under a [`Budget`]: the walk polls the budget at every DFS
/// node and unwinds cooperatively when it trips, returning the runs
/// generated so far as a partial (incomplete) system.
///
/// The budget is shared across all fan-out workers, so the first worker
/// to exhaust it makes every sibling's next poll fail fast. Run order is
/// identical to [`explore`] up to the truncation point.
///
/// # Panics
///
/// Panics if `config.n` is zero or exceeds the supported maximum.
pub fn explore_budgeted<M, P, F>(
    config: &ExploreConfig,
    make: F,
    budget: &Budget,
) -> ExploreStatus<M>
where
    M: Clone + Eq + Hash + Send,
    P: Protocol<M> + Clone + Send,
    F: Fn(ProcessId) -> P,
{
    let mut stats = ReductionStats::default();
    let (runs, complete) = explore_runs(config, &make, Some(budget), &mut stats);
    match budget.tripped() {
        Some(reason) => ExploreStatus::Aborted {
            reason,
            partial: (!runs.is_empty()).then(|| ExploreResult {
                system: System::new(runs),
                complete: false,
            }),
        },
        None => ExploreStatus::Done(ExploreResult {
            system: System::new(runs),
            complete,
        }),
    }
}

fn explore_runs<M, P, F>(
    config: &ExploreConfig,
    make: &F,
    budget: Option<&Budget>,
    stats: &mut ReductionStats,
) -> (Vec<Run<M>>, bool)
where
    M: Clone + Eq + Hash + Send,
    P: Protocol<M> + Clone + Send,
    F: Fn(ProcessId) -> P,
{
    if config.reduction.is_active() {
        return explore_runs_reduced(config, make, budget, stats);
    }
    let threads = ktudc_par::thread_count();
    stats.workers = threads.max(1);
    if threads <= 1 {
        let mut state = initial_state(config, make);
        let mut runs: Vec<Run<M>> = Vec::new();
        let mut complete = true;
        dfs(config, &mut state, 1, 0, &mut runs, &mut complete, budget);
        return (runs, complete);
    }

    let frontier = expand_frontier(config, make, threads * 4);
    if frontier.exhausted(config) {
        return frontier.leaves_runs(config);
    }

    let Frontier { level, t, p_idx } = frontier;
    // Work-stealing fan-out: subtree sizes are wildly uneven (one subtree
    // can hold most of the run tree), so contiguous chunking would
    // serialize behind the unluckiest worker. Results come back in
    // frontier order, so the output is unchanged.
    type SubtreeOut<M> = Vec<(Vec<Run<M>>, bool)>;
    let (results, steal_stats): (SubtreeOut<M>, _) = ktudc_par::par_map_steal(level, |mut st| {
        subtree_runs(config, &mut st, t, p_idx, budget)
    });
    stats.steals = steal_stats.steals;
    stats.workers = steal_stats.workers;
    assemble_subtree_runs(results, config.max_runs)
}

/// The fixed fan-out width of *reduced* explorations. Deliberately not
/// the thread count: symmetry dedup is hierarchical (frontier-level, then
/// per-subtree seen-sets), so the subtree split is part of the output —
/// pinning it makes the reduced run set identical on every machine and
/// thread count, exactly like the checkpointed explorer pins its own
/// split.
pub(crate) const REDUCED_FRONTIER_TARGET: usize = 64;

/// The reduced exploration: symmetry-canonicalized, sleep-set-pruned,
/// fanned out over the work-stealing map. Structure mirrors the plain
/// path, with the frontier target fixed (see [`REDUCED_FRONTIER_TARGET`])
/// and each subtree carrying its own canonical-digest seen-set — dedup
/// therefore never races across threads and the output is deterministic.
/// Cross-subtree duplicates are missed (only frontier-level dedup catches
/// those), costing reduction, never soundness.
fn explore_runs_reduced<M, P, F>(
    config: &ExploreConfig,
    make: &F,
    budget: Option<&Budget>,
    stats: &mut ReductionStats,
) -> (Vec<Run<M>>, bool)
where
    M: Clone + Eq + Hash + Send,
    P: Protocol<M> + Clone + Send,
    F: Fn(ProcessId) -> P,
{
    let plan = symmetry_plan(config);
    let sleep_on = sleep_sets_on(config);
    let frontier = expand_frontier_reduced(
        config,
        make,
        REDUCED_FRONTIER_TARGET,
        plan.as_ref(),
        sleep_on,
        stats,
    );
    if frontier.exhausted(config) {
        stats.workers = 1;
        return frontier.leaves_runs(config);
    }
    let Frontier { level, t, p_idx } = frontier;
    let threads = ktudc_par::thread_count();
    if threads <= 1 {
        stats.workers = 1;
        let mut results = Vec::with_capacity(level.len());
        for mut st in level {
            let mut local = ReductionStats::default();
            results.push(subtree_runs_reduced(
                config,
                plan.as_ref(),
                sleep_on,
                &mut st,
                t,
                p_idx,
                budget,
                &mut local,
            ));
            stats.absorb(local);
        }
        return assemble_subtree_runs(results, config.max_runs);
    }
    let plan = plan.as_ref();
    let (outcomes, steal_stats) = ktudc_par::par_map_steal(level, |mut st| {
        let mut local = ReductionStats::default();
        let result = subtree_runs_reduced(
            config, plan, sleep_on, &mut st, t, p_idx, budget, &mut local,
        );
        (result, local)
    });
    let mut results = Vec::with_capacity(outcomes.len());
    for (result, local) in outcomes {
        results.push(result);
        stats.absorb(local);
    }
    stats.steals = steal_stats.steals;
    stats.workers = steal_stats.workers;
    assemble_subtree_runs(results, config.max_runs)
}

/// A breadth-first expansion of the first scheduling slots: independent
/// subtree roots, all parked at the same `(t, p_idx)` slot, whose
/// level-order concatenation is exactly the sequential depth-first run
/// order. Produced by [`expand_frontier`]; consumed by [`explore`]'s
/// fan-out and by the checkpointed explorer (`crate::checkpoint`), which
/// journals completed subtrees by their index in `level`.
pub(crate) struct Frontier<M, P> {
    /// The subtree roots, in sequential branch order.
    pub(crate) level: Vec<ExploreState<M, P>>,
    /// Tick of the next unexplored slot.
    pub(crate) t: Time,
    /// Process index of the next unexplored slot.
    pub(crate) p_idx: usize,
}

impl<M, P> Frontier<M, P> {
    /// Whether expansion ran off the horizon — every state is a complete
    /// leaf and there are no subtrees to descend into.
    pub(crate) fn exhausted(&self, config: &ExploreConfig) -> bool {
        self.t > config.horizon
    }

    /// Assembles the all-leaves case into a result (only valid when
    /// [`exhausted`](Self::exhausted)).
    pub(crate) fn leaves_result(&self, config: &ExploreConfig) -> ExploreResult<M>
    where
        M: Clone + Eq + Hash,
    {
        let (runs, complete) = self.leaves_runs(config);
        ExploreResult {
            system: System::new(runs),
            complete,
        }
    }

    /// Raw-runs form of [`leaves_result`](Self::leaves_result).
    pub(crate) fn leaves_runs(&self, config: &ExploreConfig) -> (Vec<Run<M>>, bool)
    where
        M: Clone + Eq + Hash,
    {
        let mut runs: Vec<Run<M>> = self
            .level
            .iter()
            .map(|s| s.builder.snapshot(config.horizon))
            .collect();
        let complete = runs.len() < config.max_runs;
        runs.truncate(config.max_runs);
        (runs, complete)
    }
}

/// Expands the first scheduling slots breadth-first until there are at
/// least `target` independent subtrees (or the horizon is exhausted).
/// The fan-out they seed is invisible in the output for ANY `target`,
/// which is why the checkpointed explorer can pin its own fixed target
/// (recorded in the checkpoint header) and still reproduce [`explore`]'s
/// exact run order.
pub(crate) fn expand_frontier<M, P, F>(
    config: &ExploreConfig,
    make: &F,
    target: usize,
) -> Frontier<M, P>
where
    M: Clone + Eq + Hash,
    P: Protocol<M> + Clone,
    F: Fn(ProcessId) -> P,
{
    let mut t: Time = 1;
    let mut p_idx = 0usize;
    let mut level: Vec<ExploreState<M, P>> = vec![initial_state(config, make)];
    while level.len() < target && t <= config.horizon {
        let p = ProcessId::new(p_idx);
        let mut next = Vec::with_capacity(level.len() * 2);
        for mut st in level {
            for choice in choices_for(config, &mut st, p, t) {
                let mut s = st.clone();
                let _ = apply(config, &mut s, p, t, choice);
                next.push(s);
            }
        }
        level = next;
        p_idx += 1;
        if p_idx == config.n {
            p_idx = 0;
            t += 1;
        }
    }
    Frontier { level, t, p_idx }
}

/// Runs one frontier subtree to completion (its own copy-light DFS,
/// capped at `config.max_runs`), returning its runs and completeness.
pub(crate) fn subtree_runs<M, P>(
    config: &ExploreConfig,
    state: &mut ExploreState<M, P>,
    t: Time,
    p_idx: usize,
    budget: Option<&Budget>,
) -> (Vec<Run<M>>, bool)
where
    M: Clone + Eq + Hash,
    P: Protocol<M> + Clone,
{
    let mut runs = Vec::new();
    let mut complete = true;
    dfs(config, state, t, p_idx, &mut runs, &mut complete, budget);
    (runs, complete)
}

/// [`expand_frontier`] with the reductions applied while expanding: the
/// first slots are part of the tree, so sleep-set pruning filters their
/// choices, and at every completed tick the level is deduplicated by
/// canonical digest in frontier order (the first orbit member reached
/// keeps the subtree; later ones are pruned). Level order is preserved,
/// so the surviving subtrees' concatenation is still the sequential
/// reduced DFS order.
fn expand_frontier_reduced<M, P, F>(
    config: &ExploreConfig,
    make: &F,
    target: usize,
    plan: Option<&SymmetryPlan>,
    sleep_on: bool,
    stats: &mut ReductionStats,
) -> Frontier<M, P>
where
    M: Clone + Eq + Hash,
    P: Protocol<M> + Clone,
    F: Fn(ProcessId) -> P,
{
    let mut t: Time = 1;
    let mut p_idx = 0usize;
    let mut level: Vec<ExploreState<M, P>> = vec![initial_state(config, make)];
    while level.len() < target && t <= config.horizon {
        let p = ProcessId::new(p_idx);
        let mut next = Vec::with_capacity(level.len() * 2);
        for mut st in level {
            let mut choices = choices_for(config, &mut st, p, t);
            if sleep_on {
                filter_sleeping(&mut choices, st.sleep[p.index()], stats);
            }
            for choice in choices {
                let mut s = st.clone();
                let _ = apply(config, &mut s, p, t, choice);
                next.push(s);
            }
        }
        level = next;
        p_idx += 1;
        if p_idx == config.n {
            p_idx = 0;
            t += 1;
            if let Some(plan) = plan {
                let mut seen = HashSet::new();
                let before = level.len();
                level.retain(|s| seen.insert(canonical_digest(s, config.n, t, plan)));
                stats.states_canonicalized += (before - level.len()) as u64;
            }
        }
    }
    Frontier { level, t, p_idx }
}

/// Drops `Recv` choices whose sender bit is set in the process's sleep
/// mask (the same delivery was enabled and refused at the previous slot;
/// the channel head cannot have changed since sends only append).
fn filter_sleeping<M>(choices: &mut Vec<Choice<M>>, mask: u128, stats: &mut ReductionStats) {
    if mask == 0 {
        return;
    }
    let before = choices.len();
    choices.retain(|c| !matches!(c, Choice::Recv(from) if mask >> from.index() & 1 == 1));
    stats.sleep_set_pruned += (before - choices.len()) as u64;
}

/// [`subtree_runs`] through the reduced DFS, with a fresh per-subtree
/// seen-set.
#[allow(clippy::too_many_arguments)]
fn subtree_runs_reduced<M, P>(
    config: &ExploreConfig,
    plan: Option<&SymmetryPlan>,
    sleep_on: bool,
    state: &mut ExploreState<M, P>,
    t: Time,
    p_idx: usize,
    budget: Option<&Budget>,
    stats: &mut ReductionStats,
) -> (Vec<Run<M>>, bool)
where
    M: Clone + Eq + Hash,
    P: Protocol<M> + Clone,
{
    let mut runs = Vec::new();
    let mut complete = true;
    let mut seen = HashSet::new();
    dfs_reduced(
        config,
        plan,
        sleep_on,
        state,
        t,
        p_idx,
        &mut runs,
        &mut complete,
        &mut seen,
        stats,
        budget,
    );
    (runs, complete)
}

/// The copy-light DFS with reductions: identical walk to [`dfs`], plus a
/// canonical-digest check at every tick boundary (pruning whole subtrees
/// of states isomorphic to one already explored in this subtree) and
/// sleep-set filtering of each slot's choices. Sleep masks are saved and
/// restored around apply/revert since [`revert`] does not touch them.
#[allow(clippy::too_many_arguments)]
fn dfs_reduced<M, P>(
    config: &ExploreConfig,
    plan: Option<&SymmetryPlan>,
    sleep_on: bool,
    state: &mut ExploreState<M, P>,
    t: Time,
    p_idx: usize,
    runs: &mut Vec<Run<M>>,
    complete: &mut bool,
    seen: &mut HashSet<u64>,
    stats: &mut ReductionStats,
    budget: Option<&Budget>,
) where
    M: Clone + Eq + Hash,
    P: Protocol<M> + Clone,
{
    if let Some(b) = budget {
        if b.poll().is_err() {
            *complete = false;
            return;
        }
    }
    if runs.len() >= config.max_runs {
        *complete = false;
        return;
    }
    if t > config.horizon {
        runs.push(state.builder.snapshot(config.horizon));
        return;
    }
    if p_idx == config.n {
        if let Some(plan) = plan {
            // Completed tick `t`: prune if an isomorphic state (same
            // canonical digest, which includes the tick) was already
            // explored in this subtree.
            if !seen.insert(canonical_digest(state, config.n, t + 1, plan)) {
                stats.states_canonicalized += 1;
                return;
            }
        }
        dfs_reduced(
            config,
            plan,
            sleep_on,
            state,
            t + 1,
            0,
            runs,
            complete,
            seen,
            stats,
            budget,
        );
        return;
    }
    let p = ProcessId::new(p_idx);
    let mut choices = choices_for(config, state, p, t);
    if sleep_on {
        filter_sleeping(&mut choices, state.sleep[p.index()], stats);
    }
    let saved_sleep = state.sleep[p.index()];
    for choice in choices {
        let undo = apply(config, state, p, t, choice);
        dfs_reduced(
            config,
            plan,
            sleep_on,
            state,
            t,
            p_idx + 1,
            runs,
            complete,
            seen,
            stats,
            budget,
        );
        revert(state, p, undo);
        state.sleep[p.index()] = saved_sleep;
        if runs.len() >= config.max_runs {
            *complete = false;
            return;
        }
    }
}

/// Concatenates per-subtree results (in frontier order) under the run
/// cap. Each subtree was capped at `max_runs` on its own, so the first
/// `max_runs` runs of the concatenation equal the sequential result; the
/// enumeration is complete iff every subtree finished and the total
/// stayed under the cap (matching the sequential flag semantics).
pub(crate) fn assemble_subtrees<M: Eq + Hash>(
    results: Vec<(Vec<Run<M>>, bool)>,
    max_runs: usize,
) -> ExploreResult<M> {
    let (runs, complete) = assemble_subtree_runs(results, max_runs);
    ExploreResult {
        system: System::new(runs),
        complete,
    }
}

/// Raw-runs form of [`assemble_subtrees`], for callers that must tolerate
/// an empty concatenation (a budget abort before the first leaf).
pub(crate) fn assemble_subtree_runs<M: Eq + Hash>(
    results: Vec<(Vec<Run<M>>, bool)>,
    max_runs: usize,
) -> (Vec<Run<M>>, bool) {
    let mut runs: Vec<Run<M>> = Vec::new();
    let mut total = 0usize;
    let mut all_subtrees_complete = true;
    for (rs, c) in results {
        total += rs.len();
        all_subtrees_complete &= c;
        if runs.len() < max_runs {
            let room = max_runs - runs.len();
            runs.extend(rs.into_iter().take(room));
        }
    }
    (runs, all_subtrees_complete && total < max_runs)
}

/// The original clone-per-branch enumerator, kept as the baseline the
/// copy-light [`explore`] is differentially tested (and benchmarked)
/// against.
pub fn explore_reference<M, P, F>(config: &ExploreConfig, make: F) -> ExploreResult<M>
where
    M: Clone + Eq + Hash,
    P: Protocol<M> + Clone,
    F: Fn(ProcessId) -> P,
{
    let state = initial_state(config, &make);
    let mut runs: Vec<Run<M>> = Vec::new();
    let mut complete = true;
    dfs_reference(config, state, 1, 0, &mut runs, &mut complete);
    ExploreResult {
        system: System::new(runs),
        complete,
    }
}

fn choices_for<M, P>(
    config: &ExploreConfig,
    state: &mut ExploreState<M, P>,
    p: ProcessId,
    t: Time,
) -> Vec<Choice<M>>
where
    M: Clone + Eq + Hash,
    P: Protocol<M> + Clone,
{
    let n = config.n;
    if state.builder.crashed().contains(p) {
        return vec![Choice::Stutter];
    }
    // Scheduled initiations: deterministic preemption when forced, an
    // extra branch when optional.
    let mut pending_init: Option<(usize, ktudc_model::ActionId)> = None;
    for (i, &(it, a)) in config.initiations.iter().enumerate() {
        if a.initiator() != p || state.inits_done[i] {
            continue;
        }
        if config.forced_initiations {
            if it == t {
                return vec![Choice::Init(a)];
            }
        } else if it <= t {
            pending_init = Some((i, a));
            break;
        }
    }
    // A deterministic failure-detector report takes the slot when forced;
    // otherwise it becomes one more branch below.
    let mut fd_report = None;
    if let Some(fd) = config.fd {
        if let Some(report) = fd(p, t, state.builder.crashed()) {
            if config.fd_forced {
                return vec![Choice::Suspect(report)];
            }
            fd_report = Some(report);
        }
    }
    let mut choices = Vec::new();
    if config.allow_stutter {
        choices.push(Choice::Stutter);
    }
    if state.crashes < config.max_failures {
        choices.push(Choice::Crash);
    }
    if let Some((_, a)) = pending_init {
        choices.push(Choice::Init(a));
    }
    if let Some(report) = fd_report {
        choices.push(Choice::Suspect(report));
    }
    for from in ProcessId::all(n) {
        if !state.channels[from.index() * n + p.index()].is_empty() {
            choices.push(Choice::Recv(from));
        }
    }
    // `next_action` may mutate protocol state, so probe on a clone and keep
    // the original untouched; the action is re-derived on the branch clone.
    let mut probe = state.protocols[p.index()].clone();
    if let Some(action) = probe.next_action(t) {
        choices.push(Choice::Act(action));
    }
    if choices.is_empty() {
        choices.push(Choice::Stutter);
    }
    choices
}

/// What [`apply`] did to the shared state, with everything needed to take
/// it back. The protocol is the one piece that cannot be rewound (its state
/// transition is opaque), so mutating choices stash a clone of the *single*
/// protocol they step — far lighter than the old whole-state clone.
enum Undo<M, P> {
    Stutter,
    Crash {
        /// Channels to the crashed process that were emptied.
        drained: Vec<(usize, VecDeque<M>)>,
    },
    Init {
        proto: P,
        /// Index into `config.initiations` that was marked done.
        slot: Option<usize>,
    },
    Suspect {
        proto: P,
    },
    Recv {
        proto: P,
        /// Channel index the message was popped from (the message itself is
        /// recovered from the unappended event).
        chan: usize,
    },
    Act {
        proto: P,
        /// Channel index a sent message was enqueued to, if any.
        sent_chan: Option<usize>,
    },
}

/// Applies `choice` to the shared state, returning the undo record.
fn apply<M, P>(
    config: &ExploreConfig,
    state: &mut ExploreState<M, P>,
    p: ProcessId,
    t: Time,
    choice: Choice<M>,
) -> Undo<M, P>
where
    M: Clone + Eq + Hash,
    P: Protocol<M> + Clone,
{
    let n = config.n;
    if sleep_sets_on(config) {
        // A stutter while deliveries were pending is a *refusal*: record
        // which senders' heads were refused, so the next slot can prune
        // re-offering them. Any real event resets the refusal context.
        // Callers that rewind (the reduced DFS) save and restore this mask
        // around apply/revert; clone-per-branch callers need no undo.
        state.sleep[p.index()] = match &choice {
            Choice::Stutter => ProcessId::all(n)
                .filter(|from| !state.channels[from.index() * n + p.index()].is_empty())
                .fold(0u128, |mask, from| mask | (1 << from.index())),
            _ => 0,
        };
    }
    match choice {
        Choice::Stutter => Undo::Stutter,
        Choice::Crash => {
            state
                .builder
                .append(p, t, Event::Crash)
                .expect("crash append");
            state.crashes += 1;
            // Undelivered messages to a crashed process can never be
            // received; clear them so they do not generate choices.
            let mut drained = Vec::new();
            for from in ProcessId::all(n) {
                let idx = from.index() * n + p.index();
                if !state.channels[idx].is_empty() {
                    drained.push((idx, std::mem::take(&mut state.channels[idx])));
                }
            }
            Undo::Crash { drained }
        }
        Choice::Init(action) => {
            let proto = state.protocols[p.index()].clone();
            let event = Event::Init { action };
            state
                .builder
                .append(p, t, event.clone())
                .expect("init append");
            state.protocols[p.index()].observe(t, &event);
            let slot = config.initiations.iter().position(|&(_, a)| a == action);
            if let Some(i) = slot {
                state.inits_done[i] = true;
            }
            Undo::Init { proto, slot }
        }
        Choice::Suspect(report) => {
            let proto = state.protocols[p.index()].clone();
            let event = Event::Suspect(report);
            state
                .builder
                .append(p, t, event.clone())
                .expect("suspect append");
            state.protocols[p.index()].observe(t, &event);
            Undo::Suspect { proto }
        }
        Choice::Recv(from) => {
            let proto = state.protocols[p.index()].clone();
            let chan = from.index() * n + p.index();
            let msg = state.channels[chan]
                .pop_front()
                .expect("choice guaranteed a pending message");
            let event = Event::Recv { from, msg };
            state
                .builder
                .append(p, t, event.clone())
                .expect("recv append");
            state.protocols[p.index()].observe(t, &event);
            Undo::Recv { proto, chan }
        }
        Choice::Act(_) => {
            let proto = state.protocols[p.index()].clone();
            // Re-derive the action on this branch's own protocol state.
            match state.protocols[p.index()].next_action(t) {
                Some(ProtoAction::Send { to, msg }) => {
                    let event = Event::Send {
                        to,
                        msg: msg.clone(),
                    };
                    state
                        .builder
                        .append(p, t, event.clone())
                        .expect("send append");
                    state.protocols[p.index()].observe(t, &event);
                    let sent_chan = if state.builder.crashed().contains(to) {
                        None
                    } else {
                        let c = p.index() * n + to.index();
                        state.channels[c].push_back(msg);
                        Some(c)
                    };
                    Undo::Act { proto, sent_chan }
                }
                Some(ProtoAction::Do(action)) => {
                    let event = Event::Do { action };
                    state
                        .builder
                        .append(p, t, event.clone())
                        .expect("do append");
                    state.protocols[p.index()].observe(t, &event);
                    Undo::Act {
                        proto,
                        sent_chan: None,
                    }
                }
                None => unreachable!("probe saw an action; protocols are deterministic"),
            }
        }
    }
}

/// Rewinds [`apply`]. Undo records must be replayed strictly LIFO across
/// the whole exploration (the recursion structure guarantees it).
fn revert<M, P>(state: &mut ExploreState<M, P>, p: ProcessId, undo: Undo<M, P>)
where
    M: Clone + Eq + Hash,
{
    match undo {
        Undo::Stutter => {}
        Undo::Crash { drained } => {
            state.builder.unappend(p);
            state.crashes -= 1;
            for (idx, q) in drained {
                state.channels[idx] = q;
            }
        }
        Undo::Init { proto, slot } => {
            state.builder.unappend(p);
            state.protocols[p.index()] = proto;
            if let Some(i) = slot {
                state.inits_done[i] = false;
            }
        }
        Undo::Suspect { proto } => {
            state.builder.unappend(p);
            state.protocols[p.index()] = proto;
        }
        Undo::Recv { proto, chan } => {
            match state.builder.unappend(p) {
                Some(Event::Recv { msg, .. }) => state.channels[chan].push_front(msg),
                _ => unreachable!("recv undo must pop the recv it appended"),
            }
            state.protocols[p.index()] = proto;
        }
        Undo::Act { proto, sent_chan } => {
            state.builder.unappend(p);
            if let Some(c) = sent_chan {
                state.channels[c].pop_back();
            }
            state.protocols[p.index()] = proto;
        }
    }
}

/// Copy-light depth-first walk: one shared state, rewound after every
/// branch. Check placement mirrors [`dfs_reference`] exactly so the
/// truncation flag semantics stay identical. A tripped budget behaves
/// like the run cap (marks the walk incomplete and unwinds), except the
/// trip is shared: once any worker trips it, every subtree's next poll
/// fails fast too.
#[allow(clippy::too_many_arguments)]
fn dfs<M, P>(
    config: &ExploreConfig,
    state: &mut ExploreState<M, P>,
    t: Time,
    p_idx: usize,
    runs: &mut Vec<Run<M>>,
    complete: &mut bool,
    budget: Option<&Budget>,
) where
    M: Clone + Eq + Hash,
    P: Protocol<M> + Clone,
{
    if let Some(b) = budget {
        if b.poll().is_err() {
            *complete = false;
            return;
        }
    }
    if runs.len() >= config.max_runs {
        *complete = false;
        return;
    }
    if t > config.horizon {
        runs.push(state.builder.snapshot(config.horizon));
        return;
    }
    if p_idx == config.n {
        dfs(config, state, t + 1, 0, runs, complete, budget);
        return;
    }
    let p = ProcessId::new(p_idx);
    for choice in choices_for(config, state, p, t) {
        let undo = apply(config, state, p, t, choice);
        dfs(config, state, t, p_idx + 1, runs, complete, budget);
        revert(state, p, undo);
        if runs.len() >= config.max_runs {
            *complete = false;
            return;
        }
    }
}

fn dfs_reference<M, P>(
    config: &ExploreConfig,
    mut state: ExploreState<M, P>,
    t: Time,
    p_idx: usize,
    runs: &mut Vec<Run<M>>,
    complete: &mut bool,
) where
    M: Clone + Eq + Hash,
    P: Protocol<M> + Clone,
{
    if runs.len() >= config.max_runs {
        *complete = false;
        return;
    }
    if t > config.horizon {
        runs.push(state.builder.finish(config.horizon));
        return;
    }
    if p_idx == config.n {
        dfs_reference(config, state, t + 1, 0, runs, complete);
        return;
    }
    let p = ProcessId::new(p_idx);
    let n = config.n;
    let choices = choices_for(config, &mut state, p, t);
    let last = choices.len() - 1;
    for (i, choice) in choices.into_iter().enumerate() {
        // Reuse the state on the final branch instead of cloning it.
        let mut s = if i == last {
            std::mem::replace(
                &mut state,
                ExploreState {
                    builder: RunBuilder::new(n),
                    protocols: Vec::new(),
                    channels: Vec::new(),
                    crashes: 0,
                    inits_done: Vec::new(),
                    sleep: Vec::new(),
                },
            )
        } else {
            state.clone()
        };
        let _ = apply(config, &mut s, p, t, choice);
        dfs_reference(config, s, t, p_idx + 1, runs, complete);
        if runs.len() >= config.max_runs {
            *complete = false;
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktudc_model::ActionId;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// A protocol that does nothing, ever.
    #[derive(Clone, Debug)]
    struct Idle;

    impl<M> Protocol<M> for Idle {
        fn start(&mut self, _me: ProcessId, _n: usize) {}
        fn observe(&mut self, _time: Time, _event: &Event<M>) {}
        fn next_action(&mut self, _time: Time) -> Option<ProtoAction<M>> {
            None
        }
        fn quiescent(&self) -> bool {
            true
        }
    }

    /// Sends one message p0 → p1 at the first opportunity.
    #[derive(Clone, Debug)]
    struct OneShot {
        me: ProcessId,
        sent: bool,
    }

    impl Protocol<u8> for OneShot {
        fn start(&mut self, me: ProcessId, _n: usize) {
            self.me = me;
        }
        fn observe(&mut self, _time: Time, event: &Event<u8>) {
            if matches!(event, Event::Send { .. }) {
                self.sent = true;
            }
        }
        fn next_action(&mut self, _time: Time) -> Option<ProtoAction<u8>> {
            if self.me == ProcessId::new(0) && !self.sent {
                Some(ProtoAction::Send {
                    to: ProcessId::new(1),
                    msg: 42,
                })
            } else {
                None
            }
        }
        fn quiescent(&self) -> bool {
            self.sent
        }
    }

    #[test]
    fn idle_no_failures_yields_single_run() {
        let cfg = ExploreConfig::new(2, 3).max_failures(0);
        let result = explore::<u8, _, _>(&cfg, |_| Idle);
        assert!(result.complete);
        // Only stuttering: exactly one run, with empty histories.
        assert_eq!(result.system.len(), 1);
        assert_eq!(result.system.run(0).event_count(), 0);
    }

    #[test]
    fn failure_budget_bounds_crash_count() {
        let cfg = ExploreConfig::new(2, 2).max_failures(1);
        let result = explore::<u8, _, _>(&cfg, |_| Idle);
        assert!(result.complete);
        assert!(result.system.len() > 1);
        for run in result.system.runs() {
            assert!(run.faulty().len() <= 1);
            run.check_conditions(0).unwrap();
        }
        // Some run crashes p0, some run crashes p1, some run crashes nobody.
        let faulties: Vec<ProcSet> = result.system.runs().iter().map(Run::faulty).collect();
        assert!(faulties.contains(&ProcSet::new()));
        assert!(faulties.contains(&ProcSet::singleton(p(0))));
        assert!(faulties.contains(&ProcSet::singleton(p(1))));
    }

    #[test]
    fn oneshot_generates_delivered_and_undelivered_branches() {
        let cfg = ExploreConfig::new(2, 3).max_failures(0);
        let result = explore(&cfg, |_| OneShot {
            me: ProcessId::new(0),
            sent: false,
        });
        assert!(result.complete);
        let mut saw_delivery = false;
        let mut saw_loss = false;
        for run in result.system.runs() {
            run.check_conditions(0).unwrap();
            let received = run.view_at(p(1), run.horizon()).received(p(0), &42);
            let sent = run.view_at(p(0), run.horizon()).sent(p(1), &42);
            if sent && received {
                saw_delivery = true;
            }
            if sent && !received {
                saw_loss = true;
            }
        }
        assert!(saw_delivery, "some schedule delivers the message");
        assert!(saw_loss, "some schedule never delivers it (loss/delay)");
    }

    #[test]
    fn initiations_are_forced_deterministically() {
        let alpha = ActionId::new(p(0), 0);
        let cfg = ExploreConfig::new(2, 2).max_failures(0).initiate(1, alpha);
        let result = explore::<u8, _, _>(&cfg, |_| Idle);
        for run in result.system.runs() {
            assert!(
                run.view_at(p(0), run.horizon()).initiated(alpha),
                "initiation must appear in every run (no crash can preempt it with budget 0)"
            );
        }
    }

    #[test]
    fn fd_rule_takes_the_slot() {
        fn always_report(p: ProcessId, t: Time, crashed: ProcSet) -> Option<SuspectReport> {
            // Report the crashed set at tick 2 only.
            (t == 2 && !crashed.contains(p)).then_some(SuspectReport::Standard(crashed))
        }
        let cfg = ExploreConfig::new(2, 2).max_failures(1).fd(always_report);
        let result = explore::<u8, _, _>(&cfg, |_| Idle);
        for run in result.system.runs() {
            for q in ProcessId::all(2) {
                if run.crash_time(q).is_none_or(|ct| ct > 2) {
                    let reports: Vec<_> = run.view_at(q, 2).suspect_reports().collect();
                    assert_eq!(reports.len(), 1, "live process must report at tick 2");
                    // Perfect-style accuracy: only actually-crashed suspected.
                    if let SuspectReport::Standard(s) = reports[0] {
                        assert!(s.is_subset_of(run.crashed_by(2)));
                    }
                }
            }
        }
    }

    #[test]
    fn run_cap_truncates_and_flags() {
        let cfg = ExploreConfig::new(3, 3).max_runs(10);
        let result = explore::<u8, _, _>(&cfg, |_| Idle);
        assert!(!result.complete);
        assert!(result.system.len() <= 10);
    }

    #[test]
    fn copy_light_explorer_matches_reference() {
        fn report_at_two(p: ProcessId, t: Time, crashed: ProcSet) -> Option<SuspectReport> {
            (t == 2 && !crashed.contains(p)).then_some(SuspectReport::Standard(crashed))
        }
        let alpha = ActionId::new(p(0), 0);
        let configs = vec![
            ExploreConfig::new(2, 3),
            ExploreConfig::new(2, 3).max_failures(0),
            ExploreConfig::new(3, 2).max_runs(50),
            ExploreConfig::new(2, 2)
                .initiate(1, alpha)
                .optional_initiations(),
            ExploreConfig::new(2, 2)
                .max_failures(1)
                .fd(report_at_two)
                .optional_fd(),
            ExploreConfig::new(2, 3).without_stutter(),
        ];
        for cfg in configs {
            let fast = explore::<u8, _, _>(&cfg, |_| Idle);
            let slow = explore_reference::<u8, _, _>(&cfg, |_| Idle);
            assert_eq!(fast.system.runs(), slow.system.runs(), "config {cfg:?}");
            assert_eq!(fast.complete, slow.complete, "config {cfg:?}");
        }
        // And with a protocol that actually sends/receives.
        let cfg = ExploreConfig::new(2, 3).max_failures(1);
        let mk = |_| OneShot {
            me: ProcessId::new(0),
            sent: false,
        };
        let fast = explore(&cfg, mk);
        let slow = explore_reference(&cfg, mk);
        assert_eq!(fast.system.runs(), slow.system.runs());
        assert_eq!(fast.complete, slow.complete);
    }

    #[test]
    fn unlimited_budget_matches_unbudgeted_exploration() {
        let cfg = ExploreConfig::new(2, 3).max_failures(1);
        let mk = |_| OneShot {
            me: ProcessId::new(0),
            sent: false,
        };
        let plain = explore(&cfg, mk);
        let budget = Budget::unlimited();
        match explore_budgeted(&cfg, mk, &budget) {
            ExploreStatus::Done(result) => {
                assert_eq!(result.system.runs(), plain.system.runs());
                assert_eq!(result.complete, plain.complete);
            }
            ExploreStatus::Aborted { reason, .. } => panic!("unexpected abort: {reason}"),
        }
        assert!(budget.steps() > 0, "the walk must have polled");
    }

    #[test]
    fn step_capped_exploration_aborts_with_partial_runs() {
        let cfg = ExploreConfig::new(3, 3);
        let full = explore::<u8, _, _>(&cfg, |_| Idle);
        // Probe how many polls the full walk takes, then allow only half:
        // the abort is then guaranteed, whatever the machine's fan-out.
        let probe = Budget::unlimited();
        assert!(matches!(
            explore_budgeted::<u8, _, _>(&cfg, |_| Idle, &probe),
            ExploreStatus::Done(_)
        ));
        let budget = Budget::unlimited().with_max_steps(probe.steps() / 2);
        match explore_budgeted::<u8, _, _>(&cfg, |_| Idle, &budget) {
            ExploreStatus::Aborted { reason, partial } => {
                assert_eq!(reason, AbortReason::StepLimit);
                let partial = partial.expect("half the walk generates at least one run");
                assert!(!partial.complete);
                assert!(partial.system.len() < full.system.len());
                // Partial runs are a prefix-consistent subset: every run is
                // fully formed (no torn histories).
                for run in partial.system.runs() {
                    run.check_conditions(cfg.max_failures).unwrap();
                }
            }
            ExploreStatus::Done(_) => panic!("a half-walk step cap must trip"),
        }
    }

    #[test]
    fn cancelled_exploration_aborts_promptly() {
        let cfg = ExploreConfig::new(2, 3);
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        match explore_budgeted::<u8, _, _>(&cfg, |_| Idle, &budget) {
            ExploreStatus::Aborted { reason, partial } => {
                assert_eq!(reason, AbortReason::Cancelled);
                assert!(partial.is_none(), "cancelled before any leaf");
            }
            ExploreStatus::Done(_) => panic!("pre-cancelled budget must abort"),
        }
    }

    #[test]
    fn without_stutter_shrinks_the_space() {
        let big = explore(&ExploreConfig::new(2, 3).max_failures(0), |_| OneShot {
            me: ProcessId::new(0),
            sent: false,
        });
        let small = explore(
            &ExploreConfig::new(2, 3).max_failures(0).without_stutter(),
            |_| OneShot {
                me: ProcessId::new(0),
                sent: false,
            },
        );
        assert!(small.system.len() < big.system.len());
    }

    /// The canonical (min-over-group) digest of a finished run's timed
    /// histories — the run-level analogue of [`canonical_digest`], used to
    /// compare run sets up to relabeling.
    fn canonical_run_digest(run: &Run<u8>, plan: &SymmetryPlan) -> u64 {
        run_canonical_digest(run, plan, true)
    }

    /// The per-process event sequences at the horizon, with times erased —
    /// the observable a time-oblivious protocol acts on.
    fn untimed_tuple(run: &Run<u8>) -> Vec<Vec<Event<u8>>> {
        (0..run.n())
            .map(|i| run.history_at(p(i), run.horizon()).to_vec())
            .collect()
    }

    #[test]
    fn inactive_reduction_goes_through_the_plain_path() {
        let cfg = ExploreConfig::new(2, 3).max_failures(1);
        assert!(!cfg.reduction.is_active());
        // Declaring a singleton class activates nothing either.
        assert!(!cfg.clone().symmetric(vec![1]).reduction.is_active());
        assert!(cfg.clone().symmetric(vec![0, 1]).reduction.is_active());
        assert!(cfg.with_sleep_sets().reduction.is_active());
    }

    #[test]
    fn degenerate_symmetry_class_matches_reference_exactly() {
        // Out-of-range members activate the reduced machinery but yield no
        // usable permutation, so the reduced walk must reproduce the
        // reference system verbatim — this pins the reduced plumbing
        // (fixed frontier target, subtree assembly) as order-preserving.
        let make = |_me: ProcessId| OneShot {
            me: ProcessId::new(0),
            sent: false,
        };
        let cfg = ExploreConfig::new(2, 3)
            .max_failures(1)
            .symmetric(vec![7, 9]);
        assert!(cfg.reduction.is_active());
        let (reduced, stats) = explore_with_stats(&cfg, make);
        let reference = explore_reference(&ExploreConfig::new(2, 3).max_failures(1), make);
        assert!(reduced.complete && reference.complete);
        assert_eq!(reduced.system.runs(), reference.system.runs());
        assert_eq!(stats.states_canonicalized, 0);
        assert_eq!(stats.sleep_set_pruned, 0);
    }

    #[test]
    fn symmetry_covers_the_reference_up_to_relabeling() {
        // All three Idle processes are interchangeable; crashes are the only
        // branching, so orbits collapse e.g. {p0 crashes} ~ {p1 crashes}.
        let make = |_me: ProcessId| Idle;
        let cfg = ExploreConfig::new(3, 3)
            .max_failures(2)
            .symmetric(vec![0, 1, 2]);
        let (reduced, stats) = explore_with_stats::<u8, _, _>(&cfg, make);
        let reference =
            explore_reference::<u8, _, _>(&ExploreConfig::new(3, 3).max_failures(2), make);
        assert!(reduced.complete && reference.complete);
        assert!(
            reduced.system.len() < reference.system.len(),
            "symmetry must shrink the crash orbits: {} vs {}",
            reduced.system.len(),
            reference.system.len()
        );
        assert!(stats.states_canonicalized > 0);

        // Every reduced run is literally a reference run (pruning only ever
        // skips branches)...
        for run in reduced.system.runs() {
            assert!(reference.system.runs().contains(run), "reduced ⊄ reference");
        }
        // ...and every reference run is covered by a reduced representative
        // in the same orbit.
        let plan = symmetry_plan(&cfg).expect("class of 3 yields a plan");
        let covered: HashSet<u64> = reduced
            .system
            .runs()
            .iter()
            .map(|r| canonical_run_digest(r, &plan))
            .collect();
        for run in reference.system.runs() {
            assert!(
                covered.contains(&canonical_run_digest(run, &plan)),
                "reference run not covered up to relabeling: {run:?}"
            );
        }
    }

    #[test]
    fn symmetry_skips_initiation_initiators() {
        // p0 initiates, so it is observably distinct: declaring it
        // symmetric with p1 must be ignored rather than unsound.
        let alpha = ActionId::new(p(0), 0);
        let cfg = ExploreConfig::new(2, 3)
            .max_failures(0)
            .initiate(1, alpha)
            .symmetric(vec![0, 1]);
        assert!(
            symmetry_plan(&cfg).is_none(),
            "p0 stripped leaves a singleton"
        );
        let make = |_me: ProcessId| Idle;
        let (reduced, _) = explore_with_stats::<u8, _, _>(&cfg, make);
        let reference = explore_reference::<u8, _, _>(
            &ExploreConfig::new(2, 3).max_failures(0).initiate(1, alpha),
            make,
        );
        assert_eq!(reduced.system.runs(), reference.system.runs());
    }

    #[test]
    fn sleep_sets_shrink_and_preserve_untimed_leaf_histories() {
        // OneShot is time-oblivious, so refusing a delivery and taking it
        // one tick later must not produce any new untimed observation: the
        // reduced system sees exactly the reference's set of per-process
        // untimed history tuples, with strictly fewer runs.
        let make = |_me: ProcessId| OneShot {
            me: ProcessId::new(0),
            sent: false,
        };
        let cfg = ExploreConfig::new(2, 4).max_failures(1).with_sleep_sets();
        let (reduced, stats) = explore_with_stats(&cfg, make);
        let reference = explore_reference(&ExploreConfig::new(2, 4).max_failures(1), make);
        assert!(reduced.complete && reference.complete);
        assert!(
            reduced.system.len() < reference.system.len(),
            "sleep sets must prune delayed-delivery interleavings: {} vs {}",
            reduced.system.len(),
            reference.system.len()
        );
        assert!(stats.sleep_set_pruned > 0);

        for run in reduced.system.runs() {
            assert!(reference.system.runs().contains(run), "reduced ⊄ reference");
        }
        let reduced_tuples: HashSet<_> = reduced.system.runs().iter().map(untimed_tuple).collect();
        let reference_tuples: HashSet<_> =
            reference.system.runs().iter().map(untimed_tuple).collect();
        assert_eq!(reduced_tuples, reference_tuples);
    }

    #[test]
    fn sleep_sets_are_inert_without_stutter() {
        // The rule keys on "stuttered while deliverable": with stuttering
        // disabled the premise never holds, so the gate turns them off
        // rather than risking a process with an emptied choice set.
        let make = |_me: ProcessId| OneShot {
            me: ProcessId::new(0),
            sent: false,
        };
        let cfg = ExploreConfig::new(2, 3)
            .max_failures(0)
            .without_stutter()
            .with_sleep_sets();
        let (reduced, stats) = explore_with_stats(&cfg, make);
        let reference = explore_reference(
            &ExploreConfig::new(2, 3).max_failures(0).without_stutter(),
            make,
        );
        assert_eq!(reduced.system.runs(), reference.system.runs());
        assert_eq!(stats.sleep_set_pruned, 0);
    }

    #[test]
    fn combined_reductions_compose() {
        let make = |_me: ProcessId| Idle;
        let cfg = ExploreConfig::new(3, 3)
            .max_failures(1)
            .symmetric(vec![0, 1, 2])
            .with_sleep_sets();
        let (reduced, _) = explore_with_stats::<u8, _, _>(&cfg, make);
        let reference =
            explore_reference::<u8, _, _>(&ExploreConfig::new(3, 3).max_failures(1), make);
        assert!(reduced.complete);
        assert!(reduced.system.len() < reference.system.len());
        for run in reduced.system.runs() {
            assert!(reference.system.runs().contains(run));
        }
    }
}
