//! Exhaustive schedule enumeration for small systems.
//!
//! The epistemic model checker of `ktudc-epistemic` is *exact* only over the
//! complete system of runs a protocol generates in a context. For small
//! parameters (2–3 processes, horizons of a handful of ticks) that system is
//! finite and enumerable: at each tick each live process nondeterministically
//! chooses to **stutter**, **crash** (while the failure budget lasts),
//! **receive** one pending message, or take its next **protocol action**.
//! The explorer branches over every combination, capturing the scheduler
//! adversary in full.
//!
//! Message loss needs no separate branch: at a finite horizon, a message
//! dropped by the channel is indistinguishable from one that is still in
//! flight, and the stutter branch already covers "not delivered yet" at
//! every tick. The generated systems therefore satisfy the unreliable-
//! communication reading of the paper's condition A2 (any message may fail
//! to arrive).
//!
//! Failure-detector behaviour is *not* branched over (that would explode the
//! state space); instead an optional deterministic oracle function maps the
//! branch-local crashed set to a report, which suffices for perfect-FD
//! contexts.
//!
//! # Exploration strategy
//!
//! [`explore`] shares ONE mutable state across the whole depth-first tree
//! and rewinds it with an undo log ([`RunBuilder::unappend`] plus reverse
//! channel/protocol bookkeeping) instead of deep-cloning builder, channels
//! and every protocol at each branch; only the one protocol a branch
//! actually steps is cloned. The first few scheduling slots are expanded
//! breadth-first into independent subtrees which are then explored on
//! multiple threads (`ktudc-par`, feature `parallel`). Both changes are
//! invisible in the output: runs come back in exactly the depth-first
//! branch order of the original clone-per-branch enumerator, which is kept
//! as [`explore_reference`] and held identical by differential tests.

use crate::protocol::{ProtoAction, Protocol};
use ktudc_model::budget::{AbortReason, Budget};
use ktudc_model::{Event, ProcSet, ProcessId, Run, RunBuilder, SuspectReport, System, Time};
use std::collections::VecDeque;
use std::hash::Hash;

/// Deterministic failure-detector rule for the explorer: given the polling
/// process, the tick, and the branch-local crashed set, optionally produce a
/// report.
pub type ExplorerFd = fn(ProcessId, Time, ProcSet) -> Option<SuspectReport>;

/// Configuration of an exhaustive exploration.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Number of processes (keep at 2–3).
    pub n: usize,
    /// Last tick to simulate (keep small; branching is exponential in
    /// `n · horizon`).
    pub horizon: Time,
    /// Maximum number of crashes across the run (the context's bound `t`).
    pub max_failures: usize,
    /// If `false`, a process only stutters when it has no other choice,
    /// shrinking the space at the cost of scheduler coverage.
    pub allow_stutter: bool,
    /// Optional deterministic failure-detector rule.
    pub fd: Option<ExplorerFd>,
    /// With `fd_forced` (the default) a tick where the rule emits gives the
    /// process no other choice (deterministic reports, smaller state
    /// space); otherwise the report is one more branch — needed when the
    /// A-conditions must hold, since a forced report can preempt a crash.
    pub fd_forced: bool,
    /// Initiations: `(tick, action)`. With `forced_initiations` (the
    /// default) the initiator deterministically takes the `init` slot at
    /// that tick; with optional initiations the `init` becomes one more
    /// *branch* available at every tick from the scheduled one onward (and
    /// may never be taken at all), which matches contexts where requests
    /// arrive asynchronously — the setting the knowledge conditions A3/A4
    /// of the paper presuppose.
    pub initiations: Vec<(Time, ktudc_model::ActionId)>,
    /// See [`ExploreConfig::initiations`].
    pub forced_initiations: bool,
    /// Hard cap on generated runs; exceeded explorations are truncated and
    /// flagged in [`ExploreResult::complete`].
    pub max_runs: usize,
}

impl ExploreConfig {
    /// A default exploration: `n` processes, the given horizon, up to
    /// `n − 1` failures, stutter allowed, no failure detector, no workload,
    /// 200 000-run cap.
    #[must_use]
    pub fn new(n: usize, horizon: Time) -> Self {
        ExploreConfig {
            n,
            horizon,
            max_failures: n.saturating_sub(1),
            allow_stutter: true,
            fd: None,
            fd_forced: true,
            initiations: Vec::new(),
            forced_initiations: true,
            max_runs: 200_000,
        }
    }

    /// Sets the failure budget.
    #[must_use]
    pub fn max_failures(mut self, t: usize) -> Self {
        self.max_failures = t;
        self
    }

    /// Sets the deterministic failure-detector rule.
    #[must_use]
    pub fn fd(mut self, fd: ExplorerFd) -> Self {
        self.fd = Some(fd);
        self
    }

    /// Makes failure-detector reports a branch instead of preempting the
    /// slot (see [`ExploreConfig::fd_forced`]).
    #[must_use]
    pub fn optional_fd(mut self) -> Self {
        self.fd_forced = false;
        self
    }

    /// Adds an initiation to the workload.
    #[must_use]
    pub fn initiate(mut self, tick: Time, action: ktudc_model::ActionId) -> Self {
        self.initiations.push((tick, action));
        self
    }

    /// Makes initiations optional branches instead of forced events: from
    /// the scheduled tick onward the initiator *may* initiate (once), or
    /// never. Required for the A3/A4 context conditions to hold, since
    /// forced initiations make `init` derivable from elapsed time.
    #[must_use]
    pub fn optional_initiations(mut self) -> Self {
        self.forced_initiations = false;
        self
    }

    /// Sets the run cap.
    #[must_use]
    pub fn max_runs(mut self, cap: usize) -> Self {
        self.max_runs = cap;
        self
    }

    /// Disables the unconditional stutter branch.
    #[must_use]
    pub fn without_stutter(mut self) -> Self {
        self.allow_stutter = false;
        self
    }
}

/// The result of an exploration.
#[derive(Debug)]
pub struct ExploreResult<M> {
    /// The generated system.
    pub system: System<M>,
    /// `false` if the run cap truncated the enumeration, in which case
    /// downstream epistemic verdicts are only sound for *violations* (a
    /// larger system can only refute more knowledge, not restore it).
    pub complete: bool,
}

/// The outcome of a *budgeted* exploration ([`explore_budgeted`]).
#[derive(Debug)]
pub enum ExploreStatus<M> {
    /// The enumeration ran to its natural end (which may still be
    /// truncated by `max_runs` — see [`ExploreResult::complete`]).
    Done(ExploreResult<M>),
    /// The budget tripped mid-walk. `partial` holds every run fully
    /// generated before the trip (always `complete == false`); the
    /// verdict soundness caveat of [`ExploreResult::complete`] applies.
    Aborted {
        /// Why the budget tripped.
        reason: AbortReason,
        /// Runs generated before the trip — `None` when the budget
        /// tripped before the first full run (a [`System`] must be
        /// nonempty for knowledge to be well defined). When present,
        /// always `complete == false`.
        partial: Option<ExploreResult<M>>,
    },
}

#[derive(Clone)]
pub(crate) struct ExploreState<M, P> {
    builder: RunBuilder<M>,
    protocols: Vec<P>,
    /// FIFO channel contents, indexed `from * n + to`.
    channels: Vec<VecDeque<M>>,
    crashes: usize,
    /// Which entries of `config.initiations` have fired, by index.
    inits_done: Vec<bool>,
}

/// One process's options at a tick.
enum Choice<M> {
    Stutter,
    Crash,
    Init(ktudc_model::ActionId),
    Suspect(SuspectReport),
    Recv(ProcessId),
    Act(ProtoAction<M>),
}

fn initial_state<M, P, F>(config: &ExploreConfig, make: &F) -> ExploreState<M, P>
where
    M: Clone + Eq + Hash,
    P: Protocol<M> + Clone,
    F: Fn(ProcessId) -> P,
{
    let n = config.n;
    ExploreState {
        builder: RunBuilder::new(n),
        protocols: ProcessId::all(n)
            .map(|p| {
                let mut proto = make(p);
                proto.start(p, n);
                proto
            })
            .collect(),
        channels: (0..n * n).map(|_| VecDeque::new()).collect(),
        crashes: 0,
        inits_done: vec![false; config.initiations.len()],
    }
}

/// Exhaustively enumerates the system generated by the protocol in the
/// configured context.
///
/// Runs are produced in depth-first branch order — identical, run for run,
/// to [`explore_reference`] — but the tree is walked copy-light (one shared
/// state, rewound via an undo log) and the top-level branches fan out
/// across threads when the `parallel` feature is on.
///
/// # Panics
///
/// Panics if `config.n` is zero or exceeds the supported maximum.
pub fn explore<M, P, F>(config: &ExploreConfig, make: F) -> ExploreResult<M>
where
    M: Clone + Eq + Hash + Send,
    P: Protocol<M> + Clone + Send,
    F: Fn(ProcessId) -> P,
{
    let (runs, complete) = explore_runs(config, &make, None);
    ExploreResult {
        system: System::new(runs),
        complete,
    }
}

/// [`explore`] under a [`Budget`]: the walk polls the budget at every DFS
/// node and unwinds cooperatively when it trips, returning the runs
/// generated so far as a partial (incomplete) system.
///
/// The budget is shared across all fan-out workers, so the first worker
/// to exhaust it makes every sibling's next poll fail fast. Run order is
/// identical to [`explore`] up to the truncation point.
///
/// # Panics
///
/// Panics if `config.n` is zero or exceeds the supported maximum.
pub fn explore_budgeted<M, P, F>(
    config: &ExploreConfig,
    make: F,
    budget: &Budget,
) -> ExploreStatus<M>
where
    M: Clone + Eq + Hash + Send,
    P: Protocol<M> + Clone + Send,
    F: Fn(ProcessId) -> P,
{
    let (runs, complete) = explore_runs(config, &make, Some(budget));
    match budget.tripped() {
        Some(reason) => ExploreStatus::Aborted {
            reason,
            partial: (!runs.is_empty()).then(|| ExploreResult {
                system: System::new(runs),
                complete: false,
            }),
        },
        None => ExploreStatus::Done(ExploreResult {
            system: System::new(runs),
            complete,
        }),
    }
}

fn explore_runs<M, P, F>(
    config: &ExploreConfig,
    make: &F,
    budget: Option<&Budget>,
) -> (Vec<Run<M>>, bool)
where
    M: Clone + Eq + Hash + Send,
    P: Protocol<M> + Clone + Send,
    F: Fn(ProcessId) -> P,
{
    let threads = ktudc_par::thread_count();
    if threads <= 1 {
        let mut state = initial_state(config, make);
        let mut runs: Vec<Run<M>> = Vec::new();
        let mut complete = true;
        dfs(config, &mut state, 1, 0, &mut runs, &mut complete, budget);
        return (runs, complete);
    }

    let frontier = expand_frontier(config, make, threads * 4);
    if frontier.exhausted(config) {
        return frontier.leaves_runs(config);
    }

    let Frontier { level, t, p_idx } = frontier;
    let results: Vec<(Vec<Run<M>>, bool)> = ktudc_par::par_map(level, |mut st| {
        subtree_runs(config, &mut st, t, p_idx, budget)
    });
    assemble_subtree_runs(results, config.max_runs)
}

/// A breadth-first expansion of the first scheduling slots: independent
/// subtree roots, all parked at the same `(t, p_idx)` slot, whose
/// level-order concatenation is exactly the sequential depth-first run
/// order. Produced by [`expand_frontier`]; consumed by [`explore`]'s
/// fan-out and by the checkpointed explorer (`crate::checkpoint`), which
/// journals completed subtrees by their index in `level`.
pub(crate) struct Frontier<M, P> {
    /// The subtree roots, in sequential branch order.
    pub(crate) level: Vec<ExploreState<M, P>>,
    /// Tick of the next unexplored slot.
    pub(crate) t: Time,
    /// Process index of the next unexplored slot.
    pub(crate) p_idx: usize,
}

impl<M, P> Frontier<M, P> {
    /// Whether expansion ran off the horizon — every state is a complete
    /// leaf and there are no subtrees to descend into.
    pub(crate) fn exhausted(&self, config: &ExploreConfig) -> bool {
        self.t > config.horizon
    }

    /// Assembles the all-leaves case into a result (only valid when
    /// [`exhausted`](Self::exhausted)).
    pub(crate) fn leaves_result(&self, config: &ExploreConfig) -> ExploreResult<M>
    where
        M: Clone + Eq + Hash,
    {
        let (runs, complete) = self.leaves_runs(config);
        ExploreResult {
            system: System::new(runs),
            complete,
        }
    }

    /// Raw-runs form of [`leaves_result`](Self::leaves_result).
    pub(crate) fn leaves_runs(&self, config: &ExploreConfig) -> (Vec<Run<M>>, bool)
    where
        M: Clone + Eq + Hash,
    {
        let mut runs: Vec<Run<M>> = self
            .level
            .iter()
            .map(|s| s.builder.snapshot(config.horizon))
            .collect();
        let complete = runs.len() < config.max_runs;
        runs.truncate(config.max_runs);
        (runs, complete)
    }
}

/// Expands the first scheduling slots breadth-first until there are at
/// least `target` independent subtrees (or the horizon is exhausted).
/// The fan-out they seed is invisible in the output for ANY `target`,
/// which is why the checkpointed explorer can pin its own fixed target
/// (recorded in the checkpoint header) and still reproduce [`explore`]'s
/// exact run order.
pub(crate) fn expand_frontier<M, P, F>(
    config: &ExploreConfig,
    make: &F,
    target: usize,
) -> Frontier<M, P>
where
    M: Clone + Eq + Hash,
    P: Protocol<M> + Clone,
    F: Fn(ProcessId) -> P,
{
    let mut t: Time = 1;
    let mut p_idx = 0usize;
    let mut level: Vec<ExploreState<M, P>> = vec![initial_state(config, make)];
    while level.len() < target && t <= config.horizon {
        let p = ProcessId::new(p_idx);
        let mut next = Vec::with_capacity(level.len() * 2);
        for mut st in level {
            for choice in choices_for(config, &mut st, p, t) {
                let mut s = st.clone();
                let _ = apply(config, &mut s, p, t, choice);
                next.push(s);
            }
        }
        level = next;
        p_idx += 1;
        if p_idx == config.n {
            p_idx = 0;
            t += 1;
        }
    }
    Frontier { level, t, p_idx }
}

/// Runs one frontier subtree to completion (its own copy-light DFS,
/// capped at `config.max_runs`), returning its runs and completeness.
pub(crate) fn subtree_runs<M, P>(
    config: &ExploreConfig,
    state: &mut ExploreState<M, P>,
    t: Time,
    p_idx: usize,
    budget: Option<&Budget>,
) -> (Vec<Run<M>>, bool)
where
    M: Clone + Eq + Hash,
    P: Protocol<M> + Clone,
{
    let mut runs = Vec::new();
    let mut complete = true;
    dfs(config, state, t, p_idx, &mut runs, &mut complete, budget);
    (runs, complete)
}

/// Concatenates per-subtree results (in frontier order) under the run
/// cap. Each subtree was capped at `max_runs` on its own, so the first
/// `max_runs` runs of the concatenation equal the sequential result; the
/// enumeration is complete iff every subtree finished and the total
/// stayed under the cap (matching the sequential flag semantics).
pub(crate) fn assemble_subtrees<M: Eq + Hash>(
    results: Vec<(Vec<Run<M>>, bool)>,
    max_runs: usize,
) -> ExploreResult<M> {
    let (runs, complete) = assemble_subtree_runs(results, max_runs);
    ExploreResult {
        system: System::new(runs),
        complete,
    }
}

/// Raw-runs form of [`assemble_subtrees`], for callers that must tolerate
/// an empty concatenation (a budget abort before the first leaf).
pub(crate) fn assemble_subtree_runs<M: Eq + Hash>(
    results: Vec<(Vec<Run<M>>, bool)>,
    max_runs: usize,
) -> (Vec<Run<M>>, bool) {
    let mut runs: Vec<Run<M>> = Vec::new();
    let mut total = 0usize;
    let mut all_subtrees_complete = true;
    for (rs, c) in results {
        total += rs.len();
        all_subtrees_complete &= c;
        if runs.len() < max_runs {
            let room = max_runs - runs.len();
            runs.extend(rs.into_iter().take(room));
        }
    }
    (runs, all_subtrees_complete && total < max_runs)
}

/// The original clone-per-branch enumerator, kept as the baseline the
/// copy-light [`explore`] is differentially tested (and benchmarked)
/// against.
pub fn explore_reference<M, P, F>(config: &ExploreConfig, make: F) -> ExploreResult<M>
where
    M: Clone + Eq + Hash,
    P: Protocol<M> + Clone,
    F: Fn(ProcessId) -> P,
{
    let state = initial_state(config, &make);
    let mut runs: Vec<Run<M>> = Vec::new();
    let mut complete = true;
    dfs_reference(config, state, 1, 0, &mut runs, &mut complete);
    ExploreResult {
        system: System::new(runs),
        complete,
    }
}

fn choices_for<M, P>(
    config: &ExploreConfig,
    state: &mut ExploreState<M, P>,
    p: ProcessId,
    t: Time,
) -> Vec<Choice<M>>
where
    M: Clone + Eq + Hash,
    P: Protocol<M> + Clone,
{
    let n = config.n;
    if state.builder.crashed().contains(p) {
        return vec![Choice::Stutter];
    }
    // Scheduled initiations: deterministic preemption when forced, an
    // extra branch when optional.
    let mut pending_init: Option<(usize, ktudc_model::ActionId)> = None;
    for (i, &(it, a)) in config.initiations.iter().enumerate() {
        if a.initiator() != p || state.inits_done[i] {
            continue;
        }
        if config.forced_initiations {
            if it == t {
                return vec![Choice::Init(a)];
            }
        } else if it <= t {
            pending_init = Some((i, a));
            break;
        }
    }
    // A deterministic failure-detector report takes the slot when forced;
    // otherwise it becomes one more branch below.
    let mut fd_report = None;
    if let Some(fd) = config.fd {
        if let Some(report) = fd(p, t, state.builder.crashed()) {
            if config.fd_forced {
                return vec![Choice::Suspect(report)];
            }
            fd_report = Some(report);
        }
    }
    let mut choices = Vec::new();
    if config.allow_stutter {
        choices.push(Choice::Stutter);
    }
    if state.crashes < config.max_failures {
        choices.push(Choice::Crash);
    }
    if let Some((_, a)) = pending_init {
        choices.push(Choice::Init(a));
    }
    if let Some(report) = fd_report {
        choices.push(Choice::Suspect(report));
    }
    for from in ProcessId::all(n) {
        if !state.channels[from.index() * n + p.index()].is_empty() {
            choices.push(Choice::Recv(from));
        }
    }
    // `next_action` may mutate protocol state, so probe on a clone and keep
    // the original untouched; the action is re-derived on the branch clone.
    let mut probe = state.protocols[p.index()].clone();
    if let Some(action) = probe.next_action(t) {
        choices.push(Choice::Act(action));
    }
    if choices.is_empty() {
        choices.push(Choice::Stutter);
    }
    choices
}

/// What [`apply`] did to the shared state, with everything needed to take
/// it back. The protocol is the one piece that cannot be rewound (its state
/// transition is opaque), so mutating choices stash a clone of the *single*
/// protocol they step — far lighter than the old whole-state clone.
enum Undo<M, P> {
    Stutter,
    Crash {
        /// Channels to the crashed process that were emptied.
        drained: Vec<(usize, VecDeque<M>)>,
    },
    Init {
        proto: P,
        /// Index into `config.initiations` that was marked done.
        slot: Option<usize>,
    },
    Suspect {
        proto: P,
    },
    Recv {
        proto: P,
        /// Channel index the message was popped from (the message itself is
        /// recovered from the unappended event).
        chan: usize,
    },
    Act {
        proto: P,
        /// Channel index a sent message was enqueued to, if any.
        sent_chan: Option<usize>,
    },
}

/// Applies `choice` to the shared state, returning the undo record.
fn apply<M, P>(
    config: &ExploreConfig,
    state: &mut ExploreState<M, P>,
    p: ProcessId,
    t: Time,
    choice: Choice<M>,
) -> Undo<M, P>
where
    M: Clone + Eq + Hash,
    P: Protocol<M> + Clone,
{
    let n = config.n;
    match choice {
        Choice::Stutter => Undo::Stutter,
        Choice::Crash => {
            state
                .builder
                .append(p, t, Event::Crash)
                .expect("crash append");
            state.crashes += 1;
            // Undelivered messages to a crashed process can never be
            // received; clear them so they do not generate choices.
            let mut drained = Vec::new();
            for from in ProcessId::all(n) {
                let idx = from.index() * n + p.index();
                if !state.channels[idx].is_empty() {
                    drained.push((idx, std::mem::take(&mut state.channels[idx])));
                }
            }
            Undo::Crash { drained }
        }
        Choice::Init(action) => {
            let proto = state.protocols[p.index()].clone();
            let event = Event::Init { action };
            state
                .builder
                .append(p, t, event.clone())
                .expect("init append");
            state.protocols[p.index()].observe(t, &event);
            let slot = config.initiations.iter().position(|&(_, a)| a == action);
            if let Some(i) = slot {
                state.inits_done[i] = true;
            }
            Undo::Init { proto, slot }
        }
        Choice::Suspect(report) => {
            let proto = state.protocols[p.index()].clone();
            let event = Event::Suspect(report);
            state
                .builder
                .append(p, t, event.clone())
                .expect("suspect append");
            state.protocols[p.index()].observe(t, &event);
            Undo::Suspect { proto }
        }
        Choice::Recv(from) => {
            let proto = state.protocols[p.index()].clone();
            let chan = from.index() * n + p.index();
            let msg = state.channels[chan]
                .pop_front()
                .expect("choice guaranteed a pending message");
            let event = Event::Recv { from, msg };
            state
                .builder
                .append(p, t, event.clone())
                .expect("recv append");
            state.protocols[p.index()].observe(t, &event);
            Undo::Recv { proto, chan }
        }
        Choice::Act(_) => {
            let proto = state.protocols[p.index()].clone();
            // Re-derive the action on this branch's own protocol state.
            match state.protocols[p.index()].next_action(t) {
                Some(ProtoAction::Send { to, msg }) => {
                    let event = Event::Send {
                        to,
                        msg: msg.clone(),
                    };
                    state
                        .builder
                        .append(p, t, event.clone())
                        .expect("send append");
                    state.protocols[p.index()].observe(t, &event);
                    let sent_chan = if state.builder.crashed().contains(to) {
                        None
                    } else {
                        let c = p.index() * n + to.index();
                        state.channels[c].push_back(msg);
                        Some(c)
                    };
                    Undo::Act { proto, sent_chan }
                }
                Some(ProtoAction::Do(action)) => {
                    let event = Event::Do { action };
                    state
                        .builder
                        .append(p, t, event.clone())
                        .expect("do append");
                    state.protocols[p.index()].observe(t, &event);
                    Undo::Act {
                        proto,
                        sent_chan: None,
                    }
                }
                None => unreachable!("probe saw an action; protocols are deterministic"),
            }
        }
    }
}

/// Rewinds [`apply`]. Undo records must be replayed strictly LIFO across
/// the whole exploration (the recursion structure guarantees it).
fn revert<M, P>(state: &mut ExploreState<M, P>, p: ProcessId, undo: Undo<M, P>)
where
    M: Clone + Eq + Hash,
{
    match undo {
        Undo::Stutter => {}
        Undo::Crash { drained } => {
            state.builder.unappend(p);
            state.crashes -= 1;
            for (idx, q) in drained {
                state.channels[idx] = q;
            }
        }
        Undo::Init { proto, slot } => {
            state.builder.unappend(p);
            state.protocols[p.index()] = proto;
            if let Some(i) = slot {
                state.inits_done[i] = false;
            }
        }
        Undo::Suspect { proto } => {
            state.builder.unappend(p);
            state.protocols[p.index()] = proto;
        }
        Undo::Recv { proto, chan } => {
            match state.builder.unappend(p) {
                Some(Event::Recv { msg, .. }) => state.channels[chan].push_front(msg),
                _ => unreachable!("recv undo must pop the recv it appended"),
            }
            state.protocols[p.index()] = proto;
        }
        Undo::Act { proto, sent_chan } => {
            state.builder.unappend(p);
            if let Some(c) = sent_chan {
                state.channels[c].pop_back();
            }
            state.protocols[p.index()] = proto;
        }
    }
}

/// Copy-light depth-first walk: one shared state, rewound after every
/// branch. Check placement mirrors [`dfs_reference`] exactly so the
/// truncation flag semantics stay identical. A tripped budget behaves
/// like the run cap (marks the walk incomplete and unwinds), except the
/// trip is shared: once any worker trips it, every subtree's next poll
/// fails fast too.
#[allow(clippy::too_many_arguments)]
fn dfs<M, P>(
    config: &ExploreConfig,
    state: &mut ExploreState<M, P>,
    t: Time,
    p_idx: usize,
    runs: &mut Vec<Run<M>>,
    complete: &mut bool,
    budget: Option<&Budget>,
) where
    M: Clone + Eq + Hash,
    P: Protocol<M> + Clone,
{
    if let Some(b) = budget {
        if b.poll().is_err() {
            *complete = false;
            return;
        }
    }
    if runs.len() >= config.max_runs {
        *complete = false;
        return;
    }
    if t > config.horizon {
        runs.push(state.builder.snapshot(config.horizon));
        return;
    }
    if p_idx == config.n {
        dfs(config, state, t + 1, 0, runs, complete, budget);
        return;
    }
    let p = ProcessId::new(p_idx);
    for choice in choices_for(config, state, p, t) {
        let undo = apply(config, state, p, t, choice);
        dfs(config, state, t, p_idx + 1, runs, complete, budget);
        revert(state, p, undo);
        if runs.len() >= config.max_runs {
            *complete = false;
            return;
        }
    }
}

fn dfs_reference<M, P>(
    config: &ExploreConfig,
    mut state: ExploreState<M, P>,
    t: Time,
    p_idx: usize,
    runs: &mut Vec<Run<M>>,
    complete: &mut bool,
) where
    M: Clone + Eq + Hash,
    P: Protocol<M> + Clone,
{
    if runs.len() >= config.max_runs {
        *complete = false;
        return;
    }
    if t > config.horizon {
        runs.push(state.builder.finish(config.horizon));
        return;
    }
    if p_idx == config.n {
        dfs_reference(config, state, t + 1, 0, runs, complete);
        return;
    }
    let p = ProcessId::new(p_idx);
    let n = config.n;
    let choices = choices_for(config, &mut state, p, t);
    let last = choices.len() - 1;
    for (i, choice) in choices.into_iter().enumerate() {
        // Reuse the state on the final branch instead of cloning it.
        let mut s = if i == last {
            std::mem::replace(
                &mut state,
                ExploreState {
                    builder: RunBuilder::new(n),
                    protocols: Vec::new(),
                    channels: Vec::new(),
                    crashes: 0,
                    inits_done: Vec::new(),
                },
            )
        } else {
            state.clone()
        };
        let _ = apply(config, &mut s, p, t, choice);
        dfs_reference(config, s, t, p_idx + 1, runs, complete);
        if runs.len() >= config.max_runs {
            *complete = false;
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktudc_model::ActionId;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// A protocol that does nothing, ever.
    #[derive(Clone, Debug)]
    struct Idle;

    impl<M> Protocol<M> for Idle {
        fn start(&mut self, _me: ProcessId, _n: usize) {}
        fn observe(&mut self, _time: Time, _event: &Event<M>) {}
        fn next_action(&mut self, _time: Time) -> Option<ProtoAction<M>> {
            None
        }
        fn quiescent(&self) -> bool {
            true
        }
    }

    /// Sends one message p0 → p1 at the first opportunity.
    #[derive(Clone, Debug)]
    struct OneShot {
        me: ProcessId,
        sent: bool,
    }

    impl Protocol<u8> for OneShot {
        fn start(&mut self, me: ProcessId, _n: usize) {
            self.me = me;
        }
        fn observe(&mut self, _time: Time, event: &Event<u8>) {
            if matches!(event, Event::Send { .. }) {
                self.sent = true;
            }
        }
        fn next_action(&mut self, _time: Time) -> Option<ProtoAction<u8>> {
            if self.me == ProcessId::new(0) && !self.sent {
                Some(ProtoAction::Send {
                    to: ProcessId::new(1),
                    msg: 42,
                })
            } else {
                None
            }
        }
        fn quiescent(&self) -> bool {
            self.sent
        }
    }

    #[test]
    fn idle_no_failures_yields_single_run() {
        let cfg = ExploreConfig::new(2, 3).max_failures(0);
        let result = explore::<u8, _, _>(&cfg, |_| Idle);
        assert!(result.complete);
        // Only stuttering: exactly one run, with empty histories.
        assert_eq!(result.system.len(), 1);
        assert_eq!(result.system.run(0).event_count(), 0);
    }

    #[test]
    fn failure_budget_bounds_crash_count() {
        let cfg = ExploreConfig::new(2, 2).max_failures(1);
        let result = explore::<u8, _, _>(&cfg, |_| Idle);
        assert!(result.complete);
        assert!(result.system.len() > 1);
        for run in result.system.runs() {
            assert!(run.faulty().len() <= 1);
            run.check_conditions(0).unwrap();
        }
        // Some run crashes p0, some run crashes p1, some run crashes nobody.
        let faulties: Vec<ProcSet> = result.system.runs().iter().map(Run::faulty).collect();
        assert!(faulties.contains(&ProcSet::new()));
        assert!(faulties.contains(&ProcSet::singleton(p(0))));
        assert!(faulties.contains(&ProcSet::singleton(p(1))));
    }

    #[test]
    fn oneshot_generates_delivered_and_undelivered_branches() {
        let cfg = ExploreConfig::new(2, 3).max_failures(0);
        let result = explore(&cfg, |_| OneShot {
            me: ProcessId::new(0),
            sent: false,
        });
        assert!(result.complete);
        let mut saw_delivery = false;
        let mut saw_loss = false;
        for run in result.system.runs() {
            run.check_conditions(0).unwrap();
            let received = run.view_at(p(1), run.horizon()).received(p(0), &42);
            let sent = run.view_at(p(0), run.horizon()).sent(p(1), &42);
            if sent && received {
                saw_delivery = true;
            }
            if sent && !received {
                saw_loss = true;
            }
        }
        assert!(saw_delivery, "some schedule delivers the message");
        assert!(saw_loss, "some schedule never delivers it (loss/delay)");
    }

    #[test]
    fn initiations_are_forced_deterministically() {
        let alpha = ActionId::new(p(0), 0);
        let cfg = ExploreConfig::new(2, 2).max_failures(0).initiate(1, alpha);
        let result = explore::<u8, _, _>(&cfg, |_| Idle);
        for run in result.system.runs() {
            assert!(
                run.view_at(p(0), run.horizon()).initiated(alpha),
                "initiation must appear in every run (no crash can preempt it with budget 0)"
            );
        }
    }

    #[test]
    fn fd_rule_takes_the_slot() {
        fn always_report(p: ProcessId, t: Time, crashed: ProcSet) -> Option<SuspectReport> {
            // Report the crashed set at tick 2 only.
            (t == 2 && !crashed.contains(p)).then_some(SuspectReport::Standard(crashed))
        }
        let cfg = ExploreConfig::new(2, 2).max_failures(1).fd(always_report);
        let result = explore::<u8, _, _>(&cfg, |_| Idle);
        for run in result.system.runs() {
            for q in ProcessId::all(2) {
                if run.crash_time(q).is_none_or(|ct| ct > 2) {
                    let reports: Vec<_> = run.view_at(q, 2).suspect_reports().collect();
                    assert_eq!(reports.len(), 1, "live process must report at tick 2");
                    // Perfect-style accuracy: only actually-crashed suspected.
                    if let SuspectReport::Standard(s) = reports[0] {
                        assert!(s.is_subset_of(run.crashed_by(2)));
                    }
                }
            }
        }
    }

    #[test]
    fn run_cap_truncates_and_flags() {
        let cfg = ExploreConfig::new(3, 3).max_runs(10);
        let result = explore::<u8, _, _>(&cfg, |_| Idle);
        assert!(!result.complete);
        assert!(result.system.len() <= 10);
    }

    #[test]
    fn copy_light_explorer_matches_reference() {
        fn report_at_two(p: ProcessId, t: Time, crashed: ProcSet) -> Option<SuspectReport> {
            (t == 2 && !crashed.contains(p)).then_some(SuspectReport::Standard(crashed))
        }
        let alpha = ActionId::new(p(0), 0);
        let configs = vec![
            ExploreConfig::new(2, 3),
            ExploreConfig::new(2, 3).max_failures(0),
            ExploreConfig::new(3, 2).max_runs(50),
            ExploreConfig::new(2, 2)
                .initiate(1, alpha)
                .optional_initiations(),
            ExploreConfig::new(2, 2)
                .max_failures(1)
                .fd(report_at_two)
                .optional_fd(),
            ExploreConfig::new(2, 3).without_stutter(),
        ];
        for cfg in configs {
            let fast = explore::<u8, _, _>(&cfg, |_| Idle);
            let slow = explore_reference::<u8, _, _>(&cfg, |_| Idle);
            assert_eq!(fast.system.runs(), slow.system.runs(), "config {cfg:?}");
            assert_eq!(fast.complete, slow.complete, "config {cfg:?}");
        }
        // And with a protocol that actually sends/receives.
        let cfg = ExploreConfig::new(2, 3).max_failures(1);
        let mk = |_| OneShot {
            me: ProcessId::new(0),
            sent: false,
        };
        let fast = explore(&cfg, mk);
        let slow = explore_reference(&cfg, mk);
        assert_eq!(fast.system.runs(), slow.system.runs());
        assert_eq!(fast.complete, slow.complete);
    }

    #[test]
    fn unlimited_budget_matches_unbudgeted_exploration() {
        let cfg = ExploreConfig::new(2, 3).max_failures(1);
        let mk = |_| OneShot {
            me: ProcessId::new(0),
            sent: false,
        };
        let plain = explore(&cfg, mk);
        let budget = Budget::unlimited();
        match explore_budgeted(&cfg, mk, &budget) {
            ExploreStatus::Done(result) => {
                assert_eq!(result.system.runs(), plain.system.runs());
                assert_eq!(result.complete, plain.complete);
            }
            ExploreStatus::Aborted { reason, .. } => panic!("unexpected abort: {reason}"),
        }
        assert!(budget.steps() > 0, "the walk must have polled");
    }

    #[test]
    fn step_capped_exploration_aborts_with_partial_runs() {
        let cfg = ExploreConfig::new(3, 3);
        let full = explore::<u8, _, _>(&cfg, |_| Idle);
        // Probe how many polls the full walk takes, then allow only half:
        // the abort is then guaranteed, whatever the machine's fan-out.
        let probe = Budget::unlimited();
        assert!(matches!(
            explore_budgeted::<u8, _, _>(&cfg, |_| Idle, &probe),
            ExploreStatus::Done(_)
        ));
        let budget = Budget::unlimited().with_max_steps(probe.steps() / 2);
        match explore_budgeted::<u8, _, _>(&cfg, |_| Idle, &budget) {
            ExploreStatus::Aborted { reason, partial } => {
                assert_eq!(reason, AbortReason::StepLimit);
                let partial = partial.expect("half the walk generates at least one run");
                assert!(!partial.complete);
                assert!(partial.system.len() < full.system.len());
                // Partial runs are a prefix-consistent subset: every run is
                // fully formed (no torn histories).
                for run in partial.system.runs() {
                    run.check_conditions(cfg.max_failures).unwrap();
                }
            }
            ExploreStatus::Done(_) => panic!("a half-walk step cap must trip"),
        }
    }

    #[test]
    fn cancelled_exploration_aborts_promptly() {
        let cfg = ExploreConfig::new(2, 3);
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        match explore_budgeted::<u8, _, _>(&cfg, |_| Idle, &budget) {
            ExploreStatus::Aborted { reason, partial } => {
                assert_eq!(reason, AbortReason::Cancelled);
                assert!(partial.is_none(), "cancelled before any leaf");
            }
            ExploreStatus::Done(_) => panic!("pre-cancelled budget must abort"),
        }
    }

    #[test]
    fn without_stutter_shrinks_the_space() {
        let big = explore(&ExploreConfig::new(2, 3).max_failures(0), |_| OneShot {
            me: ProcessId::new(0),
            sent: false,
        });
        let small = explore(
            &ExploreConfig::new(2, 3).max_failures(0).without_stutter(),
            |_| OneShot {
                me: ProcessId::new(0),
                sent: false,
            },
        );
        assert!(small.system.len() < big.system.len());
    }
}
