//! Serializable exploration scenarios — the wire form of the explorer.
//!
//! [`ExploreConfig`](crate::ExploreConfig) cannot travel over a wire: its
//! failure-detector rule is a bare function pointer and its protocol is a
//! type parameter. [`ExploreSpec`] closes both over a small named
//! vocabulary — the deterministic FD rules ([`FdRule`]) and the explorer
//! protocols ([`WireProtocol`]) the workspace actually exercises — so a
//! remote client can request an exhaustive exploration (or an epistemic
//! check over one) from `ktudc-serve` by value.
//!
//! Run sets are far too large to ship back, so [`ExploreOutcome`] returns
//! counts plus a [`system_digest`]: a stable 64-bit fingerprint of the
//! entire run set (every event of every process of every run, in order,
//! hashed with the platform-pinned
//! [`StableHasher`](ktudc_model::hashing::StableHasher)). Two explorations
//! agree on the digest iff they produced the identical system, so clients
//! can certify a remote exploration against a local one without moving the
//! runs.

use crate::explorer::{
    explore, explore_budgeted, ExploreConfig, ExploreResult, ExploreStatus, ExplorerFd,
};
use crate::protocol::{ProtoAction, Protocol};
use ktudc_model::budget::{AbortReason, Budget};
use ktudc_model::hashing::StableHasher;
use ktudc_model::{ActionId, Event, ProcSet, ProcessId, SuspectReport, System, Time};
use serde::{Deserialize, Serialize};
use std::hash::{Hash, Hasher};

/// Message payload used by every wire-selectable explorer protocol.
pub type WireMsg = u8;

/// Deterministic failure-detector rules nameable over the wire.
///
/// The explorer's [`ExplorerFd`] is a plain function pointer (it cannot
/// capture state), so parameterized rules are backed by a small table of
/// static functions; the supported periods are 1–4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FdRule {
    /// No failure detector.
    None,
    /// Perfect-style reports: every `period` ticks, each live process
    /// receives the branch-local crashed set as a standard report.
    Perfect {
        /// Reporting period in ticks (1–4).
        period: Time,
    },
}

/// Explorer protocols nameable over the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireProtocol {
    /// Every process does nothing; the explorer branches only over crashes,
    /// stutters, and initiations.
    Idle,
    /// Process `from` sends `msg` to `to` at its first opportunity, then
    /// goes quiet — the minimal protocol whose systems exhibit message
    /// loss, delay, and the knowledge asymmetries the checker cares about.
    OneShot {
        /// Sender.
        from: usize,
        /// Destination.
        to: usize,
        /// Payload.
        msg: WireMsg,
    },
}

/// A serializable exploration scenario: [`ExploreConfig`] with the function
/// pointer and protocol type closed over [`FdRule`] / [`WireProtocol`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExploreSpec {
    /// Number of processes (keep at 2–3; branching is exponential).
    pub n: usize,
    /// Last tick to simulate.
    pub horizon: Time,
    /// Failure budget `t`.
    pub max_failures: usize,
    /// Whether processes may stutter when other choices exist.
    pub allow_stutter: bool,
    /// Failure-detector rule.
    pub fd: FdRule,
    /// Whether an FD report preempts the slot (see
    /// [`ExploreConfig::fd_forced`]).
    pub fd_forced: bool,
    /// Scheduled initiations `(tick, action)`.
    pub initiations: Vec<(Time, ActionId)>,
    /// Whether initiations fire deterministically (see
    /// [`ExploreConfig::forced_initiations`]).
    pub forced_initiations: bool,
    /// Hard cap on generated runs.
    pub max_runs: usize,
    /// Protocol under exploration.
    pub protocol: WireProtocol,
}

impl ExploreSpec {
    /// A default scenario mirroring [`ExploreConfig::new`]: up to `n − 1`
    /// failures, stutter allowed, no FD, no workload, 200 000-run cap, the
    /// [`WireProtocol::Idle`] protocol.
    #[must_use]
    pub fn new(n: usize, horizon: Time) -> Self {
        ExploreSpec {
            n,
            horizon,
            max_failures: n.saturating_sub(1),
            allow_stutter: true,
            fd: FdRule::None,
            fd_forced: true,
            initiations: Vec::new(),
            forced_initiations: true,
            max_runs: 200_000,
            protocol: WireProtocol::Idle,
        }
    }

    /// Validates the spec and lowers it to an [`ExploreConfig`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field (zero `n`,
    /// oversized system, out-of-range FD period, or a protocol endpoint
    /// outside `0..n`).
    pub fn to_config(&self) -> Result<ExploreConfig, String> {
        if self.n == 0 {
            return Err("explore spec: n must be at least 1".to_string());
        }
        if self.n > ProcessId::MAX_PROCESSES {
            return Err(format!(
                "explore spec: n = {} exceeds the supported maximum of {}",
                self.n,
                ProcessId::MAX_PROCESSES
            ));
        }
        if let WireProtocol::OneShot { from, to, .. } = self.protocol {
            if from >= self.n || to >= self.n {
                return Err(format!(
                    "explore spec: OneShot endpoints ({from} -> {to}) out of range for n = {}",
                    self.n
                ));
            }
        }
        let mut config = ExploreConfig::new(self.n, self.horizon)
            .max_failures(self.max_failures)
            .max_runs(self.max_runs);
        config.allow_stutter = self.allow_stutter;
        config.fd = match self.fd {
            FdRule::None => None,
            FdRule::Perfect { period } => Some(perfect_rule(period)?),
        };
        config.fd_forced = self.fd_forced;
        config.initiations = self.initiations.clone();
        config.forced_initiations = self.forced_initiations;
        Ok(config)
    }
}

/// Result summary of a wire exploration: sizes plus the run-set digest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExploreOutcome {
    /// Number of generated runs.
    pub runs: usize,
    /// Whether the enumeration finished under the run cap.
    pub complete: bool,
    /// Total events across all runs.
    pub events: u64,
    /// [`system_digest`] of the generated system.
    pub digest: u64,
}

/// The function-pointer table behind [`FdRule::Perfect`].
fn perfect_rule(period: Time) -> Result<ExplorerFd, String> {
    fn report(p: ProcessId, t: Time, crashed: ProcSet, period: Time) -> Option<SuspectReport> {
        (t.is_multiple_of(period) && !crashed.contains(p))
            .then_some(SuspectReport::Standard(crashed))
    }
    fn every_1(p: ProcessId, t: Time, c: ProcSet) -> Option<SuspectReport> {
        report(p, t, c, 1)
    }
    fn every_2(p: ProcessId, t: Time, c: ProcSet) -> Option<SuspectReport> {
        report(p, t, c, 2)
    }
    fn every_3(p: ProcessId, t: Time, c: ProcSet) -> Option<SuspectReport> {
        report(p, t, c, 3)
    }
    fn every_4(p: ProcessId, t: Time, c: ProcSet) -> Option<SuspectReport> {
        report(p, t, c, 4)
    }
    match period {
        1 => Ok(every_1),
        2 => Ok(every_2),
        3 => Ok(every_3),
        4 => Ok(every_4),
        other => Err(format!(
            "explore spec: unsupported FD period {other} (supported: 1-4)"
        )),
    }
}

/// A wire-selectable explorer protocol instance.
#[derive(Clone, Debug)]
pub enum WireProto {
    /// See [`WireProtocol::Idle`].
    Idle,
    /// See [`WireProtocol::OneShot`]; tracks the local process and whether
    /// the send has happened.
    OneShot {
        /// This process.
        me: ProcessId,
        /// Sender named by the spec.
        from: ProcessId,
        /// Destination named by the spec.
        to: ProcessId,
        /// Payload.
        msg: WireMsg,
        /// Whether the send has been taken.
        sent: bool,
    },
}

impl Protocol<WireMsg> for WireProto {
    fn start(&mut self, me: ProcessId, _n: usize) {
        if let WireProto::OneShot { me: slot, .. } = self {
            *slot = me;
        }
    }

    fn observe(&mut self, _time: Time, event: &Event<WireMsg>) {
        if let WireProto::OneShot { sent, .. } = self {
            if matches!(event, Event::Send { .. }) {
                *sent = true;
            }
        }
    }

    fn next_action(&mut self, _time: Time) -> Option<ProtoAction<WireMsg>> {
        match self {
            WireProto::Idle => None,
            WireProto::OneShot {
                me,
                from,
                to,
                msg,
                sent,
            } => (me == from && !*sent).then_some(ProtoAction::Send { to: *to, msg: *msg }),
        }
    }

    fn quiescent(&self) -> bool {
        match self {
            WireProto::Idle => true,
            WireProto::OneShot { me, from, sent, .. } => me != from || *sent,
        }
    }
}

impl WireProtocol {
    /// Instantiates the named protocol for process `me` (the factory the
    /// explorer — direct or checkpointed — hands each process).
    pub(crate) fn instantiate(self, me: ProcessId) -> WireProto {
        match self {
            WireProtocol::Idle => WireProto::Idle,
            WireProtocol::OneShot { from, to, msg } => WireProto::OneShot {
                me,
                from: ProcessId::new(from),
                to: ProcessId::new(to),
                msg,
                sent: false,
            },
        }
    }
}

/// Runs the exploration a spec describes, returning the full system (for
/// local analysis, e.g. an epistemic check) and its completeness flag.
///
/// # Errors
///
/// Returns the validation error of [`ExploreSpec::to_config`].
pub fn explore_spec(spec: &ExploreSpec) -> Result<ExploreResult<WireMsg>, String> {
    let config = spec.to_config()?;
    let proto = spec.protocol;
    Ok(explore(&config, move |p| proto.instantiate(p)))
}

/// Runs the exploration and summarizes it for the wire.
///
/// # Errors
///
/// Returns the validation error of [`ExploreSpec::to_config`].
pub fn run_explore_spec(spec: &ExploreSpec) -> Result<ExploreOutcome, String> {
    let result = explore_spec(spec)?;
    Ok(summarize(&result))
}

/// [`explore_spec`] under a [`Budget`]: the enumeration polls the budget
/// and returns [`ExploreStatus::Aborted`] with the partial system when it
/// trips.
///
/// # Errors
///
/// Returns the validation error of [`ExploreSpec::to_config`].
pub fn explore_spec_budgeted(
    spec: &ExploreSpec,
    budget: &Budget,
) -> Result<ExploreStatus<WireMsg>, String> {
    let config = spec.to_config()?;
    let proto = spec.protocol;
    Ok(explore_budgeted(
        &config,
        move |p| proto.instantiate(p),
        budget,
    ))
}

/// A wire exploration summary that may have been budget-aborted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExploreStatusOutcome {
    /// The enumeration ran to its natural end.
    Done(ExploreOutcome),
    /// The budget tripped; `partial` summarizes the runs generated before
    /// the trip (`complete` is always `false`; `None` when the trip
    /// preceded the first full run).
    Aborted {
        /// Why the budget tripped.
        reason: AbortReason,
        /// Summary of the partial system.
        partial: Option<ExploreOutcome>,
    },
}

/// Runs a budgeted exploration and summarizes it for the wire.
///
/// # Errors
///
/// Returns the validation error of [`ExploreSpec::to_config`].
pub fn run_explore_spec_budgeted(
    spec: &ExploreSpec,
    budget: &Budget,
) -> Result<ExploreStatusOutcome, String> {
    Ok(match explore_spec_budgeted(spec, budget)? {
        ExploreStatus::Done(result) => ExploreStatusOutcome::Done(summarize(&result)),
        ExploreStatus::Aborted { reason, partial } => ExploreStatusOutcome::Aborted {
            reason,
            partial: partial.as_ref().map(summarize),
        },
    })
}

fn summarize(result: &ExploreResult<WireMsg>) -> ExploreOutcome {
    ExploreOutcome {
        runs: result.system.len(),
        complete: result.complete,
        events: result
            .system
            .runs()
            .iter()
            .map(|r| r.event_count() as u64)
            .sum(),
        digest: system_digest(&result.system),
    }
}

/// Stable 64-bit fingerprint of an entire run set: run count, then every
/// run's horizon and full per-process timed histories, hashed with the
/// pinned [`StableHasher`]. Equal digests ⇔ identical systems (up to hash
/// collision, ~2⁻⁶⁴ per comparison).
#[must_use]
pub fn system_digest<M: Hash>(system: &System<M>) -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(system.len() as u64);
    for run in system.runs() {
        h.write_u64(run.horizon());
        for p in ProcessId::all(run.n()) {
            for (t, event) in run.timed_history(p) {
                h.write_u64(t);
                event.hash(&mut h);
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_json() {
        let mut spec = ExploreSpec::new(2, 3);
        spec.fd = FdRule::Perfect { period: 2 };
        spec.fd_forced = false;
        spec.initiations = vec![(1, ActionId::new(ProcessId::new(0), 0))];
        spec.forced_initiations = false;
        spec.protocol = WireProtocol::OneShot {
            from: 0,
            to: 1,
            msg: 7,
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: ExploreSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn spec_exploration_matches_direct_exploration() {
        let mut spec = ExploreSpec::new(2, 3);
        spec.max_failures = 1;
        spec.protocol = WireProtocol::OneShot {
            from: 0,
            to: 1,
            msg: 7,
        };
        let via_spec = explore_spec(&spec).unwrap();

        let config = ExploreConfig::new(2, 3).max_failures(1);
        let direct = explore(&config, |p| WireProto::OneShot {
            me: p,
            from: ProcessId::new(0),
            to: ProcessId::new(1),
            msg: 7,
            sent: false,
        });
        assert_eq!(via_spec.system.runs(), direct.system.runs());
        assert_eq!(
            system_digest(&via_spec.system),
            system_digest(&direct.system)
        );

        let outcome = run_explore_spec(&spec).unwrap();
        assert_eq!(outcome.runs, direct.system.len());
        assert_eq!(outcome.digest, system_digest(&direct.system));
        assert!(outcome.complete);
        assert!(outcome.events > 0);
    }

    #[test]
    fn digest_distinguishes_different_systems() {
        let idle = run_explore_spec(&ExploreSpec::new(2, 2)).unwrap();
        let mut spec = ExploreSpec::new(2, 2);
        spec.protocol = WireProtocol::OneShot {
            from: 0,
            to: 1,
            msg: 9,
        };
        let oneshot = run_explore_spec(&spec).unwrap();
        assert_ne!(idle.digest, oneshot.digest);
    }

    #[test]
    fn fd_rule_periods_validate() {
        let mut spec = ExploreSpec::new(2, 2);
        spec.fd = FdRule::Perfect { period: 2 };
        assert!(spec.to_config().is_ok());
        spec.fd = FdRule::Perfect { period: 9 };
        assert!(spec.to_config().unwrap_err().contains("period"));
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut spec = ExploreSpec::new(0, 2);
        assert!(spec.to_config().is_err());
        spec.n = 2;
        spec.protocol = WireProtocol::OneShot {
            from: 0,
            to: 5,
            msg: 1,
        };
        assert!(spec.to_config().unwrap_err().contains("out of range"));
    }
}
