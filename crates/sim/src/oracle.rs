//! The failure-detector oracle interface.
//!
//! A failure detector is a *per-process oracle* (§2.2): the simulator
//! periodically offers each live process the chance to receive a
//! `suspect_p(x)` event, and the oracle decides whether and what to emit.
//! Oracles are allowed to consult the ground truth of the run — which
//! processes have crashed, and which are *destined* to crash — because that
//! is exactly what an oracle is. Concrete oracles (perfect, strong, weak,
//! impermanent, eventually-weak, generalized) live in `ktudc-fd`; this crate
//! defines only the interface the scheduler needs, plus the trivial
//! [`NullOracle`].
//!
//! Unlike the Chandra–Toueg "special tape" formulation, an oracle here may
//! correlate its reports with the behaviour of the processes (it sees the
//! polling process's tick and may keep state). The paper argues this extra
//! power is needed to express the *impermanent* completeness properties; we
//! inherit that generality.

use ktudc_model::{ProcSet, ProcessId, SuspectReport, Time};
use rand::rngs::StdRng;

/// Ground truth about failures in the run being generated.
///
/// `crash_times[p]` is the tick at which `p` is scheduled to crash (`None`
/// for correct processes). An oracle may use both the *current* crashed set
/// and the *planned* faulty set; e.g. a weakly-accurate oracle must pick
/// some process that will never crash and never suspect it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultTruth {
    crash_times: Vec<Option<Time>>,
}

impl FaultTruth {
    /// Builds the truth from resolved per-process crash ticks.
    #[must_use]
    pub fn new(crash_times: Vec<Option<Time>>) -> Self {
        FaultTruth { crash_times }
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.crash_times.len()
    }

    /// The tick at which `p` crashes, if it ever does.
    #[must_use]
    pub fn crash_time(&self, p: ProcessId) -> Option<Time> {
        self.crash_times[p.index()]
    }

    /// Processes that have crashed **by** tick `m` (inclusive).
    #[must_use]
    pub fn crashed_by(&self, m: Time) -> ProcSet {
        ProcessId::all(self.n())
            .filter(|&p| matches!(self.crash_times[p.index()], Some(t) if t <= m))
            .collect()
    }

    /// `F(r)`: every process destined to crash in this run.
    #[must_use]
    pub fn faulty(&self) -> ProcSet {
        ProcessId::all(self.n())
            .filter(|&p| self.crash_times[p.index()].is_some())
            .collect()
    }

    /// The correct processes of this run.
    #[must_use]
    pub fn correct(&self) -> ProcSet {
        self.faulty().complement(self.n())
    }
}

/// A per-process failure-detector oracle.
///
/// The scheduler calls [`FdOracle::poll`] for process `p` at tick `time`
/// whenever `p` has a free event slot and the polling period has elapsed;
/// returning `Some(report)` appends `suspect_p(report)` to `p`'s history.
///
/// Implementations must be deterministic given the provided RNG (which the
/// scheduler seeds from the run's seed) so that simulations reproduce.
pub trait FdOracle {
    /// Asks the oracle for `p`'s next report at `time`, given the ground
    /// truth. Returning `None` emits nothing this tick.
    fn poll(
        &mut self,
        p: ProcessId,
        time: Time,
        truth: &FaultTruth,
        rng: &mut StdRng,
    ) -> Option<SuspectReport>;

    /// A short human-readable class name ("perfect", "strong", …) used in
    /// reports and tables.
    fn class_name(&self) -> &'static str {
        "unnamed"
    }
}

/// Boxed oracles are oracles, so wrappers (e.g. the contract-violating
/// perturbations in `ktudc-fd`) can compose with dynamically chosen
/// detectors.
impl FdOracle for Box<dyn FdOracle> {
    fn poll(
        &mut self,
        p: ProcessId,
        time: Time,
        truth: &FaultTruth,
        rng: &mut StdRng,
    ) -> Option<SuspectReport> {
        (**self).poll(p, time, truth, rng)
    }

    fn class_name(&self) -> &'static str {
        (**self).class_name()
    }
}

/// The absent failure detector: never reports anything. This is the "no FD"
/// context of Table 1.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullOracle;

impl NullOracle {
    /// Creates a `NullOracle`.
    #[must_use]
    pub fn new() -> Self {
        NullOracle
    }
}

impl FdOracle for NullOracle {
    fn poll(
        &mut self,
        _p: ProcessId,
        _time: Time,
        _truth: &FaultTruth,
        _rng: &mut StdRng,
    ) -> Option<SuspectReport> {
        None
    }

    fn class_name(&self) -> &'static str {
        "none"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn fault_truth_queries() {
        let truth = FaultTruth::new(vec![None, Some(4), Some(9)]);
        assert_eq!(truth.n(), 3);
        assert_eq!(truth.crash_time(p(1)), Some(4));
        assert_eq!(truth.crash_time(p(0)), None);
        assert_eq!(truth.faulty(), [p(1), p(2)].into_iter().collect());
        assert_eq!(truth.correct(), ProcSet::singleton(p(0)));
        assert!(truth.crashed_by(3).is_empty());
        assert_eq!(truth.crashed_by(4), ProcSet::singleton(p(1)));
        assert_eq!(truth.crashed_by(100), truth.faulty());
    }

    #[test]
    fn null_oracle_never_reports() {
        let mut o = NullOracle::new();
        let truth = FaultTruth::new(vec![Some(1), Some(1)]);
        let mut rng = StdRng::seed_from_u64(0);
        for t in 0..20 {
            assert_eq!(o.poll(p(0), t, &truth, &mut rng), None);
        }
        assert_eq!(o.class_name(), "none");
    }
}
