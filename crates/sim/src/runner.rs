//! The seeded Monte-Carlo executor.
//!
//! [`run_protocol`] drives one run to the configured horizon: at each tick,
//! each live process gets at most one event (R2), chosen with the priority
//! order *crash* > *workload initiation* > *failure-detector report* >
//! *delivery-or-protocol-action* (the last pair arbitrated by the seeded
//! RNG). The result is a well-formed [`Run`] (R1–R4 by construction)
//! together with the ground-truth fault schedule and quiescence information.

use crate::config::{SimConfig, Workload};
use crate::faults::FaultStats;
use crate::network::Network;
use crate::oracle::{FaultTruth, FdOracle};
use crate::protocol::{ProtoAction, Protocol};
use ktudc_model::{ActionId, Event, ModelError, ProcessId, Run, RunBuilder, Time};
use rand::Rng;
use std::collections::VecDeque;
use std::hash::Hash;

/// The outcome of one simulated run.
#[derive(Clone, Debug)]
pub struct SimOutcome<M> {
    /// The generated run (R1–R4 hold by construction; R5 holds with high
    /// probability at adequate horizons and can be re-checked via
    /// [`Run::check_conditions`]).
    pub run: Run<M>,
    /// The resolved fault schedule the oracles saw.
    pub truth: FaultTruth,
    /// `true` if, at the horizon, every live protocol reported quiescence,
    /// the network was idle, and the workload was fully dispatched —
    /// i.e. the run genuinely *terminated* rather than running out of time.
    pub quiescent: bool,
    /// Total message copies handed to the network.
    pub messages_sent: u64,
    /// Copies lost to channel unreliability, injected faults, or receiver
    /// crashes.
    pub messages_dropped: u64,
    /// What the fault engine actually injected (all zeros for
    /// [`FaultPlan::none`](crate::FaultPlan::none)).
    pub faults: FaultStats,
}

/// Appends a receive, tolerating the R3 rejection that an injected
/// duplicate provokes: when the fault plan can duplicate, the offending
/// receive is force-appended so the run records exactly what happened on
/// the wire (and `Run::check_conditions` will flag it). Any other append
/// failure is a runner bug.
pub(crate) fn append_recv<M: Clone + Eq + Hash>(
    builder: &mut RunBuilder<M>,
    p: ProcessId,
    t: Time,
    event: Event<M>,
    duplication_possible: bool,
) {
    match builder.append(p, t, event.clone()) {
        Ok(()) => {}
        Err(ModelError::ReceiveWithoutSend { .. }) if duplication_possible => {
            builder
                .force_append(p, t, event)
                .expect("force_append only relaxes R3");
        }
        Err(e) => panic!("recv append: {e}"),
    }
}

/// Runs `make(p)`-built protocols in the context described by `config`,
/// with failure detector `oracle` and workload `workload`, and returns the
/// generated run.
///
/// Identical inputs (including [`SimConfig::seed`]) produce identical runs.
///
/// # Panics
///
/// Panics if the workload initiates an action on behalf of a process other
/// than the action's owner, or if the crash plan is malformed (see
/// [`CrashPlan::resolve`](crate::CrashPlan::resolve)).
pub fn run_protocol<M, P, F, O>(
    config: &SimConfig,
    make: F,
    oracle: &mut O,
    workload: &Workload,
) -> SimOutcome<M>
where
    M: Clone + Eq + Hash,
    P: Protocol<M>,
    F: Fn(ProcessId) -> P,
    O: FdOracle + ?Sized,
{
    let n = config.n();
    let mut rng = config.rng();
    let truth = FaultTruth::new(config.crash_plan().resolve(n, &mut rng));
    let mut protocols: Vec<P> = ProcessId::all(n)
        .map(|p| {
            let mut proto = make(p);
            proto.start(p, n);
            proto
        })
        .collect();
    let mut builder: RunBuilder<M> = RunBuilder::new(n);
    let mut net: Network<M> = Network::new(n);
    let mut pending_inits: Vec<VecDeque<ActionId>> = vec![VecDeque::new(); n];
    let kind = config.channel_kind();
    let fd_period = config.fd_period_ticks();
    let horizon = config.horizon_ticks();
    // The armed fault engine draws from its own salted RNG stream, so an
    // empty plan leaves the scheduler RNG sequence — and thus every
    // previously pinned run — byte-identical.
    let inject = !config.fault_plan().is_empty();
    let duplication_possible = config.fault_plan().duplicates();
    let mut faults = config.fault_plan().activate(config.seed_value());

    for t in 1..=horizon {
        // Enqueue this tick's workload initiations.
        for action in workload.at_tick(t) {
            pending_inits[action.initiator().index()].push_back(action);
        }
        for p in ProcessId::all(n) {
            if builder.crashed().contains(p) {
                continue;
            }
            // 1. Crash, if scheduled for this tick.
            if truth.crash_time(p) == Some(t) {
                builder
                    .append(p, t, Event::Crash)
                    .expect("crash append cannot violate R1-R4 on a live process");
                net.drop_all_to(p);
                pending_inits[p.index()].clear();
                continue;
            }
            // 2. Workload initiation.
            if let Some(action) = pending_inits[p.index()].pop_front() {
                assert_eq!(
                    action.initiator(),
                    p,
                    "workload action owned by another process"
                );
                let event = Event::Init { action };
                builder.append(p, t, event.clone()).expect("init append");
                protocols[p.index()].observe(t, &event);
                continue;
            }
            // 3. Failure-detector report (staggered polling).
            if (t + p.index() as Time).is_multiple_of(fd_period) {
                if let Some(report) = oracle.poll(p, t, &truth, &mut rng) {
                    let event = Event::Suspect(report);
                    builder.append(p, t, event.clone()).expect("suspect append");
                    protocols[p.index()].observe(t, &event);
                    continue;
                }
            }
            // 4. Delivery vs protocol action, arbitrated by the RNG when
            //    both are available.
            let deliverable = net.has_deliverable(p, t);
            let prefer_delivery = deliverable
                && (rng.gen_bool(config.deliver_bias_value()) || {
                    // Peek whether the protocol even has an action; if not,
                    // delivery is the only productive use of the slot.
                    false
                });
            if prefer_delivery {
                if let Some((from, msg)) = net.deliver_one(p, t) {
                    let event = Event::Recv { from, msg };
                    append_recv(&mut builder, p, t, event.clone(), duplication_possible);
                    protocols[p.index()].observe(t, &event);
                    continue;
                }
            }
            match protocols[p.index()].next_action(t) {
                Some(ProtoAction::Send { to, msg }) => {
                    let event = Event::Send {
                        to,
                        msg: msg.clone(),
                    };
                    builder.append(p, t, event.clone()).expect("send append");
                    protocols[p.index()].observe(t, &event);
                    if inject {
                        net.send_faulty(p, to, msg, t, kind, &mut rng, &mut faults);
                    } else {
                        net.send(p, to, msg, t, kind, &mut rng);
                    }
                }
                Some(ProtoAction::Do(action)) => {
                    let event = Event::Do { action };
                    builder.append(p, t, event.clone()).expect("do append");
                    protocols[p.index()].observe(t, &event);
                }
                None => {
                    // No protocol action; fall back to a delivery if one was
                    // available but lost the coin flip.
                    if deliverable {
                        if let Some((from, msg)) = net.deliver_one(p, t) {
                            let event = Event::Recv { from, msg };
                            append_recv(&mut builder, p, t, event.clone(), duplication_possible);
                            protocols[p.index()].observe(t, &event);
                        }
                    }
                }
            }
        }
    }

    let crashed = builder.crashed();
    let quiescent = net.is_idle()
        && pending_inits.iter().all(VecDeque::is_empty)
        && workload
            .schedule()
            .iter()
            .all(|&(t, a)| t <= horizon || crashed.contains(a.initiator()))
        && ProcessId::all(n)
            .filter(|&p| !crashed.contains(p))
            .all(|p| protocols[p.index()].quiescent());
    SimOutcome {
        run: builder.finish(horizon),
        truth,
        quiescent,
        messages_sent: net.sent_count(),
        messages_dropped: net.dropped_count(),
        faults: faults.into_stats(),
    }
}

/// Simulates one run per seed, in parallel (feature `parallel`; sequential
/// and bit-identical otherwise). Element `i` of the result is exactly
/// `run_protocol(&config.clone().seed(seeds[i]), ..)` with a fresh
/// `make_oracle(seeds[i])` oracle — batching never changes outcomes, only
/// wall-clock time. This is the sampling loop behind every Monte-Carlo
/// approximation of a system: the per-seed runs are independent by
/// construction, so they are embarrassingly parallel.
pub fn run_protocol_batch<M, P, F, O, G>(
    config: &SimConfig,
    seeds: &[u64],
    make: F,
    make_oracle: G,
    workload: &Workload,
) -> Vec<SimOutcome<M>>
where
    M: Clone + Eq + Hash + Send,
    P: Protocol<M>,
    F: Fn(ProcessId) -> P + Sync,
    O: FdOracle,
    G: Fn(u64) -> O + Sync,
{
    ktudc_par::par_map(seeds.to_vec(), |seed| {
        let cfg = config.clone().seed(seed);
        let mut oracle = make_oracle(seed);
        run_protocol(&cfg, &make, &mut oracle, workload)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ChannelKind, CrashPlan};
    use crate::oracle::NullOracle;
    use crate::protocol::Outbox;
    use ktudc_model::ProcSet;
    use std::collections::BTreeSet;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// Toy flooding protocol: on observing `init(α)` or receiving `α`,
    /// perform `α` and (once) relay it to everyone. Not retransmitting, so
    /// only correct under reliable channels — exactly what these tests use.
    #[derive(Clone, Debug)]
    struct Flood {
        me: ProcessId,
        n: usize,
        seen: BTreeSet<ActionId>,
        done: BTreeSet<ActionId>,
        to_do: VecDeque<ActionId>,
        out: Outbox<ActionId>,
    }

    impl Flood {
        fn new() -> Self {
            Flood {
                me: ProcessId::new(0),
                n: 0,
                seen: BTreeSet::new(),
                done: BTreeSet::new(),
                to_do: VecDeque::new(),
                out: Outbox::new(),
            }
        }

        fn learn(&mut self, action: ActionId) {
            if self.seen.insert(action) {
                self.out.broadcast(self.me, self.n, action);
                self.to_do.push_back(action);
            }
        }
    }

    impl Protocol<ActionId> for Flood {
        fn start(&mut self, me: ProcessId, n: usize) {
            self.me = me;
            self.n = n;
        }

        fn observe(&mut self, _time: Time, event: &Event<ActionId>) {
            match event {
                Event::Init { action } => self.learn(*action),
                Event::Recv { msg, .. } => self.learn(*msg),
                _ => {}
            }
        }

        fn next_action(&mut self, _time: Time) -> Option<ProtoAction<ActionId>> {
            if let Some(a) = self.to_do.pop_front() {
                self.done.insert(a);
                return Some(ProtoAction::Do(a));
            }
            self.out.pop()
        }

        fn quiescent(&self) -> bool {
            self.to_do.is_empty() && self.out.is_empty()
        }
    }

    #[test]
    fn flood_reaches_everyone_on_reliable_channels() {
        let config = SimConfig::new(4)
            .channel(ChannelKind::reliable())
            .horizon(60)
            .seed(1);
        let w = Workload::single(0, 1);
        let alpha = w.actions()[0];
        let out = run_protocol(&config, |_| Flood::new(), &mut NullOracle::new(), &w);
        assert!(out.quiescent, "flood should quiesce well before tick 60");
        for q in ProcessId::all(4) {
            assert!(
                out.run.view_at(q, 60).did(alpha),
                "{q} never performed the action"
            );
        }
        out.run.check_conditions(0).unwrap();
    }

    #[test]
    fn determinism_per_seed() {
        let config = SimConfig::new(3)
            .channel(ChannelKind::fair_lossy(0.4))
            .horizon(80)
            .seed(99);
        let w = Workload::periodic(3, 5, 40);
        let a = run_protocol(&config, |_| Flood::new(), &mut NullOracle::new(), &w);
        let b = run_protocol(&config, |_| Flood::new(), &mut NullOracle::new(), &w);
        assert_eq!(a.run, b.run);
        assert_eq!(a.messages_sent, b.messages_sent);
        let c = run_protocol(
            &config.clone().seed(100),
            |_| Flood::new(),
            &mut NullOracle::new(),
            &w,
        );
        assert_ne!(a.run, c.run, "different seeds should diverge");
    }

    #[test]
    fn crashes_happen_on_schedule_and_silence_processes() {
        let config = SimConfig::new(3)
            .crashes(CrashPlan::at(&[(1, 5)]))
            .horizon(40)
            .seed(3);
        let w = Workload::single(0, 1);
        let out = run_protocol(&config, |_| Flood::new(), &mut NullOracle::new(), &w);
        assert_eq!(out.run.crash_time(p(1)), Some(5));
        assert_eq!(out.run.faulty(), ProcSet::singleton(p(1)));
        // Nothing after the crash.
        let events_after: Vec<_> = out
            .run
            .timed_history(p(1))
            .filter(|(t, _)| *t > 5)
            .collect();
        assert!(events_after.is_empty());
        out.run.check_conditions(0).unwrap();
    }

    #[test]
    fn workload_initiations_appear_in_history() {
        let config = SimConfig::new(2).horizon(30).seed(0);
        let w = Workload::periodic(2, 3, 12);
        let out = run_protocol(&config, |_| Flood::new(), &mut NullOracle::new(), &w);
        let inits: Vec<ActionId> = out.run.initiations().map(|(_, a)| a).collect();
        assert_eq!(inits.len(), w.actions().len());
    }

    #[test]
    fn lossy_channels_lose_messages_but_run_stays_wellformed() {
        let config = SimConfig::new(4)
            .channel(ChannelKind::fair_lossy(0.5))
            .horizon(100)
            .seed(12);
        let w = Workload::single(0, 1);
        let out = run_protocol(&config, |_| Flood::new(), &mut NullOracle::new(), &w);
        assert!(out.messages_dropped > 0, "50% loss should drop something");
        out.run.check_conditions(0).unwrap();
    }

    #[test]
    fn batch_matches_sequential_per_seed_runs() {
        let config = SimConfig::new(3)
            .channel(ChannelKind::fair_lossy(0.3))
            .horizon(40);
        let w = Workload::single(0, 1);
        let seeds: Vec<u64> = (0..16).collect();
        let batch =
            run_protocol_batch(&config, &seeds, |_| Flood::new(), |_| NullOracle::new(), &w);
        assert_eq!(batch.len(), seeds.len());
        for (i, &seed) in seeds.iter().enumerate() {
            let solo = run_protocol(
                &config.clone().seed(seed),
                |_| Flood::new(),
                &mut NullOracle::new(),
                &w,
            );
            assert_eq!(batch[i].run, solo.run, "seed {seed}");
            assert_eq!(batch[i].quiescent, solo.quiescent);
            assert_eq!(batch[i].messages_sent, solo.messages_sent);
        }
    }

    #[test]
    fn quiescence_is_false_when_horizon_too_short() {
        let config = SimConfig::new(6).horizon(3).seed(0);
        let w = Workload::single(0, 1);
        let out = run_protocol(&config, |_| Flood::new(), &mut NullOracle::new(), &w);
        assert!(!out.quiescent, "6-process flood cannot finish by tick 3");
    }
}
