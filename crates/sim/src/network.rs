//! In-flight message state for the Monte-Carlo runner.
//!
//! Channels are unidirectional, per ordered pair of processes. They never
//! corrupt or duplicate (R3 holds by construction: only sent copies are
//! enqueued, each at most once) — unless a [`FaultPlan`](crate::FaultPlan)
//! explicitly injects duplication through [`Network::send_faulty`], in
//! which case the extra copies are tracked separately so the conservation
//! law `sent + duplicated == delivered + dropped + in_flight` still holds.
//! Loss is decided *at send time*: under
//! [`ChannelKind::FairLossy`](crate::ChannelKind) each copy independently
//! survives with probability `1 − drop_prob`; surviving copies receive an
//! RNG-chosen arrival tick. Delivery order within a channel follows arrival
//! ticks, not send order — channels are not FIFO, matching the paper's
//! minimal assumptions.

use crate::config::ChannelKind;
use crate::faults::{ActiveFaults, SendDecision};
use ktudc_model::{ProcessId, Time};
use rand::rngs::StdRng;
use rand::Rng;

#[derive(Clone, Debug)]
struct InFlight<M> {
    msg: M,
    arrival: Time,
    /// Monotone sequence number breaking arrival ties deterministically.
    seq: u64,
}

/// The in-flight message state of all `n²` channels.
#[derive(Clone, Debug)]
pub struct Network<M> {
    n: usize,
    channels: Vec<Vec<InFlight<M>>>,
    next_seq: u64,
    sent: u64,
    dropped: u64,
    delivered: u64,
    duplicated: u64,
}

impl<M> Network<M> {
    /// Creates an empty network for `n` processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Network {
            n,
            channels: (0..n * n).map(|_| Vec::new()).collect(),
            next_seq: 0,
            sent: 0,
            dropped: 0,
            delivered: 0,
            duplicated: 0,
        }
    }

    fn idx(&self, from: ProcessId, to: ProcessId) -> usize {
        from.index() * self.n + to.index()
    }

    /// Records a send at tick `now`; the copy may be dropped (fair-lossy) or
    /// scheduled for a later arrival.
    pub fn send(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        msg: M,
        now: Time,
        kind: ChannelKind,
        rng: &mut StdRng,
    ) {
        self.sent += 1;
        if let ChannelKind::FairLossy { drop_prob, .. } = kind {
            if rng.gen_bool(drop_prob) {
                self.dropped += 1;
                return;
            }
        }
        let delay = rng.gen_range(1..=kind.max_delay());
        let idx = self.idx(from, to);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.channels[idx].push(InFlight {
            msg,
            arrival: now + delay,
            seq,
        });
    }

    /// Removes and returns the deliverable message for `to` with the
    /// earliest arrival tick ≤ `now` (ties broken by send order, then by
    /// sender index), if any.
    pub fn deliver_one(&mut self, to: ProcessId, now: Time) -> Option<(ProcessId, M)> {
        let mut best: Option<(usize, usize, Time, u64)> = None; // (chan, pos, arrival, seq)
        for from in ProcessId::all(self.n) {
            let c = self.idx(from, to);
            for (pos, inf) in self.channels[c].iter().enumerate() {
                if inf.arrival <= now {
                    let better = match best {
                        None => true,
                        Some((_, _, a, s)) => (inf.arrival, inf.seq) < (a, s),
                    };
                    if better {
                        best = Some((c, pos, inf.arrival, inf.seq));
                    }
                }
            }
        }
        best.map(|(c, pos, _, _)| {
            let inf = self.channels[c].remove(pos);
            self.delivered += 1;
            (ProcessId::new(c / self.n), inf.msg)
        })
    }

    /// Whether any message for `to` is deliverable at `now`.
    #[must_use]
    pub fn has_deliverable(&self, to: ProcessId, now: Time) -> bool {
        ProcessId::all(self.n).any(|from| {
            self.channels[self.idx(from, to)]
                .iter()
                .any(|inf| inf.arrival <= now)
        })
    }

    /// Discards everything still in flight toward `to` (used when `to`
    /// crashes: undelivered copies can never be received).
    pub fn drop_all_to(&mut self, to: ProcessId) {
        for from in ProcessId::all(self.n) {
            let idx = self.idx(from, to);
            self.dropped += self.channels[idx].len() as u64;
            self.channels[idx].clear();
        }
    }

    /// Whether nothing is in flight anywhere.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.channels.iter().all(Vec::is_empty)
    }

    /// Total copies handed to the network (including dropped ones).
    #[must_use]
    pub fn sent_count(&self) -> u64 {
        self.sent
    }

    /// Copies lost to channel unreliability, injected faults, and copies
    /// discarded at a receiver's crash.
    #[must_use]
    pub fn dropped_count(&self) -> u64 {
        self.dropped
    }

    /// Copies removed from the network by delivery.
    #[must_use]
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Extra copies enqueued by fault-injected duplication (counted on top
    /// of `sent`, which only counts protocol-originated copies).
    #[must_use]
    pub fn duplicated_count(&self) -> u64 {
        self.duplicated
    }

    /// Copies currently in flight. Together with the other counters this
    /// satisfies the conservation law
    /// `sent + duplicated == delivered + dropped + in_flight`
    /// at every instant.
    #[must_use]
    pub fn in_flight_count(&self) -> u64 {
        self.channels.iter().map(|c| c.len() as u64).sum()
    }
}

impl<M: Clone> Network<M> {
    /// Like [`Network::send`], but routed through an armed fault engine:
    /// the copy may be dropped by a partition or burst window, delayed by a
    /// spike, or duplicated. Base channel loss and the base delay draw use
    /// the scheduler RNG exactly as [`Network::send`] does; all fault
    /// randomness comes from `faults`' dedicated stream.
    #[allow(clippy::too_many_arguments)] // mirrors `send` plus the fault engine
    pub fn send_faulty(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        msg: M,
        now: Time,
        kind: ChannelKind,
        rng: &mut StdRng,
        faults: &mut ActiveFaults,
    ) {
        self.sent += 1;
        let (extra_delay, duplicate_after) = match faults.on_send(from, to, now, kind.max_delay()) {
            SendDecision::Drop => {
                self.dropped += 1;
                return;
            }
            SendDecision::Pass {
                extra_delay,
                duplicate_after,
            } => (extra_delay, duplicate_after),
        };
        if let ChannelKind::FairLossy { drop_prob, .. } = kind {
            if rng.gen_bool(drop_prob) {
                self.dropped += 1;
                return;
            }
        }
        let delay = rng.gen_range(1..=kind.max_delay()) + extra_delay;
        let idx = self.idx(from, to);
        let arrival = now + delay;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.channels[idx].push(InFlight {
            msg: msg.clone(),
            arrival,
            seq,
        });
        if let Some(after) = duplicate_after {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.channels[idx].push(InFlight {
                msg,
                arrival: arrival + after,
                seq,
            });
            self.duplicated += 1;
            faults.record_duplicate(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn reliable_delivery_in_arrival_order() {
        let mut net = Network::new(2);
        let mut rng = StdRng::seed_from_u64(1);
        let kind = ChannelKind::Reliable { max_delay: 1 };
        net.send(p(0), p(1), "a", 1, kind, &mut rng);
        net.send(p(0), p(1), "b", 2, kind, &mut rng);
        assert!(!net.has_deliverable(p(1), 1));
        assert!(net.has_deliverable(p(1), 2));
        assert_eq!(net.deliver_one(p(1), 5), Some((p(0), "a")));
        assert_eq!(net.deliver_one(p(1), 5), Some((p(0), "b")));
        assert_eq!(net.deliver_one(p(1), 5), None);
        assert!(net.is_idle());
    }

    #[test]
    fn lossy_channels_drop_some_but_not_all() {
        let mut net = Network::new(2);
        let mut rng = StdRng::seed_from_u64(7);
        let kind = ChannelKind::fair_lossy(0.5);
        for t in 1..=200 {
            net.send(p(0), p(1), t, t, kind, &mut rng);
        }
        let delivered = std::iter::from_fn(|| net.deliver_one(p(1), 10_000)).count();
        assert!(delivered > 50, "delivered only {delivered} of 200");
        assert!(delivered < 150, "delivered {delivered} of 200 at 50% loss");
        assert_eq!(net.sent_count(), 200);
        assert_eq!(net.dropped_count() as usize, 200 - delivered);
    }

    #[test]
    fn no_delivery_to_other_process() {
        let mut net = Network::new(3);
        let mut rng = StdRng::seed_from_u64(0);
        net.send(
            p(0),
            p(1),
            1u8,
            1,
            ChannelKind::Reliable { max_delay: 1 },
            &mut rng,
        );
        assert_eq!(net.deliver_one(p(2), 100), None);
        assert_eq!(net.deliver_one(p(0), 100), None);
        assert!(net.deliver_one(p(1), 100).is_some());
    }

    #[test]
    fn drop_all_to_clears_inbound() {
        let mut net = Network::new(2);
        let mut rng = StdRng::seed_from_u64(0);
        let kind = ChannelKind::Reliable { max_delay: 2 };
        net.send(p(0), p(1), 1u8, 1, kind, &mut rng);
        net.send(p(1), p(0), 2u8, 1, kind, &mut rng);
        net.drop_all_to(p(1));
        assert_eq!(net.deliver_one(p(1), 100), None);
        assert_eq!(net.deliver_one(p(0), 100), Some((p(1), 2u8)));
    }

    #[test]
    fn conservation_law_holds_through_faulty_sends() {
        use crate::faults::FaultPlan;
        let mut net = Network::new(3);
        let mut rng = StdRng::seed_from_u64(5);
        let mut faults = FaultPlan::none()
            .duplicate(0.4)
            .burst_loss(10, 3)
            .sever_link(0, 2, 1)
            .activate(5);
        let kind = ChannelKind::fair_lossy(0.3);
        let check = |net: &Network<u64>| {
            assert_eq!(
                net.sent_count() + net.duplicated_count(),
                net.delivered_count() + net.dropped_count() + net.in_flight_count(),
            );
        };
        for t in 1..=120 {
            net.send_faulty(p(0), p(1), t, t, kind, &mut rng, &mut faults);
            net.send_faulty(p(0), p(2), t, t, kind, &mut rng, &mut faults);
            check(&net);
            if t % 4 == 0 {
                net.deliver_one(p(1), t);
                check(&net);
            }
            if t == 60 {
                net.drop_all_to(p(1));
                check(&net);
            }
        }
        // The severed link delivered nothing, ever.
        assert_eq!(net.deliver_one(p(2), 10_000), None);
        let stats = faults.into_stats();
        assert_eq!(stats.partition_dropped, 120);
        assert!(stats.duplicated > 0, "duplication never fired");
        assert!(stats.burst_dropped > 0, "burst loss never fired");
    }

    #[test]
    fn faulty_send_with_empty_plan_matches_plain_send() {
        use crate::faults::FaultPlan;
        let kind = ChannelKind::fair_lossy(0.3);
        let plain = {
            let mut net = Network::new(2);
            let mut rng = StdRng::seed_from_u64(9);
            for t in 1..=50 {
                net.send(p(0), p(1), t, t, kind, &mut rng);
            }
            std::iter::from_fn(|| net.deliver_one(p(1), 1000)).collect::<Vec<_>>()
        };
        let faulty = {
            let mut net = Network::new(2);
            let mut rng = StdRng::seed_from_u64(9);
            let mut faults = FaultPlan::none().activate(9);
            for t in 1..=50 {
                net.send_faulty(p(0), p(1), t, t, kind, &mut rng, &mut faults);
            }
            std::iter::from_fn(|| net.deliver_one(p(1), 1000)).collect::<Vec<_>>()
        };
        assert_eq!(plain, faulty);
    }

    #[test]
    fn determinism_under_same_seed() {
        let run = |seed: u64| {
            let mut net = Network::new(2);
            let mut rng = StdRng::seed_from_u64(seed);
            let kind = ChannelKind::fair_lossy(0.3);
            for t in 1..=50 {
                net.send(p(0), p(1), t, t, kind, &mut rng);
            }
            std::iter::from_fn(|| net.deliver_one(p(1), 1000)).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4)); // overwhelmingly likely
    }
}
