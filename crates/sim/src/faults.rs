//! Deterministic, seed-reproducible fault injection.
//!
//! A [`FaultPlan`] describes *adversarial* network behavior layered on top
//! of the base channel regime: message duplication (an R3 violation),
//! delay spikes (bounded extra latency — in-model, since asynchrony permits
//! arbitrary finite delays), burst loss windows, and targeted per-link
//! partitions, including *permanent* ones — an unfair channel that drops
//! every copy on a link, violating R5.
//!
//! Two invariants make the engine safe to thread through the existing
//! simulator:
//!
//! 1. **Determinism.** All fault randomness comes from a dedicated RNG
//!    derived from the run seed (`seed ^ FAULT_STREAM_SALT`), never from
//!    the scheduler's RNG. Identical `FaultPlan` + seed ⇒ identical
//!    injections ⇒ identical runs.
//! 2. **Zero perturbation when empty.** [`FaultPlan::none`] (the default)
//!    draws nothing and decides nothing: the runner takes the exact code
//!    path it took before this module existed, so every previously pinned
//!    run is byte-identical.
//!
//! Every injection is *recorded in the run itself*: duplicated deliveries
//! are force-appended as ordinary `recv` events (which
//! [`Run::check_conditions`](ktudc_model::Run::check_conditions) then
//! flags as R3 violations), dropped copies simply never arrive (so a
//! permanently severed link surfaces as an R5 `UnfairChannel` at a finite
//! fairness threshold, or as a coordination-spec violation), and the
//! aggregate [`FaultStats`] travel with the
//! [`SimOutcome`](crate::runner::SimOutcome).

use crate::config::check_probability;
use ktudc_model::{ModelError, ProcessId, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// XOR-salt separating the fault RNG stream from the scheduler's stream.
const FAULT_STREAM_SALT: u64 = 0x5eed_fa17_1bad_c0de;

/// A periodic window: ticks `t` with `t % period < width` are "inside".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
struct Window {
    period: Time,
    width: Time,
}

impl Window {
    fn contains(self, t: Time) -> bool {
        t % self.period < self.width
    }
}

/// A targeted partition of one directed link.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
struct LinkPartition {
    from: ProcessId,
    to: ProcessId,
    start: Time,
    /// Last affected tick; `None` makes the partition permanent (an unfair
    /// channel in the sense of R5).
    until: Option<Time>,
}

impl LinkPartition {
    fn active(&self, from: ProcessId, to: ProcessId, t: Time) -> bool {
        self.from == from && self.to == to && t >= self.start && self.until.is_none_or(|u| t <= u)
    }
}

/// A declarative, seed-reproducible fault schedule.
///
/// Built fluently; the empty plan injects nothing:
///
/// ```
/// use ktudc_sim::FaultPlan;
///
/// let plan = FaultPlan::none()
///     .duplicate(0.2)
///     .delay_spikes(50, 10, 7)
///     .sever_link(0, 1, 30);
/// assert!(!plan.is_empty());
/// assert!(FaultPlan::none().is_empty());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Per-surviving-copy probability of enqueuing a duplicate.
    duplicate_prob: f64,
    /// Extra latency added to copies sent inside the spike window.
    delay_spike: Option<(Window, Time)>,
    /// All copies sent inside the burst window are dropped (every link).
    burst_loss: Option<Window>,
    /// Targeted per-link partitions.
    partitions: Vec<LinkPartition>,
}

impl FaultPlan {
    /// The empty plan: no faults, zero perturbation of the simulation.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether this plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.duplicate_prob == 0.0
            && self.delay_spike.is_none()
            && self.burst_loss.is_none()
            && self.partitions.is_empty()
    }

    /// Duplicates each surviving copy with probability `prob` — an R3
    /// violation the model layer is guaranteed to flag.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is NaN or outside `[0, 1)`.
    #[must_use]
    pub fn duplicate(self, prob: f64) -> Self {
        match self.try_duplicate(prob) {
            Ok(plan) => plan,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`FaultPlan::duplicate`].
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidProbability`] if `prob` is NaN or outside
    /// `[0, 1)`.
    pub fn try_duplicate(mut self, prob: f64) -> Result<Self, ModelError> {
        check_probability("duplicate_prob", prob, false)?;
        self.duplicate_prob = prob;
        Ok(self)
    }

    /// Adds `extra` ticks of latency to every copy sent during the first
    /// `width` ticks of each `period`-tick cycle. Bounded extra delay is
    /// *in-model*: asynchronous channels already permit arbitrary finite
    /// delays.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or `width` exceeds `period`.
    #[must_use]
    pub fn delay_spikes(mut self, period: Time, width: Time, extra: Time) -> Self {
        assert!(period >= 1, "spike period must be at least 1");
        assert!(width <= period, "spike width cannot exceed its period");
        self.delay_spike = Some((Window { period, width }, extra));
        self
    }

    /// Drops every copy (on every link) sent during the first `width` ticks
    /// of each `period`-tick cycle.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or `width` exceeds `period`.
    #[must_use]
    pub fn burst_loss(mut self, period: Time, width: Time) -> Self {
        assert!(period >= 1, "burst period must be at least 1");
        assert!(width <= period, "burst width cannot exceed its period");
        self.burst_loss = Some(Window { period, width });
        self
    }

    /// Drops every copy sent on the directed link `from → to` during ticks
    /// `start..=until` — a bounded partition, in-model for retransmitting
    /// protocols.
    #[must_use]
    pub fn partition_link(mut self, from: usize, to: usize, start: Time, until: Time) -> Self {
        self.partitions.push(LinkPartition {
            from: ProcessId::new(from),
            to: ProcessId::new(to),
            start,
            until: Some(until),
        });
        self
    }

    /// Permanently severs the directed link `from → to` from tick `start`
    /// on: an *unfair* channel, violating R5. At finite horizons the
    /// violation is detected once the sender has pushed at least the
    /// fairness threshold's worth of copies into the void (see
    /// `Run::check_conditions`).
    #[must_use]
    pub fn sever_link(mut self, from: usize, to: usize, start: Time) -> Self {
        self.partitions.push(LinkPartition {
            from: ProcessId::new(from),
            to: ProcessId::new(to),
            start,
            until: None,
        });
        self
    }

    /// Whether the plan contains a permanent (R5-violating) partition.
    #[must_use]
    pub fn has_unfair_link(&self) -> bool {
        self.partitions.iter().any(|p| p.until.is_none())
    }

    /// Whether the plan can duplicate copies (an R3 violation).
    #[must_use]
    pub fn duplicates(&self) -> bool {
        self.duplicate_prob > 0.0
    }

    /// Whether the plan can destroy copies (burst loss or partitions).
    /// Loss is in-model on channels already declared lossy, but breaks the
    /// reliable-channel assumption of Proposition 2.4 otherwise.
    #[must_use]
    pub fn drops_copies(&self) -> bool {
        self.burst_loss.is_some() || !self.partitions.is_empty()
    }

    /// Arms the plan for one run: pairs it with the dedicated fault RNG for
    /// `seed` and zeroed counters.
    #[must_use]
    pub fn activate(&self, seed: u64) -> ActiveFaults {
        ActiveFaults {
            plan: self.clone(),
            rng: StdRng::seed_from_u64(seed ^ FAULT_STREAM_SALT),
            stats: FaultStats::default(),
        }
    }
}

/// What actually got injected during one run, for reports and assertions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Extra copies enqueued by duplication.
    pub duplicated: u64,
    /// Copies dropped by burst-loss windows.
    pub burst_dropped: u64,
    /// Copies dropped by link partitions (bounded or permanent).
    pub partition_dropped: u64,
    /// Copies delayed by spike windows.
    pub spike_delayed: u64,
    /// Tick of the first injection of any kind, if one fired.
    pub first_injection: Option<Time>,
}

impl FaultStats {
    /// Total injections of every kind.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.duplicated + self.burst_dropped + self.partition_dropped + self.spike_delayed
    }

    fn mark(&mut self, t: Time) {
        if self.first_injection.is_none_or(|f| t < f) {
            self.first_injection = Some(t);
        }
    }
}

/// The per-send verdict of the fault engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendDecision {
    /// Drop every copy of this send (partition or burst window).
    Drop,
    /// Let the copy through, possibly perturbed.
    Pass {
        /// Extra latency to add to the base RNG-chosen delay.
        extra_delay: Time,
        /// If set, also enqueue a duplicate arriving this many ticks after
        /// the original copy.
        duplicate_after: Option<Time>,
    },
}

/// A [`FaultPlan`] armed for one run: plan + dedicated RNG + counters.
#[derive(Clone, Debug)]
pub struct ActiveFaults {
    plan: FaultPlan,
    rng: StdRng,
    stats: FaultStats,
}

impl ActiveFaults {
    /// Decides the fate of one copy sent `from → to` at tick `now`, where
    /// `max_delay` is the channel's maximum base delay (bounds the
    /// duplicate's extra offset). Draws from the fault RNG only when the
    /// corresponding injector is configured, so plans are independent of
    /// each other's randomness.
    pub fn on_send(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        now: Time,
        max_delay: Time,
    ) -> SendDecision {
        if self.plan.partitions.iter().any(|p| p.active(from, to, now)) {
            self.stats.partition_dropped += 1;
            self.stats.mark(now);
            return SendDecision::Drop;
        }
        if self.plan.burst_loss.is_some_and(|w| w.contains(now)) {
            self.stats.burst_dropped += 1;
            self.stats.mark(now);
            return SendDecision::Drop;
        }
        let mut extra_delay = 0;
        if let Some((window, extra)) = self.plan.delay_spike {
            if window.contains(now) {
                extra_delay = extra;
                self.stats.spike_delayed += 1;
                self.stats.mark(now);
            }
        }
        let duplicate_after =
            if self.plan.duplicate_prob > 0.0 && self.rng.gen_bool(self.plan.duplicate_prob) {
                Some(self.rng.gen_range(1..=max_delay.max(1)))
            } else {
                None
            };
        SendDecision::Pass {
            extra_delay,
            duplicate_after,
        }
    }

    /// Records that the network actually enqueued a duplicate copy at tick
    /// `now` (a decided duplicate whose original was dropped by base
    /// channel loss never materializes and is *not* counted).
    pub fn record_duplicate(&mut self, now: Time) {
        self.stats.duplicated += 1;
        self.stats.mark(now);
    }

    /// The injections so far.
    #[must_use]
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Consumes the engine, yielding its final counters.
    #[must_use]
    pub fn into_stats(self) -> FaultStats {
        self.stats
    }

    /// The plan this engine was armed with.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn empty_plan_passes_everything_untouched() {
        let mut active = FaultPlan::none().activate(7);
        for t in 1..=100 {
            assert_eq!(
                active.on_send(p(0), p(1), t, 3),
                SendDecision::Pass {
                    extra_delay: 0,
                    duplicate_after: None
                }
            );
        }
        assert_eq!(active.into_stats(), FaultStats::default());
    }

    #[test]
    fn severed_link_drops_only_its_direction() {
        let mut active = FaultPlan::none().sever_link(0, 1, 10).activate(0);
        assert_eq!(
            active.on_send(p(0), p(1), 9, 3),
            SendDecision::Pass {
                extra_delay: 0,
                duplicate_after: None
            }
        );
        assert_eq!(active.on_send(p(0), p(1), 10, 3), SendDecision::Drop);
        assert_eq!(active.on_send(p(0), p(1), 9_999, 3), SendDecision::Drop);
        // The reverse direction and other links are untouched.
        assert!(matches!(
            active.on_send(p(1), p(0), 50, 3),
            SendDecision::Pass { .. }
        ));
        assert_eq!(active.stats().partition_dropped, 2);
        assert_eq!(active.stats().first_injection, Some(10));
    }

    #[test]
    fn bounded_partition_heals() {
        let mut active = FaultPlan::none().partition_link(2, 0, 5, 8).activate(0);
        assert!(matches!(
            active.on_send(p(2), p(0), 4, 3),
            SendDecision::Pass { .. }
        ));
        for t in 5..=8 {
            assert_eq!(active.on_send(p(2), p(0), t, 3), SendDecision::Drop);
        }
        assert!(matches!(
            active.on_send(p(2), p(0), 9, 3),
            SendDecision::Pass { .. }
        ));
    }

    #[test]
    fn burst_window_is_periodic() {
        let mut active = FaultPlan::none().burst_loss(10, 2).activate(0);
        // Ticks ≡ 0,1 (mod 10) are inside the window.
        assert_eq!(active.on_send(p(0), p(1), 10, 3), SendDecision::Drop);
        assert_eq!(active.on_send(p(0), p(1), 11, 3), SendDecision::Drop);
        assert!(matches!(
            active.on_send(p(0), p(1), 12, 3),
            SendDecision::Pass { .. }
        ));
        assert_eq!(active.on_send(p(0), p(1), 21, 3), SendDecision::Drop);
        assert_eq!(active.stats().burst_dropped, 3);
    }

    #[test]
    fn delay_spikes_add_bounded_latency() {
        let mut active = FaultPlan::none().delay_spikes(20, 5, 9).activate(0);
        match active.on_send(p(0), p(1), 40, 3) {
            SendDecision::Pass { extra_delay, .. } => assert_eq!(extra_delay, 9),
            other => panic!("unexpected {other:?}"),
        }
        match active.on_send(p(0), p(1), 45, 3) {
            SendDecision::Pass { extra_delay, .. } => assert_eq!(extra_delay, 0),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(active.stats().spike_delayed, 1);
    }

    #[test]
    fn duplication_fires_and_is_deterministic_per_seed() {
        let draws = |seed: u64| {
            let mut active = FaultPlan::none().duplicate(0.5).activate(seed);
            (1..=200)
                .map(|t| active.on_send(p(0), p(1), t, 3))
                .collect::<Vec<_>>()
        };
        assert_eq!(draws(3), draws(3));
        assert_ne!(draws(3), draws(4)); // overwhelmingly likely
        let dups = draws(3)
            .iter()
            .filter(|d| {
                matches!(
                    d,
                    SendDecision::Pass {
                        duplicate_after: Some(_),
                        ..
                    }
                )
            })
            .count();
        assert!((50..150).contains(&dups), "dup coin badly biased: {dups}");
    }

    #[test]
    fn invalid_duplication_probability_is_a_typed_error() {
        for bad in [f64::NAN, -0.1, 1.0, 2.0] {
            let err = FaultPlan::none().try_duplicate(bad).unwrap_err();
            assert!(
                matches!(err, ModelError::InvalidProbability { param, .. } if param == "duplicate_prob"),
                "{bad}: {err:?}"
            );
        }
        assert!(FaultPlan::none().try_duplicate(0.0).is_ok());
    }

    #[test]
    fn plan_classification_helpers() {
        assert!(!FaultPlan::none().partition_link(0, 1, 1, 9).is_empty());
        assert!(!FaultPlan::none()
            .partition_link(0, 1, 1, 9)
            .has_unfair_link());
        assert!(FaultPlan::none().sever_link(0, 1, 1).has_unfair_link());
        assert!(FaultPlan::none().duplicate(0.1).duplicates());
        assert!(!FaultPlan::none().duplicates());
    }
}
