//! The protocol interface: deterministic state machines over local
//! histories.
//!
//! The paper defines a protocol for process `p` as a function from finite
//! histories to actions (§2.1). Re-deriving decisions from the whole history
//! at every step would be needlessly slow, so [`Protocol`] is the standard
//! incremental equivalent: the state machine *observes* each event as it is
//! appended to its own history ([`Protocol::observe`]) and, when the
//! scheduler grants it an event slot, proposes at most one action
//! ([`Protocol::next_action`]). Because `observe` is driven exclusively by
//! the process's own history, any `Protocol` is semantically a function of
//! the local history, as required.
//!
//! Coordination-action *initiations* are driven by the environment (the
//! [`Workload`](crate::Workload)), so a protocol action is either a send or
//! the execution (`do`) of a coordination action.

use ktudc_model::{ActionId, Event, ProcessId, Time};
use std::collections::VecDeque;

/// An action a protocol may take when granted an event slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoAction<M> {
    /// Send `msg` to `to` (the event `send_p(to, msg)`).
    Send {
        /// Destination process.
        to: ProcessId,
        /// Message payload.
        msg: M,
    },
    /// Execute coordination action `α` (the event `do_p(α)`).
    Do(ActionId),
}

/// A deterministic protocol state machine for one process.
///
/// Implementations must be deterministic functions of the observed history:
/// given the same sequence of `observe` calls, `next_action` must propose
/// the same actions. (The exhaustive explorer clones protocol states when
/// branching, which is only sound under this assumption.)
pub trait Protocol<M> {
    /// Called once before the run starts, with this process's identity and
    /// the system size.
    fn start(&mut self, me: ProcessId, n: usize);

    /// Called for **every** event appended to this process's history — both
    /// events the protocol itself proposed (sends, dos) and environment
    /// events (receives, initiations, failure-detector reports). Never
    /// called for `crash` (a crashed process takes no further steps).
    fn observe(&mut self, time: Time, event: &Event<M>);

    /// Called when the scheduler grants this process an event slot; may
    /// propose at most one action. Returning `None` yields the slot (the
    /// scheduler may then use it for a delivery, or leave it idle).
    fn next_action(&mut self, time: Time) -> Option<ProtoAction<M>>;

    /// Reports whether the protocol has quiesced: no pending work remains
    /// and, absent further input, `next_action` will return `None` forever.
    /// Retransmission-based protocols return `false` while retransmissions
    /// are still pending. Used by experiments to distinguish "terminated"
    /// from "ran out of horizon".
    fn quiescent(&self) -> bool;
}

/// A FIFO outbox of pending sends, the common currency of every protocol in
/// this workspace.
///
/// Broadcasting under the one-event-per-tick rule (R2) takes `n − 1` ticks;
/// protocols enqueue the sends here and drain them one per slot.
///
/// # Example
///
/// ```
/// use ktudc_sim::{Outbox, ProtoAction};
/// use ktudc_model::ProcessId;
///
/// let mut out = Outbox::new();
/// out.broadcast(ProcessId::new(0), 3, "hello");
/// assert_eq!(out.len(), 2); // to p1 and p2, not to self
/// match out.pop() {
///     Some(ProtoAction::Send { to, msg }) => {
///         assert_eq!(to, ProcessId::new(1));
///         assert_eq!(msg, "hello");
///     }
///     other => panic!("unexpected {other:?}"),
/// }
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Outbox<M> {
    queue: VecDeque<(ProcessId, M)>,
}

impl<M: Clone> Outbox<M> {
    /// Creates an empty outbox.
    #[must_use]
    pub fn new() -> Self {
        Outbox {
            queue: VecDeque::new(),
        }
    }

    /// Enqueues one send.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.queue.push_back((to, msg));
    }

    /// Enqueues a send of `msg` to every process except `me`.
    pub fn broadcast(&mut self, me: ProcessId, n: usize, msg: M) {
        for q in ProcessId::all(n) {
            if q != me {
                self.queue.push_back((q, msg.clone()));
            }
        }
    }

    /// Dequeues the oldest pending send as a [`ProtoAction`].
    pub fn pop(&mut self) -> Option<ProtoAction<M>> {
        self.queue
            .pop_front()
            .map(|(to, msg)| ProtoAction::Send { to, msg })
    }

    /// Number of pending sends.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the outbox is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Removes every pending send to `to` (used when a peer is discovered
    /// crashed and retransmission to it becomes pointless).
    pub fn cancel_to(&mut self, to: ProcessId) {
        self.queue.retain(|(q, _)| *q != to);
    }

    /// Removes every pending send matching the predicate.
    pub fn retain(&mut self, mut keep: impl FnMut(ProcessId, &M) -> bool) {
        self.queue.retain(|(q, m)| keep(*q, m));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn outbox_fifo_order() {
        let mut out = Outbox::new();
        out.send(p(1), "a");
        out.send(p(2), "b");
        assert_eq!(out.len(), 2);
        assert_eq!(out.pop(), Some(ProtoAction::Send { to: p(1), msg: "a" }));
        assert_eq!(out.pop(), Some(ProtoAction::Send { to: p(2), msg: "b" }));
        assert_eq!(out.pop(), None);
        assert!(out.is_empty());
    }

    #[test]
    fn broadcast_skips_self() {
        let mut out = Outbox::new();
        out.broadcast(p(1), 4, 9u8);
        let dests: Vec<usize> = std::iter::from_fn(|| out.pop())
            .map(|a| match a {
                ProtoAction::Send { to, .. } => to.index(),
                ProtoAction::Do(_) => unreachable!(),
            })
            .collect();
        assert_eq!(dests, vec![0, 2, 3]);
    }

    #[test]
    fn cancel_and_retain() {
        let mut out = Outbox::new();
        out.broadcast(p(0), 4, 1u8);
        out.cancel_to(p(2));
        assert_eq!(out.len(), 2);
        out.retain(|q, _| q == p(3));
        assert_eq!(out.len(), 1);
        assert_eq!(out.pop(), Some(ProtoAction::Send { to: p(3), msg: 1 }));
    }
}
