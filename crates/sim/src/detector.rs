//! Message-fed failure detectors and the two-plane runner that hosts them.
//!
//! The oracles of [`crate::oracle`] answer from the ground truth; a
//! [`Detector`] must *earn* its suspicions from observable behavior — the
//! arrival (or ominous non-arrival) of messages on real channels, with real
//! delays, loss, and injected faults. This module defines the per-process
//! detector interface and [`run_detected`], a variant of
//! [`run_protocol`](crate::runner::run_protocol) that runs one detector
//! instance *inside* each process and feeds it from a dedicated
//! detector-plane [`Network`].
//!
//! # The two planes
//!
//! Detector traffic (heartbeats, gossip digests) is kept on its own
//! [`Network`] instance — the *detector plane* — with the same
//! [`ChannelKind`](crate::ChannelKind) and the same
//! [`FaultPlan`](crate::FaultPlan) windows as the protocol plane, but a
//! dedicated RNG stream (`seed ^ DETECTOR_STREAM_SALT`). Two reasons:
//!
//! 1. **R2 stays intact.** A heartbeat detector emits `n−1` copies per
//!    period per process; metering that through the one-event-per-tick
//!    budget would starve the protocol under test. Plane separation models
//!    the standard deployment where failure detection runs beside the
//!    application, not inside its event loop.
//! 2. **Run shape is preserved.** Only the periodic `suspect_p(·)` reports
//!    enter the [`Run`](ktudc_model::Run) — at the same staggered
//!    `fd_period` cadence, consuming the same event slot, as oracle
//!    reports. The property checkers of `ktudc-fd` therefore classify a
//!    derived detector and a ground-truth oracle on identical evidence.
//!
//! Window-based faults (delay spikes, bursts, partitions, severed links)
//! are time-deterministic, so both planes experience the same outage
//! windows; only per-copy randomness (loss coins, delays, duplication)
//! differs between the streams.

use crate::config::{SimConfig, Workload};
use crate::faults::FaultStats;
use crate::network::Network;
use crate::oracle::FaultTruth;
use crate::protocol::{ProtoAction, Protocol};
use crate::runner::SimOutcome;
use ktudc_model::{ActionId, Event, ProcessId, SuspectReport, Time};
use ktudc_model::{Run, RunBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::hash::Hash;

/// XOR-salt separating the detector plane's RNG stream (channel coins,
/// gossip peer choices, fault injections) from the scheduler's stream, so
/// adding a detector never perturbs the protocol plane's randomness.
pub const DETECTOR_STREAM_SALT: u64 = 0xbea7_5eed_0b5e_6ed5;

/// A per-process, message-fed failure detector.
///
/// One instance runs inside each process. It may only learn from what the
/// runner tells it: its own clock ticks and the detector-plane messages it
/// receives. It must *not* consult the fault schedule — that is what
/// distinguishes it from an [`FdOracle`](crate::FdOracle).
///
/// Implementations must be deterministic given the provided RNG (the
/// runner's dedicated detector stream) so simulations reproduce.
pub trait Detector {
    /// The detector-plane message type (heartbeats, counter vectors, …).
    type Msg: Clone + Eq + Hash;

    /// Called once before the run starts.
    fn start(&mut self, me: ProcessId, n: usize);

    /// Called every tick while the process is alive; returns the
    /// detector-plane messages to send this tick (possibly none). The RNG
    /// is the dedicated detector stream.
    fn on_tick(&mut self, now: Time, rng: &mut StdRng) -> Vec<(ProcessId, Self::Msg)>;

    /// Called for every detector-plane message delivered to this process.
    fn on_recv(&mut self, now: Time, from: ProcessId, msg: &Self::Msg);

    /// The detector's current verdict, polled at the scheduler's staggered
    /// `fd_period` cadence and appended to the run as `suspect_p(·)`.
    fn report(&mut self, now: Time) -> SuspectReport;

    /// Short human-readable name ("heartbeat", "phi-accrual", …).
    fn name(&self) -> &'static str {
        "unnamed"
    }
}

/// Boxed detectors are detectors, so dynamically chosen implementations
/// (and contract-violating wrappers) compose.
impl<M: Clone + Eq + Hash> Detector for Box<dyn Detector<Msg = M>> {
    type Msg = M;

    fn start(&mut self, me: ProcessId, n: usize) {
        (**self).start(me, n);
    }

    fn on_tick(&mut self, now: Time, rng: &mut StdRng) -> Vec<(ProcessId, M)> {
        (**self).on_tick(now, rng)
    }

    fn on_recv(&mut self, now: Time, from: ProcessId, msg: &M) {
        (**self).on_recv(now, from, msg);
    }

    fn report(&mut self, now: Time) -> SuspectReport {
        (**self).report(now)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// The outcome of one detector-fed run: the protocol plane's
/// [`SimOutcome`] plus the detector plane's traffic accounting.
#[derive(Clone, Debug)]
pub struct DetectedOutcome<M> {
    /// The protocol-plane outcome; `sim.run` carries the detector's
    /// suspicion history in its `suspect` events.
    pub sim: SimOutcome<M>,
    /// Detector-plane copies handed to its network.
    pub fd_messages_sent: u64,
    /// Detector-plane copies lost (channel loss, faults, receiver crash).
    pub fd_messages_dropped: u64,
    /// What the fault engine injected on the detector plane.
    pub fd_faults: FaultStats,
}

impl<M> DetectedOutcome<M> {
    /// The generated run (convenience passthrough).
    #[must_use]
    pub fn run(&self) -> &Run<M> {
        &self.sim.run
    }
}

/// Runs `make(p)`-built protocols exactly as
/// [`run_protocol`](crate::runner::run_protocol) does, but wires each
/// process to its own `make_detector(p)` instance instead of a shared
/// oracle. Detector traffic flows on a dedicated plane (see module docs);
/// the periodic `suspect_p(·)` reports consume the same event slot, at the
/// same staggered cadence, as oracle reports would.
///
/// Identical inputs (including [`SimConfig::seed`]) produce identical runs.
///
/// # Panics
///
/// Panics under the same conditions as `run_protocol` (malformed workload
/// ownership or crash plan).
pub fn run_detected<M, P, F, D, G>(
    config: &SimConfig,
    make: F,
    make_detector: G,
    workload: &Workload,
) -> DetectedOutcome<M>
where
    M: Clone + Eq + Hash,
    P: Protocol<M>,
    F: Fn(ProcessId) -> P,
    D: Detector,
    G: Fn(ProcessId) -> D,
{
    let n = config.n();
    let mut rng = config.rng();
    let mut det_rng = StdRng::seed_from_u64(config.seed_value() ^ DETECTOR_STREAM_SALT);
    let truth = FaultTruth::new(config.crash_plan().resolve(n, &mut rng));
    let mut protocols: Vec<P> = ProcessId::all(n)
        .map(|p| {
            let mut proto = make(p);
            proto.start(p, n);
            proto
        })
        .collect();
    let mut detectors: Vec<D> = ProcessId::all(n)
        .map(|p| {
            let mut det = make_detector(p);
            det.start(p, n);
            det
        })
        .collect();
    let mut builder: RunBuilder<M> = RunBuilder::new(n);
    let mut net: Network<M> = Network::new(n);
    let mut fd_net: Network<D::Msg> = Network::new(n);
    let mut pending_inits: Vec<VecDeque<ActionId>> = vec![VecDeque::new(); n];
    let kind = config.channel_kind();
    let fd_period = config.fd_period_ticks();
    let horizon = config.horizon_ticks();
    let inject = !config.fault_plan().is_empty();
    let duplication_possible = config.fault_plan().duplicates();
    let mut faults = config.fault_plan().activate(config.seed_value());
    // The detector plane sees the same fault *windows* (they are functions
    // of time and link only) but draws its per-copy randomness from its
    // own armed engine, keyed off the salted seed.
    let mut fd_faults = config
        .fault_plan()
        .activate(config.seed_value() ^ DETECTOR_STREAM_SALT);

    for t in 1..=horizon {
        for action in workload.at_tick(t) {
            pending_inits[action.initiator().index()].push_back(action);
        }
        // Detector plane: slot-free. Crash takes effect at the top of the
        // tick here — a process crashing at t sends no dying heartbeat.
        for p in ProcessId::all(n) {
            if truth.crash_time(p).is_some_and(|ct| ct <= t) {
                continue;
            }
            // Drain every arrival due by now, then let the detector speak.
            while let Some((from, msg)) = fd_net.deliver_one(p, t) {
                detectors[p.index()].on_recv(t, from, &msg);
            }
            for (to, msg) in detectors[p.index()].on_tick(t, &mut det_rng) {
                if inject {
                    fd_net.send_faulty(p, to, msg, t, kind, &mut det_rng, &mut fd_faults);
                } else {
                    fd_net.send(p, to, msg, t, kind, &mut det_rng);
                }
            }
        }
        // Protocol plane: identical discipline to `run_protocol`, except
        // the FD slot asks the process's detector instead of an oracle.
        for p in ProcessId::all(n) {
            if builder.crashed().contains(p) {
                continue;
            }
            if truth.crash_time(p) == Some(t) {
                builder
                    .append(p, t, Event::Crash)
                    .expect("crash append cannot violate R1-R4 on a live process");
                net.drop_all_to(p);
                fd_net.drop_all_to(p);
                pending_inits[p.index()].clear();
                continue;
            }
            if let Some(action) = pending_inits[p.index()].pop_front() {
                assert_eq!(
                    action.initiator(),
                    p,
                    "workload action owned by another process"
                );
                let event = Event::Init { action };
                builder.append(p, t, event.clone()).expect("init append");
                protocols[p.index()].observe(t, &event);
                continue;
            }
            if (t + p.index() as Time).is_multiple_of(fd_period) {
                let report = detectors[p.index()].report(t);
                let event = Event::Suspect(report);
                builder.append(p, t, event.clone()).expect("suspect append");
                protocols[p.index()].observe(t, &event);
                continue;
            }
            let deliverable = net.has_deliverable(p, t);
            let prefer_delivery = deliverable && rng.gen_bool(config.deliver_bias_value());
            if prefer_delivery {
                if let Some((from, msg)) = net.deliver_one(p, t) {
                    let event = Event::Recv { from, msg };
                    crate::runner::append_recv(
                        &mut builder,
                        p,
                        t,
                        event.clone(),
                        duplication_possible,
                    );
                    protocols[p.index()].observe(t, &event);
                    continue;
                }
            }
            match protocols[p.index()].next_action(t) {
                Some(ProtoAction::Send { to, msg }) => {
                    let event = Event::Send {
                        to,
                        msg: msg.clone(),
                    };
                    builder.append(p, t, event.clone()).expect("send append");
                    protocols[p.index()].observe(t, &event);
                    if inject {
                        net.send_faulty(p, to, msg, t, kind, &mut rng, &mut faults);
                    } else {
                        net.send(p, to, msg, t, kind, &mut rng);
                    }
                }
                Some(ProtoAction::Do(action)) => {
                    let event = Event::Do { action };
                    builder.append(p, t, event.clone()).expect("do append");
                    protocols[p.index()].observe(t, &event);
                }
                None => {
                    if deliverable {
                        if let Some((from, msg)) = net.deliver_one(p, t) {
                            let event = Event::Recv { from, msg };
                            crate::runner::append_recv(
                                &mut builder,
                                p,
                                t,
                                event.clone(),
                                duplication_possible,
                            );
                            protocols[p.index()].observe(t, &event);
                        }
                    }
                }
            }
        }
    }

    let crashed = builder.crashed();
    // Quiescence is a *protocol-plane* notion: heartbeat traffic never
    // stops, so the detector plane is deliberately excluded.
    let quiescent = net.is_idle()
        && pending_inits.iter().all(VecDeque::is_empty)
        && workload
            .schedule()
            .iter()
            .all(|&(t, a)| t <= horizon || crashed.contains(a.initiator()))
        && ProcessId::all(n)
            .filter(|&p| !crashed.contains(p))
            .all(|p| protocols[p.index()].quiescent());
    DetectedOutcome {
        sim: SimOutcome {
            run: builder.finish(horizon),
            truth,
            quiescent,
            messages_sent: net.sent_count(),
            messages_dropped: net.dropped_count(),
            faults: faults.into_stats(),
        },
        fd_messages_sent: fd_net.sent_count(),
        fd_messages_dropped: fd_net.dropped_count(),
        fd_faults: fd_faults.into_stats(),
    }
}

/// One detector-fed run per seed, in parallel (feature `parallel`;
/// sequential and bit-identical otherwise). Element `i` equals
/// `run_detected(&config.clone().seed(seeds[i]), ..)` with fresh factories.
pub fn run_detected_batch<M, P, F, D, G>(
    config: &SimConfig,
    seeds: &[u64],
    make: F,
    make_detector: G,
    workload: &Workload,
) -> Vec<DetectedOutcome<M>>
where
    M: Clone + Eq + Hash + Send,
    P: Protocol<M>,
    F: Fn(ProcessId) -> P + Sync,
    D: Detector,
    G: Fn(ProcessId) -> D + Sync,
{
    ktudc_par::par_map(seeds.to_vec(), |seed| {
        let cfg = config.clone().seed(seed);
        run_detected(&cfg, &make, &make_detector, workload)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ChannelKind, CrashPlan};
    use crate::faults::FaultPlan;
    use ktudc_model::ProcSet;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// A protocol that does nothing: the run is crashes + suspect reports.
    #[derive(Clone, Debug)]
    struct Idle;

    impl Protocol<u8> for Idle {
        fn start(&mut self, _me: ProcessId, _n: usize) {}
        fn observe(&mut self, _time: Time, _event: &Event<u8>) {}
        fn next_action(&mut self, _time: Time) -> Option<ProtoAction<u8>> {
            None
        }
        fn quiescent(&self) -> bool {
            true
        }
    }

    /// Minimal honest detector: broadcast a beat every 4 ticks, suspect
    /// whoever has been silent longer than 12 ticks.
    #[derive(Clone, Debug)]
    struct TestBeat {
        me: ProcessId,
        n: usize,
        last_heard: Vec<Time>,
    }

    impl TestBeat {
        fn new() -> Self {
            TestBeat {
                me: ProcessId::new(0),
                n: 0,
                last_heard: Vec::new(),
            }
        }
    }

    impl Detector for TestBeat {
        type Msg = u8;

        fn start(&mut self, me: ProcessId, n: usize) {
            self.me = me;
            self.n = n;
            self.last_heard = vec![0; n];
        }

        fn on_tick(&mut self, now: Time, _rng: &mut StdRng) -> Vec<(ProcessId, u8)> {
            if (now + self.me.index() as Time).is_multiple_of(4) {
                ProcessId::all(self.n)
                    .filter(|&q| q != self.me)
                    .map(|q| (q, 0u8))
                    .collect()
            } else {
                Vec::new()
            }
        }

        fn on_recv(&mut self, now: Time, from: ProcessId, _msg: &u8) {
            self.last_heard[from.index()] = now;
        }

        fn report(&mut self, now: Time) -> SuspectReport {
            let suspects: ProcSet = ProcessId::all(self.n)
                .filter(|&q| q != self.me && now.saturating_sub(self.last_heard[q.index()]) > 12)
                .collect();
            SuspectReport::Standard(suspects)
        }

        fn name(&self) -> &'static str {
            "test-beat"
        }
    }

    fn reports_of(run: &Run<u8>, p: ProcessId) -> Vec<(Time, ProcSet)> {
        run.timed_history(p)
            .filter_map(|(t, e)| match e {
                Event::Suspect(SuspectReport::Standard(s)) => Some((t, *s)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn determinism_per_seed() {
        let config = SimConfig::new(3)
            .channel(ChannelKind::fair_lossy(0.2))
            .crashes(CrashPlan::at(&[(2, 30)]))
            .faults(FaultPlan::none().delay_spikes(40, 10, 8))
            .horizon(120)
            .seed(7);
        let w = Workload::none();
        let a = run_detected(&config, |_| Idle, |_| TestBeat::new(), &w);
        let b = run_detected(&config, |_| Idle, |_| TestBeat::new(), &w);
        assert_eq!(a.sim.run, b.sim.run);
        assert_eq!(a.fd_messages_sent, b.fd_messages_sent);
        assert_eq!(a.fd_faults, b.fd_faults);
        let c = run_detected(&config.clone().seed(8), |_| Idle, |_| TestBeat::new(), &w);
        assert_ne!(a.sim.run, c.sim.run, "different seeds should diverge");
    }

    #[test]
    fn reports_arrive_at_the_staggered_oracle_cadence() {
        let config = SimConfig::new(3).horizon(40).seed(1);
        let out = run_detected(&config, |_| Idle, |_| TestBeat::new(), &Workload::none());
        for q in ProcessId::all(3) {
            let ticks: Vec<Time> = reports_of(&out.sim.run, q)
                .iter()
                .map(|&(t, _)| t)
                .collect();
            assert!(!ticks.is_empty());
            for t in &ticks {
                assert!(
                    (*t + q.index() as Time).is_multiple_of(4),
                    "{q} reported off-cadence at {t}"
                );
            }
        }
    }

    #[test]
    fn crashed_process_goes_silent_and_gets_suspected() {
        let config = SimConfig::new(3)
            .crashes(CrashPlan::at(&[(1, 20)]))
            .horizon(100)
            .seed(2);
        let out = run_detected(&config, |_| Idle, |_| TestBeat::new(), &Workload::none());
        assert_eq!(out.sim.run.crash_time(p(1)), Some(20));
        // Every survivor's final suspicion state contains p1.
        for q in [p(0), p(2)] {
            assert!(
                out.sim.run.suspects_at(q, 100).contains(p(1)),
                "{q} never latched the crash of p1"
            );
        }
        // The crashed process emitted nothing after its crash tick.
        assert!(reports_of(&out.sim.run, p(1)).iter().all(|&(t, _)| t < 20));
        out.sim.run.check_conditions(0).unwrap();
    }

    #[test]
    fn clean_reliable_run_has_no_false_suspicions() {
        let config = SimConfig::new(4).horizon(150).seed(3);
        let out = run_detected(&config, |_| Idle, |_| TestBeat::new(), &Workload::none());
        for q in ProcessId::all(4) {
            for (t, s) in reports_of(&out.sim.run, q) {
                assert!(
                    s.is_empty(),
                    "{q} falsely suspected {s} at tick {t} in a crash-free reliable run"
                );
            }
        }
        assert!(out.fd_messages_sent > 0, "heartbeats never flowed");
        assert_eq!(out.fd_messages_dropped, 0, "reliable plane dropped copies");
    }

    #[test]
    fn detector_plane_faults_do_not_touch_protocol_plane_counters() {
        let config = SimConfig::new(3)
            .faults(FaultPlan::none().sever_link(0, 1, 10))
            .horizon(80)
            .seed(4);
        let out = run_detected(&config, |_| Idle, |_| TestBeat::new(), &Workload::none());
        // Idle protocol sends nothing, so every partition drop happened on
        // the detector plane.
        assert_eq!(out.sim.messages_sent, 0);
        assert_eq!(out.sim.faults.partition_dropped, 0);
        assert!(out.fd_faults.partition_dropped > 0, "sever never fired");
        // And the severed link manufactures a false suspicion: p1 loses
        // p0's beats while p0 stays alive.
        assert!(out.sim.run.suspects_at(p(1), 80).contains(p(0)));
    }

    #[test]
    fn batch_matches_sequential_per_seed_runs() {
        let config = SimConfig::new(3)
            .channel(ChannelKind::fair_lossy(0.2))
            .horizon(60);
        let seeds: Vec<u64> = (0..8).collect();
        let batch = run_detected_batch(
            &config,
            &seeds,
            |_| Idle,
            |_| TestBeat::new(),
            &Workload::none(),
        );
        for (i, &seed) in seeds.iter().enumerate() {
            let solo = run_detected(
                &config.clone().seed(seed),
                |_| Idle,
                |_| TestBeat::new(),
                &Workload::none(),
            );
            assert_eq!(batch[i].sim.run, solo.sim.run, "seed {seed}");
            assert_eq!(batch[i].fd_messages_sent, solo.fd_messages_sent);
        }
    }

    #[test]
    fn boxed_detectors_compose() {
        let config = SimConfig::new(3).horizon(60).seed(5);
        let boxed = run_detected(
            &config,
            |_| Idle,
            |_| Box::new(TestBeat::new()) as Box<dyn Detector<Msg = u8>>,
            &Workload::none(),
        );
        let plain = run_detected(&config, |_| Idle, |_| TestBeat::new(), &Workload::none());
        assert_eq!(boxed.sim.run, plain.sim.run);
    }
}
