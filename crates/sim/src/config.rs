//! Simulation configuration: the *context* of a run.
//!
//! Section 2.1 of the paper defines a context as "a bound on the number of
//! processes that can fail, a specification of properties of failure
//! detectors, and a specification of communication properties".
//! [`SimConfig`] captures the first and third (the failure-detector wiring
//! is supplied separately as an [`FdOracle`](crate::FdOracle)), plus the
//! operational knobs a finite simulation needs: horizon, seed, delivery
//! delays, and the failure-detector polling period.

use crate::faults::FaultPlan;
use ktudc_model::{ActionId, ModelError, ProcessId, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Validates a probability parameter: finite and inside `[0, 1]`
/// (`inclusive_one`) or `[0, 1)` (otherwise). NaN, infinities, negatives,
/// and out-of-bound values all yield the typed
/// [`ModelError::InvalidProbability`] instead of reaching
/// `Rng::gen_bool`, whose contract check would panic with no context.
pub(crate) fn check_probability(
    param: &'static str,
    value: f64,
    inclusive_one: bool,
) -> Result<(), ModelError> {
    let in_range = if inclusive_one {
        (0.0..=1.0).contains(&value)
    } else {
        (0.0..1.0).contains(&value)
    };
    if value.is_finite() && in_range {
        Ok(())
    } else {
        Err(ModelError::InvalidProbability {
            param,
            value: format!("{value}"),
            range: if inclusive_one { "[0, 1]" } else { "[0, 1)" },
        })
    }
}

/// Channel reliability regime.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChannelKind {
    /// Reliable channels: every sent copy is eventually delivered (after an
    /// RNG-chosen delay of at most `max_delay` ticks). Used for the
    /// Proposition 2.4 context.
    Reliable {
        /// Maximum delivery delay in ticks (≥ 1).
        max_delay: Time,
    },
    /// Fair-lossy channels: each copy is independently dropped with
    /// probability `drop_prob`; surviving copies are delivered after an
    /// RNG-chosen delay of at most `max_delay` ticks. Messages are never
    /// corrupted or duplicated (R3) and a message sent unboundedly often is
    /// received unboundedly often (R5).
    FairLossy {
        /// Per-copy drop probability in `[0, 1)`. `1.0` would violate R5
        /// and is rejected by [`SimConfig::channel`].
        drop_prob: f64,
        /// Maximum delivery delay in ticks (≥ 1).
        max_delay: Time,
    },
}

impl ChannelKind {
    /// Reliable channels with the default maximum delay of 3 ticks.
    #[must_use]
    pub fn reliable() -> Self {
        ChannelKind::Reliable { max_delay: 3 }
    }

    /// Fair-lossy channels with the given drop probability and the default
    /// maximum delay of 3 ticks.
    ///
    /// # Panics
    ///
    /// Panics if `drop_prob` is NaN or outside `[0, 1)` (a channel dropping
    /// everything is not fair — R5). Use [`ChannelKind::try_fair_lossy`]
    /// for a fallible, typed-error form.
    #[must_use]
    pub fn fair_lossy(drop_prob: f64) -> Self {
        match Self::try_fair_lossy(drop_prob) {
            Ok(kind) => kind,
            Err(e) => panic!("{e}: a channel dropping everything is not fair (R5)"),
        }
    }

    /// Fallible form of [`ChannelKind::fair_lossy`].
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidProbability`] if `drop_prob` is NaN or outside
    /// `[0, 1)`.
    pub fn try_fair_lossy(drop_prob: f64) -> Result<Self, ModelError> {
        check_probability("drop_prob", drop_prob, false)?;
        Ok(ChannelKind::FairLossy {
            drop_prob,
            max_delay: 3,
        })
    }

    /// Validates the regime's parameters (drop probability in `[0, 1)` for
    /// fair-lossy channels, delays ≥ 1). Struct-literal construction can
    /// bypass the checked constructors; [`SimConfig::channel`] re-validates
    /// through this.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidProbability`] on an inadmissible drop
    /// probability.
    pub fn validate(self) -> Result<(), ModelError> {
        if let ChannelKind::FairLossy { drop_prob, .. } = self {
            check_probability("drop_prob", drop_prob, false)?;
        }
        assert!(self.max_delay() >= 1, "max_delay must be at least 1 tick");
        Ok(())
    }

    /// The per-copy drop probability (0 for reliable channels).
    #[must_use]
    pub fn drop_prob(self) -> f64 {
        match self {
            ChannelKind::Reliable { .. } => 0.0,
            ChannelKind::FairLossy { drop_prob, .. } => drop_prob,
        }
    }

    /// The maximum delivery delay.
    #[must_use]
    pub fn max_delay(self) -> Time {
        match self {
            ChannelKind::Reliable { max_delay } | ChannelKind::FairLossy { max_delay, .. } => {
                max_delay
            }
        }
    }
}

/// When processes crash.
///
/// The plan is resolved to a concrete per-process crash tick at simulation
/// start (see [`CrashPlan::resolve`]), so oracles that need the ground truth
/// (e.g. a weakly-accurate detector choosing a never-suspected correct
/// process) can consult it.
#[derive(Clone, Debug, PartialEq)]
pub enum CrashPlan {
    /// Nobody crashes.
    None,
    /// The listed processes crash at the listed ticks.
    At(Vec<(ProcessId, Time)>),
    /// Up to `max_failures` processes (chosen by the seed) crash at
    /// RNG-chosen ticks within `1..=latest`.
    Random {
        /// Maximum number of crashes (the bound `t` of the context).
        max_failures: usize,
        /// Latest tick at which a crash may be scheduled.
        latest: Time,
    },
}

impl CrashPlan {
    /// Convenience constructor for [`CrashPlan::At`] from `(index, tick)`
    /// pairs.
    #[must_use]
    pub fn at(pairs: &[(usize, Time)]) -> Self {
        CrashPlan::At(pairs.iter().map(|&(i, t)| (ProcessId::new(i), t)).collect())
    }

    /// Resolves the plan to a concrete crash tick per process.
    ///
    /// # Panics
    ///
    /// Panics if an explicit plan names a process out of range, schedules a
    /// crash at tick 0, or names a process twice.
    #[must_use]
    pub fn resolve(&self, n: usize, rng: &mut StdRng) -> Vec<Option<Time>> {
        let mut times = vec![None; n];
        match self {
            CrashPlan::None => {}
            CrashPlan::At(pairs) => {
                for &(p, t) in pairs {
                    assert!(
                        p.index() < n,
                        "crash plan names {p} in a {n}-process system"
                    );
                    assert!(t >= 1, "crashes cannot be scheduled at tick 0 (R1)");
                    assert!(times[p.index()].is_none(), "duplicate crash for {p}");
                    times[p.index()] = Some(t);
                }
            }
            CrashPlan::Random {
                max_failures,
                latest,
            } => {
                let count = rng.gen_range(0..=(*max_failures).min(n));
                let mut indices: Vec<usize> = (0..n).collect();
                for _ in 0..count {
                    let k = rng.gen_range(0..indices.len());
                    let idx = indices.swap_remove(k);
                    times[idx] = Some(rng.gen_range(1..=(*latest).max(1)));
                }
            }
        }
        times
    }
}

/// The coordination workload: which actions get initiated, by whom, when.
///
/// Initiation is driven by the environment (a client request arriving at a
/// process), not by the protocol: the scheduler appends `init_p(α)` to `p`'s
/// history at the scheduled tick (if `p` is still alive and has a free slot)
/// and the protocol reacts to observing it — exactly the paper's reading of
/// "`init_p(α)` is in `p`'s history".
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Workload {
    schedule: Vec<(Time, ActionId)>,
}

impl Workload {
    /// The empty workload.
    #[must_use]
    pub fn none() -> Self {
        Workload::default()
    }

    /// One action, owned by process `initiator`, initiated at `tick`.
    #[must_use]
    pub fn single(initiator: usize, tick: Time) -> Self {
        Workload {
            schedule: vec![(tick, ActionId::new(ProcessId::new(initiator), 0))],
        }
    }

    /// A recurring workload: starting at tick 1, every `period` ticks a
    /// fresh action is initiated, with initiators rotating round-robin over
    /// all `n` processes, until `until`. This realizes the "infinitely many
    /// actions are initiated" hypothesis of Theorems 3.6 and 4.3 on a finite
    /// window.
    #[must_use]
    pub fn periodic(n: usize, period: Time, until: Time) -> Self {
        assert!(period >= 1);
        let mut schedule = Vec::new();
        let mut seqs = vec![0u32; n];
        let mut t = 1;
        let mut who = 0usize;
        while t <= until {
            let p = ProcessId::new(who);
            schedule.push((t, ActionId::new(p, seqs[who])));
            seqs[who] += 1;
            who = (who + 1) % n;
            t += period;
        }
        Workload { schedule }
    }

    /// Adds one initiation to the schedule.
    pub fn push(&mut self, tick: Time, action: ActionId) -> &mut Self {
        self.schedule.push((tick, action));
        self
    }

    /// The scheduled initiations, in schedule order.
    #[must_use]
    pub fn schedule(&self) -> &[(Time, ActionId)] {
        &self.schedule
    }

    /// All distinct actions in the workload.
    #[must_use]
    pub fn actions(&self) -> Vec<ActionId> {
        let mut v: Vec<ActionId> = self.schedule.iter().map(|&(_, a)| a).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Initiations scheduled at exactly `tick`.
    pub fn at_tick(&self, tick: Time) -> impl Iterator<Item = ActionId> + '_ {
        self.schedule
            .iter()
            .filter(move |&&(t, _)| t == tick)
            .map(|&(_, a)| a)
    }
}

/// Full configuration of one simulated context.
///
/// Built with a fluent API:
///
/// ```
/// use ktudc_sim::{ChannelKind, CrashPlan, SimConfig};
///
/// let config = SimConfig::new(5)
///     .channel(ChannelKind::fair_lossy(0.3))
///     .crashes(CrashPlan::at(&[(1, 4)]))
///     .horizon(400)
///     .seed(42);
/// assert_eq!(config.n(), 5);
/// ```
#[derive(Clone, Debug)]
pub struct SimConfig {
    n: usize,
    horizon: Time,
    seed: u64,
    channel: ChannelKind,
    crashes: CrashPlan,
    fd_period: Time,
    /// Probability that, when both a deliverable message and a protocol
    /// action are available, the scheduler picks the delivery.
    deliver_bias: f64,
    /// Adversarial fault schedule (defaults to [`FaultPlan::none`]).
    faults: FaultPlan,
}

impl SimConfig {
    /// A configuration for `n` processes with reliable channels, no crashes,
    /// horizon 200, seed 0, failure-detector polling every 4 ticks.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds [`ProcessId::MAX_PROCESSES`].
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!((1..=ProcessId::MAX_PROCESSES).contains(&n));
        SimConfig {
            n,
            horizon: 200,
            seed: 0,
            channel: ChannelKind::reliable(),
            crashes: CrashPlan::None,
            fd_period: 4,
            deliver_bias: 0.6,
            faults: FaultPlan::none(),
        }
    }

    /// Sets the channel regime.
    ///
    /// # Panics
    ///
    /// Panics if a fair-lossy drop probability is NaN or not in `[0, 1)`.
    #[must_use]
    pub fn channel(mut self, channel: ChannelKind) -> Self {
        if let Err(e) = channel.validate() {
            panic!("{e}: a channel dropping everything is not fair (R5)");
        }
        self.channel = channel;
        self
    }

    /// Sets the crash plan.
    #[must_use]
    pub fn crashes(mut self, crashes: CrashPlan) -> Self {
        self.crashes = crashes;
        self
    }

    /// Sets the horizon (last simulated tick).
    #[must_use]
    pub fn horizon(mut self, horizon: Time) -> Self {
        assert!(horizon >= 1);
        self.horizon = horizon;
        self
    }

    /// Sets the RNG seed. Identical configurations with identical seeds
    /// produce identical runs.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets how often (in ticks) each process polls its failure detector.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn fd_period(mut self, period: Time) -> Self {
        assert!(period >= 1);
        self.fd_period = period;
        self
    }

    /// Sets the scheduler's bias toward deliveries over protocol actions
    /// when both are available (default 0.6).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is NaN or not in `[0, 1]`. Use
    /// [`SimConfig::try_deliver_bias`] for a fallible, typed-error form.
    #[must_use]
    pub fn deliver_bias(self, bias: f64) -> Self {
        match self.try_deliver_bias(bias) {
            Ok(config) => config,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`SimConfig::deliver_bias`].
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidProbability`] if `bias` is NaN or outside
    /// `[0, 1]`.
    pub fn try_deliver_bias(mut self, bias: f64) -> Result<Self, ModelError> {
        check_probability("deliver_bias", bias, true)?;
        self.deliver_bias = bias;
        Ok(self)
    }

    /// Sets the adversarial fault schedule (default: none).
    #[must_use]
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The last simulated tick.
    #[must_use]
    pub fn horizon_ticks(&self) -> Time {
        self.horizon
    }

    /// The RNG seed.
    #[must_use]
    pub fn seed_value(&self) -> u64 {
        self.seed
    }

    /// The channel regime.
    #[must_use]
    pub fn channel_kind(&self) -> ChannelKind {
        self.channel
    }

    /// The crash plan.
    #[must_use]
    pub fn crash_plan(&self) -> &CrashPlan {
        &self.crashes
    }

    /// The failure-detector polling period.
    #[must_use]
    pub fn fd_period_ticks(&self) -> Time {
        self.fd_period
    }

    /// The delivery bias.
    #[must_use]
    pub fn deliver_bias_value(&self) -> f64 {
        self.deliver_bias
    }

    /// The adversarial fault schedule.
    #[must_use]
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Creates the seeded RNG for this configuration.
    #[must_use]
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_accessors() {
        assert_eq!(ChannelKind::reliable().drop_prob(), 0.0);
        assert_eq!(ChannelKind::fair_lossy(0.4).drop_prob(), 0.4);
        assert_eq!(ChannelKind::fair_lossy(0.4).max_delay(), 3);
    }

    #[test]
    #[should_panic(expected = "drop_prob")]
    fn total_loss_is_rejected() {
        let _ = SimConfig::new(2).channel(ChannelKind::FairLossy {
            drop_prob: 1.0,
            max_delay: 3,
        });
    }

    #[test]
    #[should_panic(expected = "drop_prob")]
    fn fair_lossy_constructor_rejects_total_loss() {
        let _ = ChannelKind::fair_lossy(1.0);
    }

    #[test]
    fn out_of_range_drop_probs_are_typed_errors() {
        for bad in [f64::NAN, -0.001, 1.0, 1.5, f64::INFINITY, f64::NEG_INFINITY] {
            let err = ChannelKind::try_fair_lossy(bad).unwrap_err();
            match err {
                ModelError::InvalidProbability { param, range, .. } => {
                    assert_eq!(param, "drop_prob");
                    assert_eq!(range, "[0, 1)");
                }
                other => panic!("{bad}: expected InvalidProbability, got {other:?}"),
            }
        }
        assert!(ChannelKind::try_fair_lossy(0.0).is_ok());
        assert!(ChannelKind::try_fair_lossy(0.999).is_ok());
    }

    #[test]
    fn out_of_range_deliver_bias_is_a_typed_error() {
        for bad in [f64::NAN, -0.2, 1.0001, f64::INFINITY] {
            let err = SimConfig::new(2).try_deliver_bias(bad).unwrap_err();
            assert!(
                matches!(
                    err,
                    ModelError::InvalidProbability {
                        param: "deliver_bias",
                        ..
                    }
                ),
                "{bad}: {err:?}"
            );
        }
        // Unlike drop_prob, bias 1.0 (always prefer delivery) is admissible.
        assert!(SimConfig::new(2).try_deliver_bias(1.0).is_ok());
        assert!(SimConfig::new(2).try_deliver_bias(0.0).is_ok());
    }

    #[test]
    #[should_panic(expected = "deliver_bias")]
    fn nan_deliver_bias_panics_with_context() {
        let _ = SimConfig::new(2).deliver_bias(f64::NAN);
    }

    #[test]
    fn crash_plan_resolution_explicit() {
        let plan = CrashPlan::at(&[(0, 3), (2, 7)]);
        let mut rng = StdRng::seed_from_u64(0);
        let times = plan.resolve(3, &mut rng);
        assert_eq!(times, vec![Some(3), None, Some(7)]);
    }

    #[test]
    #[should_panic(expected = "duplicate crash")]
    fn crash_plan_rejects_duplicates() {
        let plan = CrashPlan::at(&[(0, 3), (0, 7)]);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = plan.resolve(3, &mut rng);
    }

    #[test]
    fn crash_plan_random_respects_bound() {
        let plan = CrashPlan::Random {
            max_failures: 2,
            latest: 10,
        };
        for seed in 0..50 {
            let mut rng = StdRng::seed_from_u64(seed);
            let times = plan.resolve(5, &mut rng);
            let crashed = times.iter().filter(|t| t.is_some()).count();
            assert!(crashed <= 2, "seed {seed} crashed {crashed}");
            for t in times.into_iter().flatten() {
                assert!((1..=10).contains(&t));
            }
        }
    }

    #[test]
    fn crash_plan_random_is_deterministic_per_seed() {
        let plan = CrashPlan::Random {
            max_failures: 3,
            latest: 9,
        };
        let a = plan.resolve(6, &mut StdRng::seed_from_u64(11));
        let b = plan.resolve(6, &mut StdRng::seed_from_u64(11));
        assert_eq!(a, b);
    }

    #[test]
    fn workload_single_and_actions() {
        let w = Workload::single(2, 5);
        assert_eq!(w.schedule().len(), 1);
        let a = w.actions()[0];
        assert_eq!(a.initiator(), ProcessId::new(2));
        assert_eq!(w.at_tick(5).count(), 1);
        assert_eq!(w.at_tick(4).count(), 0);
    }

    #[test]
    fn workload_periodic_rotates_initiators() {
        let w = Workload::periodic(3, 2, 10);
        // Ticks 1,3,5,7,9 → 5 initiations, initiators 0,1,2,0,1.
        assert_eq!(w.schedule().len(), 5);
        let initiators: Vec<usize> = w
            .schedule()
            .iter()
            .map(|(_, a)| a.initiator().index())
            .collect();
        assert_eq!(initiators, vec![0, 1, 2, 0, 1]);
        // Actions are all distinct (fresh sequence numbers per initiator).
        assert_eq!(w.actions().len(), 5);
    }

    #[test]
    fn config_fluent_api() {
        let c = SimConfig::new(4)
            .channel(ChannelKind::fair_lossy(0.2))
            .crashes(CrashPlan::at(&[(1, 2)]))
            .horizon(99)
            .seed(5)
            .fd_period(7)
            .deliver_bias(0.5);
        assert_eq!(c.n(), 4);
        assert_eq!(c.horizon_ticks(), 99);
        assert_eq!(c.seed_value(), 5);
        assert_eq!(c.fd_period_ticks(), 7);
        assert_eq!(c.deliver_bias_value(), 0.5);
        assert_eq!(c.channel_kind().drop_prob(), 0.2);
        assert_eq!(c.crash_plan(), &CrashPlan::at(&[(1, 2)]));
    }
}
