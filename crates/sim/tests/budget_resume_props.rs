//! Property: an exploration whose budget trips mid-walk, checkpointed to
//! a journal, resumes under a fresh budget to a result *bit-identical*
//! to the uninterrupted run — for arbitrary small specs and arbitrary
//! budget trip points.
//!
//! This is the soundness contract of the abort rule in
//! [`ktudc_sim::explore_spec_checkpointed_budgeted`]: a subtree is
//! journaled only if the budget had not tripped by the time its batch
//! finished, so the journal never contains budget-truncated state that
//! would poison a resume. The step cap for each case is derived from a
//! probe of the same spec (never hard-coded), so the trip point scales
//! with the machine instead of flaking on slow or wide hosts.

use ktudc_model::Budget;
use ktudc_sim::{
    explore_spec_checkpointed, explore_spec_checkpointed_budgeted, run_explore_spec, system_digest,
    CheckpointOutcome, ExploreSpec, WireProtocol,
};
use ktudc_store::SyncPolicy;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinct journal path per case (proptest runs many cases in one
/// process, and shrinking replays them; a shared path would merge
/// journals written for different specs and fail spuriously).
struct TempPath(PathBuf);

impl TempPath {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let mut p = std::env::temp_dir();
        p.push(format!(
            "ktudc-budget-resume-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_file(&p);
        TempPath(p)
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Small-but-varied spec space: exploration is exponential in `n` and
/// `horizon`, so the property is checked where it is cheap and the
/// journal still splits into several subtrees.
fn spec_strategy() -> impl Strategy<Value = ExploreSpec> {
    (2u64..=3, 0usize..=1, 0u8..=1, 0u8..=1).prop_map(|(horizon, max_failures, stutter, proto)| {
        let mut spec = ExploreSpec::new(2, horizon);
        spec.max_failures = max_failures;
        spec.allow_stutter = stutter == 1;
        spec.protocol = match proto {
            0 => WireProtocol::Idle,
            _ => WireProtocol::OneShot {
                from: 0,
                to: 1,
                msg: 7,
            },
        };
        spec
    })
}

/// Random durability regime, including group-commit batching
/// ([`SyncPolicy::EveryN`]) — the abort rule must hold regardless of how
/// many frames share an fsync.
fn sync_strategy() -> impl Strategy<Value = SyncPolicy> {
    (0u8..3, 2u32..=8).prop_map(|(kind, every)| match kind {
        0 => SyncPolicy::Never,
        1 => SyncPolicy::Always,
        _ => SyncPolicy::EveryN(every),
    })
}

proptest! {
    #[test]
    fn aborted_then_resumed_equals_uninterrupted(
        spec in spec_strategy(),
        trip_percent in 1u64..100,
        sync in sync_strategy(),
    ) {
        let baseline = run_explore_spec(&spec).unwrap();

        // Probe the walk's step count on a scratch journal so the cap
        // below is a *fraction of this machine's actual walk*, not a
        // number tuned to one host.
        let probe = Budget::unlimited();
        {
            let scratch = TempPath::new("probe");
            explore_spec_checkpointed_budgeted(&spec, &scratch.0, SyncPolicy::Never, Some(&probe))
                .unwrap();
        }
        let cap = (probe.steps() * trip_percent / 100).max(1);

        let tmp = TempPath::new("case");
        let budget = Budget::unlimited().with_max_steps(cap);
        let (outcome, _) =
            explore_spec_checkpointed_budgeted(&spec, &tmp.0, sync, Some(&budget))
                .unwrap();

        match outcome {
            // Budget polling is batched, so a generous cap may finish the
            // walk; completion must then be indistinguishable from the
            // unbudgeted path.
            CheckpointOutcome::Done(result) => {
                prop_assert_eq!(system_digest(&result.system), baseline.digest);
                prop_assert_eq!(result.complete, baseline.complete);
            }
            CheckpointOutcome::Aborted { partial, subtrees_done, .. } => {
                // The partial result never claims completeness and never
                // exceeds the true run count.
                if let Some(partial) = &partial {
                    prop_assert!(!partial.complete);
                    prop_assert!(partial.system.len() <= baseline.runs);
                }
                // Resume with a fresh (unlimited) budget: the journal
                // holds only clean subtrees, so the result must be
                // bit-identical to the uninterrupted exploration.
                let (resumed, stats) =
                    explore_spec_checkpointed(&spec, &tmp.0, sync).unwrap();
                prop_assert!(stats.resumed_subtrees >= subtrees_done);
                prop_assert_eq!(system_digest(&resumed.system), baseline.digest);
                prop_assert_eq!(resumed.complete, baseline.complete);
                prop_assert_eq!(resumed.system.len(), baseline.runs);
            }
        }
    }
}
