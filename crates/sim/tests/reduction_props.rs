//! Differential property tests for the explorer's state-space reductions
//! (process-relabeling symmetry and sleep sets), pinned against the
//! clone-per-branch [`explore_reference`] on randomized small
//! configurations.
//!
//! The contracts exercised here mirror DESIGN.md's soundness argument:
//!
//! * **Symmetry** prunes runs that are relabelings of a retained run, so
//!   the reduced run set must be a literal subset of the reference and
//!   must *cover* it — the sets of timed canonical digests (minimum over
//!   the symmetry group of a relabeled run hash) must be equal.
//! * **Sleep sets** additionally quotient by stutter placement, which
//!   shifts event times; for time-oblivious protocols the *untimed*
//!   canonical digest sets must still be equal.
//! * A reduction that is configured but degenerate (out-of-range or
//!   singleton symmetry class) must be a no-op: the reduced explorer
//!   takes its pruning path yet reproduces the reference run list
//!   verbatim, order included.
//!
//! The protocol under test is an echo server whose clients (everyone but
//! process 0) are genuinely interchangeable — no process, the server
//! included, ever names a client by index — exactly the equivariance
//! hypothesis the symmetry argument needs.

use ktudc_model::{Event, ProcessId, Time};
use ktudc_sim::{
    canonical_run_digests, explore_reference, explore_with_stats, ExploreConfig, ProtoAction,
    Protocol,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// An echo server: every process except 0 sends one message to process
/// 0; process 0 acks each message back to its source, in order of
/// receipt. Behavior is a function of `(me, history)` alone — never of
/// the clock — and, crucially, *equivariant* under relabeling the
/// senders: nobody names a sender by index (ack targets come from the
/// `from` field of the observed `Recv`, which relabels along with the
/// run). A fan-out that sends "to p1 first, then p2" would violate that
/// hypothesis — the symmetry reduction is only sound when no process
/// distinguishes class members by name — and this suite is exactly what
/// catches such a protocol.
#[derive(Clone, Debug)]
struct Echo {
    me: ProcessId,
    inbox: Vec<ProcessId>,
    acked: usize,
    sent: bool,
}

impl Protocol<u8> for Echo {
    fn start(&mut self, me: ProcessId, _n: usize) {
        self.me = me;
    }
    fn observe(&mut self, _t: Time, e: &Event<u8>) {
        match e {
            Event::Recv { from, .. } if self.me.index() == 0 => self.inbox.push(*from),
            Event::Send { .. } => {
                if self.me.index() == 0 {
                    self.acked += 1;
                } else {
                    self.sent = true;
                }
            }
            _ => {}
        }
    }
    fn next_action(&mut self, _t: Time) -> Option<ProtoAction<u8>> {
        if self.me.index() == 0 {
            (self.acked < self.inbox.len()).then(|| ProtoAction::Send {
                to: self.inbox[self.acked],
                msg: 1,
            })
        } else {
            (!self.sent).then_some(ProtoAction::Send {
                to: ProcessId::new(0),
                msg: 9,
            })
        }
    }
    fn quiescent(&self) -> bool {
        if self.me.index() == 0 {
            self.acked == self.inbox.len()
        } else {
            self.sent
        }
    }
}

fn make_echo() -> impl Fn(ProcessId) -> Echo + Copy {
    move |_| Echo {
        me: ProcessId::new(0),
        inbox: Vec::new(),
        acked: 0,
        sent: false,
    }
}

/// The set of canonical digests of a system's runs — timed or untimed —
/// under the symmetry plan the config induces.
fn digest_set(cfg: &ExploreConfig, system: &ktudc_model::System<u8>, timed: bool) -> BTreeSet<u64> {
    canonical_run_digests(cfg, system, timed)
        .into_iter()
        .collect()
}

proptest! {
    /// Symmetry over the receiver class: the reduced run set is a literal
    /// subset of the reference and covers it up to relabeling (equal
    /// timed canonical digest sets).
    #[test]
    fn symmetry_covers_reference_up_to_relabeling(
        n in 3usize..5,
        horizon in 2u64..5,
        max_failures in 0usize..3,
    ) {
        let cfg = ExploreConfig::new(n, horizon)
            .max_failures(max_failures.min(n - 1))
            .symmetric((1..n).collect());
        let (reduced, stats) = explore_with_stats(&cfg, make_echo());
        let reference = explore_reference(&cfg, make_echo());

        prop_assert_eq!(reduced.complete, reference.complete);
        prop_assert!(reduced.system.len() <= reference.system.len());
        for run in reduced.system.runs() {
            prop_assert!(reference.system.runs().contains(run));
        }
        prop_assert_eq!(
            digest_set(&cfg, &reduced.system, true),
            digest_set(&cfg, &reference.system, true)
        );
        // A class of ≥ 2 interchangeable receivers must actually prune.
        if reference.system.len() > reduced.system.len() {
            prop_assert!(stats.states_canonicalized > 0);
        }
    }

    /// Sleep sets alone (no symmetry): reduced ⊆ reference and the
    /// untimed canonical digest sets coincide — stutter placement is the
    /// only thing quotiented away.
    #[test]
    fn sleep_sets_preserve_untimed_histories(
        n in 2usize..4,
        horizon in 2u64..5,
        max_failures in 0usize..2,
    ) {
        let cfg = ExploreConfig::new(n, horizon)
            .max_failures(max_failures.min(n - 1))
            .with_sleep_sets();
        let (reduced, _) = explore_with_stats(&cfg, make_echo());
        let reference = explore_reference(&cfg, make_echo());

        prop_assert_eq!(reduced.complete, reference.complete);
        prop_assert!(reduced.system.len() <= reference.system.len());
        for run in reduced.system.runs() {
            prop_assert!(reference.system.runs().contains(run));
        }
        prop_assert_eq!(
            digest_set(&cfg, &reduced.system, false),
            digest_set(&cfg, &reference.system, false)
        );
    }

    /// Both reductions composed: the combined quotient still preserves
    /// the untimed canonical digest set.
    #[test]
    fn combined_reductions_preserve_untimed_canonical_sets(
        n in 3usize..5,
        horizon in 2u64..5,
        max_failures in 0usize..2,
    ) {
        let cfg = ExploreConfig::new(n, horizon)
            .max_failures(max_failures.min(n - 1))
            .symmetric((1..n).collect())
            .with_sleep_sets();
        let (reduced, _) = explore_with_stats(&cfg, make_echo());
        let reference = explore_reference(&cfg, make_echo());

        prop_assert_eq!(reduced.complete, reference.complete);
        for run in reduced.system.runs() {
            prop_assert!(reference.system.runs().contains(run));
        }
        prop_assert_eq!(
            digest_set(&cfg, &reduced.system, false),
            digest_set(&cfg, &reference.system, false)
        );
    }

    /// A degenerate symmetry class (out of range or singleton) activates
    /// the reduced code path but must not prune anything: run lists match
    /// the reference verbatim, order included.
    #[test]
    fn degenerate_classes_are_exact(
        n in 2usize..4,
        horizon in 2u64..5,
        class_kind in 0u8..2,
        max_failures in 0usize..2,
    ) {
        let class = match class_kind {
            0 => vec![n + 3, n + 4], // entirely out of range
            _ => vec![n - 1],        // singleton
        };
        let cfg = ExploreConfig::new(n, horizon)
            .max_failures(max_failures.min(n - 1))
            .symmetric(class);
        let (reduced, _) = explore_with_stats(&cfg, make_echo());
        let reference = explore_reference(&cfg, make_echo());

        prop_assert_eq!(reduced.complete, reference.complete);
        prop_assert_eq!(reduced.system.runs(), reference.system.runs());
    }
}
