//! End-to-end fault injection through the Monte-Carlo runner: each
//! injector leaves its intended fingerprint on the generated run, the
//! model layer's condition checker flags exactly the out-of-model ones,
//! and everything is deterministic per seed.

use ktudc_model::{ActionId, Event, ModelError, ProcessId, Time};
use ktudc_sim::{
    run_protocol, ChannelKind, FaultPlan, NullOracle, Outbox, ProtoAction, Protocol, SimConfig,
    Workload,
};
use std::collections::{BTreeSet, VecDeque};

/// Toy flooding protocol (same shape as the runner's unit-test protocol):
/// on `init(α)` or first receipt of `α`, perform `α` and relay it once to
/// everyone. Non-retransmitting.
#[derive(Clone, Debug)]
struct Flood {
    me: ProcessId,
    n: usize,
    seen: BTreeSet<ActionId>,
    to_do: VecDeque<ActionId>,
    out: Outbox<ActionId>,
}

impl Flood {
    fn new() -> Self {
        Flood {
            me: ProcessId::new(0),
            n: 0,
            seen: BTreeSet::new(),
            to_do: VecDeque::new(),
            out: Outbox::new(),
        }
    }

    fn learn(&mut self, action: ActionId) {
        if self.seen.insert(action) {
            self.out.broadcast(self.me, self.n, action);
            self.to_do.push_back(action);
        }
    }
}

impl Protocol<ActionId> for Flood {
    fn start(&mut self, me: ProcessId, n: usize) {
        self.me = me;
        self.n = n;
    }

    fn observe(&mut self, _time: Time, event: &Event<ActionId>) {
        match event {
            Event::Init { action } => self.learn(*action),
            Event::Recv { msg, .. } => self.learn(*msg),
            _ => {}
        }
    }

    fn next_action(&mut self, _time: Time) -> Option<ProtoAction<ActionId>> {
        if let Some(a) = self.to_do.pop_front() {
            return Some(ProtoAction::Do(a));
        }
        self.out.pop()
    }

    fn quiescent(&self) -> bool {
        self.to_do.is_empty() && self.out.is_empty()
    }
}

/// Two-process ping/ack protocol that *retransmits*: process 0 sends
/// `Ping` to process 1 on every free slot until it receives an `Ack`.
/// Under a severed 0→1 link this pushes an unbounded stream of copies
/// into the void — the finite-horizon R5 witness.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum Msg {
    Ping,
    Ack,
}

#[derive(Clone, Debug)]
struct Pester {
    me: ProcessId,
    acked: bool,
    out: Outbox<Msg>,
}

impl Pester {
    fn new() -> Self {
        Pester {
            me: ProcessId::new(0),
            acked: false,
            out: Outbox::new(),
        }
    }
}

impl Protocol<Msg> for Pester {
    fn start(&mut self, me: ProcessId, _n: usize) {
        self.me = me;
    }

    fn observe(&mut self, _time: Time, event: &Event<Msg>) {
        if let Event::Recv { msg, .. } = event {
            match msg {
                Msg::Ping => self.out.send(ProcessId::new(0), Msg::Ack),
                Msg::Ack => self.acked = true,
            }
        }
    }

    fn next_action(&mut self, _time: Time) -> Option<ProtoAction<Msg>> {
        if let Some(a) = self.out.pop() {
            return Some(a);
        }
        if self.me.index() == 0 && !self.acked {
            return Some(ProtoAction::Send {
                to: ProcessId::new(1),
                msg: Msg::Ping,
            });
        }
        None
    }

    fn quiescent(&self) -> bool {
        self.out.is_empty() && (self.me.index() != 0 || self.acked)
    }
}

#[test]
fn duplication_is_recorded_and_flagged_as_r3() {
    let config = SimConfig::new(4)
        .horizon(120)
        .seed(2)
        .faults(FaultPlan::none().duplicate(0.6));
    let w = Workload::periodic(4, 6, 60);
    let out = run_protocol(&config, |_| Flood::new(), &mut NullOracle::new(), &w);
    assert!(out.faults.duplicated > 0, "duplication never fired");
    assert!(out.faults.first_injection.is_some());
    match out.run.check_conditions(0) {
        Err(ModelError::ReceiveWithoutSend { .. }) => {}
        other => panic!("expected an R3 violation, got {other:?}"),
    }
}

#[test]
fn delay_spikes_are_in_model() {
    let baseline = SimConfig::new(4).horizon(300).seed(7);
    let spiky = baseline
        .clone()
        .faults(FaultPlan::none().delay_spikes(40, 10, 6));
    let w = Workload::periodic(4, 9, 60);
    let out = run_protocol(&spiky, |_| Flood::new(), &mut NullOracle::new(), &w);
    assert!(out.faults.spike_delayed > 0, "no copy hit a spike window");
    // Bounded extra latency violates nothing: the run is well-formed and
    // the protocol still terminates at this horizon.
    out.run.check_conditions(30).unwrap();
    assert!(out.quiescent, "flood should still quiesce despite spikes");
}

#[test]
fn severed_link_is_flagged_as_unfair_at_finite_threshold() {
    let config = SimConfig::new(2)
        .horizon(150)
        .seed(4)
        .faults(FaultPlan::none().sever_link(0, 1, 1));
    let out = run_protocol(
        &config,
        |_| Pester::new(),
        &mut NullOracle::new(),
        &Workload::none(),
    );
    assert!(out.faults.partition_dropped > 0);
    assert!(!out.quiescent, "the ack can never arrive");
    // R1–R4 still hold: dropping is not a structural violation…
    out.run.check_conditions(0).unwrap();
    // …but at a finite fairness threshold the unbounded unanswered stream
    // is an R5 witness.
    match out.run.check_conditions(20) {
        Err(ModelError::UnfairChannel {
            sender, receiver, ..
        }) => {
            assert_eq!(sender, ProcessId::new(0));
            assert_eq!(receiver, ProcessId::new(1));
        }
        other => panic!("expected an R5 violation, got {other:?}"),
    }
}

#[test]
fn bounded_partition_and_burst_loss_are_survived_by_retransmission() {
    let config = SimConfig::new(2).horizon(400).seed(11).faults(
        FaultPlan::none()
            .partition_link(0, 1, 1, 60)
            .burst_loss(10, 3),
    );
    let out = run_protocol(
        &config,
        |_| Pester::new(),
        &mut NullOracle::new(),
        &Workload::none(),
    );
    assert!(out.faults.partition_dropped > 0);
    assert!(out.faults.burst_dropped > 0);
    // Retransmission rides out the healed partition and the periodic
    // bursts: the ping gets through and the run satisfies every condition
    // even at a finite fairness threshold.
    assert!(
        out.quiescent,
        "ping/ack should complete after the partition heals"
    );
    out.run.check_conditions(40).unwrap();
}

#[test]
fn fault_injection_is_deterministic_per_seed() {
    let plan = FaultPlan::none()
        .duplicate(0.3)
        .delay_spikes(30, 8, 5)
        .burst_loss(25, 4)
        .partition_link(1, 2, 10, 50);
    let config = SimConfig::new(4)
        .channel(ChannelKind::fair_lossy(0.2))
        .horizon(200)
        .seed(42)
        .faults(plan);
    let w = Workload::periodic(4, 7, 80);
    let a = run_protocol(&config, |_| Flood::new(), &mut NullOracle::new(), &w);
    let b = run_protocol(&config, |_| Flood::new(), &mut NullOracle::new(), &w);
    assert_eq!(a.run, b.run, "identical plan+seed must reproduce the run");
    assert_eq!(a.faults, b.faults);
    let c = run_protocol(
        &config.clone().seed(43),
        |_| Flood::new(),
        &mut NullOracle::new(),
        &w,
    );
    assert_ne!(a.run, c.run, "different seeds should diverge");
}

#[test]
fn empty_plan_changes_nothing() {
    let base = SimConfig::new(3)
        .channel(ChannelKind::fair_lossy(0.3))
        .horizon(120)
        .seed(5);
    let w = Workload::periodic(3, 5, 50);
    let plain = run_protocol(&base, |_| Flood::new(), &mut NullOracle::new(), &w);
    let with_empty_plan = run_protocol(
        &base.clone().faults(FaultPlan::none()),
        |_| Flood::new(),
        &mut NullOracle::new(),
        &w,
    );
    assert_eq!(plain.run, with_empty_plan.run);
    assert_eq!(plain.messages_sent, with_empty_plan.messages_sent);
    assert_eq!(with_empty_plan.faults.total(), 0);
}
