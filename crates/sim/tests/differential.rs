//! Differential property tests: the copy-light (and, with the `parallel`
//! feature, multi-threaded) [`explore`] must enumerate exactly the same
//! run set as the clone-per-branch [`explore_reference`], in the same
//! order, on randomized small configurations (n ≤ 3, horizon ≤ 5).

use ktudc_model::{ActionId, Event, ProcessId, Time};
use ktudc_sim::{explore, explore_reference, ExploreConfig, ProtoAction, Protocol};
use proptest::prelude::*;

/// A small protocol with script-selected behavior: the sender transmits
/// one message to a chosen peer; others idle. Deterministic per config, so
/// both explorers face the same branching structure.
#[derive(Clone, Debug)]
struct Scripted {
    me: ProcessId,
    sender: ProcessId,
    to: ProcessId,
    msg: u8,
    sent: bool,
}

impl Protocol<u8> for Scripted {
    fn start(&mut self, me: ProcessId, _n: usize) {
        self.me = me;
    }
    fn observe(&mut self, _t: Time, e: &Event<u8>) {
        if matches!(e, Event::Send { .. }) {
            self.sent = true;
        }
    }
    fn next_action(&mut self, _t: Time) -> Option<ProtoAction<u8>> {
        (self.me == self.sender && self.to != self.me && !self.sent).then_some(ProtoAction::Send {
            to: self.to,
            msg: self.msg,
        })
    }
    fn quiescent(&self) -> bool {
        self.sent || self.me != self.sender
    }
}

proptest! {
    /// Random n / horizon / fault bound / initiation & FD knobs / run cap:
    /// the fast explorer's run list, order included, and its completeness
    /// flag must match the reference enumeration exactly.
    #[test]
    fn copy_light_explorer_matches_reference(
        n in 2usize..4,
        horizon in 2u64..6,
        max_failures in 0usize..3,
        sender in 0usize..3,
        to in 0usize..3,
        optional_inits in proptest::collection::vec((1u64..4, 0u32..2), 0..2),
        knobs in (0u8..4, 10usize..200),
    ) {
        let (flags, max_runs) = knobs;
        let mut cfg = ExploreConfig::new(n, horizon)
            .max_failures(max_failures.min(n))
            .max_runs(max_runs);
        for &(tick, a) in &optional_inits {
            cfg = cfg.initiate(tick.min(horizon), ActionId::new(ProcessId::new(sender % n), a));
        }
        if flags & 1 != 0 {
            cfg = cfg.optional_initiations();
        }
        if flags & 2 != 0 {
            cfg = cfg.without_stutter();
        }
        let make = |_| Scripted {
            me: ProcessId::new(0),
            sender: ProcessId::new(sender % n),
            to: ProcessId::new(to % n),
            msg: 7,
            sent: false,
        };

        let fast = explore(&cfg, make);
        let slow = explore_reference(&cfg, make);
        prop_assert_eq!(fast.complete, slow.complete);
        prop_assert_eq!(fast.system.runs(), slow.system.runs());
    }
}
